(* harmony_trace — offline trace analysis CLI (DESIGN.md §16).

   Commands over a JSONL / Chrome trace file:

     attribute FILE   per-phase latency attribution for server.handle
                      spans; --min-p99-attribution gates CI, --markdown
                      emits the EXPERIMENTS.md table, --check-exemplar
                      resolves the p99 bucket's exemplar end to end
     path ID FILE     span tree + critical path for one trace id
     self FILE        per-span-name self-time aggregation
     top FILE         metrics snapshot (counters/gauges/histograms)
     diff FILE FILE   phase attribution compared across two traces

   Exit codes: 0 ok, 1 check failed, 2 usage or unreadable input. *)

let usage () =
  prerr_endline
    "usage: harmony_trace <command> [options]\n\
     \  attribute [--markdown] [--check-exemplar] \
     [--min-p99-attribution F] FILE\n\
     \  path TRACE_ID FILE\n\
     \  self FILE\n\
     \  top FILE\n\
     \  diff FILE_A FILE_B";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error e -> Error e

let load path =
  match read_file path with
  | Error e ->
      Printf.eprintf "harmony_trace: %s\n" e;
      exit 2
  | Ok text -> (
      match Trace_core.of_string text with
      | Error e ->
          Printf.eprintf "harmony_trace: %s: %s\n" path e;
          exit 2
      | Ok t ->
          if t.Trace_core.dropped > 0 then
            Printf.eprintf "harmony_trace: %s: skipped %d unparsable lines\n"
              path t.Trace_core.dropped;
          t)

let attribute args =
  let markdown = ref false in
  let check_ex = ref false in
  let min_attr = ref (-1.0) in
  let file = ref "" in
  let rec parse = function
    | [] -> ()
    | "--markdown" :: rest ->
        markdown := true;
        parse rest
    | "--check-exemplar" :: rest ->
        check_ex := true;
        parse rest
    | "--min-p99-attribution" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f <= 1.0 ->
            min_attr := f;
            parse rest
        | Some _ | None -> usage ())
    | [ f ] when not (String.equal f "") && f.[0] <> '-' -> file := f
    | _ -> usage ()
  in
  parse args;
  if String.equal !file "" then usage ();
  let t = load !file in
  match Trace_core.attribution t with
  | None ->
      prerr_endline "harmony_trace: no server.handle spans in the trace";
      exit 1
  | Some a ->
      print_string (Trace_core.render_attribution ~markdown:!markdown t a);
      let failed = ref false in
      if !min_attr >= 0.0 && a.Trace_core.a_p99_attributed < !min_attr then begin
        Printf.eprintf
          "harmony_trace: p99 attribution %.1f%% below required %.1f%%\n"
          (100.0 *. a.Trace_core.a_p99_attributed)
          (100.0 *. !min_attr);
        failed := true
      end;
      if !check_ex then begin
        match Trace_core.check_exemplar t with
        | Ok text -> print_string text
        | Error e ->
            Printf.eprintf "harmony_trace: exemplar check: %s\n" e;
            failed := true
      end;
      exit (if !failed then 1 else 0)

let () =
  match Array.to_list Sys.argv with
  | _ :: "attribute" :: rest -> attribute rest
  | [ _; "path"; trace_id; file ] -> (
      match Trace_core.render_path (load file) trace_id with
      | Ok text -> print_string text
      | Error e ->
          Printf.eprintf "harmony_trace: %s\n" e;
          exit 1)
  | [ _; "self"; file ] -> print_string (Trace_core.render_self (load file))
  | [ _; "top"; file ] -> print_string (Trace_core.render_top (load file))
  | [ _; "diff"; file_a; file_b ] -> (
      let ta = load file_a and tb = load file_b in
      match (Trace_core.attribution ta, Trace_core.attribution tb) with
      | Some a, Some b -> print_string (Trace_core.render_diff ta a tb b)
      | None, (Some _ | None) | Some _, None ->
          prerr_endline "harmony_trace: diff needs handle spans in both traces";
          exit 1)
  | _ -> usage ()
