(** Offline analysis of harmony trace files.

    Loads Export.jsonl streams (with optional [{"type":"segment"}]
    marker lines, the loadgen [--trace] format), flight-recorder dumps
    (event lines carrying a ["shard"] field) and Export.chrome JSON,
    then reconstructs [server.handle] spans and attributes their
    latency to named phases.  Pure and total: loading never raises on
    malformed input, and every analysis returns a rendering for the
    CLI to print. *)

type ev_kind = Begin | End | Instant

type event = {
  kind : ev_kind;
  name : string;
  ts : float;
  trace_id : string;  (** [""] when the event carries no correlation args *)
  span_id : string;
  parent_id : string;
}

type histogram = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;  (** (upper bound, occupancy), ascending *)
  h_exemplars : (float * string * float) list;
      (** (bucket bound, trace id, observed value) *)
}

type segment = {
  seg_name : string;
  events : event list;
  counters : (string * float) list;
  gauges : (string * float) list;
  histograms : histogram list;
}

type t = {
  segments : segment list;
  dropped : int;  (** unparsable lines skipped by the loader *)
}

(** Parse a trace from raw text.  A single JSON object with a
    [traceEvents] member is read as a Chrome trace; anything else is
    read line by line as JSONL, starting a new segment at every
    segment marker or flight-dump shard change. *)
val of_string : string -> (t, string) result

(** {1 Phases} *)

type phase = Queue | Journal | Search | Handle | Backoff | Other

val phase_to_string : phase -> string
val phase_index : phase -> int
val phases : phase list

(** [false] only for [Other] — the catch-all for spans the attribution
    table cannot name. *)
val named : phase -> bool

(** Map a span name to its phase: [server.journal.*] to [Journal],
    admission spans to [Queue], the search/measurement pipeline
    ([server.search], [simplex*], [controller*], [tuner*], [measure*],
    [session.*], ...) to [Search], [server.handle] itself to
    [Handle]. *)
val phase_of_name : string -> phase

(** {1 Handle-span reconstruction} *)

type child = {
  c_name : string;
  c_start : float;
  c_finish : float;
  c_depth : int;  (** 1 = direct child of the handle span *)
  c_closed : bool;
      (** [false]: never saw its end inside the handle span (the search
          kernel's effect-based spans can suspend and close during a
          later message); clipped at the handle end. *)
}

type handle_rec = {
  r_trace : string;
  r_seg : string;
  r_start : float;
  r_finish : float;
  r_phases : float array;  (** indexed by [phase_index] *)
  r_children : child list;  (** start order *)
}

val duration : handle_rec -> float

(** Every reconstructed [server.handle] span, across all segments. *)
val handles : t -> handle_rec list

(** {1 Aggregated attribution} *)

type attribution = {
  a_spans : int;
  a_total : float;
  a_phases : float array;
  a_p99 : float;  (** p99 handle duration, exact over span durations *)
  a_p99_spans : int;
  a_p99_total : float;
  a_p99_phases : float array;
  a_p99_attributed : float;
      (** fraction of the p99-tail spans' time in named phases *)
}

(** [None] when the trace contains no handle spans. *)
val attribution : t -> attribution option

(** {1 Metric lookups} *)

(** Latest segment wins — the loadgen writes the merged fleet-wide
    registry last. *)
val find_histogram : t -> string -> histogram option

(** Upper bound of the bucket the q-quantile observation falls in;
    [None] on an empty histogram. *)
val hist_quantile : histogram -> float -> float option

(** The exemplar (trace id, observed value) recorded in the p99
    bucket. *)
val p99_exemplar : histogram -> (string * float) option

(** {1 Renderers} *)

val render_attribution : ?markdown:bool -> t -> attribution -> string

(** Span tree, critical path and per-phase split for every handle span
    with the given trace id. *)
val render_path : t -> string -> (string, string) result

(** Per-span-name self-time totals over every span in the trace. *)
val render_self : t -> string

(** Metrics snapshot: counters, gauges and histogram quantiles per
    segment. *)
val render_top : t -> string

val render_diff : t -> attribution -> t -> attribution -> string

(** Resolve the [server.handle_ms] p99-bucket exemplar to a handle
    span and render its critical path end to end. *)
val check_exemplar : t -> (string, string) result
