(* harmony_trace core — offline analysis of harmony trace files.

   Input is what the system itself emits: Export.jsonl streams
   (optionally concatenated into segments by {"type":"segment"} marker
   lines, the loadgen's --trace format), flight-recorder dumps (the
   same event lines with a "shard" field), or Export.chrome JSON.
   Per-shard logical clocks overlap, so events are only ordered within
   a segment; every analysis below works segment by segment.

   The analyses:
   - attribution: for every server.handle span, split its duration
     across named phases (queue / journal / search / handle self-time)
     by walking the interior events with a span stack;
   - critical path: the span tree of one trace id, with the
     longest-child chain called out;
   - self time: per-span-name self-time totals across every span;
   - top: a metrics snapshot view (counters, gauges, histogram
     quantiles);
   - diff: phase attribution compared across two trace files;
   - exemplar check: resolve the p99 bucket's exemplar trace id to a
     span whose critical path prints end to end.

   Everything is total — malformed lines are counted and skipped, the
   way the journal recovery treats torn tails — and pure: the library
   returns renderings, the CLI prints them. *)

module Tjson = Harmony_telemetry.Tjson

type ev_kind = Begin | End | Instant

type event = {
  kind : ev_kind;
  name : string;
  ts : float;
  trace_id : string;  (* "" when the event carries no correlation args *)
  span_id : string;
  parent_id : string;
}

type histogram = {
  h_name : string;
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;  (* (upper bound, occupancy) ascending *)
  h_exemplars : (float * string * float) list;
      (* (bucket bound, trace id, observed value) *)
}

type segment = {
  seg_name : string;
  events : event list;  (* record order *)
  counters : (string * float) list;
  gauges : (string * float) list;
  histograms : histogram list;
}

type t = {
  segments : segment list;
  dropped : int;  (* unparsable lines skipped by the loader *)
}

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

let bound_of_le s =
  match float_of_string_opt s with Some v -> v | None -> infinity

let str_field name j =
  match Option.bind (Tjson.member name j) Tjson.to_str with
  | Some s -> s
  | None -> ""

let num_field name j =
  match Option.bind (Tjson.member name j) Tjson.to_float with
  | Some v -> v
  | None -> 0.0

let list_field name j =
  match Tjson.member name j with
  | Some (Tjson.List l) -> l
  | Some (Tjson.Null | Tjson.Bool _ | Tjson.Num _ | Tjson.Str _ | Tjson.Obj _)
  | None ->
      []

type builder = {
  mutable bname : string;
  mutable bshard : int option;  (* flight dumps segment on shard changes *)
  mutable bevents : event list;  (* reversed *)
  mutable bcounters : (string * float) list;
  mutable bgauges : (string * float) list;
  mutable bhists : histogram list;
  mutable bsegs : segment list;  (* reversed *)
  mutable bdropped : int;
}

let new_builder () =
  {
    bname = "trace";
    bshard = None;
    bevents = [];
    bcounters = [];
    bgauges = [];
    bhists = [];
    bsegs = [];
    bdropped = 0;
  }

let segment_empty b =
  match (b.bevents, b.bcounters, b.bgauges, b.bhists) with
  | [], [], [], [] -> true
  | _ :: _, _, _, _ | _, _ :: _, _, _ | _, _, _ :: _, _ | _, _, _, _ :: _ ->
      false

let flush_segment b =
  if not (segment_empty b) then
    b.bsegs <-
      {
        seg_name = b.bname;
        events = List.rev b.bevents;
        counters = List.rev b.bcounters;
        gauges = List.rev b.bgauges;
        histograms = List.rev b.bhists;
      }
      :: b.bsegs;
  b.bevents <- [];
  b.bcounters <- [];
  b.bgauges <- [];
  b.bhists <- []

let event_of_json kind j =
  let args =
    match Tjson.member "args" j with
    | Some a -> a
    | None -> Tjson.Obj []
  in
  {
    kind;
    name = str_field "name" j;
    ts = num_field "ts" j;
    trace_id = str_field "trace_id" args;
    span_id = str_field "span_id" args;
    parent_id = str_field "parent_id" args;
  }

let histogram_of_json j =
  {
    h_name = str_field "name" j;
    h_count = int_of_float (num_field "count" j);
    h_sum = num_field "sum" j;
    h_buckets =
      List.map
        (fun b -> (bound_of_le (str_field "le" b), int_of_float (num_field "n" b)))
        (list_field "buckets" j);
    h_exemplars =
      List.map
        (fun e ->
          ( bound_of_le (str_field "le" e),
            str_field "trace_id" e,
            num_field "value" e ))
        (list_field "exemplars" j);
  }

(* A flight dump has no segment markers; its events carry a "shard"
   field instead, and the dump is written shard by shard — a change of
   shard is a segment boundary. *)
let note_shard b j =
  match Option.bind (Tjson.member "shard" j) Tjson.to_float with
  | None -> ()
  | Some s ->
      let s = int_of_float s in
      (match b.bshard with
      | Some prev when prev = s -> ()
      | Some _ | None ->
          flush_segment b;
          b.bname <- Printf.sprintf "shard%d" s);
      b.bshard <- Some s

let add_line b line =
  let line = String.trim line in
  if String.equal line "" then ()
  else
    match Tjson.parse line with
    | Error _ -> b.bdropped <- b.bdropped + 1
    | Ok j -> (
        match str_field "type" j with
        | "segment" ->
            flush_segment b;
            b.bname <- str_field "name" j;
            b.bshard <- None
        | "begin" ->
            note_shard b j;
            b.bevents <- event_of_json Begin j :: b.bevents
        | "end" ->
            note_shard b j;
            b.bevents <- event_of_json End j :: b.bevents
        | "instant" ->
            note_shard b j;
            b.bevents <- event_of_json Instant j :: b.bevents
        | "counter" ->
            b.bcounters <- (str_field "name" j, num_field "value" j) :: b.bcounters
        | "gauge" ->
            b.bgauges <- (str_field "name" j, num_field "value" j) :: b.bgauges
        | "histogram" -> b.bhists <- histogram_of_json j :: b.bhists
        | _ -> b.bdropped <- b.bdropped + 1)

let of_jsonl text =
  let b = new_builder () in
  List.iter (add_line b) (String.split_on_char '\n' text);
  flush_segment b;
  { segments = List.rev b.bsegs; dropped = b.bdropped }

(* Chrome trace_event JSON: one object with a traceEvents list; B/E/i
   phases map onto begin/end/instant, trailing C events onto gauges. *)
let of_chrome text =
  match Tjson.parse text with
  | Error e -> Error e
  | Ok j ->
      let b = new_builder () in
      List.iter
        (fun ev ->
          match str_field "ph" ev with
          | "B" -> b.bevents <- event_of_json Begin ev :: b.bevents
          | "E" -> b.bevents <- event_of_json End ev :: b.bevents
          | "i" -> b.bevents <- event_of_json Instant ev :: b.bevents
          | "C" ->
              let v =
                match Tjson.member "args" ev with
                | Some a -> num_field "value" a
                | None -> 0.0
              in
              b.bgauges <- (str_field "name" ev, v) :: b.bgauges
          | _ -> b.bdropped <- b.bdropped + 1)
        (list_field "traceEvents" j);
      flush_segment b;
      Ok { segments = List.rev b.bsegs; dropped = b.bdropped }

let of_string text =
  (* A Chrome trace is a single JSON object; JSONL never starts with a
     line whose object carries "traceEvents". *)
  let looks_chrome =
    match Tjson.parse (String.trim text) with
    | Ok j -> Option.is_some (Tjson.member "traceEvents" j)
    | Error _ -> false
  in
  if looks_chrome then of_chrome text else Ok (of_jsonl text)

(* ------------------------------------------------------------------ *)
(* Phases                                                              *)

type phase = Queue | Journal | Search | Handle | Backoff | Other

let phase_to_string = function
  | Queue -> "queue"
  | Journal -> "journal"
  | Search -> "search"
  | Handle -> "handle"
  | Backoff -> "backoff"
  | Other -> "unattributed"

let phase_index = function
  | Queue -> 0
  | Journal -> 1
  | Search -> 2
  | Handle -> 3
  | Backoff -> 4
  | Other -> 5

let phases = [ Queue; Journal; Search; Handle; Backoff; Other ]
let named p = match p with Queue | Journal | Search | Handle | Backoff -> true | Other -> false

let starts p s = String.starts_with ~prefix:p s

let phase_of_name name =
  if starts "server.journal." name || starts "service.journal." name then
    Journal
  else if starts "admission." name || starts "service.admission" name then Queue
  else if
    String.equal name "server.search"
    || starts "simplex" name || starts "controller" name || starts "tuner" name
    || starts "measure" name || starts "session." name || starts "history." name
    || starts "sensitivity" name || starts "subspace" name
  then Search
  else if String.equal name "server.handle" then Handle
  else Other

(* ------------------------------------------------------------------ *)
(* Handle-span reconstruction and phase attribution                    *)

type child = {
  c_name : string;
  c_start : float;
  c_finish : float;
  c_depth : int;  (* 1 = direct child of the handle span *)
  c_closed : bool;  (* false: clipped at the handle end (suspended) *)
}

type handle_rec = {
  r_trace : string;
  r_seg : string;
  r_start : float;
  r_finish : float;
  r_phases : float array;  (* indexed by phase_index *)
  r_children : child list;  (* start order *)
}

let duration r = r.r_finish -. r.r_start

type walk_state = {
  w_trace : string;
  w_start : float;
  mutable w_last : float;
  mutable w_stack : (string * float) list;  (* innermost first *)
  w_phases : float array;
  mutable w_children : child list;  (* reversed *)
}

let attribute_interval st until =
  let p =
    match st.w_stack with
    | [] -> Handle
    | (name, _) :: _ -> phase_of_name name
  in
  let i = phase_index p in
  st.w_phases.(i) <- st.w_phases.(i) +. (until -. st.w_last);
  st.w_last <- until

(* Pop the stack down to (and including) [name], recording a child for
   every popped entry: entries above the match never saw their end
   (they suspended — the search kernel's effect-based spans can close
   in a later message), so they are clipped here.  An end with no
   matching begin in this handle is itself a suspended span resuming;
   intervals before it were already attributed to whatever was on the
   stack, so it is simply ignored. *)
let pop_span st name ts =
  let rec split acc stack =
    match stack with
    | [] -> None
    | (n, start) :: rest ->
        if String.equal n name then Some (List.rev acc, (n, start), rest)
        else split ((n, start) :: acc) rest
  in
  match split [] st.w_stack with
  | None -> ()
  | Some (above, (n, start), rest) ->
      let depth_of i = List.length rest + 1 + i in
      List.iteri
        (fun i (an, astart) ->
          st.w_children <-
            {
              c_name = an;
              c_start = astart;
              c_finish = ts;
              c_depth = depth_of (List.length above - i);
              c_closed = false;
            }
            :: st.w_children)
        above;
      st.w_children <-
        {
          c_name = n;
          c_start = start;
          c_finish = ts;
          c_depth = List.length rest + 1;
          c_closed = true;
        }
        :: st.w_children;
      st.w_stack <- rest

let finish_record seg st ts =
  attribute_interval st ts;
  List.iteri
    (fun i (n, start) ->
      st.w_children <-
        {
          c_name = n;
          c_start = start;
          c_finish = ts;
          c_depth = List.length st.w_stack - i;
          c_closed = false;
        }
        :: st.w_children)
    st.w_stack;
  {
    r_trace = st.w_trace;
    r_seg = seg.seg_name;
    r_start = st.w_start;
    r_finish = ts;
    r_phases = st.w_phases;
    r_children = List.rev st.w_children;
  }

let handles_of_segment seg =
  let recs = ref [] in
  let current = ref None in
  List.iter
    (fun ev ->
      match !current with
      | None -> (
          match ev.kind with
          | Begin when String.equal ev.name "server.handle" ->
              current :=
                Some
                  {
                    w_trace = ev.trace_id;
                    w_start = ev.ts;
                    w_last = ev.ts;
                    w_stack = [];
                    w_phases = Array.make 6 0.0;
                    w_children = [];
                  }
          | Begin | End | Instant -> ())
      | Some st -> (
          attribute_interval st ev.ts;
          match ev.kind with
          | Begin -> st.w_stack <- (ev.name, ev.ts) :: st.w_stack
          | End ->
              if String.equal ev.name "server.handle" then begin
                recs := finish_record seg st ev.ts :: !recs;
                current := None
              end
              else pop_span st ev.name ev.ts
          | Instant -> ()))
    seg.events;
  List.rev !recs

let handles t = List.concat_map handles_of_segment t.segments

(* ------------------------------------------------------------------ *)
(* Aggregated attribution                                              *)

type attribution = {
  a_spans : int;
  a_total : float;
  a_phases : float array;  (* all handle spans, by phase_index *)
  a_p99 : float;  (* p99 handle duration (exact, over span durations) *)
  a_p99_spans : int;
  a_p99_total : float;
  a_p99_phases : float array;
  a_p99_attributed : float;  (* named fraction of the p99 spans' time *)
}

let percentile_exact durations q =
  let n = Array.length durations in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy durations in
    Array.sort Float.compare sorted;
    let idx =
      min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1))
    in
    sorted.(idx)
  end

let attribution t =
  let recs = handles t in
  match recs with
  | [] -> None
  | _ :: _ ->
      let durations = Array.of_list (List.map duration recs) in
      let p99 = percentile_exact durations 0.99 in
      let all = Array.make 6 0.0 in
      let tail = Array.make 6 0.0 in
      let tail_spans = ref 0 in
      List.iter
        (fun r ->
          Array.iteri (fun i v -> all.(i) <- all.(i) +. v) r.r_phases;
          if duration r >= p99 then begin
            incr tail_spans;
            Array.iteri (fun i v -> tail.(i) <- tail.(i) +. v) r.r_phases
          end)
        recs;
      let sum a = Array.fold_left ( +. ) 0.0 a in
      let p99_total = sum tail in
      let p99_named = p99_total -. tail.(phase_index Other) in
      Some
        {
          a_spans = List.length recs;
          a_total = sum all;
          a_phases = all;
          a_p99 = p99;
          a_p99_spans = !tail_spans;
          a_p99_total = p99_total;
          a_p99_phases = tail;
          a_p99_attributed =
            (if p99_total <= 0.0 then 1.0 else p99_named /. p99_total);
        }

(* ------------------------------------------------------------------ *)
(* Metric lookups                                                      *)

(* Search segments from the end: the loadgen writes the merged
   (fleet-wide) registry as the last segment. *)
let find_histogram t name =
  List.fold_left
    (fun acc seg ->
      match List.find_opt (fun h -> String.equal h.h_name name) seg.histograms with
      | Some h -> Some h
      | None -> acc)
    None t.segments

let hist_quantile h q =
  if h.h_count = 0 then None
  else begin
    let target =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec walk cum buckets =
      match buckets with
      | [] -> None
      | (bound, n) :: rest ->
          let cum = cum + n in
          if cum >= target then Some bound else walk cum rest
    in
    walk 0 h.h_buckets
  end

(* The exemplar of the bucket the p99 observation falls in. *)
let p99_exemplar h =
  match hist_quantile h 0.99 with
  | None -> None
  | Some bound ->
      List.find_opt
        (fun (b, _, _) -> Float.equal b bound || (b >= bound && b < infinity))
        h.h_exemplars
      |> fun found ->
      (match found with
      | Some _ -> found
      | None ->
          List.find_opt (fun (b, _, _) -> Float.equal b bound) h.h_exemplars)
      |> Option.map (fun (_, trace_id, v) -> (trace_id, v))

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)

let fg v = Printf.sprintf "%g" v

let pct part total =
  if total <= 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. part /. total)

let render_attribution ?(markdown = false) t a =
  let buf = Buffer.create 1024 in
  let backoff = find_histogram t "measure.backoff_wait" in
  let queue = find_histogram t "service.admission.queue_delay" in
  if markdown then begin
    Buffer.add_string buf
      "| phase | total (ticks) | share | p99-span total | p99 share |\n";
    Buffer.add_string buf "|---|---|---|---|---|\n";
    List.iter
      (fun p ->
        let i = phase_index p in
        Buffer.add_string buf
          (Printf.sprintf "| %s | %s | %s | %s | %s |\n" (phase_to_string p)
             (fg a.a_phases.(i))
             (pct a.a_phases.(i) a.a_total)
             (fg a.a_p99_phases.(i))
             (pct a.a_p99_phases.(i) a.a_p99_total)))
      phases;
    Buffer.add_string buf
      (Printf.sprintf
         "\n%d handle spans, %s ticks total; p99 duration %s ticks over %d \
          spans; %.1f%% of p99 latency attributed to named phases.\n"
         a.a_spans (fg a.a_total) (fg a.a_p99) a.a_p99_spans
         (100.0 *. a.a_p99_attributed))
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "handle spans: %d   total: %s ticks   p99: %s ticks (%d spans)\n"
         a.a_spans (fg a.a_total) (fg a.a_p99) a.a_p99_spans);
    Buffer.add_string buf "phase         total    share   p99-total  p99-share\n";
    List.iter
      (fun p ->
        let i = phase_index p in
        Buffer.add_string buf
          (Printf.sprintf "%-12s %8s %8s %10s %10s\n" (phase_to_string p)
             (fg a.a_phases.(i))
             (pct a.a_phases.(i) a.a_total)
             (fg a.a_p99_phases.(i))
             (pct a.a_p99_phases.(i) a.a_p99_total)))
      phases;
    Buffer.add_string buf
      (Printf.sprintf "p99 attribution: %.1f%% named\n"
         (100.0 *. a.a_p99_attributed))
  end;
  (* Phases the spans cannot see, from the registries: time spent
     before admission and backoff waited out by the measurement
     pipeline. *)
  (match queue with
  | None -> ()
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf "queue wait (histogram): n=%d sum=%s p99=%s\n" h.h_count
           (fg h.h_sum)
           (match hist_quantile h 0.99 with None -> "-" | Some b -> fg b)));
  (match backoff with
  | None -> ()
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf "measure backoff (histogram): n=%d sum=%s ms\n" h.h_count
           (fg h.h_sum)));
  Buffer.contents buf

let render_path t trace_id =
  let matching = List.filter (fun r -> String.equal r.r_trace trace_id) (handles t) in
  match matching with
  | [] -> Error (Printf.sprintf "trace id %s: no server.handle span found" trace_id)
  | _ :: _ ->
      let buf = Buffer.create 512 in
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "trace %s (segment %s): server.handle %s..%s [%s ticks]\n"
               r.r_trace r.r_seg (fg r.r_start) (fg r.r_finish) (fg (duration r)));
          List.iter
            (fun c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s..%s [%s]%s\n"
                   (String.make (2 * c.c_depth) ' ')
                   c.c_name (fg c.c_start) (fg c.c_finish)
                   (fg (c.c_finish -. c.c_start))
                   (if c.c_closed then "" else " (suspended)")))
            r.r_children;
          (* Critical path: at each depth keep the longest child nested
             inside the incumbent. *)
          let rec chain depth lo hi acc =
            let best =
              List.fold_left
                (fun best c ->
                  if c.c_depth = depth && c.c_start >= lo && c.c_finish <= hi
                  then
                    match best with
                    | Some b
                      when b.c_finish -. b.c_start >= c.c_finish -. c.c_start
                      ->
                        best
                    | Some _ | None -> Some c
                  else best)
                None r.r_children
            in
            match best with
            | None -> List.rev acc
            | Some c -> chain (depth + 1) c.c_start c.c_finish (c :: acc)
          in
          let path = chain 1 r.r_start r.r_finish [] in
          Buffer.add_string buf "critical path: server.handle";
          List.iter
            (fun c ->
              Buffer.add_string buf
                (Printf.sprintf " -> %s [%s]" c.c_name
                   (fg (c.c_finish -. c.c_start))))
            path;
          Buffer.add_string buf
            (Printf.sprintf "\nphases:%s\n"
               (String.concat ""
                  (List.filter_map
                     (fun p ->
                       let v = r.r_phases.(phase_index p) in
                       if v > 0.0 then
                         Some (Printf.sprintf " %s=%s" (phase_to_string p) (fg v))
                       else None)
                     phases))))
        matching;
      Ok (Buffer.contents buf)

(* Per-name self time over every span (not only handles): intervals go
   to the innermost open span; gaps outside any span are dropped. *)
let render_self t =
  let totals : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl zero name f =
    let r =
      match Hashtbl.find_opt tbl name with
      | Some r -> r
      | None ->
          let r = ref zero in
          Hashtbl.replace tbl name r;
          r
    in
    f r
  in
  List.iter
    (fun seg ->
      let stack = ref [] in
      let last = ref 0.0 in
      List.iter
        (fun ev ->
          (match !stack with
          | [] -> ()
          | name :: _ ->
              bump totals 0.0 name (fun r -> r := !r +. (ev.ts -. !last)));
          last := ev.ts;
          match ev.kind with
          | Begin ->
              bump counts 0 ev.name (fun r -> incr r);
              stack := ev.name :: !stack
          | End ->
              let rec drop st =
                match st with
                | [] -> []
                | n :: rest -> if String.equal n ev.name then rest else drop rest
              in
              if List.exists (String.equal ev.name) !stack then
                stack := drop !stack
          | Instant -> ())
        seg.events)
    t.segments;
  let rows =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) totals []
    |> List.sort (fun (n1, v1) (n2, v2) ->
           match Float.compare v2 v1 with 0 -> String.compare n1 n2 | c -> c)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "span                           count   self-ticks\n";
  List.iter
    (fun (name, v) ->
      let n =
        match Hashtbl.find_opt counts name with Some r -> !r | None -> 0
      in
      Buffer.add_string buf (Printf.sprintf "%-30s %5d %12s\n" name n (fg v)))
    rows;
  Buffer.contents buf

let render_top t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun seg ->
      match (seg.counters, seg.gauges, seg.histograms) with
      | [], [], [] -> ()
      | _ :: _, _, _ | _, _ :: _, _ | _, _, _ :: _ ->
          Buffer.add_string buf (Printf.sprintf "[%s]\n" seg.seg_name);
          List.iter
            (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" n (fg v)))
            seg.counters;
          List.iter
            (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %s\n" n (fg v)))
            seg.gauges;
          List.iter
            (fun h ->
              Buffer.add_string buf
                (Printf.sprintf "  %-40s n=%d sum=%s p50=%s p99=%s\n" h.h_name
                   h.h_count (fg h.h_sum)
                   (match hist_quantile h 0.5 with None -> "-" | Some b -> fg b)
                   (match hist_quantile h 0.99 with None -> "-" | Some b -> fg b)))
            seg.histograms)
    t.segments;
  Buffer.contents buf

let render_diff ta a tb b =
  ignore ta;
  ignore tb;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "spans: %d -> %d   total: %s -> %s   p99: %s -> %s\n"
       a.a_spans b.a_spans (fg a.a_total) (fg b.a_total) (fg a.a_p99)
       (fg b.a_p99));
  Buffer.add_string buf "phase              A        B    delta\n";
  List.iter
    (fun p ->
      let i = phase_index p in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %8s %8s %8s\n" (phase_to_string p)
           (fg a.a_phases.(i))
           (fg b.a_phases.(i))
           (fg (b.a_phases.(i) -. a.a_phases.(i)))))
    phases;
  Buffer.contents buf

(* Resolve the handle-latency histogram's p99 bucket exemplar to a
   handle span and print its critical path end to end — the
   wire-to-wire check that exemplars, trace ids, and span
   reconstruction agree with each other. *)
let check_exemplar t =
  match find_histogram t "server.handle_ms" with
  | None -> Error "no server.handle_ms histogram in the trace"
  | Some h -> (
      match p99_exemplar h with
      | None -> Error "server.handle_ms: p99 bucket carries no exemplar"
      | Some (trace_id, v) -> (
          match render_path t trace_id with
          | Error e -> Error (Printf.sprintf "exemplar %s (value %s): %s" trace_id (fg v) e)
          | Ok text ->
              Ok
                (Printf.sprintf "p99 exemplar %s (observed %s ticks):\n%s"
                   trace_id (fg v) text)))
