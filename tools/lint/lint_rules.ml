(* The rule registry.  Each rule is an AST walk (compiler-libs
   [Ast_iterator]) over one parsed implementation, scoped to the part
   of the tree where its invariant applies, returning located
   diagnostics.

   The rules encode this repo's two headline guarantees — determinism
   (byte-identical tuner output at [--jobs 1] vs [--jobs N]) and
   NaN-tolerant measurement (fault injection emits NaN sentinels that
   must flow through the search loop without corrupting it) — plus the
   totality discipline the PR-2 fuzzer imposed on the message paths. *)

open Parsetree

type rule = {
  id : string;
  severity : Lint_diag.severity;
  summary : string;
  doc : string;
  applies : string -> bool;
  check : path:string -> structure -> Lint_diag.t list;
}

(* ------------------------------------------------------------------ *)
(* Path scoping helpers.  Paths are matched by segment so the same
   rule set works for [lib/core/x.ml], [./lib/core/x.ml] and the
   [../lib/core/x.ml] shapes the test sandbox produces. *)

let segments path = List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)

let rec has_subpath ~sub segs =
  let rec prefix sub segs =
    match (sub, segs) with
    | [], _ -> true
    | _, [] -> false
    | x :: sub', y :: segs' -> x = y && prefix sub' segs'
  in
  match segs with
  | [] -> sub = []
  | _ :: rest -> prefix sub segs || has_subpath ~sub rest

let under dir path = has_subpath ~sub:(segments dir) (segments path)
let basename path = Filename.basename path

(* ------------------------------------------------------------------ *)
(* Longident helpers *)

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_longident l @ [ s ]
  | Longident.Lapply _ -> []

(* Treat [Stdlib.compare] and [compare] alike. *)
let ident_path lid =
  match flatten_longident lid with
  | "Stdlib" :: rest -> rest
  | p -> p

(* ------------------------------------------------------------------ *)
(* Generic expression walk: run [f] on every expression of the
   structure, collecting diagnostics. *)

let walk_expressions structure f =
  let acc = ref [] in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match f e with [] -> () | ds -> acc := ds @ !acc);
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator structure;
  List.rev !acc

let diag rule loc fmt =
  Format.kasprintf
    (fun message -> Lint_diag.make ~rule:rule.id ~severity:rule.severity ~loc message)
    fmt

(* ------------------------------------------------------------------ *)
(* D1 — ambient nondeterminism                                         *)

let d1_banned path_ =
  match path_ with
  | [ "Random"; "State"; "make_self_init" ] ->
      Some "seed explicitly via Harmony_numerics.Rng"
  | [ "Random"; _ ] ->
      (* The whole ambient-state surface of [Random]: int, float, bool,
         bits, init, self_init, get_state, ...  [Random.State.*] is
         the sanctioned, explicitly-seeded API. *)
      Some "use Harmony_numerics.Rng (explicit seeded state)"
  | [ "Sys"; "time" ]
  | [ "Unix"; "gettimeofday" ]
  | [ "Unix"; "time" ]
  | [ "Unix"; "localtime" ]
  | [ "Unix"; "gmtime" ] ->
      Some "use the simulated clock (Harmony_des.Sim / Measure's clock)"
  | _ -> None

let rec d1 =
  {
    id = "D1";
    severity = Lint_diag.Error;
    summary = "no ambient nondeterminism (Random.*, Sys.time, Unix.gettimeofday) in lib/";
    doc =
      "Tuner output must be byte-identical at --jobs 1 vs --jobs N. Ambient \
       randomness and wall clocks break that replayability; draw from \
       Harmony_numerics.Rng and the simulated clock instead.";
    applies = (fun path -> under "lib" path);
    check =
      (fun ~path:_ structure ->
        walk_expressions structure (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } -> (
                match d1_banned (ident_path txt) with
                | Some hint ->
                    [
                      diag d1 loc "ambient nondeterminism `%s`; %s"
                        (String.concat "." (ident_path txt))
                        hint;
                    ]
                | None -> [])
            | _ -> []));
  }

(* ------------------------------------------------------------------ *)
(* D2 — module-toplevel mutable state                                  *)

let d2_mutable_alloc path_ =
  match path_ with
  | [ "ref" ] -> Some "ref cell"
  | [ "Hashtbl"; "create" ] -> Some "hash table"
  | [ "Buffer"; "create" ] -> Some "buffer"
  | [ "Queue"; "create" ] -> Some "queue"
  | [ "Stack"; "create" ] -> Some "stack"
  | [ "Atomic"; "make" ] -> Some "atomic cell"
  | [ "Mutex"; "create" ] -> Some "mutex"
  | [ "Array"; "make" ] | [ "Array"; "create_float" ] -> Some "mutable array"
  | [ "Bytes"; "create" ] | [ "Bytes"; "make" ] -> Some "mutable bytes"
  | _ -> None

let rec peel_constraints e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraints e
  | _ -> e

let rec d2 =
  {
    id = "D2";
    severity = Lint_diag.Error;
    summary = "no module-toplevel mutable state in lib/";
    doc =
      "Pool tasks run on multiple domains; a module-level ref or table is \
       shared by all of them, and update order then depends on scheduling. \
       Thread state through values (records owned by a caller) instead.";
    applies = (fun path -> under "lib" path);
    check =
      (fun ~path:_ structure ->
        (* [Pstr_value] only occurs at module (structure) level —
           including nested modules — which is exactly the scope where
           a binding outlives any one task.  Function-local [let]s are
           expressions and never reach this case. *)
        let acc = ref [] in
        let iterator =
          {
            Ast_iterator.default_iterator with
            structure_item =
              (fun self item ->
                (match item.pstr_desc with
                | Pstr_value (_, vbs) ->
                    List.iter
                      (fun vb ->
                        let rhs = peel_constraints vb.pvb_expr in
                        match rhs.pexp_desc with
                        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                          -> (
                            match d2_mutable_alloc (ident_path txt) with
                            | Some what ->
                                acc :=
                                  diag d2 vb.pvb_loc
                                    "module-toplevel mutable state (%s via `%s`); \
                                     shared across Pool domains — pass state \
                                     explicitly instead"
                                    what
                                    (String.concat "." (ident_path txt))
                                  :: !acc
                            | None -> ())
                        | _ -> ())
                      vbs
                | _ -> ());
                Ast_iterator.default_iterator.structure_item self item);
          }
        in
        iterator.structure iterator structure;
        List.rev !acc);
  }

(* ------------------------------------------------------------------ *)
(* N1 — polymorphic comparison at float (or unknown) type              *)

(* Syntactic "this is certainly a float" evidence: literals, float
   operators, the Float module, and well-known float constants.  The
   check is conservative — it only fires when one operand is
   manifestly a float — so it never flags int or string comparisons. *)
let rec is_syntactically_float e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', ty) -> (
      (match ty.ptyp_desc with
      | Ptyp_constr ({ txt; _ }, []) -> ident_path txt = [ "float" ]
      | _ -> false)
      || is_syntactically_float e')
  | Pexp_ident { txt; _ } -> (
      match ident_path txt with
      | [ "nan" ] | [ "infinity" ] | [ "neg_infinity" ] | [ "epsilon_float" ]
      | [ "max_float" ] | [ "min_float" ] ->
          true
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match ident_path txt with
      | [ ("+." | "-." | "*." | "/." | "**" | "~-." | "~+.") ] -> true
      | [ ("float_of_int" | "float_of_string" | "abs_float" | "sqrt" | "exp"
          | "log" | "log10" | "log1p" | "expm1" | "cos" | "sin" | "tan" | "acos"
          | "asin" | "atan" | "atan2" | "cosh" | "sinh" | "tanh" | "ceil"
          | "floor" | "mod_float" | "copysign" | "ldexp" | "frexp") ] ->
          true
      | "Float" :: _ -> true
      | _ -> false)
  | Pexp_ifthenelse (_, t, Some f) ->
      is_syntactically_float t || is_syntactically_float f
  | _ -> false

let rec n1 =
  {
    id = "N1";
    severity = Lint_diag.Error;
    summary = "no polymorphic compare, and no `=`/`min`/`max` on floats";
    doc =
      "Fault injection emits NaN sentinels. Polymorphic compare/min/max and \
       IEEE `=` silently mis-handle NaN (nan = nan is false; min nan x is \
       order-dependent), corrupting the simplex ordering. Use Float.compare, \
       Float.equal, Float.min/max, or a typed comparator. Ordering operators \
       (<, <=) on floats compile to IEEE comparisons and are left to code \
       review plus the Measure layer's explicit NaN handling.";
    applies =
      (fun path -> under "lib" path || under "bin" path || under "bench" path);
    check =
      (fun ~path:_ structure ->
        walk_expressions structure (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } when ident_path txt = [ "compare" ] ->
                [
                  diag n1 loc
                    "polymorphic `compare`; use Float.compare / Int.compare / \
                     String.compare or an explicit comparator";
                ]
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
                match ident_path txt with
                | [ (("=" | "<>" | "==" | "!=" | "min" | "max") as op) ]
                  when List.exists
                         (fun (_, a) -> is_syntactically_float a)
                         args ->
                    let hint =
                      match op with
                      | "=" | "==" -> "Float.equal (NaN-total)"
                      | "<>" | "!=" -> "not (Float.equal ...)"
                      | "min" -> "Float.min"
                      | _ -> "Float.max"
                    in
                    [
                      diag n1 loc
                        "polymorphic `%s` on a float operand; use %s" op hint;
                    ]
                | _ -> [])
            | _ -> []));
  }

(* ------------------------------------------------------------------ *)
(* T1 — raising stdlib partial functions                               *)

let t1_banned path_ =
  match path_ with
  | [ "List"; (("hd" | "tl" | "nth" | "find" | "assoc" | "assq") as f) ] ->
      Some ("List." ^ f, "List." ^ f ^ "_opt")
  | [ "Option"; "get" ] -> Some ("Option.get", "pattern-match on the option")
  | [ "Hashtbl"; "find" ] -> Some ("Hashtbl.find", "Hashtbl.find_opt")
  | [ "Queue"; (("pop" | "take" | "peek" | "top") as f) ] ->
      Some ("Queue." ^ f, "Queue." ^ f ^ "_opt")
  | [ "Stack"; (("pop" | "top") as f) ] ->
      Some ("Stack." ^ f, "Stack." ^ f ^ "_opt")
  | _ -> None

let rec t1 =
  {
    id = "T1";
    severity = Lint_diag.Error;
    summary = "no raising stdlib partials (List.hd, Option.get, Hashtbl.find, ...) in lib/";
    doc =
      "An online tuner must degrade, not die: a Not_found escaping mid-search \
       loses the whole session. Use the _opt variants and handle None \
       explicitly (worst-case penalty, rejection, or invalid_arg at the API \
       boundary).";
    applies = (fun path -> under "lib" path);
    check =
      (fun ~path:_ structure ->
        walk_expressions structure (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } -> (
                match t1_banned (ident_path txt) with
                | Some (name, instead) ->
                    [
                      diag t1 loc "raising partial `%s`; use %s" name instead;
                    ]
                | None -> [])
            | _ -> []));
  }

(* ------------------------------------------------------------------ *)
(* T2 — totality of the message-handling paths                         *)

let rec t2 =
  {
    id = "T2";
    severity = Lint_diag.Error;
    summary =
      "no assert false / failwith / exit in Server, Session and Service \
       message paths";
    doc =
      "PR 2's fuzzer crashed the server with degenerate specs; `handle` is \
       now total and must stay that way — and the sharded service's \
       handle/handle_batch inherit the same contract. Reply with Rejected \
       (or thread a result) instead of asserting or raising; exhaustiveness \
       itself is enforced by warning 8 as an error.";
    applies =
      (fun path ->
        under "lib/service" path
        || (under "lib" path
           && (basename path = "server.ml" || basename path = "session.ml")));
    check =
      (fun ~path:_ structure ->
        walk_expressions structure (fun e ->
            match e.pexp_desc with
            | Pexp_assert
                { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); pexp_loc; _ }
              ->
                [
                  diag t2 pexp_loc
                    "`assert false` in a message-handling path; return \
                     Rejected / an explicit error instead";
                ]
            | Pexp_ident { txt; loc } -> (
                match ident_path txt with
                | [ "failwith" ] | [ "exit" ] ->
                    [
                      diag t2 loc
                        "`%s` in a message-handling path; make the handler \
                         total (Rejected or a result type)"
                        (String.concat "." (ident_path txt));
                    ]
                | [ "Obj"; "magic" ] ->
                    [ diag t2 loc "`Obj.magic` defeats every static guarantee" ]
                | _ -> [])
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = raise_id; _ }; _ },
                  [ (_, { pexp_desc = Pexp_construct ({ txt = exn; loc }, None); _ }) ] )
              when ident_path raise_id = [ "raise" ]
                   && ident_path exn = [ "Not_found" ] ->
                [
                  diag t2 loc
                    "`raise Not_found` in a message-handling path; use an \
                     option and reply Rejected";
                ]
            | _ -> []));
  }

(* ------------------------------------------------------------------ *)
(* P1 — printing side effects in hot evaluation paths                  *)

let p1_banned path_ =
  match path_ with
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ]
  | [ "Format"; ("std_formatter" | "err_formatter") ]
  | [ ("print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes") ]
  | [ ("prerr_string" | "prerr_endline" | "prerr_newline" | "prerr_char"
      | "prerr_int" | "prerr_float" | "prerr_bytes") ] ->
      true
  | _ -> false

let rec p1 =
  {
    id = "P1";
    severity = Lint_diag.Error;
    summary = "no Printf/Format printing in hot evaluation paths";
    doc =
      "The evaluation inner loop (objective, measurement, simplex, \
       controller, tuner, pool, the DES engine, and the web-service \
       models it drives) runs thousands of times per session and \
       concurrently across domains; stdout/stderr writes there serialize \
       domains and interleave nondeterministically. Use the logs facade at \
       the edges; pp functions over an explicit formatter stay fine. The \
       instrumented paths (telemetry, persistence, server, session, \
       sensitivity, analyzer) are held to the same bar: the telemetry \
       registry and the persist sinks are the only sanctioned output \
       paths there — a handle records, an exporter renders, and whoever \
       owns stdout prints.";
    applies =
      (fun path ->
        under "lib/objective" path || under "lib/parallel" path
        || under "lib/telemetry" path || under "lib/persist" path
        || under "lib/des" path || under "lib/webservice" path
        || under "lib/service" path
        || (under "lib/core" path
           && List.mem (basename path)
                [
                  "simplex.ml"; "controller.ml"; "tuner.ml"; "server.ml";
                  "session.ml"; "sensitivity.ml"; "analyzer.ml";
                ])
        (* The trace analyzer's core is a library over whole trace
           files: it returns renderings and the CLI prints them.  The
           CLI itself (harmony_trace.ml) owns stdout and is exempt. *)
        || (under "tools/trace" path
           && String.equal (basename path) "trace_core.ml"));
    check =
      (fun ~path:_ structure ->
        walk_expressions structure (fun e ->
            match e.pexp_desc with
            | Pexp_ident { txt; loc } when p1_banned (ident_path txt) ->
                [
                  diag p1 loc
                    "printing side effect `%s` in a hot evaluation path; use \
                     logs (or return data and print at the edge)"
                    (String.concat "." (ident_path txt));
                ]
            | _ -> []));
  }

(* ------------------------------------------------------------------ *)

let all = [ d1; d2; n1; t1; t2; p1 ]

let find id = List.find_opt (fun r -> r.id = id) all
