(* Suppression machinery: inline [(* lint: allow RULE ... *)] comments
   and a repo-level allowlist file.

   An inline comment waives findings of the named rule(s) on the line
   it appears on and on the line directly below it, so both styles
   work:

     let x = List.hd items (* lint: allow T1 *)

     (* lint: allow T1 — justified because ... *)
     let x = List.hd items

   The allowlist file holds one waiver per line, [<path> <rule>],
   matched against the linted path by suffix so it is robust to
   [./lib/...] vs [lib/...] vs [../lib/...] invocations.  [#] starts a
   comment. *)

let is_rule_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')

(* Parse every rule id out of [lint: allow R1 R2 ...] markers on one
   line.  Ids run until the first non-alphanumeric character; the tail
   of the comment is free-form justification. *)
let rules_allowed_on_line line =
  let marker = "lint: allow" in
  let n = String.length line and m = String.length marker in
  let out = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub line !i m = marker then begin
      let j = ref (!i + m) in
      let stop = ref false in
      while not !stop do
        while !j < n && line.[!j] = ' ' do
          incr j
        done;
        let start = !j in
        while !j < n && is_rule_char line.[!j] do
          incr j
        done;
        if !j > start then out := String.sub line start (!j - start) :: !out
        else stop := true
      done;
      i := !j
    end
    else incr i
  done;
  !out

type t = {
  (* line number (1-based) -> rule ids waived on that line *)
  by_line : (int, string list) Hashtbl.t;
}

let of_source src =
  let by_line = Hashtbl.create 8 in
  List.iteri
    (fun idx line ->
      match rules_allowed_on_line line with
      | [] -> ()
      | rules -> Hashtbl.replace by_line (idx + 1) rules)
    (String.split_on_char '\n' src);
  { by_line }

let suppresses t ~rule ~line =
  let on l =
    match Hashtbl.find_opt t.by_line l with
    | None -> false
    | Some rules -> List.mem rule rules
  in
  on line || on (line - 1)

(* ------------------------------------------------------------------ *)
(* Allowlist file                                                      *)

type allowlist = { entries : (string * string) list (* path, rule *) }

let empty_allowlist = { entries = [] }

let parse_allowlist_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [] -> Ok None
  | [ path; rule ] -> Ok (Some (path, rule))
  | _ -> Error ("malformed allowlist line (want '<path> <rule>'): " ^ line)

let allowlist_of_string src =
  let entries, errors =
    List.fold_left
      (fun (entries, errors) line ->
        match parse_allowlist_line line with
        | Ok None -> (entries, errors)
        | Ok (Some e) -> (e :: entries, errors)
        | Error msg -> (entries, msg :: errors))
      ([], [])
      (String.split_on_char '\n' src)
  in
  match errors with
  | [] -> Ok { entries = List.rev entries }
  | e :: _ -> Error e

let load_allowlist path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      allowlist_of_string (really_input_string ic n))

let path_matches ~entry ~file =
  entry = file
  || String.ends_with ~suffix:("/" ^ entry) file

let allowlist_suppresses t ~rule ~file =
  List.exists
    (fun (path, r) -> r = rule && path_matches ~entry:path ~file)
    t.entries
