(* Suppression machinery: inline [(* lint: allow RULE ... *)] comments
   and a repo-level allowlist file.  Shared by the parsetree linter
   (harmony_lint) and the typedtree analyzer (harmony_sem), so both
   tools waive findings with identical semantics.

   Unified same-line / previous-line semantics:

   - a waiver written on a line that contains code waives findings of
     the named rule(s) on that line only:

       let x = List.hd items (* lint: allow T1 *)

   - a waiver written on a line with no code (a comment-only or blank
     line) waives findings on the next line that contains code;
     consecutive comment-only lines stack onto that same code line,
     so a multi-rule justification block reads naturally:

       (* lint: allow T1 — head is guarded by the match above *)
       (* lint: allow N1 — comparator is resolved at int type *)
       let x = List.hd (List.sort compare items)

   Earlier versions waived line n *and* line n+1 unconditionally,
   which both over-suppressed (a same-line waiver silently covered an
   unrelated finding on the next line) and under-suppressed (stacked
   comment-only waivers never reached the code line below them).

   Code detection is a light scanner: it tracks (* *) nesting across
   lines and calls a line "code" when any non-space character appears
   outside a comment.  Comment openers inside string literals are not
   recognized — an acceptable corner for a suppression heuristic.

   The allowlist file holds one waiver per line, [<path> <rule>],
   matched against the linted path by suffix so it is robust to
   [./lib/...] vs [lib/...] vs [../lib/...] invocations.  [#] starts a
   comment. *)

let is_rule_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')

(* Parse every rule id out of [lint: allow R1 R2 ...] markers on one
   line.  Ids run until the first non-alphanumeric character; the tail
   of the comment is free-form justification. *)
let rules_allowed_on_line line =
  let marker = "lint: allow" in
  let n = String.length line and m = String.length marker in
  let out = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub line !i m = marker then begin
      let j = ref (!i + m) in
      let stop = ref false in
      while not !stop do
        while !j < n && line.[!j] = ' ' do
          incr j
        done;
        let start = !j in
        while !j < n && is_rule_char line.[!j] do
          incr j
        done;
        if !j > start then out := String.sub line start (!j - start) :: !out
        else stop := true
      done;
      i := !j
    end
    else incr i
  done;
  !out

(* Does [line] contain any code, entering with [depth] open comments?
   Returns (has_code, exit depth). *)
let scan_code ~depth line =
  let n = String.length line in
  let depth = ref depth in
  let has_code = ref false in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !depth = 0 && c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if !depth > 0 && c = '*' && !i + 1 < n && line.[!i + 1] = ')' then begin
      decr depth;
      i := !i + 2
    end
    else begin
      if !depth = 0 && c <> ' ' && c <> '\t' && c <> '\r' then has_code := true;
      incr i
    end
  done;
  (!has_code, !depth)

type t = {
  (* line number (1-based) -> rule ids waived on that line *)
  by_line : (int, string list) Hashtbl.t;
}

let of_source src =
  let by_line = Hashtbl.create 8 in
  let depth = ref 0 in
  let pending = ref [] in
  List.iteri
    (fun idx line ->
      let rules = rules_allowed_on_line line in
      let has_code, depth' = scan_code ~depth:!depth line in
      depth := depth';
      if has_code then begin
        (match rules @ !pending with
        | [] -> ()
        | waived -> Hashtbl.replace by_line (idx + 1) waived);
        pending := []
      end
      else pending := !pending @ rules)
    (String.split_on_char '\n' src);
  { by_line }

let suppresses t ~rule ~line =
  match Hashtbl.find_opt t.by_line line with
  | None -> false
  | Some rules -> List.mem rule rules

(* ------------------------------------------------------------------ *)
(* Allowlist file                                                      *)

type allowlist = { entries : (string * string) list (* path, rule *) }

let empty_allowlist = { entries = [] }

let parse_allowlist_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [] -> Ok None
  | [ path; rule ] -> Ok (Some (path, rule))
  | _ -> Error ("malformed allowlist line (want '<path> <rule>'): " ^ line)

let allowlist_of_string src =
  let entries, errors =
    List.fold_left
      (fun (entries, errors) line ->
        match parse_allowlist_line line with
        | Ok None -> (entries, errors)
        | Ok (Some e) -> (e :: entries, errors)
        | Error msg -> (entries, msg :: errors))
      ([], [])
      (String.split_on_char '\n' src)
  in
  match errors with
  | [] -> Ok { entries = List.rev entries }
  | e :: _ -> Error e

let load_allowlist path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      allowlist_of_string (really_input_string ic n))

let path_matches ~entry ~file =
  entry = file
  || String.ends_with ~suffix:("/" ^ entry) file

let allowlist_suppresses t ~rule ~file =
  List.exists
    (fun (path, r) -> r = rule && path_matches ~entry:path ~file)
    t.entries
