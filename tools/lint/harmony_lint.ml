(* harmony_lint — project-specific static analysis for the harmony
   tree.  See DESIGN.md §8 for the rule catalogue.

     harmony_lint [--format text|json|sarif] [--allowlist FILE]
                  [--rules D1,N1,...] [--strict] [--list-rules] PATH...

   Exit status 0 when every finding is waived (inline allow-comment or
   allowlist), 1 when any error-severity finding remains, 2 on usage
   errors. *)

let usage = "harmony_lint [options] PATH...  (default paths: lib bin bench)"

let () =
  let format = ref "text" in
  let allowlist_file = ref "" in
  let rules_filter = ref "" in
  let strict = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--format", Arg.Set_string format, "FMT  output format: text (default), json or sarif");
      ("--allowlist", Arg.Set_string allowlist_file, "FILE  repo allowlist ('<path> <rule>' per line)");
      ("--rules", Arg.Set_string rules_filter, "IDS  comma-separated rule ids to run (default: all)");
      ("--strict", Arg.Set strict, "  treat warnings as failures");
      ("--list-rules", Arg.Set list_rules, "  print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%-4s %-7s %s\n     %s\n" r.Lint_rules.id
          (Lint_diag.severity_to_string r.Lint_rules.severity)
          r.Lint_rules.summary r.Lint_rules.doc)
      Lint_rules.all;
    exit 0
  end;
  let rules =
    match !rules_filter with
    | "" -> Lint_rules.all
    | spec ->
        List.map
          (fun id ->
            match Lint_rules.find (String.trim id) with
            | Some r -> r
            | None ->
                Printf.eprintf "harmony_lint: unknown rule %s\n" id;
                exit 2)
          (String.split_on_char ',' spec)
  in
  let allowlist =
    match !allowlist_file with
    | "" -> Lint_allow.empty_allowlist
    | file -> (
        if not (Sys.file_exists file) then begin
          Printf.eprintf "harmony_lint: allowlist %s not found\n" file;
          exit 2
        end;
        match Lint_allow.load_allowlist file with
        | Ok a -> a
        | Error msg ->
            Printf.eprintf "harmony_lint: %s\n" msg;
            exit 2)
  in
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "harmony_lint: no such path %s\n" p;
        exit 2
      end)
    paths;
  let result = Lint_driver.lint_paths ~rules ~allowlist paths in
  (match !format with
  | "json" -> Lint_driver.render_json Format.std_formatter result
  | "text" -> Lint_driver.render_text Format.std_formatter result
  | "sarif" ->
      let rule_metas =
        List.map
          (fun r ->
            {
              Lint_sarif.id = r.Lint_rules.id;
              summary = r.Lint_rules.summary;
              doc = r.Lint_rules.doc;
            })
          rules
      in
      Lint_sarif.render Format.std_formatter ~tool_name:"harmony_lint"
        ~rules:rule_metas result.Lint_driver.kept
  | other ->
      Printf.eprintf "harmony_lint: unknown format %s\n" other;
      exit 2);
  exit (if Lint_driver.failed ~strict:!strict result then 1 else 0)
