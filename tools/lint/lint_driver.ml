(* File discovery, parsing, rule dispatch, suppression, rendering.

   The engine parses each .ml with the compiler's own parser (the
   toolchain in the repo image matches the sources by construction),
   runs every applicable rule, then filters the diagnostics through
   the inline allow-comments and the repo allowlist. *)

type result = {
  kept : Lint_diag.t list;  (* findings that count *)
  suppressed : Lint_diag.t list;  (* waived inline or via allowlist *)
}

let empty = { kept = []; suppressed = [] }

let merge a b =
  { kept = a.kept @ b.kept; suppressed = a.suppressed @ b.suppressed }

let normalize_path path =
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

(* Parse [src] as an implementation.  A parse failure is itself
   reported as a finding (rule "parse") rather than aborting the whole
   run: the build will fail on it anyway, but the lint report should
   name the file. *)
let parse ~path src =
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Location.input_name := path;
  try Ok (Parse.implementation lexbuf)
  with exn ->
    let loc =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> e.Location.main.Location.loc
      | _ ->
          Location.
            { loc_start = lexbuf.lex_curr_p; loc_end = lexbuf.lex_curr_p; loc_ghost = false }
    in
    Error
      (Lint_diag.make ~rule:"parse" ~severity:Lint_diag.Error ~loc
         "syntax error (file does not parse)")

let lint_source ?(rules = Lint_rules.all)
    ?(allowlist = Lint_allow.empty_allowlist) ~path src =
  let path = normalize_path path in
  match parse ~path src with
  | Error d -> { kept = [ d ]; suppressed = [] }
  | Ok structure ->
      let allow = Lint_allow.of_source src in
      let raw =
        List.concat_map
          (fun rule ->
            if rule.Lint_rules.applies path then rule.Lint_rules.check ~path structure
            else [])
          rules
      in
      let kept, suppressed =
        List.partition
          (fun d ->
            not
              (Lint_allow.suppresses allow ~rule:d.Lint_diag.rule
                 ~line:d.Lint_diag.line
              || Lint_allow.allowlist_suppresses allowlist
                   ~rule:d.Lint_diag.rule ~file:d.Lint_diag.file))
          (List.sort Lint_diag.compare raw)
      in
      { kept; suppressed }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?rules ?allowlist path =
  lint_source ?rules ?allowlist ~path (read_file path)

(* Recursively collect .ml files under each argument (a file is taken
   as-is).  _build and dot-directories are skipped; .mli interfaces
   carry no executable code worth linting. *)
let collect_ml_files paths =
  let out = ref [] in
  let skip_dir name =
    name = "_build" || (String.length name > 0 && name.[0] = '.')
  in
  let rec visit path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if Sys.is_directory (Filename.concat path entry) then (
            if not (skip_dir entry) then visit (Filename.concat path entry))
          else if Filename.check_suffix entry ".ml" then
            out := Filename.concat path entry :: !out)
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then out := path :: !out
  in
  List.iter visit paths;
  List.sort String.compare !out

let lint_paths ?rules ?allowlist paths =
  List.fold_left
    (fun acc file -> merge acc (lint_file ?rules ?allowlist file))
    empty
    (collect_ml_files paths)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let render_text ppf result =
  List.iter (fun d -> Format.fprintf ppf "%a@." Lint_diag.pp_text d) result.kept;
  let errors, warnings =
    List.partition (fun d -> d.Lint_diag.severity = Lint_diag.Error) result.kept
  in
  Format.fprintf ppf "%d error%s, %d warning%s, %d waived@."
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s")
    (List.length result.suppressed)

let render_json ppf result =
  let fields =
    List.map Lint_diag.to_json result.kept |> String.concat ",\n  "
  in
  Format.fprintf ppf "{@.\"findings\": [@.  %s@.],@." fields;
  Format.fprintf ppf "\"errors\": %d, \"warnings\": %d, \"waived\": %d@.}@."
    (List.length
       (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Error) result.kept))
    (List.length
       (List.filter (fun d -> d.Lint_diag.severity = Lint_diag.Warning) result.kept))
    (List.length result.suppressed)

(* Exit status: errors always fail; warnings fail only under
   [--strict]. *)
let failed ?(strict = false) result =
  List.exists
    (fun d -> d.Lint_diag.severity = Lint_diag.Error || strict)
    result.kept
