(* SARIF 2.1.0 emitter shared by harmony_lint and harmony_sem, so CI
   consumes one format from both tools.  Emits the minimal useful
   subset: a single run with a tool.driver rule catalogue and one
   result per kept diagnostic.  SARIF columns are 1-based while
   Lint_diag stores the compiler's 0-based columns, hence the +1. *)

type rule_meta = { id : string; summary : string; doc : string }

let level_of_severity = function
  | Lint_diag.Error -> "error"
  | Lint_diag.Warning -> "warning"

let esc = Lint_diag.json_escape

let rule_json r =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"},"fullDescription":{"text":"%s"}}|}
    (esc r.id) (esc r.summary) (esc r.doc)

let result_json (d : Lint_diag.t) =
  Printf.sprintf
    {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (esc d.rule)
    (level_of_severity d.severity)
    (esc d.message) (esc d.file) d.line (d.col + 1)

let to_string ~tool_name ~rules diags =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|{"version":"2.1.0","$schema":"https://json.schemastore.org/sarif-2.1.0.json","runs":[{"tool":{"driver":{"name":"|};
  Buffer.add_string buf (esc tool_name);
  Buffer.add_string buf {|","rules":[|};
  Buffer.add_string buf (String.concat "," (List.map rule_json rules));
  Buffer.add_string buf {|]}},"results":[|};
  Buffer.add_string buf (String.concat ",\n" (List.map result_json diags));
  Buffer.add_string buf "]}]}\n";
  Buffer.contents buf

let render ppf ~tool_name ~rules diags =
  Format.fprintf ppf "%s" (to_string ~tool_name ~rules diags)
