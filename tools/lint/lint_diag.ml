(* Diagnostics emitted by the lint rules: a rule id, a severity, a
   source position, and a human-readable message.  Kept deliberately
   flat so both the text and JSON renderers are trivial. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching the compiler's own convention *)
  message : string;
}

let make ~rule ~severity ~loc message =
  let pos = loc.Location.loc_start in
  {
    rule;
    severity;
    file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* Deterministic report order: by file, then position, then rule.  An
   explicit comparator — the linter practices what it preaches. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp_text ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s: %s" d.file d.line d.col d.rule
    (severity_to_string d.severity)
    d.message

(* Minimal JSON string escaping: enough for file paths and the
   messages the rules produce (ASCII plus the odd quote). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","severity":"%s","message":"%s"}|}
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.message)
