(* Inter-module summary store.  Two facts cross module boundaries:

   - float aliases: [type ms = float] in one module must make
     [compare : ms -> ms -> int] a finding in every module (S3).  The
     typechecker does not expand manifests in instantiated types, so
     the aliases are collected from every unit's type declarations and
     closed under aliasing with a fixpoint.

   - may-acquire sets: which locks a function can take, directly or
     through calls, so the lock-order graph (S2) sees [Mutex.protect
     outer (fun () -> Measure.robust ...)] as an outer→robust.lock
     edge even though the inner acquisition lives in another module.

   Keys are ["Mod.name"] with dune prefixes normalized; functions in
   nested modules register under both their full dotted key
   ("Measure.Clock.now") and its two-component tail ("Clock.now"),
   which is how call sites inside the defining module spell them. *)

type fn_info = {
  mutable acquires : string list;  (* locks taken directly, any depth *)
  mutable calls : string list;  (* callee keys, resolved lazily *)
}

type t = {
  float_aliases : (string, unit) Hashtbl.t;
  fns : (string, fn_info) Hashtbl.t;
  (* post-fixpoint transitive may-acquire sets *)
  may_acquire : (string, string list) Hashtbl.t;
}

let create () =
  {
    float_aliases = Hashtbl.create 16;
    fns = Hashtbl.create 64;
    may_acquire = Hashtbl.create 64;
  }

(* ------------------------------------------------------------------ *)
(* Float aliases *)

(* Candidate lookup for a type path seen at a use site inside
   [modname]: a [Pident] spells an alias from the same module, a
   [Pdot] carries its own (dune-mangled) module component. *)
let alias_keys ~modname p =
  match Sem_util.norm_path p with
  | [ name ] -> [ modname ^ "." ^ name ]
  | l -> [ Sem_util.last2 l; Sem_util.dotted l ]

let is_float_alias t ~modname p =
  List.exists (Hashtbl.mem t.float_aliases) (alias_keys ~modname p)

let is_float t ~modname ty =
  match Sem_util.constr_path ty with
  | Some p -> Sem_util.is_float_path p || is_float_alias t ~modname p
  | None -> false

(* One unit's manifest declarations: [(alias key, manifest path)].
   Fed to [close_aliases] once every unit has been scanned. *)
let collect_aliases ~modname (str : Typedtree.structure) =
  let out = ref [] in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
          List.iter
            (fun (d : Typedtree.type_declaration) ->
              match d.typ_manifest with
              | Some core when d.typ_params = [] -> (
                  match Sem_util.constr_path core.ctyp_type with
                  | Some p ->
                      out := (modname ^ "." ^ d.typ_name.txt, p) :: !out
                  | None -> ())
              | _ -> ())
            decls
      | _ -> ())
    str.str_items;
  !out

let close_aliases t candidates =
  (* [candidates]: (key, manifest path, defining module) triples.
     Iterate to a fixpoint so [type s = Telemetry.ms] resolves through
     [type ms = float] regardless of scan order. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (key, p, modname) ->
        if not (Hashtbl.mem t.float_aliases key) then
          if Sem_util.is_float_path p || is_float_alias t ~modname p then begin
            Hashtbl.replace t.float_aliases key ();
            changed := true
          end)
      candidates
  done

(* ------------------------------------------------------------------ *)
(* May-acquire summaries *)

let fn_info t key =
  match Hashtbl.find_opt t.fns key with
  | Some i -> i
  | None ->
      let i = { acquires = []; calls = [] } in
      Hashtbl.replace t.fns key i;
      i

let record_acquire t ~fn lock =
  let i = fn_info t fn in
  if not (List.mem lock i.acquires) then i.acquires <- lock :: i.acquires

let record_call t ~fn callee =
  let i = fn_info t fn in
  if not (List.mem callee i.calls) then i.calls <- callee :: i.calls

(* Callee keys at a call site: the full normalized dotted path plus
   its two-component tail, so ["Clock.now"] finds
   ["Measure.Clock.now"] and ["Measure.robust"] finds itself. *)
let callee_keys p =
  let l = Sem_util.norm_path p in
  List.sort_uniq String.compare [ Sem_util.dotted l; Sem_util.last2 l ]

let lookup_fn t p =
  List.find_map (fun k -> Hashtbl.find_opt t.fns k |> Option.map (fun i -> (k, i)))
    (callee_keys p)

(* Transitive closure of acquires through calls.  The graph is tiny
   (one node per top-level function), so a plain iterate-to-fixpoint
   is fine. *)
let close_fns t =
  Hashtbl.iter
    (fun key (i : fn_info) ->
      Hashtbl.replace t.may_acquire key (List.sort_uniq String.compare i.acquires))
    t.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key (i : fn_info) ->
        let cur = Hashtbl.find t.may_acquire key in
        let extra =
          List.concat_map
            (fun callee ->
              match Hashtbl.find_opt t.may_acquire callee with
              | Some locks -> locks
              | None -> [])
            i.calls
        in
        let next = List.sort_uniq String.compare (extra @ cur) in
        if next <> cur then begin
          Hashtbl.replace t.may_acquire key next;
          changed := true
        end)
      t.fns
  done

let may_acquire_keys t keys =
  match List.find_map (fun k -> Hashtbl.find_opt t.may_acquire k) keys with
  | Some locks -> locks
  | None -> []

let may_acquire t p = may_acquire_keys t (callee_keys p)
