(* harmony_sem — typedtree-based semantic analysis (races, lock order,
   float ordering, handler totality).  See DESIGN.md §14.

     harmony_sem [--root DIR] [--format text|json|sarif]
                 [--rules S1,S2,...] [--allowlist FILE]
                 [--baseline FILE] [--check-baseline] [--write-baseline]
                 [--output FILE] [--list-rules] [SRC_DIR...]

   Reads the .cmt artifacts under --root (default _build/default) for
   sources living in the given directories (default: lib).  Exit
   status 0 when no unwaived finding remains (or, under
   --check-baseline, no finding beyond the committed baseline), 1 on
   findings, 2 on usage errors. *)

let usage = "harmony_sem [options] SRC_DIR...  (default: lib)"

let fail_usage fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("harmony_sem: " ^ msg);
      exit 2)
    fmt

let () =
  let root = ref "_build/default" in
  let format = ref "text" in
  let rules_filter = ref "" in
  let allowlist_file = ref "" in
  let baseline_file = ref "" in
  let check_baseline = ref false in
  let write_baseline = ref false in
  let output = ref "" in
  let list_rules = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  build root holding the cmt files (default _build/default)");
      ("--format", Arg.Set_string format, "FMT  output format: text (default), json or sarif");
      ("--rules", Arg.Set_string rules_filter, "IDS  comma-separated rule ids to run (default: all)");
      ("--allowlist", Arg.Set_string allowlist_file, "FILE  repo allowlist ('<path> <rule>' per line)");
      ("--baseline", Arg.Set_string baseline_file, "FILE  findings baseline ('<path> <rule> <count>' per line)");
      ("--check-baseline", Arg.Set check_baseline, "  fail only on findings beyond the baseline");
      ("--write-baseline", Arg.Set write_baseline, "  rewrite the baseline from current findings and exit");
      ("--output", Arg.Set_string output, "FILE  write the report to FILE instead of stdout");
      ("--list-rules", Arg.Set list_rules, "  print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Sem_rules.rule) ->
        Printf.printf "%-4s %-7s %s\n     %s\n" r.id
          (Lint_diag.severity_to_string r.severity)
          r.summary r.doc)
      Sem_rules.all;
    exit 0
  end;
  let rules =
    match !rules_filter with
    | "" -> Sem_rules.all
    | spec ->
        List.map
          (fun id ->
            match Sem_rules.find (String.trim id) with
            | Some r -> r
            | None -> fail_usage "unknown rule %s" id)
          (String.split_on_char ',' spec)
  in
  let allowlist =
    match !allowlist_file with
    | "" -> Lint_allow.empty_allowlist
    | file -> (
        if not (Sys.file_exists file) then fail_usage "allowlist %s not found" file;
        match Lint_allow.load_allowlist file with
        | Ok a -> a
        | Error msg -> fail_usage "%s" msg)
  in
  if not (Sys.file_exists !root && Sys.is_directory !root) then
    fail_usage "build root %s not found (run dune build first)" !root;
  let dirs = match List.rev !dirs with [] -> [ "lib" ] | ds -> ds in
  let units, load_diags = Sem_cmt.load_units ~root:!root ~dirs in
  if units = [] then
    fail_usage "no cmt files for %s under %s (run dune build first)"
      (String.concat " " dirs) !root;
  let result = Sem_driver.analyze ~rules ~allowlist units in
  let result =
    { result with Sem_driver.kept = load_diags @ result.Sem_driver.kept }
  in
  if !write_baseline then begin
    if !baseline_file = "" then fail_usage "--write-baseline needs --baseline FILE";
    let oc = open_out !baseline_file in
    output_string oc (Sem_baseline.render (Sem_baseline.of_diags result.kept));
    close_out oc;
    Printf.printf "harmony_sem: wrote %s (%d findings)\n" !baseline_file
      (List.length result.kept);
    exit 0
  end;
  let baseline =
    match (!check_baseline, !baseline_file) with
    | false, _ -> None
    | true, "" -> fail_usage "--check-baseline needs --baseline FILE"
    | true, file -> (
        if not (Sys.file_exists file) then fail_usage "baseline %s not found" file;
        match Sem_baseline.load file with
        | Ok b -> Some b
        | Error msg -> fail_usage "%s" msg)
  in
  let render ppf =
    match !format with
    | "text" -> Lint_driver.render_text ppf result
    | "json" -> Lint_driver.render_json ppf result
    | "sarif" -> Sem_driver.render_sarif ppf ~rules result
    | other -> fail_usage "unknown format %s" other
  in
  (match !output with
  | "" -> render Format.std_formatter
  | file ->
      let oc = open_out file in
      let ppf = Format.formatter_of_out_channel oc in
      render ppf;
      Format.pp_print_flush ppf ();
      close_out oc);
  let failed =
    match baseline with
    | None -> result.kept <> []
    | Some baseline ->
        let regs =
          Sem_baseline.regressions ~baseline
            (Sem_baseline.of_diags result.kept)
        in
        List.iter
          (fun (path, rule, allowed, now) ->
            Printf.eprintf
              "harmony_sem: baseline regression: %s %s: %d finding(s), \
               baseline allows %d\n"
              path rule now allowed)
          regs;
        regs <> []
  in
  exit (if failed then 1 else 0)
