(* In-process typechecking of fixture sources, so test_sem.ml can
   exercise the rules on bad/good pairs without shelling out to dune.
   Production analysis always goes through cmt files (Sem_cmt); this
   path exists for tests only.

   Warnings are force-disabled: fixtures deliberately contain partial
   matches and unused bindings, and the typedtree [Partial] flags the
   rules read are computed regardless. *)

let initialized = ref false

let init () =
  if not !initialized then begin
    Compmisc.init_path ();
    ignore (Warnings.parse_options false "-a");
    ignore (Warnings.parse_options true "-a");
    initialized := true
  end

let unit_of_source ~modname ~path src =
  init ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Location.input_name := path;
  match
    let pstr = Parse.implementation lexbuf in
    let tstr, _, _, _, _ = Typemod.type_structure env pstr in
    Typecore.force_delayed_checks ();
    tstr
  with
  | tstr -> Ok { Sem_cmt.modname; path; str = tstr }
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | _ -> Error (Printexc.to_string exn))
