(* Orchestration: run the semantic rules over loaded units, then
   filter the diagnostics through the same inline-waiver and allowlist
   machinery as harmony_lint, reusing its renderers via
   [Lint_driver.result]. *)

type result = Lint_driver.result = {
  kept : Lint_diag.t list;
  suppressed : Lint_diag.t list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let default_source_of path =
  if Sys.file_exists path && not (Sys.is_directory path) then
    Some (read_file path)
  else None

(* [source_of] maps a diagnostic's file to its source text so inline
   [(* lint: allow S1 *)] comments apply; tests inject in-memory
   fixtures, the CLI reads from disk. *)
let analyze ?rules ?(allowlist = Lint_allow.empty_allowlist)
    ?(source_of = default_source_of) (units : Sem_cmt.unit_info list) =
  let summary = Sem_summary.create () in
  let diags =
    Sem_rules.run ?rules ~summary (List.map Sem_cmt.as_tuple units)
  in
  let allow_cache = Hashtbl.create 8 in
  let allow_for file =
    match Hashtbl.find_opt allow_cache file with
    | Some a -> a
    | None ->
        let a = Option.map Lint_allow.of_source (source_of file) in
        Hashtbl.replace allow_cache file a;
        a
  in
  let kept, suppressed =
    List.partition
      (fun (d : Lint_diag.t) ->
        let inline =
          match allow_for d.file with
          | Some allow ->
              Lint_allow.suppresses allow ~rule:d.rule ~line:d.line
          | None -> false
        in
        not
          (inline
          || Lint_allow.allowlist_suppresses allowlist ~rule:d.rule
               ~file:d.file))
      diags
  in
  { kept; suppressed }

let rule_metas rules =
  List.map
    (fun (r : Sem_rules.rule) ->
      { Lint_sarif.id = r.id; summary = r.summary; doc = r.doc })
    rules

let render_sarif ppf ?(rules = Sem_rules.all) result =
  Lint_sarif.render ppf ~tool_name:"harmony_sem" ~rules:(rule_metas rules)
    result.kept
