(* Shared helpers for the typedtree analyses: path normalization,
   type-expression destructors, and location plumbing.  Everything
   here is pure and total. *)

open Types

(* dune names compilation units [Harmony_parallel__Pool]; the analyses
   and the diagnostics both want the bare [Pool]. *)
let normalize_modname name =
  let n = String.length name in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if name.[i] = '_' && name.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i < n -> String.sub name i (n - i)
  | _ -> name

let rec path_flatten = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_flatten p @ [ s ]
  | Path.Papply (p, _) -> path_flatten p
  | Path.Pextra_ty (p, _) -> path_flatten p

(* Components with the [Stdlib] head dropped and dune prefixes
   stripped, so [Stdlib.Mutex.lock] and a local [Mutex.lock] agree and
   [Harmony_parallel__Pool.map_array] reads [Pool.map_array]. *)
let norm_path p =
  let l = List.map normalize_modname (path_flatten p) in
  match l with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l

let dotted l = String.concat "." l

(* The last two components as ["Mod.name"] (or just ["name"] for a
   bare ident) — the matching currency for operation tables, which
   must be robust to how deeply a path happens to be qualified. *)
let last2 l =
  match List.rev l with
  | a :: b :: _ -> b ^ "." ^ a
  | [ a ] -> a
  | [] -> ""

let key_of_path p = last2 (norm_path p)

(* ------------------------------------------------------------------ *)
(* Type expressions *)

let rec head_desc ty =
  match get_desc ty with Tpoly (ty, _) -> head_desc ty | d -> d

let constr_path ty =
  match head_desc ty with Tconstr (p, _, _) -> Some p | _ -> None

let is_arrow ty = match head_desc ty with Tarrow _ -> true | _ -> false

(* Argument types of an arrow type, left to right. *)
let rec arrow_args ty =
  match head_desc ty with
  | Tarrow (_, a, b, _) -> a :: arrow_args b
  | _ -> []

let is_float_path p = Path.same p Predef.path_float

(* ------------------------------------------------------------------ *)
(* Expressions *)

let expr_path (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let expr_key e = Option.map key_of_path (expr_path e)

let diag ~rule ~severity ~(file : string) ~(loc : Location.t) fmt =
  Format.kasprintf
    (fun message ->
      let d = Lint_diag.make ~rule ~severity ~loc message in
      (* cmt locations carry the repo-relative source path already,
         but fall back to the unit's path for ghost locations. *)
      if d.Lint_diag.file = "_none_" || d.Lint_diag.file = "" then
        { d with Lint_diag.file }
      else d)
    fmt
