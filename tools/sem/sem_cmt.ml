(* Discovery and loading of the .cmt files dune emits under
   [_build/default/<dir>/.<lib>.objs/byte/].  The analyses key
   everything off the cmt's recorded source path (repo-relative, e.g.
   [lib/parallel/pool.ml]), so callers filter by source-directory
   prefix, not by build layout. *)

type unit_info = {
  modname : string;  (* normalized, e.g. "Pool" *)
  path : string;  (* repo-relative source file *)
  str : Typedtree.structure;
}

let as_tuple u = (u.modname, u.path, u.str)

let rec find_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let p = Filename.concat dir entry in
          if Sys.is_directory p then find_cmts p acc
          else if Filename.check_suffix entry ".cmt" then p :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

let in_dirs ~dirs source =
  dirs = []
  || List.exists
       (fun d ->
         let d = if String.ends_with ~suffix:"/" d then d else d ^ "/" in
         String.starts_with ~prefix:d source)
       dirs

(* Load every implementation cmt under [root] whose source file lives
   in one of [dirs].  Alias-module stubs (sources ending in .ml-gen)
   and interface cmts are skipped; an unreadable cmt becomes a "cmt"
   diagnostic rather than an abort, so one stale artifact cannot hide
   the rest of the report. *)
let load_units ~root ~dirs =
  let units = ref [] in
  let diags = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception _ ->
          diags :=
            {
              Lint_diag.rule = "cmt";
              severity = Lint_diag.Error;
              file = cmt_path;
              line = 1;
              col = 0;
              message = "unreadable cmt file (stale build? run dune build)";
            }
            :: !diags
      | infos -> (
          match (infos.cmt_annots, infos.cmt_sourcefile) with
          | Cmt_format.Implementation str, Some source
            when Filename.check_suffix source ".ml"
                 && in_dirs ~dirs source
                 && not (Hashtbl.mem seen source) ->
              Hashtbl.replace seen source ();
              units :=
                {
                  modname = Sem_util.normalize_modname infos.cmt_modname;
                  path = source;
                  str;
                }
                :: !units
          | _ -> ()))
    (List.sort String.compare (find_cmts root []));
  let units =
    List.sort (fun a b -> String.compare a.path b.path) !units
  in
  (units, List.rev !diags)
