(* The static lock-acquisition graph: an edge a→b means some code path
   acquires b while holding a.  Deadlock freedom requires the graph to
   be acyclic; the repo's documented order additionally requires the
   telemetry lock to be a leaf (no outgoing edges).

   Cycle detection is a deterministic colored DFS over sorted
   adjacency lists, so the reported cycle is stable across runs.  The
   pure [cycle_of_edges] entry point exists for the QCheck property
   that pits it against an independent reference detector. *)

type edge = { src : string; dst : string; file : string; loc : Location.t }

type t = { mutable edges : edge list }

let create () = { edges = [] }

(* One representative edge per (src, dst) pair keeps diagnostics
   deduplicated; the first acquisition site wins. *)
let add t e =
  if not (List.exists (fun e' -> e'.src = e.src && e'.dst = e.dst) t.edges)
  then t.edges <- e :: t.edges

(* Find a cycle in a directed graph given as (src, dst) pairs.
   Returns the cycle as a node list [n0; n1; ...; nk] standing for
   n0→n1→...→nk→n0, or None.  Deterministic: roots and neighbors are
   visited in sorted order. *)
let cycle_of_edges pairs =
  let adj = Hashtbl.create 16 in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ();
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      if not (List.mem b cur) then Hashtbl.replace adj a (b :: cur))
    pairs;
  let neighbors n =
    List.sort String.compare (Option.value ~default:[] (Hashtbl.find_opt adj n))
  in
  let roots =
    List.sort String.compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes [])
  in
  let color = Hashtbl.create 16 in
  (* colors: absent = white, `Gray = on stack, `Black = done *)
  let found = ref None in
  let rec visit stack n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Gray ->
        if !found = None then begin
          (* stack holds the path root..parent, most recent first;
             the cycle is n ... back to n. *)
          let rec take acc = function
            | [] -> acc
            | x :: _ when x = n -> x :: acc
            | x :: rest -> take (x :: acc) rest
          in
          found := Some (take [] stack)
        end
    | None ->
        Hashtbl.replace color n `Gray;
        List.iter
          (fun m -> if !found = None then visit (n :: stack) m)
          (neighbors n);
        Hashtbl.replace color n `Black
  in
  List.iter (fun n -> if !found = None then visit [] n) roots;
  !found

let find_cycle t =
  match cycle_of_edges (List.map (fun e -> (e.src, e.dst)) t.edges) with
  | None -> None
  | Some cycle ->
      (* Locate a representative edge (the first cycle edge) for the
         diagnostic position. *)
      let pairs =
        match cycle with
        | [] -> []
        | first :: _ ->
            let rec link = function
              | [ last ] -> [ (last, first) ]
              | a :: (b :: _ as rest) -> (a, b) :: link rest
              | [] -> []
            in
            link cycle
      in
      let edge =
        List.find_map
          (fun (a, b) ->
            List.find_opt (fun e -> e.src = a && e.dst = b) t.edges)
          pairs
      in
      Some (cycle, edge)

(* Edges whose source is the telemetry lock: the telemetry lock must
   be a leaf of the order (DESIGN.md §11 documents that callers may
   hold their own lock while calling Telemetry, never the reverse). *)
let leaf_violations t ~leaf_prefix =
  List.filter (fun e -> String.starts_with ~prefix:leaf_prefix e.src)
    (List.rev t.edges)
