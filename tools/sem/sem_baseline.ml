(* Findings baseline: a committed snapshot of known findings, so CI
   can gate on *new* findings while legacy ones are burned down
   incrementally.  Format, one entry per line, sorted:

       <path> <rule> <count>

   [--check-baseline] fails only when some (path, rule) pair has more
   findings than the baseline records; fixed findings simply leave the
   baseline stale-but-harmless until [--write-baseline] refreshes it. *)

type entry = { path : string; rule : string; count : int }

let compare_entry a b =
  match String.compare a.path b.path with
  | 0 -> String.compare a.rule b.rule
  | c -> c

let of_string src =
  let entries, errors =
    List.fold_left
      (fun (entries, errors) line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          List.filter (fun s -> s <> "")
            (String.split_on_char ' ' (String.trim line))
        with
        | [] -> (entries, errors)
        | [ path; rule; count ] -> (
            match int_of_string_opt count with
            | Some count -> ({ path; rule; count } :: entries, errors)
            | None -> (entries, ("bad count in baseline line: " ^ line) :: errors))
        | _ ->
            (entries, ("malformed baseline line (want '<path> <rule> <count>'): " ^ line) :: errors)
      )
      ([], [])
      (String.split_on_char '\n' src)
  in
  match errors with
  | [] -> Ok (List.sort compare_entry entries)
  | e :: _ -> Error e

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let of_diags diags =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (d : Lint_diag.t) ->
      let key = (d.file, d.rule) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    diags;
  Hashtbl.fold
    (fun (path, rule) count acc -> { path; rule; count } :: acc)
    counts []
  |> List.sort compare_entry

let render entries =
  String.concat ""
    (List.map
       (fun e -> Printf.sprintf "%s %s %d\n" e.path e.rule e.count)
       (List.sort compare_entry entries))

(* (path, rule, baseline count, current count) for every pair that
   grew beyond the baseline. *)
let regressions ~baseline current =
  let base = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace base (e.path, e.rule) e.count) baseline;
  List.filter_map
    (fun e ->
      let allowed =
        Option.value ~default:0 (Hashtbl.find_opt base (e.path, e.rule))
      in
      if e.count > allowed then Some (e.path, e.rule, allowed, e.count)
      else None)
    current
