(* A control-flow-ordered typedtree walk that threads the set of held
   locks through each expression.  Both concurrency rules ride on it:
   S1 asks "was any lock held at this mutable access?" via [on_node],
   S2 asks "which lock was acquired/called while which others were
   held?" via [on_acquire]/[on_call].

   Lock identity is a best-effort stable name:

     - a record field of mutex type:   "Pool.t.mutex", "Telemetry.state.lock"
     - a module-level binding:         "Objective.global_lock"
     - a function-local binding:       "Objective.cached.lock"
     - anything more complex:          "<anon>" (tracked for guardedness,
                                       excluded from the order graph)

   Approximations (documented in DESIGN.md §14): branches join with
   set intersection (a lock held on only one arm counts as released);
   [Condition.wait] is treated as keeping its mutex (it reacquires
   before returning); lambdas lose the held set unless they are
   arguments to a known same-context higher-order function (List.iter,
   Array.map, Fun.protect, ... ) or the [Mutex.protect] body itself,
   because any other closure may outlive the critical section. *)

open Typedtree

type callbacks = {
  on_node : held:string list -> expression -> unit;
  on_acquire : held:string list -> lock:string -> Location.t -> unit;
  on_call : held:string list -> Path.t -> Location.t -> unit;
}

type ctx = {
  modname : string;  (* normalized unit name, e.g. "Pool" *)
  topfn : string;  (* enclosing top-level function, for local-lock names *)
  toplevel : string -> bool;  (* is this name a module-level binding? *)
  cb : callbacks;
}

let no_callbacks =
  {
    on_node = (fun ~held:_ _ -> ());
    on_acquire = (fun ~held:_ ~lock:_ _ -> ());
    on_call = (fun ~held:_ _ _ -> ());
  }

let anon = "<anon>"

let is_anon l = l = anon

(* HOFs whose function arguments run to completion in the caller's
   context, so the held set flows into their lambdas.  Matched on the
   module component of the normalized path. *)
let same_context_modules =
  [
    "List"; "ListLabels"; "Array"; "ArrayLabels"; "Hashtbl"; "Queue";
    "Stack"; "Option"; "Result"; "Either"; "Seq"; "Fun"; "Float";
  ]

let is_same_context_hof p =
  match List.rev (Sem_util.norm_path p) with
  | _ :: m :: _ -> List.mem m same_context_modules
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lock naming *)

let type_key ctx ty =
  match Sem_util.constr_path ty with
  | Some (Path.Pident id) -> Some (ctx.modname ^ "." ^ Ident.name id)
  | Some p -> Some (Sem_util.last2 (Sem_util.norm_path p))
  | None -> None

let lock_name ctx (m : expression) =
  match m.exp_desc with
  | Texp_field (_, _, lbl) -> (
      match type_key ctx lbl.lbl_res with
      | Some tk -> tk ^ "." ^ lbl.lbl_name
      | None -> anon)
  | Texp_ident (Path.Pident id, _, _) ->
      let n = Ident.name id in
      if ctx.toplevel n then ctx.modname ^ "." ^ n
      else ctx.modname ^ "." ^ ctx.topfn ^ "." ^ n
  | Texp_ident (p, _, _) -> Sem_util.dotted (Sem_util.norm_path p)
  | _ -> anon

(* ------------------------------------------------------------------ *)
(* The walk *)

let remove_last held lock =
  let rec drop = function
    | [] -> []
    | l :: rest when l = lock -> rest
    | l :: rest -> l :: drop rest
  in
  List.rev (drop (List.rev held))

let inter a b = List.filter (fun x -> List.mem x b) a

let rec walk ctx held (e : expression) =
  ctx.cb.on_node ~held e;
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      (* An escaping closure: analyzed as if no lock is held when it
         eventually runs. *)
      List.iter (fun c -> ignore (walk_case ctx [] c)) cases;
      held
  | Texp_apply (fn, args) -> walk_apply ctx held e fn args
  | Texp_let (_, vbs, body) ->
      let held =
        List.fold_left (fun h vb -> walk ctx h vb.vb_expr) held vbs
      in
      walk ctx held body
  | Texp_sequence (a, b) ->
      let held = walk ctx held a in
      walk ctx held b
  | Texp_ifthenelse (c, t, f) -> (
      let held = walk ctx held c in
      let ht = walk ctx held t in
      match f with
      | None -> held
      | Some f -> inter ht (walk ctx held f))
  | Texp_match (scrut, cases, _) -> (
      let held = walk ctx held scrut in
      match List.map (walk_case ctx held) cases with
      | [] -> held
      | h :: rest -> List.fold_left inter h rest)
  | Texp_try (body, cases) ->
      (* Handlers can run with the body interrupted anywhere; the
         entry held set is the sound approximation for both. *)
      let hb = walk ctx held body in
      List.fold_left
        (fun acc c -> inter acc (walk_case ctx held c))
        hb cases
  | Texp_while (cond, body) ->
      let held = walk ctx held cond in
      ignore (walk ctx held body);
      held
  | Texp_for (_, _, lo, hi, _, body) ->
      let held = walk ctx held lo in
      let held = walk ctx held hi in
      ignore (walk ctx held body);
      held
  | _ ->
      walk_children ctx held e;
      held

and walk_case : 'k. ctx -> string list -> 'k case -> string list =
 fun ctx held c ->
  (match c.c_guard with Some g -> ignore (walk ctx held g) | None -> ());
  walk ctx held c.c_rhs

(* Body of a lambda that runs in the caller's context (Mutex.protect,
   List.iter, ...): the held set flows through every curried layer. *)
and walk_lambda_body ctx held (f : expression) =
  match f.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          (match c.c_guard with Some g -> ignore (walk ctx held g) | None -> ());
          walk_lambda_body ctx held c.c_rhs)
        cases
  | _ -> ignore (walk ctx held f)

and walk_apply ctx held e fn args =
  let arg_exprs = List.filter_map snd args in
  let generic ~keep_lambdas () =
    (match Sem_util.expr_path fn with
    | Some p -> ctx.cb.on_call ~held p e.exp_loc
    | None -> ignore (walk ctx held fn));
    List.iter
      (fun a ->
        match a.exp_desc with
        | Texp_function _ when keep_lambdas ->
            ctx.cb.on_node ~held a;
            walk_lambda_body ctx held a
        | _ -> ignore (walk ctx held a))
      arg_exprs;
    held
  in
  match Sem_util.expr_key fn with
  | Some "Mutex.lock" -> (
      match arg_exprs with
      | [ m ] ->
          let lock = lock_name ctx m in
          ctx.cb.on_acquire ~held ~lock e.exp_loc;
          ignore (walk ctx held m);
          held @ [ lock ]
      | _ -> generic ~keep_lambdas:false ())
  | Some "Mutex.try_lock" -> (
      (* Acquisition for ordering purposes, but the success is
         conditional so the held set is not extended. *)
      match arg_exprs with
      | [ m ] ->
          ctx.cb.on_acquire ~held ~lock:(lock_name ctx m) e.exp_loc;
          ignore (walk ctx held m);
          held
      | _ -> generic ~keep_lambdas:false ())
  | Some "Mutex.unlock" -> (
      match arg_exprs with
      | [ m ] ->
          ignore (walk ctx held m);
          remove_last held (lock_name ctx m)
      | _ -> generic ~keep_lambdas:false ())
  | Some "Mutex.protect" -> (
      match arg_exprs with
      | [ m; f ] ->
          let lock = lock_name ctx m in
          ctx.cb.on_acquire ~held ~lock e.exp_loc;
          ignore (walk ctx held m);
          let held' = held @ [ lock ] in
          (match f.exp_desc with
          | Texp_function _ ->
              ctx.cb.on_node ~held:held' f;
              walk_lambda_body ctx held' f
          | _ -> (
              (* A named thunk: whatever it calls happens under the
                 lock — surface that through on_call. *)
              match Sem_util.expr_path f with
              | Some p -> ctx.cb.on_call ~held:held' p f.exp_loc
              | None -> ignore (walk ctx held' f)));
          held
      | _ -> generic ~keep_lambdas:false ())
  | Some "Condition.wait" ->
      List.iter (fun a -> ignore (walk ctx held a)) arg_exprs;
      held
  | _ ->
      let keep_lambdas =
        match Sem_util.expr_path fn with
        | Some p -> is_same_context_hof p
        | None -> false
      in
      generic ~keep_lambdas ()

(* Depth-one generic recursion: reuse the compiler's own child
   enumeration, routing every child expression back through [walk]
   with the current held set. *)
and walk_children ctx held e =
  let sub =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ child -> ignore (walk ctx held child));
    }
  in
  Tast_iterator.default_iterator.expr sub e
