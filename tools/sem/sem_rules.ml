(* The four semantic rule families (DESIGN.md §14).

   S1  race detector: mutable state captured by closures submitted to
       the domain pool must be lock-protected on every access path.
       Sanctioned: per-task disjoint array slots (index mentions a
       task-bound variable), Atomic.*, Domain.DLS, and state passed in
       as a parameter (per-shard disjointness is the caller's
       contract, enforced at the submission site).
   S2  lock-order checker: the static lock-acquisition graph must be
       acyclic and the telemetry lock a leaf.
   S3  type-aware float ordering: no polymorphic compare/=/min/max at
       an *inferred* float type, through aliases and let-bindings —
       the semantic upgrade of the syntactic N1.
   S4  handler totality: protocol-handler modules contain no partial
       match, assert false, failwith/exit, or raise of a freshly built
       exception (re-raise of a caught exception and invalid_arg are
       allowed, matching T2). *)

open Typedtree

type rule = {
  id : string;
  severity : Lint_diag.severity;
  summary : string;
  doc : string;
}

let s1 =
  {
    id = "S1";
    severity = Lint_diag.Error;
    summary = "no unlocked shared mutable state in pool tasks";
    doc =
      "Closures submitted to Pool.map_array/run (or pushed onto a task \
       queue) must guard refs, Hashtbl/Buffer/Queue ops and mutable \
       fields they capture with Mutex.protect/lock. Disjoint array \
       slots indexed by a task-bound variable, Atomic and Domain.DLS \
       are sanctioned.";
  }

let s2 =
  {
    id = "S2";
    severity = Lint_diag.Error;
    summary = "lock order: acyclic, telemetry and flight locks leaves";
    doc =
      "The static Mutex.lock/protect nesting graph (closed over calls \
       via per-function may-acquire summaries) must have no cycle, no \
       re-acquisition of a held lock, and no lock acquired while the \
       telemetry lock or the flight recorder's lock is held (both are \
       forced leaves of the order).";
  }

let s3 =
  {
    id = "S3";
    severity = Lint_diag.Error;
    summary = "no polymorphic compare/min/max/= at inferred float type";
    doc =
      "compare, =, <>, ==, !=, min and max are flagged whenever their \
       instantiated argument type is float or a float alias (type ms = \
       float), however the value was laundered through let-bindings or \
       helper arguments. Use Float.compare or epsilon logic.";
  }

let s4 =
  {
    id = "S4";
    severity = Lint_diag.Error;
    summary = "protocol handlers are total on the typedtree";
    doc =
      "In server.ml/service.ml/session.ml: every match and function \
       must be exhaustive (typedtree Partial flag), and assert false, \
       failwith, exit and raising a freshly constructed exception are \
       banned (invalid_arg and re-raising a caught exception stay \
       allowed, as in T2).";
  }

let all = [ s1; s2; s3; s4 ]

let find id = List.find_opt (fun r -> r.id = id) all

(* ------------------------------------------------------------------ *)
(* Shared traversal helpers *)

let iter_exprs str f =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          f e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure it str

(* Every value binding in the unit (any depth), keyed by the unique
   ident name, plus the set of module-level binding names. *)
let collect_bindings (str : structure) =
  let bindings = Hashtbl.create 64 in
  let toplevel = Hashtbl.create 32 in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
              Hashtbl.replace bindings (Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str;
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> Hashtbl.replace toplevel (Ident.name id) ()
              | _ -> ())
            vbs
      | _ -> ())
    str.str_items;
  (bindings, toplevel)

(* All idents bound anywhere inside [e]: function parameters, let
   patterns, match patterns, for-loop indices. *)
let collect_bound (e : expression) =
  let bound = Hashtbl.create 32 in
  let add id = Hashtbl.replace bound (Ident.unique_name id) () in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun sub p ->
          List.iter add (pat_bound_idents p);
          Tast_iterator.default_iterator.pat sub p);
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_for (id, _, _, _, _, _) -> add id
          | Texp_function { param; _ } -> add param
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  bound

let mentions_bound bound e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when Hashtbl.mem bound (Ident.unique_name id) ->
              found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

(* Root of a data-structure expression: strip field projections, array
   reads and ref derefs down to the underlying ident. *)
let rec root_ident (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> `Local id
  | Texp_ident (p, _, _) -> `Global p
  | Texp_field (b, _, _) -> root_ident b
  | Texp_apply (f, args) -> (
      match (Sem_util.expr_key f, List.filter_map snd args) with
      | Some ("Array.get" | "Array.unsafe_get" | "!"), a :: _ -> root_ident a
      | _ -> `None)
  | _ -> `None

let describe_root = function
  | `Local id -> Ident.name id
  | `Global p -> Sem_util.dotted (Sem_util.norm_path p)
  | `None -> "?"

(* Chase an ident (or partial application) back to the lambda it
   names, through the unit's binding map. *)
let rec resolve_fn bindings visited (e : expression) =
  match e.exp_desc with
  | Texp_function _ -> Some e
  | Texp_ident (Path.Pident id, _, _) -> (
      let k = Ident.unique_name id in
      if List.mem k visited then None
      else
        match Hashtbl.find_opt bindings k with
        | Some e' -> resolve_fn bindings (k :: visited) e'
        | None -> None)
  | Texp_apply (f, _) -> resolve_fn bindings visited f
  | _ -> None

(* ------------------------------------------------------------------ *)
(* S1: race detector *)

(* Entry points whose function-typed arguments run on other domains. *)
let submission_keys =
  [
    "Pool.run"; "Pool.map"; "Pool.map_array"; "Pool.try_map_array";
    "Objective.eval_batch"; "Batch.eval_batch"; "Domain.spawn";
    "Thread.create";
  ]

(* Mutating operations: (path tail, index of the mutated subject,
   human label, subject to the disjoint-index sanction?). *)
let mutating_ops =
  [
    (":=", 0, "ref write", false);
    ("!", 0, "ref read", false);
    ("incr", 0, "ref write", false);
    ("decr", 0, "ref write", false);
    ("Hashtbl.add", 0, "Hashtbl write", false);
    ("Hashtbl.replace", 0, "Hashtbl write", false);
    ("Hashtbl.remove", 0, "Hashtbl write", false);
    ("Hashtbl.reset", 0, "Hashtbl write", false);
    ("Hashtbl.clear", 0, "Hashtbl write", false);
    ("Hashtbl.filter_map_inplace", 1, "Hashtbl write", false);
    ("Buffer.add_char", 0, "Buffer write", false);
    ("Buffer.add_string", 0, "Buffer write", false);
    ("Buffer.add_bytes", 0, "Buffer write", false);
    ("Buffer.add_substring", 0, "Buffer write", false);
    ("Buffer.add_subbytes", 0, "Buffer write", false);
    ("Buffer.add_buffer", 0, "Buffer write", false);
    ("Buffer.clear", 0, "Buffer write", false);
    ("Buffer.reset", 0, "Buffer write", false);
    ("Buffer.truncate", 0, "Buffer write", false);
    ("Queue.push", 1, "Queue write", false);
    ("Queue.add", 1, "Queue write", false);
    ("Queue.pop", 0, "Queue write", false);
    ("Queue.take", 0, "Queue write", false);
    ("Queue.take_opt", 0, "Queue write", false);
    ("Queue.pop_opt", 0, "Queue write", false);
    ("Queue.clear", 0, "Queue write", false);
    ("Stack.push", 1, "Stack write", false);
    ("Stack.pop", 0, "Stack write", false);
    ("Stack.clear", 0, "Stack write", false);
    ("Bytes.set", 0, "Bytes write", true);
    ("Bytes.unsafe_set", 0, "Bytes write", true);
    ("Bytes.fill", 0, "Bytes write", false);
    ("Bytes.blit", 2, "Bytes write", false);
    (* Array.* tails also match Float.Array.* via the two-component
       path tail. *)
    ("Array.set", 0, "array write", true);
    ("Array.unsafe_set", 0, "array write", true);
    ("Array.fill", 0, "array write", false);
    ("Array.blit", 2, "array write", false);
    ("Array.sort", 1, "in-place sort", false);
    ("Array.stable_sort", 1, "in-place sort", false);
    ("Array.fast_sort", 1, "in-place sort", false);
  ]

let run_s1 ~modname ~path (str : structure) =
  let diags = ref [] in
  let bindings, toplevel = collect_bindings str in
  let flag ~loc fmt =
    Format.kasprintf
      (fun message ->
        diags :=
          Lint_diag.make ~rule:"S1" ~severity:s1.severity ~loc message
          :: !diags)
      fmt
  in
  (* Analyze one task closure (and, transitively, the locally bound
     functions it calls) with the lock walker.  Followed callees
     inherit the caller chain's bound set: a helper defined inside the
     task (or inside a function the task calls) captures per-call
     state, which is task-local, not shared — only idents bound in no
     scope along the chain denote state shared across tasks. *)
  let analyze_task task_expr =
    let visited = Hashtbl.create 8 in
    let queue = Queue.create () in
    let push_fn fn held inherited =
      let bound = Hashtbl.copy inherited in
      Hashtbl.iter (fun k () -> Hashtbl.replace bound k ()) (collect_bound fn);
      Queue.add (fn, held, bound) queue
    in
    (match resolve_fn bindings [] task_expr with
    | Some fn -> push_fn fn [] (Hashtbl.create 1)
    | None -> ());
    while not (Queue.is_empty queue) do
      let fn, entry_held, bound = Queue.pop queue in
      let check_subject ~held ~loc ~label subject =
        if held = [] then
          match root_ident subject with
          | `None -> ()
          | (`Local _ | `Global _) as root ->
              let shared =
                match root with
                | `Local id -> not (Hashtbl.mem bound (Ident.unique_name id))
                | `Global _ -> true
              in
              if shared then
                flag ~loc
                  "%s to shared '%s' inside a pool task without holding a \
                   lock (wrap in Mutex.protect, use Atomic/Domain.DLS, or \
                   make the state task-local)"
                  label (describe_root root)
      in
      let on_node ~held (e : expression) =
        match e.exp_desc with
        | Texp_setfield (base, _, lbl, _) ->
            check_subject ~held ~loc:e.exp_loc
              ~label:(Printf.sprintf "mutable-field write (%s)" lbl.lbl_name)
              base
        | Texp_field (base, _, lbl) when lbl.lbl_mut = Asttypes.Mutable ->
            check_subject ~held ~loc:e.exp_loc
              ~label:(Printf.sprintf "mutable-field read (%s)" lbl.lbl_name)
              base
        | Texp_apply (f, args) -> (
            let arg_exprs = List.filter_map snd args in
            match Sem_util.expr_key f with
            | Some key -> (
                match
                  List.find_opt (fun (k, _, _, _) -> k = key) mutating_ops
                with
                | Some (_, ix, label, indexed) -> (
                    match List.nth_opt arg_exprs ix with
                    | Some subject ->
                        (* Disjoint-slot sanction: an element write
                           whose index mentions a task-bound variable
                           touches this task's slot only. *)
                        let sanctioned =
                          indexed
                          &&
                          match arg_exprs with
                          | _ :: index :: _ -> mentions_bound bound index
                          | _ -> false
                        in
                        if not sanctioned then
                          check_subject ~held ~loc:e.exp_loc ~label subject
                    | None -> ())
                | None -> ())
            | None -> ())
        | _ -> ()
      in
      let on_call ~held p _loc =
        match p with
        | Path.Pident id -> (
            let k = Ident.unique_name id in
            if not (Hashtbl.mem visited k) then begin
              Hashtbl.replace visited k ();
              match Hashtbl.find_opt bindings k with
              | Some e -> (
                  match resolve_fn bindings [] e with
                  | Some fn -> push_fn fn held bound
                  | None -> ())
              | None -> ()
            end)
        | _ -> ()
      in
      let ctx =
        {
          Sem_lockwalk.modname;
          topfn = "<task>";
          toplevel = Hashtbl.mem toplevel;
          cb = { Sem_lockwalk.no_callbacks with on_node; on_call };
        }
      in
      Sem_lockwalk.walk_lambda_body ctx entry_held fn
    done
  in
  ignore path;
  iter_exprs str (fun e ->
      match e.exp_desc with
      | Texp_apply (f, args) -> (
          let arg_exprs = List.filter_map snd args in
          match Sem_util.expr_key f with
          | Some key when List.mem key submission_keys ->
              List.iter
                (fun a -> if Sem_util.is_arrow a.exp_type then analyze_task a)
                arg_exprs
          | Some ("Queue.push" | "Queue.add") -> (
              (* The pool's internal task queue: pushing a thunk is a
                 submission. *)
              match arg_exprs with
              | v :: _ when Sem_util.is_arrow v.exp_type -> analyze_task v
              | _ -> ())
          | _ -> ())
      | _ -> ());
  !diags

(* ------------------------------------------------------------------ *)
(* S2: lock-order checker *)

let fn_reg_keys fnkey =
  List.sort_uniq String.compare
    [ fnkey; Sem_util.last2 (String.split_on_char '.' fnkey) ]

let rec iter_top_functions ~mprefix (str : structure) f =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) -> f ~mprefix (Ident.name id) vb.vb_expr
              | _ -> ())
            vbs
      | Tstr_module mb -> (
          let sub_structure me =
            match me.mod_desc with
            | Tmod_structure s -> Some s
            | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
                Some s
            | _ -> None
          in
          match (sub_structure mb.mb_expr, mb.mb_name.txt) with
          | Some s, Some name ->
              iter_top_functions ~mprefix:(mprefix ^ "." ^ name) s f
          | _ -> ())
      | _ -> ())
    str.str_items

let run_s2 ~(summary : Sem_summary.t) (units : (string * string * structure) list)
    =
  let diags = ref [] in
  let graph = Sem_lockgraph.create () in
  (* deferred call-site edges, resolved after the may-acquire fixpoint *)
  let call_sites = ref [] in
  List.iter
    (fun (modname, path, str) ->
      let _, toplevel = collect_bindings str in
      iter_top_functions ~mprefix:modname str (fun ~mprefix name vb_expr ->
          let fnkey = mprefix ^ "." ^ name in
          let on_acquire ~held ~lock loc =
            if not (Sem_lockwalk.is_anon lock) then
              List.iter
                (fun k -> Sem_summary.record_acquire summary ~fn:k lock)
                (fn_reg_keys fnkey);
            if List.mem lock held && not (Sem_lockwalk.is_anon lock) then
              diags :=
                Lint_diag.make ~rule:"S2" ~severity:s2.severity ~loc
                  (Printf.sprintf
                     "re-acquisition of held lock %s (self-deadlock)" lock)
                :: !diags;
            List.iter
              (fun h ->
                if not (Sem_lockwalk.is_anon h || Sem_lockwalk.is_anon lock)
                then
                  Sem_lockgraph.add graph
                    { Sem_lockgraph.src = h; dst = lock; file = path; loc })
              held
          in
          let on_call ~held p loc =
            (* An unqualified callee is a sibling in this module: its
               summary is registered under the module-qualified key, so
               add that to the lookup set. *)
            let ckeys =
              let base = Sem_summary.callee_keys p in
              match Sem_util.norm_path p with
              | [ callee_name ] ->
                  List.sort_uniq String.compare
                    ((mprefix ^ "." ^ callee_name) :: base)
              | _ -> base
            in
            List.iter
              (fun callee ->
                List.iter
                  (fun k -> Sem_summary.record_call summary ~fn:k callee)
                  (fn_reg_keys fnkey))
              ckeys;
            let held = List.filter (fun h -> not (Sem_lockwalk.is_anon h)) held in
            if held <> [] then call_sites := (held, ckeys, path, loc) :: !call_sites
          in
          let ctx =
            {
              Sem_lockwalk.modname;
              topfn = name;
              toplevel = Hashtbl.mem toplevel;
              cb = { Sem_lockwalk.no_callbacks with on_acquire; on_call };
            }
          in
          ignore (Sem_lockwalk.walk ctx [] vb_expr)))
    units;
  Sem_summary.close_fns summary;
  List.iter
    (fun (held, ckeys, path, loc) ->
      List.iter
        (fun lock ->
          List.iter
            (fun h ->
              Sem_lockgraph.add graph
                { Sem_lockgraph.src = h; dst = lock; file = path; loc })
            held)
        (Sem_summary.may_acquire_keys summary ckeys))
    (List.rev !call_sites);
  (match Sem_lockgraph.find_cycle graph with
  | Some (cycle, Some edge) ->
      diags :=
        Lint_diag.make ~rule:"S2" ~severity:s2.severity ~loc:edge.loc
          (Printf.sprintf "lock-order cycle: %s -> %s"
             (String.concat " -> " cycle)
             (List.hd cycle))
        :: !diags
  | _ -> ());
  (* Forced leaves of the lock order: the telemetry registry lock and
     the flight recorder's ring lock.  Telemetry records an event and
     only then mirrors it into the flight ring, so neither may be held
     while acquiring anything else. *)
  List.iter
    (fun (leaf_prefix, what) ->
      List.iter
        (fun (e : Sem_lockgraph.edge) ->
          diags :=
            Lint_diag.make ~rule:"S2" ~severity:s2.severity ~loc:e.loc
              (Printf.sprintf
                 "%s acquired while holding %s %s (the %s must be a leaf of \
                  the lock order)"
                 e.dst what e.src what)
            :: !diags)
        (Sem_lockgraph.leaf_violations graph ~leaf_prefix))
    [ ("Telemetry.", "telemetry lock"); ("Flight.", "flight recorder lock") ];
  !diags

(* ------------------------------------------------------------------ *)
(* S3: type-aware float ordering *)

let poly_cmp_ops = [ "compare"; "="; "<>"; "=="; "!="; "min"; "max" ]

let run_s3 ~(summary : Sem_summary.t) ~modname (str : structure) =
  let diags = ref [] in
  iter_exprs str (fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          match Sem_util.norm_path p with
          | [ op ] when List.mem op poly_cmp_ops -> (
              match Sem_util.arrow_args e.exp_type with
              | a :: _ when Sem_summary.is_float summary ~modname a ->
                  let shown =
                    match Sem_util.constr_path a with
                    | Some tp when not (Sem_util.is_float_path tp) ->
                        Printf.sprintf "float (via alias %s)"
                          (Sem_util.dotted (Sem_util.norm_path tp))
                    | _ -> "float"
                  in
                  diags :=
                    Lint_diag.make ~rule:"S3" ~severity:s3.severity
                      ~loc:e.exp_loc
                      (Printf.sprintf
                         "polymorphic %s used at %s; NaN breaks ordering — \
                          use Float.compare or explicit epsilon logic"
                         op shown)
                    :: !diags
              | _ -> ())
          | _ -> ())
      | _ -> ());
  !diags

(* ------------------------------------------------------------------ *)
(* S4: handler totality *)

let s4_files = [ "server.ml"; "service.ml"; "session.ml"; "admission.ml" ]

let s4_applies path = List.mem (Filename.basename path) s4_files

let run_s4 (str : structure) =
  let diags = ref [] in
  let flag ~loc fmt =
    Format.kasprintf
      (fun message ->
        diags :=
          Lint_diag.make ~rule:"S4" ~severity:s4.severity ~loc message
          :: !diags)
      fmt
  in
  iter_exprs str (fun e ->
      match e.exp_desc with
      | Texp_match (_, _, Partial) ->
          flag ~loc:e.exp_loc
            "non-exhaustive match in a protocol handler module (handlers \
             must be total)"
      | Texp_function { partial = Partial; _ } ->
          flag ~loc:e.exp_loc
            "non-exhaustive function in a protocol handler module (handlers \
             must be total)"
      | Texp_assert ({ exp_desc = Texp_construct (_, cd, _); _ }, _)
        when cd.cstr_name = "false" ->
          flag ~loc:e.exp_loc
            "assert false in a protocol handler module (return an error \
             reply instead)"
      | Texp_ident (p, _, _) -> (
          match Sem_util.norm_path p with
          | [ ("failwith" | "exit") as f ] ->
              flag ~loc:e.exp_loc
                "%s in a protocol handler module (handlers must not abort)" f
          | _ -> ())
      | Texp_apply (f, args) -> (
          match (Sem_util.expr_key f, List.filter_map snd args) with
          | Some ("raise" | "raise_notrace"), [ arg ] -> (
              match arg.exp_desc with
              | Texp_construct (_, cd, _)
                when cd.cstr_name <> "Invalid_argument" ->
                  flag ~loc:e.exp_loc
                    "raise %s in a protocol handler module (encode the \
                     failure in the reply instead)"
                    cd.cstr_name
              | _ -> ())
          | _ -> ())
      | _ -> ());
  !diags

(* ------------------------------------------------------------------ *)
(* Dispatch *)

(* [units]: (normalized module name, source path, structure). *)
let run ?(rules = all) ~(summary : Sem_summary.t) units =
  let want id = List.exists (fun r -> r.id = id) rules in
  (* Aliases feed S3 and must be complete before any unit is judged. *)
  let candidates =
    List.concat_map
      (fun (modname, _, str) ->
        List.map
          (fun (key, p) -> (key, p, modname))
          (Sem_summary.collect_aliases ~modname str))
      units
  in
  Sem_summary.close_aliases summary candidates;
  let per_unit =
    List.concat_map
      (fun (modname, path, str) ->
        (if want "S1" then run_s1 ~modname ~path str else [])
        @ (if want "S3" then run_s3 ~summary ~modname str else [])
        @ (if want "S4" && s4_applies path then run_s4 str else []))
      units
  in
  let global = if want "S2" then run_s2 ~summary units else [] in
  List.sort Lint_diag.compare (per_unit @ global)
