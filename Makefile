# Convenience targets; dune is the source of truth.

.PHONY: all build test test-fast bench bench-quick experiments examples clean

all: build

build:
	dune build @all

# Includes the parallel-engine determinism test (registry tables at 1
# vs 4 domains must be byte-identical).
test:
	dune runtest

# What CI runs: a full build plus the unit/property suite.
test-fast:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

# Reproduction + ablations only; skips the Bechamel micro-benchmarks.
bench-quick:
	BENCH_QUICK=1 dune exec bench/main.exe

experiments:
	dune exec bin/harmony_cli.exe -- experiment all

examples:
	dune exec examples/quickstart.exe
	dune exec examples/webservice_autotune.exe
	dune exec examples/matrix_partition.exe
	dune exec examples/history_reuse.exe
	dune exec examples/climate_groups.exe
	dune exec examples/blocked_matmul.exe

clean:
	dune clean
