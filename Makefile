# Convenience targets; dune is the source of truth.

.PHONY: all build lint lint-sem test test-fast test-crash test-service test-chaos trace-smoke trace-analyze bench bench-quick bench-evals experiments examples clean

all: build

build:
	dune build @all

# Project-specific static analysis (DESIGN.md §8): determinism,
# NaN-safety and totality invariants over lib/, bin/, bench/ and the
# trace-analyzer core.  Exits non-zero on any unwaived finding.
lint:
	dune exec tools/lint/harmony_lint.exe -- --allowlist tools/lint/allowlist lib bin bench tools/trace

# Semantic analysis over the typedtree (DESIGN.md §14): races on
# pool-submitted closures, lock-order cycles, float comparisons at
# inferred types, handler totality.  Reads the .cmt files the build
# just produced; gates on the committed findings baseline.
lint-sem: build
	dune exec tools/sem/harmony_sem.exe -- \
	  --allowlist tools/lint/allowlist \
	  --baseline tools/sem/baseline --check-baseline lib

# Includes the parallel-engine determinism test (registry tables at 1
# vs 4 domains must be byte-identical).
test:
	dune runtest

# What CI runs: lint + semantic-analysis preflight, then a full build
# plus the unit/property suite (which includes the crash suite).
test-fast: lint
	dune build @all
	$(MAKE) lint-sem
	dune runtest

# Durability only (DESIGN.md §10): the framing/sink/journal unit+property
# tests and the crash-injection harness (kill-at-every-record-boundary
# byte-identity, live fault-sink crashes, corrupt-input recovery).
test-crash:
	dune exec test/test_main.exe -- test persist
	dune exec test/test_main.exe -- test crash

# Sharded-service load tier (DESIGN.md §13): the service unit/property
# suite, then the seeded load generator driving 1k clients through the
# sharded service — every client's conversation must match a dedicated
# single-session server byte-for-byte, and the SLO budgets
# (bench/service_slo.json, logical ticks: p99 handle latency, p99
# admission queue delay, rejection rate) must hold.  The full 10k
# tier is the same binary with --clients 10000.
test-service:
	dune exec test/test_main.exe -- test service
	dune exec test/loadgen.exe -- --clients 1000 --shards 8 --domains 4

# Overload + chaos tier (DESIGN.md §15): the admission unit suite, then
# a 1k-client open-loop burst offering 10x the admission capacity —
# seeded bursts, slow-client stalls, poisoned deadlines — with every
# shard journaled and a seeded fault schedule crashing the journal
# mid-burst.  The service must never raise, rejected clients must retry
# to completion, accepted replies must stay byte-identical to dedicated
# single-session servers across recoveries, and the overload SLOs
# (queue-delay p99 scaled by the overload factor, excess rejection
# rate) must hold.
# The flight dump is written on every crash and at exit, so a failing
# run leaves the last few hundred events per shard for post-mortem
# (CI uploads chaos-flight.jsonl when this tier fails).
test-chaos:
	dune exec test/test_main.exe -- test admission
	dune exec test/loadgen.exe -- --clients 1000 --shards 4 --domains 4 \
	  --open-loop 10 --max-inflight 8 --chaos --flight-dump chaos-flight.jsonl

# Telemetry end-to-end (DESIGN.md §11): a seeded tune records a JSONL
# trace, `stats` summarizes it back, and the same run exports a Chrome
# trace.  The artifacts land in trace-smoke/ (CI uploads them).
trace-smoke:
	mkdir -p trace-smoke
	dune exec bin/harmony_cli.exe -- tune --budget 60 --seed 7 --top-n 4 \
	  --telemetry trace-smoke/tune.jsonl --trace-csv trace-smoke/tune.csv
	dune exec bin/harmony_cli.exe -- stats trace-smoke/tune.jsonl
	dune exec bin/harmony_cli.exe -- tune --budget 60 --seed 7 --top-n 4 \
	  --telemetry trace-smoke/tune.json,chrome > /dev/null

# Trace-attribution gate (DESIGN.md §16): the 1k-client loadgen tier
# records a full correlated trace, then harmony_trace must (a)
# attribute at least 95% of the p99 handle latency to named phases and
# (b) resolve the p99 bucket's exemplar trace id to a span whose
# critical path prints end to end.  Artifacts land in trace-analyze/
# (CI uploads them).
trace-analyze:
	mkdir -p trace-analyze
	dune exec test/loadgen.exe -- --clients 1000 --shards 8 --domains 4 \
	  --trace trace-analyze/service.jsonl --flight-dump trace-analyze/flight.jsonl
	dune exec tools/trace/harmony_trace.exe -- attribute \
	  --min-p99-attribution 0.95 --check-exemplar trace-analyze/service.jsonl
	dune exec tools/trace/harmony_trace.exe -- top trace-analyze/service.jsonl \
	  > trace-analyze/top.txt
	dune exec tools/trace/harmony_trace.exe -- self trace-analyze/service.jsonl \
	  > trace-analyze/self.txt

bench:
	dune exec bench/main.exe

# Reproduction + ablations only; skips the Bechamel micro-benchmarks.
bench-quick:
	BENCH_QUICK=1 dune exec bench/main.exe

# Allocation-discipline smoke (DESIGN.md §12): evals/sec and minor
# words per evaluation for the MVA and DES objectives plus the
# batch+memo engine; exits non-zero if minor words/eval regresses
# more than 2x over the recorded baseline.  Re-record with
#   dune exec bench/evals.exe -- --write-baseline bench/evals_baseline.json
bench-evals:
	dune exec bench/evals.exe -- --check bench/evals_baseline.json

experiments:
	dune exec bin/harmony_cli.exe -- experiment all

examples:
	dune exec examples/quickstart.exe
	dune exec examples/webservice_autotune.exe
	dune exec examples/matrix_partition.exe
	dune exec examples/history_reuse.exe
	dune exec examples/climate_groups.exe
	dune exec examples/blocked_matmul.exe

clean:
	dune clean
