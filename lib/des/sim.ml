(* The event heap carries int slot indices into a handler slab; freed
   slots go on a free-list stack, so steady-state scheduling allocates
   only the caller's handler closure.  The clock lives in a one-cell
   floatarray: a mutable float field in this mixed record would box on
   every event. *)
type t = {
  clock : floatarray;
  events : Heap.t;
  mutable handlers : handler array;
  mutable used : int;
  mutable free : int array;
  mutable free_len : int;
}

and handler = t -> unit

let nop (_ : t) = ()

let create () =
  {
    clock = Float.Array.make 1 0.0;
    events = Heap.create ();
    handlers = [||];
    used = 0;
    free = [||];
    free_len = 0;
  }

let now t = Float.Array.get t.clock 0

let alloc_slot t handler =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    let s = t.free.(t.free_len) in
    t.handlers.(s) <- handler;
    s
  end
  else begin
    if t.used = Array.length t.handlers then begin
      let cap = Stdlib.max 16 (2 * Array.length t.handlers) in
      let handlers = Array.make cap nop in
      Array.blit t.handlers 0 handlers 0 t.used;
      t.handlers <- handlers
    end;
    let s = t.used in
    t.handlers.(s) <- handler;
    t.used <- t.used + 1;
    s
  end

let release_slot t s =
  (* Drop the closure so the GC can reclaim what it captured. *)
  t.handlers.(s) <- nop;
  if t.free_len = Array.length t.free then begin
    let cap = Stdlib.max 16 (2 * Array.length t.free) in
    let free = Array.make cap 0 in
    Array.blit t.free 0 free 0 t.free_len;
    t.free <- free
  end;
  t.free.(t.free_len) <- s;
  t.free_len <- t.free_len + 1

let schedule_at t ~time handler =
  if time < now t then invalid_arg "Sim.schedule_at: time in the past";
  Heap.push t.events time (alloc_slot t handler)

let schedule t ~delay handler =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Heap.push t.events (now t +. delay) (alloc_slot t handler)

let pending t = Heap.size t.events

let step t =
  if Heap.is_empty t.events then false
  else begin
    let time = Heap.min_key t.events in
    let slot = Heap.pop_payload t.events in
    let handler = t.handlers.(slot) in
    release_slot t slot;
    Float.Array.set t.clock 0 time;
    handler t;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let continue_ = ref true in
      while !continue_ do
        if (not (Heap.is_empty t.events)) && Heap.min_key t.events <= horizon
        then ignore (step t : bool)
        else begin
          Float.Array.set t.clock 0 (Float.max (now t) horizon);
          continue_ := false
        end
      done
