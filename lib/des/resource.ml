type waiting = { service_time : float; on_complete : Sim.t -> unit }

type t = {
  capacity : int;
  queue_limit : int option;
  queue : waiting Queue.t;
  mutable busy : int;
  mutable completed : int;
  mutable rejected : int;
  mutable busy_integral : float;
  mutable last_change : float;
}

let create ~capacity ?queue_limit () =
  if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
  (match queue_limit with
  | Some q when q < 0 -> invalid_arg "Resource.create: negative queue_limit"
  | Some _ | None -> ());
  {
    capacity;
    queue_limit;
    queue = Queue.create ();
    busy = 0;
    completed = 0;
    rejected = 0;
    busy_integral = 0.0;
    last_change = 0.0;
  }

let capacity t = t.capacity
let busy t = t.busy
let queued t = Queue.length t.queue
let completed t = t.completed
let rejected t = t.rejected

let account t now =
  t.busy_integral <- t.busy_integral +. (float_of_int t.busy *. (now -. t.last_change));
  t.last_change <- now

let utilization_time t = t.busy_integral

let rec start sim t w =
  account t (Sim.now sim);
  t.busy <- t.busy + 1;
  Sim.schedule sim ~delay:w.service_time (fun sim -> finish sim t w)

and finish sim t w =
  account t (Sim.now sim);
  t.busy <- t.busy - 1;
  t.completed <- t.completed + 1;
  w.on_complete sim;
  (* The freed server picks up the next queued request, if any. *)
  if t.busy < t.capacity then
    match Queue.take_opt t.queue with
    | Some w -> start sim t w
    | None -> ()

let submit sim t ~service_time ~on_complete ~on_reject =
  if service_time < 0.0 then invalid_arg "Resource.submit: negative service time";
  let w = { service_time; on_complete } in
  if t.busy < t.capacity then start sim t w
  else begin
    let full =
      match t.queue_limit with
      | None -> false
      | Some q -> Queue.length t.queue >= q
    in
    if full then begin
      t.rejected <- t.rejected + 1;
      on_reject sim
    end
    else Queue.push w t.queue
  end
