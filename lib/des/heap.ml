(* The heap is flattened onto parallel arrays — unboxed float keys,
   int insertion sequences (FIFO tie-break), int payloads — so a push
   or pop allocates nothing: the per-entry record of the naive
   representation costs four words per event, and the event loop is
   the simulator's hottest path. *)
type t = {
  mutable keys : floatarray;
  mutable seqs : int array;
  mutable vals : int array;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { keys = Float.Array.create 0; seqs = [||]; vals = [||]; len = 0; next_seq = 0 }

let size h = h.len
let is_empty h = h.len = 0

let less h i j =
  let ki = Float.Array.get h.keys i and kj = Float.Array.get h.keys j in
  ki < kj || (Float.equal ki kj && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = Float.Array.get h.keys i in
  Float.Array.set h.keys i (Float.Array.get h.keys j);
  Float.Array.set h.keys j k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h l !smallest then smallest := l;
  if r < h.len && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let cap = Stdlib.max 16 (2 * Float.Array.length h.keys) in
  let keys = Float.Array.make cap 0.0 in
  Float.Array.blit h.keys 0 keys 0 h.len;
  let seqs = Array.make cap 0 in
  Array.blit h.seqs 0 seqs 0 h.len;
  let vals = Array.make cap 0 in
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.seqs <- seqs;
  h.vals <- vals

let push h key value =
  let cap = Float.Array.length h.keys in
  if h.len = cap then grow h;
  Float.Array.set h.keys h.len key;
  h.seqs.(h.len) <- h.next_seq;
  h.vals.(h.len) <- value;
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min_key h =
  if h.len = 0 then invalid_arg "Heap.min_key: empty heap";
  Float.Array.get h.keys 0

let pop_payload h =
  if h.len = 0 then invalid_arg "Heap.pop_payload: empty heap";
  let v = h.vals.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    Float.Array.set h.keys 0 (Float.Array.get h.keys h.len);
    h.seqs.(0) <- h.seqs.(h.len);
    h.vals.(0) <- h.vals.(h.len);
    sift_down h 0
  end;
  v

let peek h =
  if h.len = 0 then None else Some (Float.Array.get h.keys 0, h.vals.(0))

let pop h =
  if h.len = 0 then None
  else begin
    let key = Float.Array.get h.keys 0 in
    Some (key, pop_payload h)
  end

let clear h =
  h.len <- 0;
  h.next_seq <- 0
