(** A binary min-heap keyed by float priority with FIFO tie-breaking.

    The event queue of the discrete-event simulator: events at equal
    times fire in insertion order, which keeps simulations
    deterministic.

    The heap is monomorphic — unboxed float keys and int payloads on
    parallel arrays — so push/pop allocate nothing; callers that need
    richer payloads keep them in a slab and queue the index (as
    {!Sim} does with its handler table). *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool
val push : t -> float -> int -> unit

val peek : t -> (float * int) option
(** Smallest key (earliest inserted among equals), without removing. *)

val pop : t -> (float * int) option
(** Remove and return the smallest key. *)

val min_key : t -> float
(** The smallest key, without removing or allocating.
    @raise Invalid_argument on an empty heap. *)

val pop_payload : t -> int
(** Remove the minimum and return its payload, without allocating.
    @raise Invalid_argument on an empty heap. *)

val clear : t -> unit
(** Empty the heap, keeping its storage for reuse. *)
