let require_non_empty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  require_non_empty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min a =
  require_non_empty "Stats.min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  require_non_empty "Stats.max" a;
  Array.fold_left Float.max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile_sorted b p =
  require_non_empty "Stats.percentile_sorted" b;
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_sorted: p out of range";
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let percentile a p =
  require_non_empty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  percentile_sorted (sorted_copy a) p

let median a = percentile a 50.0

(* In-place heapsort of the first [len] cells of a floatarray:
   allocation-free and deterministic (equal keys are interchangeable
   float values), for scratch buffers reused across evaluations. *)
let sort_floatarray ?len a =
  let n = match len with None -> Float.Array.length a | Some l -> l in
  if n < 0 || n > Float.Array.length a then
    invalid_arg "Stats.sort_floatarray: len out of range";
  let get = Float.Array.get a and set = Float.Array.set a in
  let swap i j =
    let t = get i in
    set i (get j);
    set j t
  in
  let rec sift_down i limit =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let largest = ref i in
    if l < limit && get l > get !largest then largest := l;
    if r < limit && get r > get !largest then largest := r;
    if !largest <> i then begin
      swap i !largest;
      sift_down !largest limit
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift_down i n
  done;
  for i = n - 1 downto 1 do
    swap 0 i;
    sift_down 0 i
  done

let percentile_sorted_floatarray ?len a p =
  let n = match len with None -> Float.Array.length a | Some l -> l in
  if n < 0 || n > Float.Array.length a then
    invalid_arg "Stats.percentile_sorted_floatarray: len out of range";
  if n = 0 then invalid_arg "Stats.percentile_sorted_floatarray: empty";
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_sorted_floatarray: p out of range";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  let vlo = Float.Array.get a lo and vhi = Float.Array.get a hi in
  vlo +. (frac *. (vhi -. vlo))

let mad a =
  require_non_empty "Stats.mad" a;
  let m = median a in
  median (Array.map (fun x -> Float.abs (x -. m)) a)

let rescale ~lo ~hi a =
  require_non_empty "Stats.rescale" a;
  let amin = min a and amax = max a in
  let span = amax -. amin in
  if Float.equal span 0.0 then Array.map (fun _ -> lo) a
  else Array.map (fun x -> lo +. ((x -. amin) /. span *. (hi -. lo))) a

let normalize a = rescale ~lo:0.0 ~hi:1.0 a

let histogram ~buckets ~lo ~hi a =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  let bucket_of x =
    let i = int_of_float ((x -. lo) /. width) in
    Stdlib.max 0 (Stdlib.min (buckets - 1) i)
  in
  Array.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) a;
  counts

let histogram_fractions ~buckets ~lo ~hi a =
  let counts = histogram ~buckets ~lo ~hi a in
  let total = float_of_int (Array.length a) in
  if Float.equal total 0.0 then Array.make buckets 0.0
  else Array.map (fun c -> float_of_int c /. total) counts

let pearson xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  if Array.length xs < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ys.(i) -. my in
        sxy := !sxy +. (dx *. dy);
        sxx := !sxx +. (dx *. dx);
        syy := !syy +. (dy *. dy))
      xs;
    if Float.equal !sxx 0.0 || Float.equal !syy 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end

let check_same_length name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch")

let chebyshev_distance a b =
  check_same_length "Stats.chebyshev_distance" a b;
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let euclidean_distance a b =
  check_same_length "Stats.euclidean_distance" a b;
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  sqrt !s
