(** Descriptive statistics over float arrays.

    Used throughout the experiment harness: oscillation magnitude
    (mean and standard deviation of the initial tuning window, Table
    2), performance-distribution histograms (Figure 4), and the
    normalizations used by the sensitivity tool (Section 3). *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Sample variance (divides by [n-1]); [0.] for arrays of length < 2. *)

val stddev : float array -> float
(** Sample standard deviation. *)

val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Median by sorting a copy. Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0, 100], linear interpolation
    between order statistics. Requires a non-empty array. *)

val percentile_sorted : float array -> float -> float
(** {!percentile} over an array the caller has {e already sorted}
    ascending — no copy, no sort.  Sort once, read many percentiles.
    Requires a non-empty array; unspecified on unsorted input. *)

val sort_floatarray : ?len:int -> floatarray -> unit
(** In-place ascending heapsort of the first [len] cells (default:
    the whole array) — allocation-free, for scratch buffers reused
    across evaluations.  Values must not be NaN (total order by [<]).
    @raise Invalid_argument when [len] is outside [0, length]. *)

val percentile_sorted_floatarray : ?len:int -> floatarray -> float -> float
(** {!percentile_sorted} over the first [len] cells of a sorted
    floatarray.
    @raise Invalid_argument on an empty prefix or [p] outside
    [0, 100]. *)

val mad : float array -> float
(** Median absolute deviation, [median |x_i - median a|]: the robust
    dispersion estimate behind the measurement pipeline's outlier
    rejection (a reading is suspect when its distance to the median
    exceeds a multiple of the MAD).  Requires a non-empty array. *)

val normalize : float array -> float array
(** Affine rescaling onto [0, 1]; constant arrays map to all zeros. *)

val rescale : lo:float -> hi:float -> float array -> float array
(** Affine rescaling onto [lo, hi]; constant arrays map to all [lo]. *)

val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
(** [histogram ~buckets ~lo ~hi a] counts values into [buckets]
    equal-width buckets spanning [lo, hi]; values outside the span are
    clamped into the end buckets. *)

val histogram_fractions :
  buckets:int -> lo:float -> hi:float -> float array -> float array
(** Same as {!histogram} but as fractions of the total count. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length arrays; [0.]
    when either side is constant. *)

val chebyshev_distance : float array -> float array -> float
val euclidean_distance : float array -> float array -> float
