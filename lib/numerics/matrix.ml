type t = { nrows : int; ncols : int; data : float array }

let make nrows ncols x =
  if nrows <= 0 || ncols <= 0 then invalid_arg "Matrix.make: non-positive size";
  { nrows; ncols; data = Array.make (nrows * ncols) x }

let init nrows ncols f =
  if nrows <= 0 || ncols <= 0 then invalid_arg "Matrix.init: non-positive size";
  { nrows; ncols; data = Array.init (nrows * ncols) (fun k -> f (k / ncols) (k mod ncols)) }

let rows m = m.nrows
let cols m = m.ncols

let get m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.ncols) + j)

let set m i j x =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then
    invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.ncols) + j) <- x

let of_rows arr =
  let nrows = Array.length arr in
  if nrows = 0 then invalid_arg "Matrix.of_rows: no rows";
  let ncols = Array.length arr.(0) in
  if ncols = 0 then invalid_arg "Matrix.of_rows: empty rows";
  Array.iter
    (fun r -> if Array.length r <> ncols then invalid_arg "Matrix.of_rows: ragged rows")
    arr;
  init nrows ncols (fun i j -> arr.(i).(j))

let to_rows m = Array.init m.nrows (fun i -> Array.init m.ncols (fun j -> get m i j))
let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let copy m = { m with data = Array.copy m.data }
let row m i = Array.init m.ncols (fun j -> get m i j)
let col m j = Array.init m.nrows (fun i -> get m i j)
let transpose m = init m.ncols m.nrows (fun i j -> get m j i)
let map f m = { m with data = Array.map f m.data }

let zip_with name f a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then
    invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = zip_with "Matrix.add" ( +. ) a b
let sub a b = zip_with "Matrix.sub" ( -. ) a b
let scale s m = map (fun x -> s *. x) m

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = make a.nrows b.ncols 0.0 in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = get a i k in
      if not (Float.equal aik 0.0) then
        for j = 0 to b.ncols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mul_vec a x =
  if a.ncols <> Array.length x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.nrows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.ncols - 1 do
        s := !s +. (get a i j *. x.(j))
      done;
      !s)

let solve a b =
  let n = a.nrows in
  if a.ncols <> n then invalid_arg "Matrix.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Matrix.solve: rhs size mismatch";
  let m = copy a in
  let x = Array.copy b in
  (* Gaussian elimination with partial pivoting. *)
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot k) then pivot := i
    done;
    if Float.abs (get m !pivot k) < 1e-12 then failwith "Matrix.solve: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. get m k k in
      if not (Float.equal factor 0.0) then begin
        for j = k to n - 1 do
          set m i j (get m i j -. (factor *. get m k j))
        done;
        x.(i) <- x.(i) -. (factor *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get m i j *. x.(j))
    done;
    x.(i) <- !s /. get m i i
  done;
  x

let equal ?(eps = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && begin
       let ok = ref true in
       Array.iteri
         (fun k x -> if Float.abs (x -. b.data.(k)) > eps then ok := false)
         a.data;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.nrows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
