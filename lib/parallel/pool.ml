module Telemetry = Harmony_telemetry.Telemetry

(* A cooperative-cancellation token: one atomic flag, checked at task
   boundaries.  [none] is represented as [None] so that cancelling a
   caller's own token can never affect callers that passed no token. *)
module Cancel = struct
  type t = bool Atomic.t option

  let none : t = None
  let create () = Some (Atomic.make false)
  let cancel = function None -> () | Some flag -> Atomic.set flag true
  let cancelled = function None -> false | Some flag -> Atomic.get flag
end

exception Cancelled

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* new tasks queued, or the pool is closing *)
  queue : (unit -> unit) Queue.t;
  telemetry : Telemetry.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

(* Registry names.  Per-domain task counters attribute work to the
   domain that ran it: index 0 is the submitting domain (which helps
   drain the queue), workers are 1..size-1.  Scheduling decides which
   domain takes which task, so these counters are utilization
   observations, not deterministic quantities — the task *results*
   stay input-ordered regardless. *)
let c_tasks = "pool.tasks"
let g_queue_depth = "pool.queue_depth.max"
let h_batch_size = "pool.batch_size"
let batch_size_bounds = [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
let domain_counter i = Printf.sprintf "pool.domain.%d.tasks" i

(* Worker domains block on [work] until a task (or shutdown) arrives.
   Tasks never raise: submission wraps them in per-task capture. *)
let worker_loop t index =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        Telemetry.incr t.telemetry (domain_counter index);
        task ();
        loop ()
    | None ->
        (* closed and drained *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ?(telemetry = Telemetry.off) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      telemetry;
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1)
      (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?telemetry ~domains f =
  let t = create ?telemetry ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Every task slot checks the token once, immediately before running:
   a cancelled batch still returns one result per input (Error
   Cancelled in the slots that never ran), so callers can tell shed
   work from finished work deterministically. *)
let run_one cancel f x =
  if Cancel.cancelled cancel then Error Cancelled
  else try Ok (f x) with e -> Error e

let sequential_try cancel f a = Array.map (run_one cancel f) a

let try_map_array ?(cancel = Cancel.none) t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    Telemetry.incr t.telemetry ~by:n c_tasks;
    (* Fan-out width per batch, observed on the submitting domain: the
       trace analyzer joins a parent span's cross-domain children
       through the batch boundary, and this histogram is its view of
       how wide those boundaries are.  Deterministic — batches are
       submitted in program order regardless of scheduling. *)
    Telemetry.observe t.telemetry ~bounds:batch_size_bounds h_batch_size
      (float_of_int n);
    if t.size = 1 || n = 1 then begin
      Telemetry.incr t.telemetry ~by:n (domain_counter 0);
      sequential_try cancel f a
    end
    else begin
      (* Results land by input index, so ordering is independent of
         scheduling.  [pending] and [results] are only touched under the
         pool mutex; the submitting domain helps drain the queue (which
         also makes nested submissions from inside tasks deadlock-free)
         and sleeps on [finished] only when all its tasks are already
         running elsewhere. *)
      let results = Array.make n None in
      let pending = ref n in
      let finished = Condition.create () in
      let task i () =
        let r = run_one cancel f a.(i) in
        Mutex.protect t.mutex (fun () ->
            results.(i) <- Some r;
            decr pending;
            if !pending = 0 then Condition.broadcast finished)
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (task i) t.queue
      done;
      let depth = Queue.length t.queue in
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* High-water mark of the queue, taken outside the pool mutex:
         lock order is pool mutex before telemetry lock, never both. *)
      Telemetry.gauge_max t.telemetry g_queue_depth (float_of_int depth);
      Mutex.lock t.mutex;
      while !pending > 0 do
        match Queue.take_opt t.queue with
        | Some job ->
            Mutex.unlock t.mutex;
            Telemetry.incr t.telemetry (domain_counter 0);
            job ();
            Mutex.lock t.mutex
        | None -> Condition.wait finished t.mutex
      done;
      Mutex.unlock t.mutex;
      Array.map (function Some r -> r | None -> assert false) results
    end
  end

let map_array ?cancel t f a =
  let results = try_map_array ?cancel t f a in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Array.map (function Ok v -> v | Error _ -> assert false) results

let map ?cancel t f xs =
  Array.to_list (map_array ?cancel t f (Array.of_list xs))
