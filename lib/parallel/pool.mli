(** A fixed-size domain pool for parallel objective evaluation.

    OCaml 5 domains give true parallelism; this pool keeps a fixed set
    of worker domains alive behind a shared work queue so that hot
    paths (sensitivity sweeps, experiment reproduction, bench
    ablations) can fan independent tasks out without paying domain
    spawn cost per task.

    Design points, in decreasing order of importance:

    - {b Deterministic ordering.}  [map] and [map_array] return results
      in input order no matter which domain ran which task or in what
      order tasks finished.  Combined with per-task RNG seeding at the
      call sites, a pool of any size produces byte-identical output to
      the sequential path.
    - {b Per-task exception capture.}  A task that raises does not
      tear down the pool or abandon its siblings: every task runs to
      completion and [try_map_array] hands back one [result] per
      input.  [map]/[map_array] re-raise the first (by input index)
      captured exception after all tasks have finished.
    - {b Nested use is safe.}  The submitting domain helps drain the
      queue while it waits, so a task may itself call [map] on the
      same pool (e.g. an experiment fanned out by the registry calling
      a pooled sensitivity analysis) without deadlock, and a pool of
      size 1 degenerates to plain sequential [map]. *)

type t

(** Cooperative cancellation.  A token is a single atomic flag shared
    between the caller and the pool: once {!Cancel.cancel}led, every
    task that has not yet started resolves to [Error Cancelled]
    instead of running.  Tasks already running are never interrupted
    (results stay deterministic per slot: a task either ran to
    completion or did not run at all), so cancellation is checked only
    at task boundaries — a long task should poll
    {!Cancel.cancelled} itself if it wants to stop early. *)
module Cancel : sig
  type t

  val none : t
  (** The never-cancelled token; [cancel none] is a no-op, so sharing
      it is safe. *)

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

exception Cancelled
(** The [Error] payload filled into slots shed by cancellation. *)

val create : ?telemetry:Harmony_telemetry.Telemetry.t -> domains:int -> unit -> t
(** [create ~domains ()] starts a pool that runs at most [domains]
    tasks in parallel: [domains - 1] worker domains plus the
    submitting domain, which always participates.  [domains = 1]
    spawns no domains at all and evaluates everything sequentially in
    the caller.  With a live [telemetry] handle the pool records a
    [pool.tasks] counter, a [pool.queue_depth.max] high-water gauge,
    and per-domain [pool.domain.N.tasks] utilization counters (N = 0
    is the submitting domain) — utilization is a scheduling
    observation and may vary run to run; task results never do.
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    the runtime suggests; the CLI's [--jobs] default. *)

val map : ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] evaluates [f] over [xs] in parallel and returns the
    results in input order.  If any task raised, the first exception
    by input index is re-raised once every task has finished.  With
    [cancel], slots shed by cancellation carry {!Cancelled} (and so
    re-raise it here). *)

val map_array : ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of [map]. *)

val try_map_array :
  ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Like [map_array] but every per-task exception is captured in its
    slot instead of re-raised, so one failing task cannot lose the
    others' results.  Slots whose task had not started when [cancel]
    fired hold [Error Cancelled]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Tasks submitted
    after shutdown still complete (the caller runs them itself), so a
    shut-down pool behaves like a pool of size 1. *)

val with_pool :
  ?telemetry:Harmony_telemetry.Telemetry.t -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)
