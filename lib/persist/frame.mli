(** Length+CRC-framed records.

    The journal's on-disk unit: an 8-byte little-endian header
    ([payload length], [CRC-32 of the payload]) followed by the
    payload bytes.  The codec is built for torn-write tolerance — a
    scan of arbitrary bytes never raises; it stops cleanly at the
    first short or corrupt record and reports how far the valid
    prefix reached, so a crash mid-append costs exactly the record
    being written and nothing before it. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3 polynomial) of the whole string, in
    [0, 0xFFFFFFFF]. *)

val encode : string -> string
(** Frame one payload: 4-byte LE length, 4-byte LE CRC-32, payload. *)

val encoded_size : string -> int
(** [String.length (encode payload)] without building the frame. *)

val max_payload : int
(** Upper bound on accepted payload length (16 MiB).  A scan treats a
    larger length field as corruption — it bounds the allocation a
    garbage header can demand.  [encode] rejects larger payloads with
    [Invalid_argument]. *)

type scan = {
  records : string list;  (** decoded payloads, in order *)
  boundaries : int list;
      (** byte offset after each decoded record (so [List.nth
          boundaries i] is where record [i+1] starts); same length as
          [records] *)
  valid_bytes : int;  (** bytes covered by the decoded prefix *)
  torn : bool;
      (** true when trailing bytes were dropped (short or corrupt
          final record) *)
}

val scan : string -> scan
(** Decode the longest valid prefix of framed records.  Total: never
    raises, whatever the input bytes.  [encode]d streams scan back to
    their exact record list with [torn = false]. *)
