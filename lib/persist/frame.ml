(* CRC-32 (reflected, polynomial 0xEDB88320), table-driven.  Plain
   native ints masked to 32 bits — no Int32 boxing on the append
   path. *)

let mask = 0xFFFFFFFF

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let c = ref mask in
  String.iter
    (fun ch -> c := crc_table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor mask land mask

let header_size = 8
let max_payload = 16 * 1024 * 1024

let encoded_size payload = header_size + String.length payload

let encode payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_size + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

type scan = {
  records : string list;
  boundaries : int list;
  valid_bytes : int;
  torn : bool;
}

(* Read a 32-bit LE unsigned field; the caller has bounds-checked. *)
let u32 s off = Int32.to_int (String.get_int32_le s off) land mask

let scan s =
  let n = String.length s in
  let rec go off rev_records rev_bounds =
    if off + header_size > n then finish off rev_records rev_bounds (off < n)
    else
      let len = u32 s off in
      if len > max_payload || off + header_size + len > n then
        finish off rev_records rev_bounds true
      else
        let payload = String.sub s (off + header_size) len in
        if crc32 payload <> u32 s (off + 4) then
          finish off rev_records rev_bounds true
        else
          let off' = off + header_size + len in
          go off' (payload :: rev_records) (off' :: rev_bounds)
  and finish off rev_records rev_bounds torn =
    {
      records = List.rev rev_records;
      boundaries = List.rev rev_bounds;
      valid_bytes = off;
      torn;
    }
  in
  go 0 [] []
