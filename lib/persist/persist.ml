type sink = {
  write : string -> unit;
  sync : unit -> unit;
  reset : unit -> unit;
  close : unit -> unit;
}

exception Crashed

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let written = Unix.write fd b off (n - off) in
      go (off + written)
  in
  go 0

let file_sink ?trim_to path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  (match trim_to with None -> () | Some n -> Unix.ftruncate fd n);
  let closed = ref false in
  {
    write = (fun s -> write_all fd s);
    sync = (fun () -> Unix.fsync fd);
    reset = (fun () -> Unix.ftruncate fd 0);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          Unix.close fd
        end);
  }

let buffer_sink buf =
  {
    write = (fun s -> Buffer.add_string buf s);
    sync = (fun () -> ());
    reset = (fun () -> Buffer.clear buf);
    close = (fun () -> ());
  }

let fault_sink ~limit_bytes sink =
  let written = ref 0 in
  let write s =
    let len = String.length s in
    if !written + len <= limit_bytes then begin
      written := !written + len;
      sink.write s
    end
    else begin
      let fits = limit_bytes - !written in
      if fits > 0 then sink.write (String.sub s 0 fits);
      written := limit_bytes;
      (* The torn bytes hit the medium before the "process" dies. *)
      sink.sync ();
      raise Crashed
    end
  in
  { sink with write }

(* Make a rename durable: fsync the containing directory.  Not every
   platform allows opening a directory for this; the rename itself is
   still atomic, so failures only widen the crash window. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_atomic ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd data;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | exception (End_of_file | Sys_error _) -> None
          | s -> Some s)

let remove_if_exists path =
  match Sys.remove path with
  | () -> ()
  | exception Sys_error _ -> ()
