(** Append-only write-ahead journal of framed records.

    One record per {!append}, length+CRC framed ({!Frame}), fsync'd
    before the call returns: once [append] comes back, that record
    survives a crash.  Opening an existing journal decodes the
    longest valid prefix and truncates the file to it, so a torn tail
    from a previous crash can never sit in front of new appends. *)

type t

val open_file :
  ?wrap:(Persist.sink -> Persist.sink) -> string -> Frame.scan * t
(** Open (or create) the journal at [path].  Returns the scan of the
    existing contents — the longest valid record prefix — and an
    appender positioned right after it (the file is truncated to
    [scan.valid_bytes] first).  [wrap] interposes on the underlying
    file sink (fault injection in the crash harness).
    @raise Sys_error (or [Unix.Unix_error]) on I/O failure. *)

val of_sink : Persist.sink -> t
(** Journal over an arbitrary sink (in-memory tests). *)

val append : t -> string -> unit
(** Frame, write, fsync.  Durable when it returns.
    @raise Persist.Crashed from a fault sink; I/O errors propagate —
    a journal that cannot persist must not pretend it did. *)

val records : t -> int
(** Records appended since open, plus the valid prefix found then. *)

val reset : t -> unit
(** Truncate to empty (used right after a snapshot compaction). *)

val close : t -> unit

val read : string -> Frame.scan
(** Scan a journal file without opening an appender.  Missing or
    unreadable files scan as empty.  Total: never raises. *)
