type t = { sink : Persist.sink; mutable records : int }

let of_sink sink = { sink; records = 0 }

let open_file ?(wrap = Fun.id) path =
  let existing =
    match Persist.read_file path with None -> "" | Some bytes -> bytes
  in
  let scan = Frame.scan existing in
  let sink = wrap (Persist.file_sink ~trim_to:scan.Frame.valid_bytes path) in
  (scan, { sink; records = List.length scan.Frame.records })

let append t payload =
  t.sink.Persist.write (Frame.encode payload);
  t.sink.Persist.sync ();
  t.records <- t.records + 1

let records t = t.records

let reset t =
  t.sink.Persist.reset ();
  t.records <- 0

let close t = t.sink.Persist.close ()

let read path =
  match Persist.read_file path with
  | None -> Frame.scan ""
  | Some bytes -> Frame.scan bytes
