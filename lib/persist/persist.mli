(** Durable byte I/O: sinks, atomic whole-file writes, fault injection.

    A {!sink} is the journal's write target — a real file descriptor
    with fsync, an in-memory buffer for tests, or a faultable wrapper
    that dies mid-write like a crashing process.  {!write_atomic} is
    the only sanctioned way to overwrite a durable file in this
    codebase: tmp file, fsync, rename, so readers observe either the
    old contents or the new, never a torn mixture. *)

type sink = {
  write : string -> unit;  (** append bytes; may raise {!Crashed} *)
  sync : unit -> unit;  (** make appended bytes durable (fsync) *)
  reset : unit -> unit;  (** discard all content (truncate to empty) *)
  close : unit -> unit;  (** release resources; idempotent *)
}

exception Crashed
(** Raised by a {!fault_sink} once its byte budget is exhausted —
    models the process being killed mid-write. *)

val file_sink : ?trim_to:int -> string -> sink
(** Append-mode sink on [path], creating the file if missing.
    [trim_to], when given, first truncates the file to that many
    bytes (recovery uses it to drop a torn tail before appending).
    [sync] is a real [fsync].
    @raise Sys_error (or [Unix.Unix_error]) on I/O failure. *)

val buffer_sink : Buffer.t -> sink
(** In-memory sink; [sync] is a no-op, [reset] clears the buffer. *)

val fault_sink : limit_bytes:int -> sink -> sink
(** Wrap [sink] so that after [limit_bytes] total bytes have been
    written, every write raises {!Crashed} — the overflowing write
    first delivers the bytes that still fit, leaving a torn record
    behind, exactly like a kill mid-[write(2)].  The budget counts
    across [reset]. *)

val write_atomic : path:string -> string -> unit
(** Replace [path]'s contents atomically: write [path ^ ".tmp"],
    fsync it, rename over [path], then best-effort fsync of the
    containing directory.  A crash at any point leaves either the old
    file or the new one.
    @raise Sys_error (or [Unix.Unix_error]) on I/O failure. *)

val read_file : string -> string option
(** Whole-file read (binary).  [None] when the file does not exist or
    cannot be read — corrupt-input handling never starts with an
    exception. *)

val remove_if_exists : string -> unit
(** Delete [path] when present; errors are ignored (best effort). *)
