open Harmony
open Harmony_webservice
module Rng = Harmony_numerics.Rng

type row = {
  workload : string;
  with_history : bool;
  convergence_time : int;
  initial_mean : float;
  initial_stddev : float;
  bad_iterations : int;
  performance : float;
}

type result = {
  rows : row list;
  convergence_reduction : (string * float) list;
}

let row_of_outcome obj ~workload ~with_history ~reference outcome =
  let m = Tuner.Metrics.of_outcome ~convergence_fraction:0.02 ~reference obj outcome in
  {
    workload;
    with_history;
    convergence_time = m.Tuner.Metrics.convergence_iteration;
    initial_mean = m.Tuner.Metrics.initial_mean;
    initial_stddev = m.Tuner.Metrics.initial_stddev;
    bad_iterations = m.Tuner.Metrics.bad_iterations;
    performance = m.Tuner.Metrics.performance;
  }

let run ?(max_evaluations = 150) ?(seed = 11) () =
  let options = { Tuner.default_options with Tuner.max_evaluations } in
  (* Live measurements vary run to run; a 3% uniform perturbation
     keeps the warm start from being trivially optimal. *)
  let noisy mix noise_seed =
    Harmony_objective.Objective.with_noise (Rng.create noise_seed) ~level:0.03
      (Model.objective ~mix ())
  in
  let pair ~served ~trained_on =
    let obj = noisy served (seed + 100) in
    let label = served.Tpcw.label in
    (* Without prior histories: cold start. *)
    let cold = Tuner.tune ~options obj in
    (* With prior histories: train on experience recorded under the
       other workload, characterized by its observed web-interaction
       frequencies. *)
    let trainer_obj = noisy trained_on (seed + 200) in
    let experience = Tuner.tune ~options trainer_obj in
    let db = History.create () in
    let train_chars =
      Tpcw.observed_frequencies (Rng.create seed) trained_on ~samples:500
    in
    ignore
      (History.add_outcome db ~label:trained_on.Tpcw.label
         ~characteristics:train_chars experience);
    let analyzer = Analyzer.create db in
    let observed =
      Tpcw.observed_frequencies (Rng.create (seed + 1)) served ~samples:500
    in
    let warm, _prep =
      Analyzer.tune_with_experience ~options analyzer obj ~characteristics:observed
    in
    (* Judge both runs against the same target: the worse of the two
       final results, so "convergence" means reaching a common
       performance level. *)
    let reference =
      Harmony_objective.Objective.worst_of obj
        [| cold.Tuner.best_performance; warm.Tuner.best_performance |]
    in
    [
      row_of_outcome obj ~workload:label ~with_history:false ~reference cold;
      row_of_outcome obj ~workload:label ~with_history:true ~reference warm;
    ]
  in
  let rows =
    pair ~served:Tpcw.shopping ~trained_on:Tpcw.browsing
    @ pair ~served:Tpcw.ordering ~trained_on:Tpcw.shopping
  in
  let reduction label =
    let find h =
      match
        List.find_opt (fun r -> r.workload = label && r.with_history = h) rows
      with
      | Some r -> r
      | None -> invalid_arg ("Table2: missing row for " ^ label)
    in
    let cold = find false and warm = find true in
    ( label,
      1.0
      -. (float_of_int warm.convergence_time /. float_of_int (max 1 cold.convergence_time))
    )
  in
  { rows; convergence_reduction = [ reduction "shopping"; reduction "ordering" ] }

let table ?max_evaluations ?seed () =
  let r = run ?max_evaluations ?seed () in
  let rows =
    List.map
      (fun row ->
        [
          row.workload;
          (if row.with_history then "with histories" else "without histories");
          string_of_int row.convergence_time;
          Printf.sprintf "%.2f (%.2f)" row.initial_mean row.initial_stddev;
          string_of_int row.bad_iterations;
          Report.f1 row.performance;
        ])
      r.rows
  in
  let notes =
    List.map
      (fun (label, red) ->
        Printf.sprintf "%s: convergence time reduced by %s" label (Report.pct red))
      r.convergence_reduction
    @ [
        "paper: 56% (shopping) / 17% (ordering) faster convergence;";
        "paper: bad iterations 9 -> 1 (shopping), 11 -> 3 (ordering)";
      ]
  in
  Report.make ~id:"table2" ~title:"Tuning with and without prior histories (Table 2)"
    ~columns:
      [
        "workload"; "variant"; "convergence (iters)"; "initial avg (stddev)";
        "bad iters"; "WIPS";
      ]
    ~notes rows
