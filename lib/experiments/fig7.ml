open Harmony
module Generator = Harmony_datagen.Generator
module Objective = Harmony_objective.Objective

type point = { distance : float; tuning_time : int; performance : float }

type result = { points : point list; cold_time : int; cold_performance : float }

(* Unit directions along which A' drifts away from A in
   workload-characteristic space; each distance is averaged over all
   of them so the trend does not hinge on one lucky direction. *)
let drifts =
  [|
    [| -0.707; 0.424; 0.566 |];
    [| 0.0; -0.707; 0.707 |];
    [| -0.577; 0.577; 0.577 |];
    [| 0.577; -0.577; 0.577 |];
    [| -0.301; 0.904; -0.301 |];
  |]

let workload_at base drift d =
  Array.mapi
    (fun i v -> Float.min 1.0 (Float.max 0.0 (v +. (d *. drift.(i)))))
    base

let euclidean = Harmony_numerics.Stats.euclidean_distance

let run ?pool ?(seed = 42) ?(distances = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ]) () =
  let g = Generator.synthetic_webservice ~seed () in
  let current = Generator.shopping_mix in
  let objective_for w = Generator.objective g ~workload:w in
  let obj_a = objective_for current in
  (* Cold-start reference run; its final performance is the common
     convergence target for every seeded run. *)
  let cold = Tuner.tune ?pool obj_a in
  let reference = cold.Tuner.best_performance in
  let metrics_of outcome = Tuner.Metrics.of_outcome ~reference obj_a outcome in
  let cold_m = metrics_of cold in
  let arm drift d =
    let w' = workload_at current drift d in
    (* Record experience under A'. *)
    let experience = Tuner.tune ?pool (objective_for w') in
    let db = History.create () in
    ignore (History.add_outcome db ~label:"A'" ~characteristics:w' experience);
    let analyzer = Analyzer.create db in
    let outcome, _prep =
      Analyzer.tune_with_experience analyzer obj_a ~characteristics:current
    in
    let m = metrics_of outcome in
    ( euclidean w' current,
      m.Tuner.Metrics.convergence_iteration,
      m.Tuner.Metrics.performance )
  in
  (* Every (drift, distance) arm records and replays its own history
     against its own objectives, so the 35 arms are independent: the
     longest experiment of the registry fans out across the pool
     (nested submission — the registry may already be running this
     whole experiment as a pool task). *)
  let tasks =
    List.concat_map
      (fun d -> Array.to_list (Array.map (fun drift -> (drift, d)) drifts))
      distances
  in
  let run_arm (drift, d) = arm drift d in
  let arms =
    match pool with
    | Some pool -> Harmony_parallel.Pool.map pool run_arm tasks
    | None -> List.map run_arm tasks
  in
  let point _d arms =
    let k = float_of_int (List.length arms) in
    let sum f = List.fold_left (fun acc a -> acc +. f a) 0.0 arms in
    {
      distance = sum (fun (dist, _, _) -> dist) /. k;
      tuning_time =
        int_of_float
          (Float.round (sum (fun (_, t, _) -> float_of_int t) /. k));
      performance = sum (fun (_, _, p) -> p) /. k;
    }
  in
  (* [arms] preserves task order: one chunk of [Array.length drifts]
     consecutive results per distance. *)
  let rec chunks n = function
    | [] -> []
    | arms ->
        let rec take k acc rest =
          if k = 0 then (List.rev acc, rest)
          else match rest with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (k - 1) (x :: acc) tl
        in
        let mine, theirs = take n [] arms in
        mine :: chunks n theirs
  in
  {
    points = List.map2 point distances (chunks (Array.length drifts) arms);
    cold_time = cold_m.Tuner.Metrics.convergence_iteration;
    cold_performance = cold_m.Tuner.Metrics.performance;
  }

let table ?pool ?seed () =
  let r = run ?pool ?seed () in
  let rows =
    List.map
      (fun p ->
        [ Report.f2 p.distance; string_of_int p.tuning_time; Report.f2 p.performance ])
      r.points
  in
  Report.make ~id:"fig7" ~title:"Tuning using experiences at increasing distance"
    ~columns:[ "distance(A,A')"; "tuning time (iters)"; "performance" ]
    ~notes:
      [
        Printf.sprintf "cold start (no history): %d iterations, performance %.2f"
          r.cold_time r.cold_performance;
        "paper: closer experience means shorter tuning, similar final performance";
      ]
    rows
