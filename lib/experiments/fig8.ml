open Harmony
open Harmony_webservice

type result = {
  names : string array;
  shopping : float array;
  ordering : float array;
}

let sensitivities mix =
  let obj = Model.objective ~mix () in
  let report = Sensitivity.analyze obj in
  Array.map (fun s -> s.Sensitivity.sensitivity) report.Sensitivity.scores

let run () =
  {
    names = Wsconfig.param_names;
    shopping = sensitivities Tpcw.shopping;
    ordering = sensitivities Tpcw.ordering;
  }

let rank values names =
  let idx = Array.init (Array.length values) Fun.id in
  Array.sort (fun a b -> Float.compare values.(b) values.(a)) idx;
  Array.to_list (Array.map (fun i -> names.(i)) idx)

let table () =
  let r = run () in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           [ name; Report.f2 r.shopping.(i); Report.f2 r.ordering.(i) ])
         r.names)
  in
  Report.make ~id:"fig8"
    ~title:"Parameter sensitivity in the cluster-based web service"
    ~columns:[ "parameter"; "shopping"; "ordering" ]
    ~notes:
      [
        "paper: MySQL net buffer matters more under ordering; proxy cache memory under shopping";
        "paper: HTTP buffer and accept counts are relatively unimportant for both";
      ]
    rows
