(** Experiment registry: every table/figure of the paper, runnable by
    id from the CLI and the bench harness. *)

val all :
  (string * string * (Harmony_parallel.Pool.t option -> Report.table)) list
(** (id, description, runner) for every experiment, in paper order.
    Runners take the pool ([None] = sequential); experiments with
    independent internal arms (fig7) fan them out through it. *)

val ids : string list

val find : string -> (Harmony_parallel.Pool.t option -> Report.table) option

val tables : ?pool:Harmony_parallel.Pool.t -> unit -> (string * Report.table) list
(** Run every experiment and return [(id, table)] in paper order.
    [pool] runs the experiments concurrently; every experiment seeds
    its own RNGs, so the tables are byte-identical to the sequential
    ones regardless of scheduling. *)

val run_all : ?pool:Harmony_parallel.Pool.t -> Format.formatter -> unit
(** Run every experiment and print its table, in paper order even
    when [pool] executes them out of order. *)
