type table = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg ("Report.make: ragged row in " ^ id))
    rows;
  { id; title; columns; rows; notes }

let print ppf t =
  let all_rows = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let width j =
    List.fold_left
      (fun acc row ->
        max acc (String.length (Option.value ~default:"" (List.nth_opt row j))))
      0 all_rows
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let print_row row =
    List.iteri
      (fun j cell ->
        if j > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%s"
          (pad cell (Option.value ~default:0 (List.nth_opt widths j))))
      row;
    Format.fprintf ppf "@."
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  print_row t.columns;
  let total = List.fold_left ( + ) (2 * (ncols - 1)) widths in
  Format.fprintf ppf "%s@." (String.make total '-');
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes;
  Format.fprintf ppf "@."

let to_string t = Format.asprintf "%a" print t
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
