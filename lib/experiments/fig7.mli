(** Figure 7: tuning with experiences recorded under workloads at
    increasing distance from the current one.

    The system faces workload A; the tuning server is first trained
    with historical data recorded under a workload A' whose
    characteristics lie at Euclidean distance d from A's.  The paper
    shows tuning time growing with d while the tuning result stays
    roughly flat: experience close to the current workload helps
    most. *)

type point = {
  distance : float;        (** characteristic-space distance A to A' *)
  tuning_time : int;       (** convergence iteration when seeded with A' *)
  performance : float;     (** tuned performance under A *)
}

type result = {
  points : point list;
  cold_time : int;         (** no-history reference *)
  cold_performance : float;
}

val run :
  ?pool:Harmony_parallel.Pool.t ->
  ?seed:int ->
  ?distances:float list ->
  unit ->
  result
(** Distances default to 0.0, 0.1 ... 0.6 in normalized
    characteristic space (the paper's x-axis 0..6 rescaled).  [pool]
    fans the independent (drift, distance) arms out across domains;
    the result is identical to the sequential one. *)

val table : ?pool:Harmony_parallel.Pool.t -> ?seed:int -> unit -> Report.table
