open Harmony
open Harmony_param
module Rng = Harmony_numerics.Rng
module Generator = Harmony_datagen.Generator

type result = {
  names : string array;
  perturbations : float array;
  sensitivities : float array array;
  irrelevant : string list;
}

let default_perturbations = [| 0.0; 0.05; 0.10; 0.25 |]

let run ?(seed = 42) ?(perturbations = default_perturbations) () =
  let g = Generator.synthetic_webservice ~seed () in
  let space = Generator.space g in
  let names = Array.map (fun p -> p.Param.name) (Space.params space) in
  let base = Generator.objective g ~workload:Generator.shopping_mix in
  let sensitivities =
    Array.mapi
      (fun i level ->
        let obj =
          if Float.equal level 0.0 then base
          else
            Harmony_objective.Objective.with_noise
              (Rng.create (seed + (31 * i)))
              ~level base
        in
        let report = Sensitivity.analyze obj in
        Array.map (fun s -> s.Sensitivity.sensitivity) report.Sensitivity.scores)
      perturbations
  in
  let irrelevant =
    List.map (fun i -> names.(i)) (Generator.irrelevant g)
  in
  { names; perturbations; sensitivities; irrelevant }

let table ?seed () =
  let r = run ?seed () in
  let rows =
    Array.to_list
      (Array.mapi
         (fun p name ->
           name
           :: Array.to_list
                (Array.map (fun row -> Report.f2 row.(p)) r.sensitivities))
         r.names)
  in
  let columns =
    "parameter"
    :: Array.to_list (Array.map (fun l -> Report.pct l) r.perturbations)
  in
  Report.make ~id:"fig5" ~title:"Parameter sensitivity of the synthetic data"
    ~columns
    ~notes:
      [
        "ground-truth irrelevant parameters: " ^ String.concat ", " r.irrelevant;
        "paper: H and M stand out as irrelevant at every perturbation level";
      ]
    rows
