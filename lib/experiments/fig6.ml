open Harmony
module Rng = Harmony_numerics.Rng
module Generator = Harmony_datagen.Generator
module Objective = Harmony_objective.Objective

type cell = {
  n : int;
  perturbation : float;
  tuning_time : int;
  performance : float;
}

type result = { cells : cell list; full_time : int; full_performance : float }

let tune_top_n ~seed ~clean ~level n =
  let noisy =
    if Float.equal level 0.0 then clean
    else Objective.with_noise (Rng.create (seed + (97 * n))) ~level clean
  in
  (* Prioritize on the noisy objective (the tool sees the same
     measurement noise the tuner does), but score the tuned
     configuration noise-free. *)
  let report = Sensitivity.analyze noisy in
  let indices = Sensitivity.top_n report n in
  let sub = Subspace.project noisy ~indices () in
  let outcome = Tuner.tune (Subspace.objective sub) in
  let metrics = Tuner.Metrics.of_outcome (Subspace.objective sub) outcome in
  let full_config = Subspace.embed sub outcome.Tuner.best_config in
  {
    n;
    perturbation = level;
    tuning_time = metrics.Tuner.Metrics.settling_iteration;
    performance = clean.Objective.eval full_config;
  }

let run ?(seed = 42) ?(ns = [ 1; 5; 9; 12; 15 ]) ?(perturbations = [ 0.0; 0.05; 0.10; 0.25 ])
    () =
  let g = Generator.synthetic_webservice ~seed () in
  let clean = Generator.objective g ~workload:Generator.shopping_mix in
  let cells =
    List.concat_map
      (fun level -> List.map (tune_top_n ~seed ~clean ~level) ns)
      perturbations
  in
  let full = tune_top_n ~seed ~clean ~level:0.0 15 in
  { cells; full_time = full.tuning_time; full_performance = full.performance }

let table ?seed () =
  let r = run ?seed () in
  let rows =
    List.map
      (fun c ->
        [
          Report.pct c.perturbation;
          string_of_int c.n;
          string_of_int c.tuning_time;
          Report.f2 c.performance;
        ])
      r.cells
  in
  Report.make ~id:"fig6"
    ~title:"Tuning only the n most sensitive synthetic parameters"
    ~columns:[ "perturbation"; "n"; "tuning time (iters)"; "performance" ]
    ~notes:
      [
        Printf.sprintf "all-15 reference: %d iterations, performance %.2f"
          r.full_time r.full_performance;
        "paper: small n saves up to 85% tuning time at <8% performance loss";
      ]
    rows
