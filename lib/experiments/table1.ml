open Harmony
open Harmony_webservice

type row = {
  workload : string;
  variant : string;
  performance : float;
  convergence_time : int;
  worst_performance : float;
}

type result = {
  rows : row list;
  convergence_reduction : (string * float) list;
}

let run ?(max_evaluations = 150) () =
  let rows =
    List.concat_map
      (fun mix ->
        let obj = Model.objective ~mix () in
        let label = mix.Tpcw.label in
        let original =
          Tuner.tune ~options:{ Tuner.original_options with Tuner.max_evaluations } obj
        in
        let improved =
          Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations } obj
        in
        let row variant outcome =
          let m = Tuner.Metrics.of_outcome ~convergence_fraction:0.02 obj outcome in
          {
            workload = label;
            variant;
            performance = m.Tuner.Metrics.performance;
            convergence_time = m.Tuner.Metrics.convergence_iteration;
            worst_performance = m.Tuner.Metrics.worst_performance;
          }
        in
        [ row "original" original; row "improved" improved ])
      [ Tpcw.shopping; Tpcw.ordering ]
  in
  let reduction label =
    let find variant =
      match
        List.find_opt (fun r -> r.workload = label && r.variant = variant) rows
      with
      | Some r -> r
      | None -> invalid_arg ("Table1: missing row " ^ label ^ "/" ^ variant)
    in
    let orig = find "original" and impr = find "improved" in
    ( label,
      1.0
      -. (float_of_int impr.convergence_time /. float_of_int (max 1 orig.convergence_time))
    )
  in
  { rows; convergence_reduction = [ reduction "shopping"; reduction "ordering" ] }

let table ?max_evaluations () =
  let r = run ?max_evaluations () in
  let rows =
    List.map
      (fun row ->
        [
          row.workload;
          row.variant;
          Report.f1 row.performance;
          string_of_int row.convergence_time;
          Report.f1 row.worst_performance;
        ])
      r.rows
  in
  let notes =
    List.map
      (fun (label, red) ->
        Printf.sprintf "%s: convergence time reduced by %s" label (Report.pct red))
      r.convergence_reduction
    @ [ "paper: ~35% convergence-time reduction with similar tuned WIPS" ]
  in
  Report.make ~id:"table1" ~title:"Improved search refinement (Table 1)"
    ~columns:
      [ "workload"; "variant"; "WIPS"; "convergence (iters)"; "worst WIPS" ]
    ~notes rows
