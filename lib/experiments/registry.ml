(* Runners take the pool (or [None] for the sequential path): most
   experiments are single tasks, but long ones (fig7) fan their own
   independent arms out through it — nested submission, which the pool
   supports — so the critical path is not one monolithic experiment. *)
let all =
  [
    ( "fig4",
      "performance distribution: web service vs synthetic data",
      fun _pool -> Fig4.table () );
    ( "fig5",
      "synthetic-data parameter sensitivity under perturbation",
      fun _pool -> Fig5.table () );
    ( "fig6",
      "tuning the n most sensitive synthetic parameters",
      fun _pool -> Fig6.table () );
    ( "fig7",
      "tuning with experiences at increasing workload distance",
      fun pool -> Fig7.table ?pool () );
    ("fig8", "web-service parameter sensitivity", fun _pool -> Fig8.table ());
    ( "fig9",
      "tuning the n most sensitive web-service parameters",
      fun _pool -> Fig9.table () );
    ( "table1",
      "improved search refinement (original vs improved init)",
      fun _pool -> Table1.table () );
    ( "table2",
      "tuning with and without prior histories",
      fun _pool -> Table2.table () );
    ( "fig10",
      "search-space reduction by parameter restriction",
      fun _pool -> Fig10.table () );
    ( "restriction",
      "tuning with vs without parameter restriction",
      fun _pool -> Restriction.table () );
    ( "headline",
      "35-50% reduction of the initial unstable stage",
      fun _pool -> Headline.table () );
  ]

let ids = List.map (fun (id, _, _) -> id) all

let find id =
  List.find_map (fun (id', _, f) -> if id = id' then Some f else None) all

(* Each experiment constructs its own objectives and RNGs from fixed
   seeds, so the runners share no mutable state and can execute on any
   domain: the tables are identical however they are scheduled.  Only
   the printing is ordered — always in paper order. *)
let tables ?pool () =
  let run (id, _, f) = (id, f pool) in
  match pool with
  | Some pool when Harmony_parallel.Pool.size pool > 1 ->
      Harmony_parallel.Pool.map pool run all
  | _ -> List.map run all

let run_all ?pool ppf =
  List.iter (fun (_, table) -> Report.print ppf table) (tables ?pool ())
