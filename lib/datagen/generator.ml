open Harmony_param
open Harmony_objective
module Rng = Harmony_numerics.Rng

type bump = { mu : float; sigma : float; weight : float }

type t = {
  space : Space.t;
  workload_dims : int;
  irrelevant : int list;
  bumps : bump array; (* one per tunable parameter; weight 0 if irrelevant *)
  interactions : (int * int * float) array;
  workload_matrix : float array array; (* weight modulation.(param).(workload dim) *)
  peak_shift : float array array; (* bump-centre drift.(param).(workload dim) *)
  cells_per_param : int;
  cells_per_workload : int;
  scale : float;
  offset : float;
}

(* ------------------------------------------------------------------ *)
(* Ground-truth response                                               *)

let check_workload t w =
  if Array.length w <> t.workload_dims then
    invalid_arg "Generator: workload arity mismatch"

let raw_response t c w =
  let n = Space.dims t.space in
  if Array.length c <> n then invalid_arg "Generator: config arity mismatch";
  let norm = Space.normalize t.space c in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let b = t.bumps.(i) in
    if not (Float.equal b.weight 0.0) then begin
      let modulation = ref 1.0 in
      let mu = ref b.mu in
      for j = 0 to t.workload_dims - 1 do
        modulation := !modulation +. (t.workload_matrix.(i).(j) *. (w.(j) -. 0.5));
        (* The workload also moves where the optimum sits, so distant
           workloads genuinely need different configurations. *)
        mu := !mu +. (t.peak_shift.(i).(j) *. (w.(j) -. 0.5))
      done;
      let mu = Float.min 0.95 (Float.max 0.05 !mu) in
      let d = (norm.(i) -. mu) /. b.sigma in
      acc := !acc +. (b.weight *. Float.max 0.2 !modulation *. exp (-.(d *. d)))
    end
  done;
  Array.iter
    (fun (i, j, strength) -> acc := !acc +. (strength *. norm.(i) *. norm.(j)))
    t.interactions;
  !acc

let response t c ~workload =
  check_workload t workload;
  t.offset +. (t.scale *. raw_response t c workload)

(* ------------------------------------------------------------------ *)
(* Rule-cell quantization                                              *)

let param_cells t i =
  if List.mem i t.irrelevant then 1 else t.cells_per_param

(* Centre of the cell containing [v] when [lo, hi] is cut into [cells]
   equal parts; values on a boundary belong to the upper cell. *)
let cell_center ~lo ~hi ~cells v =
  if cells <= 1 then (lo +. hi) /. 2.0
  else begin
    let width = (hi -. lo) /. float_of_int cells in
    let idx = int_of_float (floor ((v -. lo) /. width)) in
    let idx = max 0 (min (cells - 1) idx) in
    lo +. ((float_of_int idx +. 0.5) *. width)
  end

let quantize_config t c =
  Array.mapi
    (fun i v ->
      let p = Space.param t.space i in
      cell_center ~lo:p.Param.min_value ~hi:p.Param.max_value
        ~cells:(param_cells t i) v)
    c

let quantize_workload t w =
  Array.map (fun v -> cell_center ~lo:0.0 ~hi:1.0 ~cells:t.cells_per_workload v) w

let eval t c ~workload =
  check_workload t workload;
  t.offset
  +. (t.scale *. raw_response t (quantize_config t c) (quantize_workload t workload))

let objective t ~workload =
  check_workload t workload;
  let workload = Array.copy workload in
  Objective.create ~space:t.space ~direction:Objective.Higher_is_better (fun c ->
      eval t c ~workload)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let generate ~space ?(workload_dims = 3) ?(irrelevant = []) ?(cells_per_param = 8)
    ?(cells_per_workload = 4) ?(interaction_strength = 0.1)
    ?(perf_range = (1.0, 50.0)) ~seed () =
  let n = Space.dims space in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Generator.generate: irrelevant index")
    irrelevant;
  if cells_per_param < 1 || cells_per_workload < 1 then
    invalid_arg "Generator.generate: cells must be >= 1";
  let rng = Rng.create seed in
  let relevant =
    List.filter (fun i -> not (List.mem i irrelevant)) (List.init n Fun.id)
  in
  (* Weights form a jittered geometric ladder (ratio 0.65) assigned to
     the relevant parameters in shuffled order: a few parameters
     dominate the response (so tuning only the top-n costs little,
     Figure 6) while every relevant parameter keeps a nonzero
     sensitivity (Figure 5). *)
  let weights =
    let ranks = Array.of_list relevant in
    Rng.shuffle rng ranks;
    let w = Array.make n 0.0 in
    Array.iteri
      (fun rank i ->
        w.(i) <- 40.0 *. (0.65 ** float_of_int rank) *. exp (Rng.uniform rng (-0.3) 0.3))
      ranks;
    w
  in
  let bumps =
    Array.init n (fun i ->
        if List.mem i irrelevant then { mu = 0.5; sigma = 1.0; weight = 0.0 }
        else
          {
            mu = Rng.uniform rng 0.2 0.8;
            sigma = Rng.uniform rng 0.2 0.5;
            weight = weights.(i);
          })
  in
  let interactions =
    (* A handful of weak pairwise terms among relevant parameters. *)
    let pairs = ref [] in
    let rel = Array.of_list relevant in
    let count = min 4 (Array.length rel / 2) in
    for _ = 1 to count do
      let i = Rng.choice rng rel and j = Rng.choice rng rel in
      if i <> j then
        pairs := (i, j, Rng.uniform rng (-.interaction_strength) interaction_strength) :: !pairs
    done;
    Array.of_list !pairs
  in
  let workload_matrix =
    Array.init n (fun i ->
        Array.init workload_dims (fun _ ->
            if List.mem i irrelevant then 0.0 else Rng.uniform rng (-0.8) 0.8))
  in
  let peak_shift =
    Array.init n (fun i ->
        Array.init workload_dims (fun _ ->
            if List.mem i irrelevant then 0.0 else Rng.uniform rng (-0.5) 0.5))
  in
  let t =
    {
      space;
      workload_dims;
      irrelevant;
      bumps;
      interactions;
      workload_matrix;
      peak_shift;
      cells_per_param;
      cells_per_workload;
      scale = 1.0;
      offset = 0.0;
    }
  in
  (* Rescale the raw response onto [perf_range] using a random sample
     of cell centres. *)
  let sample_rng = Rng.create (seed lxor 0x55aa55) in
  let samples =
    Array.init 4096 (fun _ ->
        let c = quantize_config t (Space.random sample_rng space) in
        let w =
          quantize_workload t
            (Array.init workload_dims (fun _ -> Rng.float sample_rng 1.0))
        in
        raw_response t c w)
  in
  let lo_raw = Harmony_numerics.Stats.min samples in
  let hi_raw = Harmony_numerics.Stats.max samples in
  let lo, hi = perf_range in
  let scale = if hi_raw > lo_raw then (hi -. lo) /. (hi_raw -. lo_raw) else 1.0 in
  { t with scale; offset = lo -. (scale *. lo_raw) }

let letters = [| "D"; "E"; "F"; "G"; "H"; "I"; "J"; "K"; "L"; "M"; "N"; "O"; "P"; "Q"; "R" |]

let synthetic_webservice ?(seed = 42) () =
  let params =
    Array.to_list
      (Array.map
         (fun name -> Param.int_range ~name ~lo:1 ~hi:10 ~default:5 ())
         letters)
  in
  let space = Space.create params in
  (* H is index 4 and M is index 9: the two performance-irrelevant
     parameters of Section 5.2. *)
  generate ~space ~workload_dims:3 ~irrelevant:[ 4; 9 ] ~seed ()

let space t = t.space
let workload_dims t = t.workload_dims
let irrelevant t = t.irrelevant

let mix ~browsing ~shopping ~ordering =
  let total = browsing +. shopping +. ordering in
  if total <= 0.0 then invalid_arg "Generator.mix: non-positive total";
  [| browsing /. total; shopping /. total; ordering /. total |]

let browsing_mix = mix ~browsing:0.95 ~shopping:0.04 ~ordering:0.01
let shopping_mix = mix ~browsing:0.80 ~shopping:0.15 ~ordering:0.05
let ordering_mix = mix ~browsing:0.50 ~shopping:0.25 ~ordering:0.25

let objective_of_rules rules ~space ?(workload = [||]) () =
  let dims = Space.dims space in
  if Rules.num_vars rules <> dims + Array.length workload then
    invalid_arg "Generator.objective_of_rules: rule arity mismatch";
  let workload = Array.copy workload in
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      Rules.eval rules (Array.append c workload))

(* ------------------------------------------------------------------ *)
(* Explicit rule materialization                                       *)

let to_rules ?(max_rules = 100_000) t =
  let n = Space.dims t.space in
  let wd = t.workload_dims in
  let cells_of_var v = if v < n then param_cells t v else t.cells_per_workload in
  let range_of_var v =
    if v < n then begin
      let p = Space.param t.space v in
      (p.Param.min_value, p.Param.max_value)
    end
    else (0.0, 1.0)
  in
  let total =
    let acc = ref 1.0 in
    for v = 0 to n + wd - 1 do
      acc := !acc *. float_of_int (cells_of_var v)
    done;
    !acc
  in
  if total > float_of_int max_rules then
    invalid_arg "Generator.to_rules: too many cells to materialize";
  let num_vars = n + wd in
  let ranges = Array.init num_vars range_of_var in
  (* Enumerate cell index vectors; emit one rule per cell. *)
  let indices = Array.make num_vars 0 in
  let out = ref [] in
  let rec go v =
    if v = num_vars then begin
      let conditions = ref [] in
      let center = Array.make num_vars 0.0 in
      for u = num_vars - 1 downto 0 do
        let lo, hi = ranges.(u) in
        let cells = cells_of_var u in
        let width = (hi -. lo) /. float_of_int cells in
        let c_lo = lo +. (float_of_int indices.(u) *. width) in
        let c_hi = if indices.(u) = cells - 1 then hi else c_lo +. width -. 1e-9 in
        center.(u) <- c_lo +. (width /. 2.0);
        if cells > 1 then
          conditions := { Rules.var = u; lo = c_lo; hi = c_hi } :: !conditions
      done;
      let config = Array.sub center 0 n in
      let w = Array.sub center n wd in
      let performance = t.offset +. (t.scale *. raw_response t config w) in
      out := { Rules.conditions = !conditions; performance } :: !out
    end
    else
      for i = 0 to cells_of_var v - 1 do
        indices.(v) <- i;
        go (v + 1)
      done
  in
  go 0;
  Rules.create ~num_vars ~ranges (List.rev !out)
