type condition = { var : int; lo : float; hi : float }
type rule = { conditions : condition list; performance : float }
type t = { num_vars : int; ranges : (float * float) array; rules : rule array }

let create ~num_vars ~ranges rule_list =
  if num_vars <= 0 then invalid_arg "Rules.create: num_vars <= 0";
  if Array.length ranges <> num_vars then invalid_arg "Rules.create: ranges arity";
  Array.iter
    (fun (lo, hi) -> if hi < lo then invalid_arg "Rules.create: empty variable range")
    ranges;
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          if c.var < 0 || c.var >= num_vars then
            invalid_arg "Rules.create: condition variable out of range";
          if c.lo > c.hi then invalid_arg "Rules.create: condition lo > hi")
        r.conditions)
    rule_list;
  { num_vars; ranges; rules = Array.of_list rule_list }

let num_vars t = t.num_vars
let rules t = t.rules

let satisfies r input =
  List.for_all (fun c -> input.(c.var) >= c.lo && input.(c.var) <= c.hi) r.conditions

let first_satisfied t input =
  if Array.length input <> t.num_vars then
    invalid_arg "Rules.first_satisfied: arity mismatch";
  Array.find_opt (fun r -> satisfies r input) t.rules

(* Two interval-conjunction rules can fire simultaneously iff, for
   every variable constrained by both, the intervals intersect (a
   variable constrained by only one rule is free in the other). *)
let rules_overlap a b =
  List.for_all
    (fun ca ->
      List.for_all
        (fun cb ->
          if ca.var <> cb.var then true
          else ca.lo <= cb.hi && cb.lo <= ca.hi)
        b.conditions)
    a.conditions

let conflict_free t =
  let n = Array.length t.rules in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok && rules_overlap t.rules.(i) t.rules.(j) then ok := false
    done
  done;
  !ok

let rule_distance t r input =
  let d2 = ref 0.0 in
  List.iter
    (fun c ->
      let v = input.(c.var) in
      let gap = if v < c.lo then c.lo -. v else if v > c.hi then v -. c.hi else 0.0 in
      let lo, hi = t.ranges.(c.var) in
      let span = hi -. lo in
      let g = if Float.equal span 0.0 then gap else gap /. span in
      d2 := !d2 +. (g *. g))
    r.conditions;
  sqrt !d2

exception Parse_error of string

let strict_epsilon = 1e-9

(* One condition in the textual notation.  Accepted shapes:
   "v3 = 5", "v3 <= 8", "v3 < 8", "v3 >= 2", "v3 > 2",
   "2 <= v3 < 8", "2 < v3 <= 8", ... *)
let parse_condition ~num_vars ~ranges text =
  let tokens =
    String.split_on_char ' ' text |> List.filter (fun s -> s <> "")
  in
  let var_of s =
    if String.length s < 2 || s.[0] <> 'v' then
      raise (Parse_error ("expected a variable like v0, got " ^ s));
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v when v >= 0 && v < num_vars -> v
    | Some _ -> raise (Parse_error ("variable out of range: " ^ s))
    | None -> raise (Parse_error ("bad variable: " ^ s))
  in
  let num_of s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> raise (Parse_error ("bad number: " ^ s))
  in
  let full_range var = ranges.(var) in
  match tokens with
  | [ v; "="; x ] ->
      let var = var_of v and value = num_of x in
      { var; lo = value; hi = value }
  | [ v; "<="; x ] ->
      let var = var_of v in
      { var; lo = fst (full_range var); hi = num_of x }
  | [ v; "<"; x ] ->
      let var = var_of v in
      { var; lo = fst (full_range var); hi = num_of x -. strict_epsilon }
  | [ v; ">="; x ] ->
      let var = var_of v in
      { var; lo = num_of x; hi = snd (full_range var) }
  | [ v; ">"; x ] ->
      let var = var_of v in
      { var; lo = num_of x +. strict_epsilon; hi = snd (full_range var) }
  | [ a; op1; v; op2; b ] when (op1 = "<=" || op1 = "<") && (op2 = "<=" || op2 = "<")
    ->
      let var = var_of v in
      let lo = num_of a +. if op1 = "<" then strict_epsilon else 0.0 in
      let hi = num_of b -. if op2 = "<" then strict_epsilon else 0.0 in
      { var; lo; hi }
  | _ -> raise (Parse_error ("cannot parse condition: " ^ text))

let split_on_substring ~sub s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length s and m = String.length sub in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = sub then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  out := Buffer.contents buf :: !out;
  List.rev !out

let of_text ~num_vars ~ranges text =
  let parse_line line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then None
    else
      match split_on_substring ~sub:"<-" line with
      | [ perf; conds ] ->
          let performance =
            match float_of_string_opt (String.trim perf) with
            | Some v -> v
            | None -> raise (Parse_error ("bad performance: " ^ perf))
          in
          let conds = String.trim conds in
          let conditions =
            if conds = "" then []
            else
              List.map
                (fun c -> parse_condition ~num_vars ~ranges (String.trim c))
                (String.split_on_char '&' conds)
          in
          Some { conditions; performance }
      | _ -> raise (Parse_error ("expected 'performance <- conditions': " ^ line))
  in
  let rules =
    List.filter_map parse_line (String.split_on_char '\n' text)
  in
  if rules = [] then raise (Parse_error "no rules");
  create ~num_vars ~ranges rules

let to_text t =
  let cond c = Printf.sprintf "%g <= v%d <= %g" c.lo c.var c.hi in
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun r ->
            Printf.sprintf "%g <- %s" r.performance
              (String.concat " & " (List.map cond r.conditions)))
          t.rules))

let eval t input =
  if Array.length input <> t.num_vars then invalid_arg "Rules.eval: arity mismatch";
  if Array.length t.rules = 0 then invalid_arg "Rules.eval: empty rule set";
  match first_satisfied t input with
  | Some r -> r.performance
  | None ->
      let best = ref t.rules.(0) in
      let best_d = ref (rule_distance t t.rules.(0) input) in
      Array.iter
        (fun r ->
          let d = rule_distance t r input in
          if d < !best_d then begin
            best := r;
            best_d := d
          end)
        t.rules;
      !best.performance
