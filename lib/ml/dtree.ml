type tree =
  | Leaf of int
  | Node of { feature : int; threshold : float; left : tree; right : tree }

let gini labels idxs classes =
  let n = Array.length idxs in
  if n = 0 then 0.0
  else begin
    let counts = Array.make classes 0 in
    Array.iter (fun i -> counts.(labels.(i)) <- counts.(labels.(i)) + 1) idxs;
    let nf = float_of_int n in
    let s = ref 1.0 in
    Array.iter
      (fun c ->
        let p = float_of_int c /. nf in
        s := !s -. (p *. p))
      counts;
    !s
  end

let majority labels idxs classes =
  let counts = Array.make classes 0 in
  Array.iter (fun i -> counts.(labels.(i)) <- counts.(labels.(i)) + 1) idxs;
  let best = ref 0 in
  Array.iteri (fun c v -> if v > counts.(!best) then best := c) counts;
  !best

let pure labels idxs =
  Array.length idxs <= 1
  || Array.for_all (fun i -> labels.(i) = labels.(idxs.(0))) idxs

(* Best (feature, threshold) by exhaustive scan of midpoints between
   consecutive distinct sorted values. *)
let best_split features labels idxs classes =
  let dim = Array.length features.(0) in
  let n = Array.length idxs in
  let parent = gini labels idxs classes in
  let best = ref None in
  for f = 0 to dim - 1 do
    let sorted = Array.copy idxs in
    Array.sort (fun a b -> Float.compare features.(a).(f) features.(b).(f)) sorted;
    for cut = 1 to n - 1 do
      let lo = features.(sorted.(cut - 1)).(f) in
      let hi = features.(sorted.(cut)).(f) in
      if hi > lo then begin
        let threshold = (lo +. hi) /. 2.0 in
        let left = Array.sub sorted 0 cut in
        let right = Array.sub sorted cut (n - cut) in
        let wl = float_of_int cut /. float_of_int n in
        let score =
          parent
          -. ((wl *. gini labels left classes)
             +. ((1.0 -. wl) *. gini labels right classes))
        in
        match !best with
        | Some (s, _, _, _, _) when s >= score -> ()
        | _ -> best := Some (score, f, threshold, left, right)
      end
    done
  done;
  (* Zero-gain splits are kept: on XOR-like data no single split
     reduces impurity, yet splitting is what lets the subtrees
     separate the classes.  Termination is safe because both sides of
     a split are non-empty (the threshold lies between two distinct
     values) and [fit] stops at pure nodes and max_depth. *)
  match !best with
  | Some (score, f, threshold, left, right) when score >= -1e-12 ->
      Some (f, threshold, left, right)
  | Some _ | None -> None

let fit ?(max_depth = 8) ?(min_samples = 2) training =
  let _dim = Classifier.validate_training training in
  let { Classifier.features; labels } = training in
  let classes = Classifier.num_classes training in
  let rec build idxs depth =
    if depth >= max_depth || Array.length idxs < min_samples || pure labels idxs
    then Leaf (majority labels idxs classes)
    else
      match best_split features labels idxs classes with
      | None -> Leaf (majority labels idxs classes)
      | Some (feature, threshold, left, right) ->
          Node
            { feature; threshold;
              left = build left (depth + 1);
              right = build right (depth + 1) }
  in
  build (Array.init (Array.length features) Fun.id) 0

let rec classify t x =
  match t with
  | Leaf label -> label
  | Node { feature; threshold; left; right } ->
      if x.(feature) <= threshold then classify left x else classify right x

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> leaves left + leaves right

let classifier ?max_depth ?min_samples training =
  let t = fit ?max_depth ?min_samples training in
  { Classifier.name = "decision-tree"; classify = classify t }
