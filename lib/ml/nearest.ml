let squared_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Nearest: dimension mismatch";
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  !s

let nearest_index rows query =
  if Array.length rows = 0 then invalid_arg "Nearest.nearest_index: empty matrix";
  let best = ref 0 in
  let best_d = ref (squared_distance rows.(0) query) in
  Array.iteri
    (fun i row ->
      let d = squared_distance row query in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    rows;
  !best

let least_squares training =
  let _dim = Classifier.validate_training training in
  let { Classifier.features; labels } = training in
  {
    Classifier.name = "least-squares";
    classify = (fun query -> labels.(nearest_index features query));
  }

let knn ~k training =
  if k < 1 then invalid_arg "Nearest.knn: k < 1";
  let _dim = Classifier.validate_training training in
  let { Classifier.features; labels } = training in
  let classify query =
    let n = Array.length features in
    let dist = Array.init n (fun i -> (squared_distance features.(i) query, i)) in
    Array.sort
      (fun (da, ia) (db, ib) ->
        match Float.compare da db with 0 -> Int.compare ia ib | c -> c)
      dist;
    let k = min k n in
    let classes = Classifier.num_classes training in
    let votes = Array.make classes 0 in
    for j = 0 to k - 1 do
      let _, i = dist.(j) in
      votes.(labels.(i)) <- votes.(labels.(i)) + 1
    done;
    (* Majority; break ties towards the class owning the closest
       example. *)
    let best = ref labels.(snd dist.(0)) in
    Array.iteri (fun c v -> if v > votes.(!best) then best := c) votes;
    !best
  in
  { Classifier.name = Printf.sprintf "%d-nn" k; classify }
