(** Summarize a JSONL trace (the {!Export.jsonl} format) — the engine
    behind [harmony_cli stats]. *)

type span_stats = {
  span_name : string;
  span_count : int;
  total : float;  (** summed duration, in the trace's clock units *)
  mean : float;
  max_duration : float;
  durations : float list;  (** every closed-span duration, ascending *)
}

type histogram = {
  hist_count : int;
  hist_sum : float;
  hist_buckets : (float * int) list;
      (** (upper bound, occupancy) as exported; empty for traces
          written before buckets were serialized *)
  hist_exemplars : (float * string * float) list;
      (** (bucket upper bound, trace id, observed value) *)
}

type t = {
  events : int;  (** begin/end/instant records seen *)
  spans : span_stats list;  (** per-name aggregates, sorted by name *)
  instants : (string * int) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
  unmatched : int;
      (** [end] events with no open span of that name, plus spans
          still open at end of trace *)
}

val of_jsonl : string -> (t, string) result
(** Total: the first malformed line yields [Error "line N: ..."].
    Blank lines are skipped. *)

val percentile : float list -> float -> float option
(** [percentile sorted q] over an ascending list; [None] on an empty
    set or [q] outside [0, 1] — never NaN, so an absent percentile
    cannot leak into a float comparison. *)

val span_percentile : t -> string -> float -> float option
(** Percentile of a span's closed durations; [None] when the span was
    never closed in the trace (the empty-span-set guard). *)

val histogram_quantile : histogram -> float -> float option
(** Conservative bucket-bound quantile (same estimator as
    [Telemetry.quantile]); [None] on an empty histogram, a histogram
    exported without buckets, or [q] outside [0, 1]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
