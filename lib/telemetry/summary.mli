(** Summarize a JSONL trace (the {!Export.jsonl} format) — the engine
    behind [harmony_cli stats]. *)

type span_stats = {
  span_name : string;
  span_count : int;
  total : float;  (** summed duration, in the trace's clock units *)
  mean : float;
  max_duration : float;
}

type histogram = { hist_count : int; hist_sum : float }

type t = {
  events : int;  (** begin/end/instant records seen *)
  spans : span_stats list;  (** per-name aggregates, sorted by name *)
  instants : (string * int) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
  unmatched : int;
      (** [end] events with no open span of that name, plus spans
          still open at end of trace *)
}

val of_jsonl : string -> (t, string) result
(** Total: the first malformed line yields [Error "line N: ..."].
    Blank lines are skipped. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
