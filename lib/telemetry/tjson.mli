(** Minimal JSON codec used by the telemetry exporters and the
    [stats] trace summarizer.

    Handles the subset the telemetry layer emits: objects, arrays,
    strings (byte-transparent above 0x20), finite numbers, booleans
    and null.  Non-finite numbers serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val number_to_string : float -> string
(** Shortest decimal representation that round-trips the float
    ([42] prints as ["42"], not ["42.000000000000000"]). *)

val parse : string -> (t, string) result
(** Total: malformed input returns [Error] with a byte position,
    never raises. *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on anything else. *)

val to_float : t -> float option
val to_str : t -> string option
