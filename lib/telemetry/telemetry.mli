(** Deterministic telemetry: a span tracer plus a metrics registry.

    Every instrumented module takes an explicit handle ({!t}) — there
    is no global tracer, no ambient clock, and a disabled handle
    ({!off}) makes every operation a no-op, so instrumentation is free
    when unused and the repo's determinism contract (byte-identical
    tuner output with telemetry on or off, DESIGN.md §11) holds by
    construction: recording observes the computation, never steers it.

    {b Clocks.}  Timestamps come from an injectable [clock].  The
    default is a {e logical} clock: each recorded event is stamped
    with its sequence number, so a seeded run produces a byte-identical
    trace.  [bin/] may inject a monotonic wall clock (e.g. for the
    serve loop); [lib/] never reads one (lint rule D1).

    {b Thread-safety.}  All operations take the handle's mutex.
    Counters, gauges and histograms may be updated from any pool
    domain; span begin/end pairs are only meaningful when emitted from
    a single domain (true of the sequential tuning loop, the only
    place spans are emitted today). *)

type t

type value = Str of string | Num of float | Int of int | Bool of bool
(** Argument values attached to events (exported as JSON). *)

type event =
  | Begin of { name : string; ts : float; args : (string * value) list }
  | End of { name : string; ts : float; args : (string * value) list }
  | Instant of { name : string; ts : float; args : (string * value) list }

(** Trace correlation context, threaded explicitly (never ambient)
    from the service edge down through server, controller, tuner and
    measurement.  Ids are FNV-1a hashes of [(client, seq)] and of
    parent span ids — fully deterministic, so traces remain
    byte-reproducible at any domain count. *)
module Ctx : sig
  type t

  val root : client:string -> seq:int -> t
  (** The trace root for the [seq]-th message of [client]; trace id
      and span id coincide, parent id is empty. *)

  val child : t -> string -> t
  (** A child span context keyed by name (deterministic: same parent
      and name gives the same span id). *)

  val child_i : t -> string -> int -> t
  (** An indexed child, for fan-out (batch evaluation slots). *)

  val trace_id : t -> string
  val span_id : t -> string
  val parent_id : t -> string

  val args : t -> (string * value) list
  (** [trace_id]/[span_id] (and [parent_id] when non-root) as event
      arguments — attach to the correlated span. *)
end

val off : t
(** The disabled handle: every operation is a no-op, [events] is
    empty, every counter reads 0.  The default everywhere. *)

val create :
  ?clock:(unit -> float) ->
  ?record_events:bool ->
  ?flight:Flight.t ->
  ?gc_stats:bool ->
  unit ->
  t
(** A live handle.  Without [clock], timestamps are the logical event
    sequence number (deterministic); with [clock], every event calls
    it for a timestamp (inject wall clocks only from [bin/]).

    [record_events] (default [true]) controls whether span/instant
    payloads are retained for export.  With [record_events:false] the
    handle is {e metrics-only}: the logical clock, {!event_count} and
    every counter/gauge/histogram advance exactly as they would with
    recording on (so metric values are byte-identical either way), but
    {!events} stays empty and memory stays O(registry) — what a
    long-running sharded service wants for its per-shard handles.

    [flight] attaches a {!Flight} recorder: every event (even with
    [record_events:false]) is mirrored into its fixed-capacity ring,
    after the handle's own lock is released.  [gc_stats] (default
    [false]; inherently nondeterministic, so opt-in from [bin/] only,
    like wall clocks) samples [Gc.quick_stat] into
    [telemetry.gc.minor_words] / [major_words] / [promoted_words] /
    [compactions] / [heap_words] gauges each time the root span
    closes. *)

val enabled : t -> bool
val now : t -> float
(** Current clock reading without recording an event (0 when off). *)

(** {1 Tracing} *)

val span : t -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] brackets [f ()] between a [Begin] and an [End]
    event; the [End] is recorded even when [f] raises. *)

val span_begin : t -> ?args:(string * value) list -> string -> unit
val span_end : t -> ?args:(string * value) list -> string -> unit
(** Explicit bracketing for when the end arguments are only known
    after the work (e.g. the measured performance).  Every
    [span_begin] must be paired with a [span_end] of the same name. *)

val instant : t -> ?args:(string * value) list -> string -> unit
(** A point event. *)

val events : t -> event list
(** All recorded events, in record order. *)

val event_count : t -> int

val depth : t -> int
(** Current span nesting depth (0 when all spans are closed). *)

(** {1 Metrics registry} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use). *)

val gauge : t -> string -> float -> unit
(** Set a gauge. *)

val gauge_max : t -> string -> float -> unit
(** Set a gauge to the max of its current value and [v] (high-water
    marks, e.g. pool queue depth). *)

val observe :
  t -> ?bounds:float array -> ?exemplar:string -> string -> float -> unit
(** Add an observation to a histogram.  Bucket upper bounds are fixed
    when the histogram is created — by {!declare_histogram} or at the
    first observation ([bounds] is sorted; later calls ignore it); the
    default bounds are decades from 1e-3 to 1e5 plus an overflow
    bucket.

    [exemplar] attaches a trace id to the bucket the observation lands
    in (the bucket remembers the last one), exported in OpenMetrics
    exemplar syntax by [Export.prometheus] and readable back via
    {!exemplars}. *)

val declare_histogram : t -> ?bounds:float array -> string -> unit
(** Create an empty histogram with the given bucket bounds without
    recording an observation, so a caller can pin finer bounds than
    the decade defaults before instrumented code observes into it
    (e.g. the service pinning per-message handle-latency buckets).
    No-op if the histogram already exists. *)

val counter_value : t -> string -> int
val gauge_value : t -> string -> float option

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list

type histogram_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** (upper bound, occupancy) ascending; the final bound is
          [infinity] (the overflow bucket) *)
}

val histograms : t -> (string * histogram_snapshot) list

val histogram_value : t -> string -> histogram_snapshot option
(** One histogram by name ([None] when absent or the handle is off). *)

type exemplar = { ex_bound : float; ex_trace_id : string; ex_val : float }
(** The last trace id that landed in the bucket with upper bound
    [ex_bound], together with the observed value. *)

val exemplars : t -> string -> exemplar list
(** Exemplars of a histogram, ascending by bucket bound; buckets that
    never saw an exemplar-carrying observation are omitted. *)

val flight : t -> Flight.t option
(** The attached flight recorder, if any. *)

(** {1 Cross-handle aggregation}

    A sharded service gives every shard its own handle (so parallel
    shards never contend on one mutex and per-shard traces stay
    deterministic) and merges the registries on demand. *)

val quantile : histogram_snapshot -> float -> float
(** [quantile snap q] is a conservative upper estimate of the [q]-th
    quantile ([0 <= q <= 1]): the smallest bucket upper bound whose
    cumulative occupancy reaches [ceil (q * count)].  [infinity] when
    the quantile lands in the overflow bucket; [nan] on an empty
    histogram or an out-of-range [q]. *)

val quantile_opt : histogram_snapshot -> float -> float option
(** {!quantile} with the empty/out-of-range case made explicit:
    [None] instead of [nan], so callers cannot silently propagate a
    NaN into comparisons (lint rule N1). *)

val merged : t list -> t
(** A fresh live handle whose registry aggregates the inputs:
    counters sum, gauges combine by [Float.max] (service gauges are
    high-water marks or recovery totals re-emitted as counters), and
    histograms merge bucket-pointwise when their bounds agree (exact)
    — otherwise each source bucket is credited at its upper bound
    (count and sum stay exact, occupancies are conservative).
    Disabled handles contribute nothing; events are not carried over.
    The result is an ordinary handle: exporters accept it as-is. *)
