(* The deterministic telemetry handle: a span tracer plus a
   counters/gauges/histograms registry.

   Designed around the repo's determinism invariants (DESIGN.md §8):
   no ambient clocks and no module-toplevel mutable state.  All
   instrumentation goes through an explicit [t]; timestamps come from
   an injectable clock that defaults to a *logical* clock (the event
   sequence number), so a seeded run produces a byte-identical trace.
   [bin/] may inject a wall clock — the library never reads one.

   Thread-safety: one mutex per handle.  Counters, gauges and
   histograms may be updated from any pool domain; span begin/end
   pairs are meaningful only when emitted from a single domain (the
   tuning loop is sequential, so this holds everywhere spans are
   used today). *)

type value = Str of string | Num of float | Int of int | Bool of bool

type event =
  | Begin of { name : string; ts : float; args : (string * value) list }
  | End of { name : string; ts : float; args : (string * value) list }
  | Instant of { name : string; ts : float; args : (string * value) list }

(* Trace correlation context.  Ids are derived by hashing, never drawn
   from a counter or RNG, so the same (client, seq) always yields the
   same trace id — traces stay byte-reproducible at any domain count
   and there is no ambient state to thread (D1/D2 clean). *)
module Ctx = struct
  type t = { trace_id : string; span_id : string; parent_id : string }

  (* FNV-1a, 64-bit. *)
  let fnv64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    !h

  let hex h = Printf.sprintf "%016Lx" h

  let root ~client ~seq =
    let id = hex (fnv64 (client ^ "\x00" ^ string_of_int seq)) in
    { trace_id = id; span_id = id; parent_id = "" }

  let child c name =
    {
      trace_id = c.trace_id;
      span_id = hex (fnv64 (c.span_id ^ "\x00" ^ name));
      parent_id = c.span_id;
    }

  let child_i c name i = child c (name ^ "#" ^ string_of_int i)
  let trace_id c = c.trace_id
  let span_id c = c.span_id
  let parent_id c = c.parent_id

  let args c =
    let base = [ ("trace_id", Str c.trace_id); ("span_id", Str c.span_id) ] in
    if String.equal c.parent_id "" then base
    else base @ [ ("parent_id", Str c.parent_id) ]
end

type histogram_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (* (upper bound, occupancy) per bucket, ascending; the final
         bucket's bound is [infinity] *)
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  bounds : float array; (* ascending finite upper bounds *)
  occupancy : int array; (* length bounds + 1; last is the overflow bucket *)
  ex_trace : string array;
      (* OpenMetrics exemplars: the last trace id that landed in each
         bucket ("" = none yet), with the observed value alongside —
         the p99 offender becomes a named trace, not a number. *)
  ex_value : float array;
}

type exemplar = { ex_bound : float; ex_trace_id : string; ex_val : float }

type state = {
  lock : Mutex.t;
  clock : (unit -> float) option;
  record_events : bool;
      (* false = metrics-only handle: the logical clock and the event
         count still advance identically (so byte-reproducibility of
         every metric is preserved), but event payloads are not
         retained — a service holding thousands of sessions on one
         shard handle would otherwise accumulate unbounded trace
         memory. *)
  mutable ticks : int;
  mutable rev_events : event list;
  mutable event_count : int;
  mutable depth_now : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  flight : Flight.t option;
      (* Ring of recent events, kept even when [record_events] is
         false.  Recorded *after* the handle's lock is released — the
         telemetry lock is a forced leaf (sem S2), so it may not hold
         any other lock, including the recorder's. *)
  gc_stats : bool;
      (* Sample Gc.quick_stat into gauges at root-span close.  GC
         counters are not deterministic, so this is opt-in the same
         way wall clocks are: only [bin/] turns it on. *)
}

type t = Off | On of state

let off = Off

let create ?clock ?(record_events = true) ?flight ?(gc_stats = false) () =
  On
    {
      lock = Mutex.create ();
      clock;
      record_events;
      ticks = 0;
      rev_events = [];
      event_count = 0;
      depth_now = 0;
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 8;
      flight;
      gc_stats;
    }

let enabled = function Off -> false | On _ -> true

let now_locked s =
  match s.clock with
  | Some f -> f ()
  | None -> float_of_int s.ticks

let now = function
  | Off -> 0.0
  | On s -> Mutex.protect s.lock (fun () -> now_locked s)

let trace_of_args args =
  match List.assoc_opt "trace_id" args with
  | Some (Str s) -> s
  | Some (Num _ | Int _ | Bool _) | None -> ""

(* Every recorded event advances the logical clock by one, so default
   timestamps are the event sequence number — strictly increasing and
   fully deterministic.  The flight-recorder mirror happens after the
   handle's lock is released (S2: the telemetry lock is a leaf). *)
let record s kind name args =
  let ts =
    Mutex.protect s.lock (fun () ->
        let ts = now_locked s in
        s.ticks <- s.ticks + 1;
        if s.record_events then begin
          let ev =
            match kind with
            | Flight.Begin -> Begin { name; ts; args }
            | Flight.End -> End { name; ts; args }
            | Flight.Instant -> Instant { name; ts; args }
          in
          s.rev_events <- ev :: s.rev_events
        end;
        s.event_count <- s.event_count + 1;
        ts)
  in
  match s.flight with
  | None -> ()
  | Some f -> Flight.record f ~kind ~name ~ts ~trace:(trace_of_args args)

(* Not deterministic (the whole point); opt-in via [gc_stats], never
   on by default, so the byte-identity contract is untouched. *)
let sample_gc_locked s =
  let st = Gc.quick_stat () in
  let set name v =
    match Hashtbl.find_opt s.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.replace s.gauges name (ref v)
  in
  set "telemetry.gc.minor_words" st.Gc.minor_words;
  set "telemetry.gc.major_words" st.Gc.major_words;
  set "telemetry.gc.promoted_words" st.Gc.promoted_words;
  set "telemetry.gc.compactions" (float_of_int st.Gc.compactions);
  set "telemetry.gc.heap_words" (float_of_int st.Gc.heap_words)

let span_begin t ?(args = []) name =
  match t with
  | Off -> ()
  | On s ->
      record s Flight.Begin name args;
      Mutex.protect s.lock (fun () -> s.depth_now <- s.depth_now + 1)

let span_end t ?(args = []) name =
  match t with
  | Off -> ()
  | On s ->
      let at_root =
        Mutex.protect s.lock (fun () ->
            s.depth_now <- max 0 (s.depth_now - 1);
            s.depth_now = 0)
      in
      record s Flight.End name args;
      if s.gc_stats && at_root then
        Mutex.protect s.lock (fun () -> sample_gc_locked s)

let span t ?args name f =
  match t with
  | Off -> f ()
  | On _ ->
      span_begin t ?args name;
      Fun.protect ~finally:(fun () -> span_end t name) f

let instant t ?(args = []) name =
  match t with
  | Off -> ()
  | On s -> record s Flight.Instant name args

let events = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> List.rev s.rev_events)

let event_count = function
  | Off -> 0
  | On s -> Mutex.protect s.lock (fun () -> s.event_count)

let depth = function
  | Off -> 0
  | On s -> Mutex.protect s.lock (fun () -> s.depth_now)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let incr t ?(by = 1) name =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.replace s.counters name (ref by))

let counter_value t name =
  match t with
  | Off -> 0
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> !r
          | None -> 0)

let gauge t name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.gauges name with
          | Some r -> r := v
          | None -> Hashtbl.replace s.gauges name (ref v))

let gauge_max t name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.gauges name with
          | Some r -> r := Float.max !r v
          | None -> Hashtbl.replace s.gauges name (ref v))

let gauge_value t name =
  match t with
  | Off -> None
  | On s ->
      Mutex.protect s.lock (fun () ->
          Option.map ( ! ) (Hashtbl.find_opt s.gauges name))

let default_bounds =
  (* Decades from 1 ms to 100 s: wide enough for both logical-tick
     durations and wall-clock millisecond latencies. *)
  [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 |]

(* Bucket bounds are fixed when the histogram is created — at
   [declare_histogram] or at the first observation; a [bounds] passed
   later is ignored. *)
let hist_locked s ?bounds name =
  match Hashtbl.find_opt s.histograms name with
  | Some h -> h
  | None ->
      let bounds =
        match bounds with
        | Some b ->
            let b = Array.copy b in
            Array.sort Float.compare b;
            b
        | None -> default_bounds
      in
      let h =
        {
          h_count = 0;
          h_sum = 0.0;
          bounds;
          occupancy = Array.make (Array.length bounds + 1) 0;
          ex_trace = Array.make (Array.length bounds + 1) "";
          ex_value = Array.make (Array.length bounds + 1) 0.0;
        }
      in
      Hashtbl.replace s.histograms name h;
      h

let declare_histogram t ?bounds name =
  match t with
  | Off -> ()
  | On s -> Mutex.protect s.lock (fun () -> ignore (hist_locked s ?bounds name))

let observe_hist h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let rec slot i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.occupancy.(i) <- h.occupancy.(i) + 1;
  i

let observe t ?bounds ?exemplar name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          let h = hist_locked s ?bounds name in
          let i = observe_hist h v in
          match exemplar with
          | None -> ()
          | Some trace ->
              h.ex_trace.(i) <- trace;
              h.ex_value.(i) <- v)

let sorted_bindings table f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.counters ( ! ))

let gauges = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.gauges ( ! ))

let snapshot_hist h =
  let buckets =
    List.init
      (Array.length h.occupancy)
      (fun i ->
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, h.occupancy.(i)))
  in
  { count = h.h_count; sum = h.h_sum; buckets }

let histograms = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.histograms snapshot_hist)

let histogram_value t name =
  match t with
  | Off -> None
  | On s ->
      Mutex.protect s.lock (fun () ->
          Option.map snapshot_hist (Hashtbl.find_opt s.histograms name))

let exemplars_of_hist h =
  let out = ref [] in
  for i = Array.length h.ex_trace - 1 downto 0 do
    if not (String.equal h.ex_trace.(i) "") then
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      out :=
        { ex_bound = bound; ex_trace_id = h.ex_trace.(i); ex_val = h.ex_value.(i) }
        :: !out
  done;
  !out

let exemplars t name =
  match t with
  | Off -> []
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.histograms name with
          | None -> []
          | Some h -> exemplars_of_hist h)

let flight = function Off -> None | On s -> s.flight

(* ------------------------------------------------------------------ *)
(* Cross-handle aggregation (the sharded service's merged registry)    *)

let quantile snap q =
  if snap.count = 0 || not (q >= 0.0 && q <= 1.0) then Float.nan
  else
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int snap.count)) in
      if r < 1 then 1 else if r > snap.count then snap.count else r
    in
    let rec go cumulative = function
      | [] -> Float.nan
      | (bound, occupancy) :: rest ->
          if cumulative + occupancy >= rank then bound
          else go (cumulative + occupancy) rest
    in
    go 0 snap.buckets

let quantile_opt snap q =
  let v = quantile snap q in
  if Float.is_nan v then None else Some v

let same_bounds a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.equal x y) a b

(* Fold [src]'s buckets into [dst].  Identical bounds merge exactly
   (pointwise occupancy addition); differing bounds degrade gracefully
   by crediting each source bucket at its upper bound — conservative,
   and still exact for count and sum. *)
let merge_hist dst src =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  (* A later source's exemplar overwrites an earlier one ("last trace
     to land in the bucket"); merging in a fixed handle order keeps
     the result deterministic. *)
  let take_exemplar i j =
    if not (String.equal src.ex_trace.(i) "") then begin
      dst.ex_trace.(j) <- src.ex_trace.(i);
      dst.ex_value.(j) <- src.ex_value.(i)
    end
  in
  if same_bounds dst.bounds src.bounds then
    Array.iteri
      (fun i occupancy ->
        dst.occupancy.(i) <- dst.occupancy.(i) + occupancy;
        take_exemplar i i)
      src.occupancy
  else
    Array.iteri
      (fun i occupancy ->
        let v =
          if i < Array.length src.bounds then src.bounds.(i) else infinity
        in
        let rec slot j =
          if j >= Array.length dst.bounds then j
          else if v <= dst.bounds.(j) then j
          else slot (j + 1)
        in
        let j = slot 0 in
        dst.occupancy.(j) <- dst.occupancy.(j) + occupancy;
        take_exemplar i j)
      src.occupancy

let merged handles =
  let dst =
    {
      lock = Mutex.create ();
      clock = None;
      record_events = true;
      ticks = 0;
      rev_events = [];
      event_count = 0;
      depth_now = 0;
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 8;
      flight = None;
      gc_stats = false;
    }
  in
  List.iter
    (fun t ->
      match t with
      | Off -> ()
      | On src ->
          Mutex.protect src.lock (fun () ->
              Hashtbl.iter
                (fun name r ->
                  match Hashtbl.find_opt dst.counters name with
                  | Some d -> d := !d + !r
                  | None -> Hashtbl.replace dst.counters name (ref !r))
                src.counters;
              Hashtbl.iter
                (fun name r ->
                  match Hashtbl.find_opt dst.gauges name with
                  | Some d -> d := Float.max !d !r
                  | None -> Hashtbl.replace dst.gauges name (ref !r))
                src.gauges;
              Hashtbl.iter
                (fun name h ->
                  let d =
                    match Hashtbl.find_opt dst.histograms name with
                    | Some d -> d
                    | None ->
                        let d =
                          {
                            h_count = 0;
                            h_sum = 0.0;
                            bounds = Array.copy h.bounds;
                            occupancy =
                              Array.make (Array.length h.bounds + 1) 0;
                            ex_trace =
                              Array.make (Array.length h.bounds + 1) "";
                            ex_value =
                              Array.make (Array.length h.bounds + 1) 0.0;
                          }
                        in
                        Hashtbl.replace dst.histograms name d;
                        d
                  in
                  merge_hist d h)
                src.histograms))
    handles;
  On dst
