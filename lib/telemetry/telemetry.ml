(* The deterministic telemetry handle: a span tracer plus a
   counters/gauges/histograms registry.

   Designed around the repo's determinism invariants (DESIGN.md §8):
   no ambient clocks and no module-toplevel mutable state.  All
   instrumentation goes through an explicit [t]; timestamps come from
   an injectable clock that defaults to a *logical* clock (the event
   sequence number), so a seeded run produces a byte-identical trace.
   [bin/] may inject a wall clock — the library never reads one.

   Thread-safety: one mutex per handle.  Counters, gauges and
   histograms may be updated from any pool domain; span begin/end
   pairs are meaningful only when emitted from a single domain (the
   tuning loop is sequential, so this holds everywhere spans are
   used today). *)

type value = Str of string | Num of float | Int of int | Bool of bool

type event =
  | Begin of { name : string; ts : float; args : (string * value) list }
  | End of { name : string; ts : float; args : (string * value) list }
  | Instant of { name : string; ts : float; args : (string * value) list }

type histogram_snapshot = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (* (upper bound, occupancy) per bucket, ascending; the final
         bucket's bound is [infinity] *)
}

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  bounds : float array; (* ascending finite upper bounds *)
  occupancy : int array; (* length bounds + 1; last is the overflow bucket *)
}

type state = {
  lock : Mutex.t;
  clock : (unit -> float) option;
  record_events : bool;
      (* false = metrics-only handle: the logical clock and the event
         count still advance identically (so byte-reproducibility of
         every metric is preserved), but event payloads are not
         retained — a service holding thousands of sessions on one
         shard handle would otherwise accumulate unbounded trace
         memory. *)
  mutable ticks : int;
  mutable rev_events : event list;
  mutable event_count : int;
  mutable depth_now : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

type t = Off | On of state

let off = Off

let create ?clock ?(record_events = true) () =
  On
    {
      lock = Mutex.create ();
      clock;
      record_events;
      ticks = 0;
      rev_events = [];
      event_count = 0;
      depth_now = 0;
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 8;
    }

let enabled = function Off -> false | On _ -> true

let now_locked s =
  match s.clock with
  | Some f -> f ()
  | None -> float_of_int s.ticks

let now = function
  | Off -> 0.0
  | On s -> Mutex.protect s.lock (fun () -> now_locked s)

(* Every recorded event advances the logical clock by one, so default
   timestamps are the event sequence number — strictly increasing and
   fully deterministic. *)
let record s mk =
  Mutex.protect s.lock (fun () ->
      let ts = now_locked s in
      s.ticks <- s.ticks + 1;
      if s.record_events then s.rev_events <- mk ts :: s.rev_events;
      s.event_count <- s.event_count + 1)

let span_begin t ?(args = []) name =
  match t with
  | Off -> ()
  | On s ->
      record s (fun ts -> Begin { name; ts; args });
      Mutex.protect s.lock (fun () -> s.depth_now <- s.depth_now + 1)

let span_end t ?(args = []) name =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () -> s.depth_now <- max 0 (s.depth_now - 1));
      record s (fun ts -> End { name; ts; args })

let span t ?args name f =
  match t with
  | Off -> f ()
  | On _ ->
      span_begin t ?args name;
      Fun.protect ~finally:(fun () -> span_end t name) f

let instant t ?(args = []) name =
  match t with
  | Off -> ()
  | On s -> record s (fun ts -> Instant { name; ts; args })

let events = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> List.rev s.rev_events)

let event_count = function
  | Off -> 0
  | On s -> Mutex.protect s.lock (fun () -> s.event_count)

let depth = function
  | Off -> 0
  | On s -> Mutex.protect s.lock (fun () -> s.depth_now)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let incr t ?(by = 1) name =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.replace s.counters name (ref by))

let counter_value t name =
  match t with
  | Off -> 0
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> !r
          | None -> 0)

let gauge t name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.gauges name with
          | Some r -> r := v
          | None -> Hashtbl.replace s.gauges name (ref v))

let gauge_max t name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.gauges name with
          | Some r -> r := Float.max !r v
          | None -> Hashtbl.replace s.gauges name (ref v))

let gauge_value t name =
  match t with
  | Off -> None
  | On s ->
      Mutex.protect s.lock (fun () ->
          Option.map ( ! ) (Hashtbl.find_opt s.gauges name))

let default_bounds =
  (* Decades from 1 ms to 100 s: wide enough for both logical-tick
     durations and wall-clock millisecond latencies. *)
  [| 0.001; 0.01; 0.1; 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 |]

(* Bucket bounds are fixed when the histogram is created — at
   [declare_histogram] or at the first observation; a [bounds] passed
   later is ignored. *)
let hist_locked s ?bounds name =
  match Hashtbl.find_opt s.histograms name with
  | Some h -> h
  | None ->
      let bounds =
        match bounds with
        | Some b ->
            let b = Array.copy b in
            Array.sort Float.compare b;
            b
        | None -> default_bounds
      in
      let h =
        {
          h_count = 0;
          h_sum = 0.0;
          bounds;
          occupancy = Array.make (Array.length bounds + 1) 0;
        }
      in
      Hashtbl.replace s.histograms name h;
      h

let declare_histogram t ?bounds name =
  match t with
  | Off -> ()
  | On s -> Mutex.protect s.lock (fun () -> ignore (hist_locked s ?bounds name))

let observe_hist h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let rec slot i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.occupancy.(i) <- h.occupancy.(i) + 1

let observe t ?bounds name v =
  match t with
  | Off -> ()
  | On s ->
      Mutex.protect s.lock (fun () ->
          observe_hist (hist_locked s ?bounds name) v)

let sorted_bindings table f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.counters ( ! ))

let gauges = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.gauges ( ! ))

let snapshot_hist h =
  let buckets =
    List.init
      (Array.length h.occupancy)
      (fun i ->
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, h.occupancy.(i)))
  in
  { count = h.h_count; sum = h.h_sum; buckets }

let histograms = function
  | Off -> []
  | On s -> Mutex.protect s.lock (fun () -> sorted_bindings s.histograms snapshot_hist)

(* ------------------------------------------------------------------ *)
(* Cross-handle aggregation (the sharded service's merged registry)    *)

let quantile snap q =
  if snap.count = 0 || not (q >= 0.0 && q <= 1.0) then Float.nan
  else
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int snap.count)) in
      if r < 1 then 1 else if r > snap.count then snap.count else r
    in
    let rec go cumulative = function
      | [] -> Float.nan
      | (bound, occupancy) :: rest ->
          if cumulative + occupancy >= rank then bound
          else go (cumulative + occupancy) rest
    in
    go 0 snap.buckets

let same_bounds a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.equal x y) a b

(* Fold [src]'s buckets into [dst].  Identical bounds merge exactly
   (pointwise occupancy addition); differing bounds degrade gracefully
   by crediting each source bucket at its upper bound — conservative,
   and still exact for count and sum. *)
let merge_hist dst src =
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  if same_bounds dst.bounds src.bounds then
    Array.iteri
      (fun i occupancy -> dst.occupancy.(i) <- dst.occupancy.(i) + occupancy)
      src.occupancy
  else
    Array.iteri
      (fun i occupancy ->
        let v =
          if i < Array.length src.bounds then src.bounds.(i) else infinity
        in
        let rec slot j =
          if j >= Array.length dst.bounds then j
          else if v <= dst.bounds.(j) then j
          else slot (j + 1)
        in
        let j = slot 0 in
        dst.occupancy.(j) <- dst.occupancy.(j) + occupancy)
      src.occupancy

let merged handles =
  let dst =
    {
      lock = Mutex.create ();
      clock = None;
      record_events = true;
      ticks = 0;
      rev_events = [];
      event_count = 0;
      depth_now = 0;
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 8;
    }
  in
  List.iter
    (fun t ->
      match t with
      | Off -> ()
      | On src ->
          Mutex.protect src.lock (fun () ->
              Hashtbl.iter
                (fun name r ->
                  match Hashtbl.find_opt dst.counters name with
                  | Some d -> d := !d + !r
                  | None -> Hashtbl.replace dst.counters name (ref !r))
                src.counters;
              Hashtbl.iter
                (fun name r ->
                  match Hashtbl.find_opt dst.gauges name with
                  | Some d -> d := Float.max !d !r
                  | None -> Hashtbl.replace dst.gauges name (ref !r))
                src.gauges;
              Hashtbl.iter
                (fun name h ->
                  let d =
                    match Hashtbl.find_opt dst.histograms name with
                    | Some d -> d
                    | None ->
                        let d =
                          {
                            h_count = 0;
                            h_sum = 0.0;
                            bounds = Array.copy h.bounds;
                            occupancy =
                              Array.make (Array.length h.bounds + 1) 0;
                          }
                        in
                        Hashtbl.replace dst.histograms name d;
                        d
                  in
                  merge_hist d h)
                src.histograms))
    handles;
  On dst
