(* Parse a JSONL trace (as written by [Export.jsonl]) back into an
   aggregate summary: per-span-name durations, instant counts, and the
   final metrics registry.  Backs [harmony_cli stats] and the exporter
   round-trip tests. *)

type span_stats = {
  span_name : string;
  span_count : int;
  total : float;
  mean : float;
  max_duration : float;
  durations : float list; (* every closed-span duration, ascending *)
}

type histogram = {
  hist_count : int;
  hist_sum : float;
  hist_buckets : (float * int) list;
  hist_exemplars : (float * string * float) list;
      (* (bucket upper bound, trace id, observed value) *)
}

type t = {
  events : int;
  spans : span_stats list;
  instants : (string * int) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
  unmatched : int;
      (* End events with no matching Begin, plus Begins left open *)
}

(* Mutable accumulation per span name while scanning the event
   stream. *)
type span_acc = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_max : float;
  mutable a_durs : float list;
}

let bump table name f init =
  match Hashtbl.find_opt table name with
  | Some v -> f v
  | None ->
      let v = init () in
      f v;
      Hashtbl.replace table name v

let of_jsonl text =
  let span_accs : (string, span_acc) Hashtbl.t = Hashtbl.create 16 in
  let instant_counts : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let counters = ref [] in
  let gauges = ref [] in
  let histograms = ref [] in
  let open_spans = ref [] in
  (* stack of (name, ts) *)
  let unmatched = ref 0 in
  let events = ref 0 in
  let error = ref None in
  let field_str key json = Option.bind (Tjson.member key json) Tjson.to_str in
  let field_num key json = Option.bind (Tjson.member key json) Tjson.to_float in
  let handle_line lineno line =
    match Tjson.parse line with
    | Error msg ->
        if Option.is_none !error then
          error := Some (Printf.sprintf "line %d: %s" lineno msg)
    | Ok json -> (
        match (field_str "type" json, field_str "name" json) with
        | None, _ | _, None ->
            if Option.is_none !error then
              error :=
                Some (Printf.sprintf "line %d: missing type or name" lineno)
        | Some kind, Some name -> (
            match kind with
            | "begin" ->
                incr events;
                let ts = Option.value ~default:0.0 (field_num "ts" json) in
                open_spans := (name, ts) :: !open_spans
            | "end" -> (
                incr events;
                let ts = Option.value ~default:0.0 (field_num "ts" json) in
                match !open_spans with
                | (open_name, begin_ts) :: rest when String.equal open_name name
                  ->
                    open_spans := rest;
                    let d = ts -. begin_ts in
                    bump span_accs name
                      (fun a ->
                        a.a_count <- a.a_count + 1;
                        a.a_total <- a.a_total +. d;
                        a.a_max <- Float.max a.a_max d;
                        a.a_durs <- d :: a.a_durs)
                      (fun () ->
                        { a_count = 0; a_total = 0.0; a_max = 0.0; a_durs = [] })
                | _ :: _ | [] -> incr unmatched)
            | "instant" ->
                incr events;
                bump instant_counts name
                  (fun r -> incr r)
                  (fun () -> ref 0)
            | "counter" ->
                let v = Option.value ~default:0.0 (field_num "value" json) in
                counters := (name, int_of_float v) :: !counters
            | "gauge" ->
                let v = Option.value ~default:0.0 (field_num "value" json) in
                gauges := (name, v) :: !gauges
            | "histogram" ->
                let hist_count =
                  int_of_float
                    (Option.value ~default:0.0 (field_num "count" json))
                in
                let hist_sum =
                  Option.value ~default:0.0 (field_num "sum" json)
                in
                let bound_of s =
                  if String.equal s "+Inf" then infinity
                  else Option.value ~default:infinity (float_of_string_opt s)
                in
                let elems key =
                  match Tjson.member key json with
                  | Some (Tjson.List l) -> l
                  | Some
                      (Tjson.Null | Tjson.Bool _ | Tjson.Num _ | Tjson.Str _
                      | Tjson.Obj _)
                  | None ->
                      []
                in
                let hist_buckets =
                  List.filter_map
                    (fun b ->
                      match
                        (field_str "le" b, Option.bind (Tjson.member "n" b) Tjson.to_float)
                      with
                      | Some le, Some n -> Some (bound_of le, int_of_float n)
                      | _, _ -> None)
                    (elems "buckets")
                in
                let hist_exemplars =
                  List.filter_map
                    (fun e ->
                      match
                        ( field_str "le" e,
                          field_str "trace_id" e,
                          Option.bind (Tjson.member "value" e) Tjson.to_float )
                      with
                      | Some le, Some trace, Some v ->
                          Some (bound_of le, trace, v)
                      | _, _, _ -> None)
                    (elems "exemplars")
                in
                histograms :=
                  (name, { hist_count; hist_sum; hist_buckets; hist_exemplars })
                  :: !histograms
            | _ ->
                if Option.is_none !error then
                  error :=
                    Some
                      (Printf.sprintf "line %d: unknown record type %S" lineno
                         kind)))
  in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if String.length line > 0 then handle_line (i + 1) line);
  match !error with
  | Some msg -> Error msg
  | None ->
      unmatched := !unmatched + List.length !open_spans;
      let spans =
        Hashtbl.fold
          (fun name a acc ->
            {
              span_name = name;
              span_count = a.a_count;
              total = a.a_total;
              mean = (if a.a_count = 0 then 0.0 else a.a_total /. float_of_int a.a_count);
              max_duration = a.a_max;
              durations = List.sort Float.compare a.a_durs;
            }
            :: acc)
          span_accs []
        |> List.sort (fun a b -> String.compare a.span_name b.span_name)
      in
      let sorted l =
        List.sort (fun (a, _) (b, _) -> String.compare a b) (List.rev l)
      in
      let instants =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) instant_counts []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Ok
        {
          events = !events;
          spans;
          instants;
          counters = sorted !counters;
          gauges = sorted !gauges;
          histograms = sorted !histograms;
          unmatched = !unmatched;
        }

(* ------------------------------------------------------------------ *)
(* Percentiles — total over empty sets.

   A percentile of zero samples has no value; returning NaN here once
   let a NaN flow into a [<] comparison downstream (always false, so
   the regression it should have flagged passed silently).  Every
   percentile accessor therefore returns [None] on an empty set, and
   callers must decide what absence means. *)

let percentile sorted q =
  let n = List.length sorted in
  if n = 0 || not (q >= 0.0 && q <= 1.0) then None
  else
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    List.nth_opt sorted (rank - 1)

let span_percentile t name q =
  match List.find_opt (fun s -> String.equal s.span_name name) t.spans with
  | None -> None
  | Some s -> percentile s.durations q

let histogram_quantile h q =
  if h.hist_count = 0 || not (q >= 0.0 && q <= 1.0) then None
  else
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.hist_count)) in
      if r < 1 then 1 else if r > h.hist_count then h.hist_count else r
    in
    let rec go cumulative = function
      | [] -> None
      | (bound, occupancy) :: rest ->
          if cumulative + occupancy >= rank then Some bound
          else go (cumulative + occupancy) rest
    in
    go 0 h.hist_buckets

let pp ppf t =
  Format.fprintf ppf "events: %d@." t.events;
  if t.unmatched > 0 then Format.fprintf ppf "unmatched spans: %d@." t.unmatched;
  if t.spans <> [] then begin
    Format.fprintf ppf "@.spans (count / total / mean / max):@.";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-28s %6d  %10.3f %10.3f %10.3f@." s.span_name
          s.span_count s.total s.mean s.max_duration)
      t.spans
  end;
  if t.instants <> [] then begin
    Format.fprintf ppf "@.instants:@.";
    List.iter
      (fun (name, n) -> Format.fprintf ppf "  %-28s %6d@." name n)
      t.instants
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "@.counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-28s %6d@." name v)
      t.counters
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "@.gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-28s %10.3f@." name v)
      t.gauges
  end;
  if t.histograms <> [] then begin
    Format.fprintf ppf "@.histograms (count / sum):@.";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-28s %6d %10.3f@." name h.hist_count h.hist_sum)
      t.histograms
  end

let to_string t = Format.asprintf "%a" pp t
