(** Serialize a telemetry handle to the supported trace formats. *)

type format =
  | Jsonl  (** one JSON object per line: events then metrics *)
  | Chrome  (** Chrome [trace_event] JSON (about:tracing / Perfetto) *)
  | Prometheus  (** text exposition of the metrics registry only *)

val format_to_string : format -> string

val format_of_string : string -> format option
(** Accepts ["jsonl"], ["chrome"]/["trace"], ["prom"]/["prometheus"]
    (and a few aliases), case-insensitively. *)

val format_of_filename : string -> format
(** Infer a format from a file extension: [.jsonl] → JSONL, [.json] →
    Chrome, [.prom]/[.txt]/[.metrics] → Prometheus; anything else
    defaults to JSONL. *)

val jsonl : Telemetry.t -> string
(** Events in record order (one object per line, [type] ∈
    begin/end/instant), followed by one line per counter, gauge and
    histogram.  The format {!Summary.of_jsonl} parses back. *)

val chrome : Telemetry.t -> string
(** A complete Chrome trace JSON object: spans as B/E pairs, instants
    as [i], counters and gauges as trailing [C] events. *)

val prometheus : Telemetry.t -> string
(** The metrics registry in Prometheus text exposition format.  Names
    are sanitized to the legal charset and prefixed [harmony_];
    histogram buckets are cumulative with an [le="+Inf"] bucket. *)

val render : Telemetry.t -> format -> string
