(* Flight recorder: a fixed-capacity ring of the most recent telemetry
   events, kept even when the owning handle is metrics-only
   ([record_events:false]).  A long-running shard cannot afford an
   unbounded trace, but the last few hundred events before a crash or
   an SLO page are exactly what an operator needs.

   Allocation discipline (DESIGN.md §12): every slot lives in four
   preallocated parallel arrays — [kinds]/[names]/[stamps]/[traces] —
   so recording mutates slots in place.  Timestamps go in a bare
   [float array] (unboxed); a mutable float field on a mixed record
   would box on every write.

   Locking: the recorder has its own mutex and, like the telemetry
   lock, it is a forced leaf in the semantic lock-order analysis (sem
   rule S2): no other lock may be acquired while holding it, and the
   telemetry handle records into the ring only *after* releasing its
   own lock. *)

type kind = Begin | End | Instant

type t = {
  lock : Mutex.t;
  capacity : int;
  kinds : int array;
  names : string array;
  stamps : float array;
  traces : string array;
  mutable total : int; (* events ever recorded; ring slot = total mod capacity *)
}

type entry = { e_kind : kind; e_name : string; e_ts : float; e_trace : string }

let create ~capacity =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  {
    lock = Mutex.create ();
    capacity;
    kinds = Array.make capacity 0;
    names = Array.make capacity "";
    stamps = Array.make capacity 0.0;
    traces = Array.make capacity "";
    total = 0;
  }

let capacity t = t.capacity

let total t = Mutex.protect t.lock (fun () -> t.total)

let int_of_kind = function Begin -> 0 | End -> 1 | Instant -> 2
let kind_of_int = function 0 -> Begin | 1 -> End | _ -> Instant
let kind_to_string = function
  | Begin -> "begin"
  | End -> "end"
  | Instant -> "instant"

let record t ~kind ~name ~ts ~trace =
  Mutex.protect t.lock (fun () ->
      let i = t.total mod t.capacity in
      t.kinds.(i) <- int_of_kind kind;
      t.names.(i) <- name;
      t.stamps.(i) <- ts;
      t.traces.(i) <- trace;
      t.total <- t.total + 1)

(* Oldest-first snapshot of the retained window (the last
   [min total capacity] events). *)
let entries t =
  Mutex.protect t.lock (fun () ->
      let n = min t.total t.capacity in
      let first = t.total - n in
      List.init n (fun j ->
          let i = (first + j) mod t.capacity in
          {
            e_kind = kind_of_int t.kinds.(i);
            e_name = t.names.(i);
            e_ts = t.stamps.(i);
            e_trace = t.traces.(i);
          }))

(* One JSON object per line, oldest first — same field names as
   [Export.jsonl] events plus the ring metadata, so [harmony_trace]
   and [Summary.of_jsonl] both accept a dump. *)
let to_jsonl ?shard t =
  let buf = Buffer.create 1024 in
  let shard_field =
    match shard with
    | None -> []
    | Some i -> [ ("shard", Tjson.Num (float_of_int i)) ]
  in
  List.iter
    (fun e ->
      let trace_field =
        if String.equal e.e_trace "" then []
        else [ ("args", Tjson.Obj [ ("trace_id", Tjson.Str e.e_trace) ]) ]
      in
      Buffer.add_string buf
        (Tjson.to_string
           (Tjson.Obj
              ([
                 ("type", Tjson.Str (kind_to_string e.e_kind));
                 ("name", Tjson.Str e.e_name);
                 ("ts", Tjson.Num e.e_ts);
               ]
              @ shard_field @ trace_field)));
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf
