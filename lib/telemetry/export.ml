(* Exporters: serialize a telemetry handle's events and metrics.

   Three formats:
   - JSONL: one JSON object per line (events in order, then the
     registry) — the format [harmony_cli stats] and {!Summary} parse
     back.
   - Chrome trace_event JSON: loadable in about:tracing / Perfetto.
   - Prometheus text exposition: the metrics registry only. *)

type format = Jsonl | Chrome | Prometheus

let format_to_string = function
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"
  | Prometheus -> "prom"

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" | "json-lines" -> Some Jsonl
  | "chrome" | "trace" | "trace-event" -> Some Chrome
  | "prom" | "prometheus" | "metrics" -> Some Prometheus
  | _ -> None

let format_of_filename path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".jsonl" -> Jsonl
  | ".json" -> Chrome
  | ".prom" | ".txt" | ".metrics" -> Prometheus
  | _ -> Jsonl

(* ------------------------------------------------------------------ *)
(* Shared pieces                                                       *)

let json_of_value = function
  | Telemetry.Str s -> Tjson.Str s
  | Telemetry.Num v -> Tjson.Num v
  | Telemetry.Int i -> Tjson.Num (float_of_int i)
  | Telemetry.Bool b -> Tjson.Bool b

let json_of_args args =
  Tjson.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)

(* The textual upper bound of a histogram bucket, Prometheus style:
   "+Inf" for the overflow bucket. *)
let bound_to_string bound =
  if Float.is_finite bound then Tjson.number_to_string bound else "+Inf"

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let jsonl_event ev =
  let line kind name ts args =
    Tjson.Obj
      [
        ("type", Tjson.Str kind);
        ("name", Tjson.Str name);
        ("ts", Tjson.Num ts);
        ("args", json_of_args args);
      ]
  in
  match ev with
  | Telemetry.Begin { name; ts; args } -> line "begin" name ts args
  | Telemetry.End { name; ts; args } -> line "end" name ts args
  | Telemetry.Instant { name; ts; args } -> line "instant" name ts args

let jsonl_metrics t =
  List.map
    (fun (name, v) ->
      Tjson.Obj
        [
          ("type", Tjson.Str "counter");
          ("name", Tjson.Str name);
          ("value", Tjson.Num (float_of_int v));
        ])
    (Telemetry.counters t)
  @ List.map
      (fun (name, v) ->
        Tjson.Obj
          [
            ("type", Tjson.Str "gauge");
            ("name", Tjson.Str name);
            ("value", Tjson.Num v);
          ])
      (Telemetry.gauges t)
  @ List.map
      (fun (name, h) ->
        let exemplars =
          match Telemetry.exemplars t name with
          | [] -> []
          | exs ->
              [
                ( "exemplars",
                  Tjson.List
                    (List.map
                       (fun e ->
                         Tjson.Obj
                           [
                             ( "le",
                               Tjson.Str (bound_to_string e.Telemetry.ex_bound)
                             );
                             ("trace_id", Tjson.Str e.Telemetry.ex_trace_id);
                             ("value", Tjson.Num e.Telemetry.ex_val);
                           ])
                       exs) );
              ]
        in
        Tjson.Obj
          ([
             ("type", Tjson.Str "histogram");
             ("name", Tjson.Str name);
             ("count", Tjson.Num (float_of_int h.Telemetry.count));
             ("sum", Tjson.Num h.Telemetry.sum);
             ( "buckets",
               Tjson.List
                 (List.map
                    (fun (bound, occupancy) ->
                      Tjson.Obj
                        [
                          ("le", Tjson.Str (bound_to_string bound));
                          ("n", Tjson.Num (float_of_int occupancy));
                        ])
                    h.Telemetry.buckets) );
           ]
          @ exemplars))
      (Telemetry.histograms t)

let jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      Buffer.add_string buf (Tjson.to_string line);
      Buffer.add_char buf '\n')
    (List.map jsonl_event (Telemetry.events t) @ jsonl_metrics t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)

let chrome t =
  let entry ph name ts extra args =
    Tjson.Obj
      ([
         ("ph", Tjson.Str ph);
         ("name", Tjson.Str name);
         ("cat", Tjson.Str "harmony");
         ("ts", Tjson.Num ts);
         ("pid", Tjson.Num 1.0);
         ("tid", Tjson.Num 1.0);
       ]
      @ extra
      @ [ ("args", args) ])
  in
  let events =
    List.map
      (function
        | Telemetry.Begin { name; ts; args } ->
            entry "B" name ts [] (json_of_args args)
        | Telemetry.End { name; ts; args } ->
            entry "E" name ts [] (json_of_args args)
        | Telemetry.Instant { name; ts; args } ->
            entry "i" name ts [ ("s", Tjson.Str "t") ] (json_of_args args))
      (Telemetry.events t)
  in
  let last_ts =
    match List.rev (Telemetry.events t) with
    | [] -> 0.0
    | (Telemetry.Begin { ts; _ } | Telemetry.End { ts; _ }
      | Telemetry.Instant { ts; _ })
      :: _ ->
        ts
  in
  let metric_events =
    List.map
      (fun (name, v) ->
        entry "C" name last_ts []
          (Tjson.Obj [ ("value", Tjson.Num (float_of_int v)) ]))
      (Telemetry.counters t)
    @ List.map
        (fun (name, v) ->
          entry "C" name last_ts [] (Tjson.Obj [ ("value", Tjson.Num v) ]))
        (Telemetry.gauges t)
  in
  Tjson.to_string
    (Tjson.Obj
       [
         ("traceEvents", Tjson.List (events @ metric_events));
         ("displayTimeUnit", Tjson.Str "ms");
       ])

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the registry uses
   dotted lower-case names, so map every illegal byte to '_' and add
   the harmony_ namespace prefix. *)
let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  let mapped =
    if String.length mapped > 0 then
      match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped
    else mapped
  in
  "harmony_" ^ mapped

let prom_float v =
  if Float.is_finite v then Tjson.number_to_string v
  else if v > 0.0 then "+Inf"
  else if v < 0.0 then "-Inf"
  else "NaN"

let prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    (Telemetry.counters t);
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float v)))
    (Telemetry.gauges t);
  List.iter
    (fun (name, h) ->
      let exemplars = Telemetry.exemplars t name in
      let name = sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
      let cumulative = ref 0 in
      List.iter
        (fun (bound, occupancy) ->
          cumulative := !cumulative + occupancy;
          (* OpenMetrics exemplar syntax: the last trace to land in
             this bucket, with its observed value. *)
          let exemplar =
            match
              List.find_opt
                (fun e -> Float.equal e.Telemetry.ex_bound bound)
                exemplars
            with
            | None -> ""
            | Some e ->
                Printf.sprintf " # {trace_id=\"%s\"} %s"
                  e.Telemetry.ex_trace_id
                  (prom_float e.Telemetry.ex_val)
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" name
               (bound_to_string bound) !cumulative exemplar))
        h.Telemetry.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name (prom_float h.Telemetry.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name h.Telemetry.count))
    (Telemetry.histograms t);
  Buffer.contents buf

let render t = function
  | Jsonl -> jsonl t
  | Chrome -> chrome t
  | Prometheus -> prometheus t
