(* A minimal JSON codec for the telemetry exporters.

   Deliberately tiny: the telemetry layer emits a known subset of JSON
   (objects, arrays, strings, finite numbers, booleans, null) and the
   [stats] summarizer parses exactly that subset back.  Non-finite
   numbers are emitted as [null] (JSON has no NaN/inf) and parse back
   as [Null].  Strings are treated as byte sequences: bytes >= 0x20
   pass through verbatim (UTF-8 transparent), control characters,
   quotes and backslashes are escaped. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every finite float; trim to the shortest
   representation that still round-trips so integral values print as
   integers ("42" not "42.000000000000000"). *)
let number_to_string v =
  let exact = Printf.sprintf "%.17g" v in
  let shorter = Printf.sprintf "%.12g" v in
  match float_of_string_opt shorter with
  | Some w when Float.equal w v -> shorter
  | Some _ | None -> exact

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      if Float.is_finite v then Buffer.add_string buf (number_to_string v)
      else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some _ | None -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub text !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let code =
                    (hex_digit text.[!pos] * 4096)
                    + (hex_digit text.[!pos + 1] * 256)
                    + (hex_digit text.[!pos + 2] * 16)
                    + hex_digit text.[!pos + 3]
                  in
                  pos := !pos + 4;
                  (* The emitter only escapes control bytes; decode
                     codepoints < 256 exactly and map the rest to '?'. *)
                  if code < 256 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?'
              | _ -> fail "bad escape");
              go ()
          )
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec go () =
      match peek () with
      | Some c when number_char c ->
          advance ();
          go ()
      | Some _ | None -> ()
    in
    go ();
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | Some _ | None -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | Some _ | None -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | value ->
      skip_ws ();
      if !pos < n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
      else Ok value
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_float = function
  | Num v -> Some v
  | Null | Bool _ | Str _ | List _ | Obj _ -> None

let to_str = function
  | Str s -> Some s
  | Null | Bool _ | Num _ | List _ | Obj _ -> None
