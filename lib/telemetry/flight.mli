(** Flight recorder: a fixed-capacity, slot-reusing ring buffer of the
    most recent telemetry events.

    Attach one to a handle with {!Telemetry.create}[ ~flight]; the
    handle then mirrors every span/instant event into the ring even
    when the handle itself is metrics-only, so the last few hundred
    events before a crash or an SLO page survive at O(capacity)
    memory.  Recording mutates preallocated slots — no allocation per
    event (DESIGN.md §12).

    The recorder's mutex is a forced leaf in the lock-order analysis
    (sem rule S2), alongside the telemetry lock: nothing may be
    acquired while holding it. *)

type t

type kind = Begin | End | Instant

type entry = { e_kind : kind; e_name : string; e_ts : float; e_trace : string }
(** [e_trace] is the event's trace id ("" when it carried none). *)

val create : capacity:int -> t
(** Fixed capacity ring; raises [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (not capped at capacity). *)

val record : t -> kind:kind -> name:string -> ts:float -> trace:string -> unit
(** Overwrites the oldest slot once the ring is full. *)

val entries : t -> entry list
(** The retained window, oldest first (length [min total capacity]). *)

val to_jsonl : ?shard:int -> t -> string
(** The retained window as JSONL event lines ([Export.jsonl]-shaped,
    plus a ["shard"] field when given), parseable by
    [Summary.of_jsonl] and [harmony_trace]. *)

val kind_to_string : kind -> string
