(** Objective functions: what the tuner measures.

    An objective wraps a search space with an evaluation function and
    a direction.  Throughput-style metrics (the paper's WIPS) are
    higher-is-better; latency/time metrics are lower-is-better.  The
    tuner and all experiment code work against this interface, so the
    synthetic rule data, the web-service simulator, and analytic test
    functions are interchangeable. *)

open Harmony_param

type direction = Higher_is_better | Lower_is_better

type fault = Transient | Persistent | Timeout | Outlier
(** What can go wrong with one physical measurement of a live system:
    a transient failure (clears on retry), a persistently broken
    configuration (every attempt fails — BestConfig's "invalid
    configuration" case), a timed-out run (signalled by the
    {!timed_out} sentinel value rather than an exception), or a
    silently corrupted reading (an {!Outlier}, only detectable
    statistically). *)

exception Measurement_failed of fault
(** Raised by faulty objectives ({!with_faults}, or any real
    measurement backend) when an evaluation fails outright.  The
    {!Measure} policy layer catches it; nothing else should. *)

val timed_out : float
(** The timeout sentinel ([nan]).  A measurement backend that gives up
    waiting returns this instead of raising; [Measure] treats any
    non-finite reading as a {!Timeout} fault. *)

val fault_to_string : fault -> string

type stats = {
  hits : int;    (** evaluations answered from the memo table *)
  misses : int;  (** {e physical} measurements of the underlying
                     objective — with a retrying measurement layer,
                     every re-measurement counts *)
  evals : int;   (** [hits + misses] *)
  faults : int;  (** faulty readings observed by the measurement
                     policy: caught failures, timeouts, rejected
                     outliers *)
  retries : int; (** physical attempts beyond the first of each
                     logical measurement *)
}
(** Counters of a [cached] and/or [Measure.robust] objective
    (immutable snapshot). *)

val empty_stats : stats

type dispatcher = { run : 'a. ('a -> float) -> 'a array -> float array }
(** How a batch of independent measurements is fanned out: the
    sequential dispatcher maps in the caller, the pool dispatcher uses
    {!Harmony_parallel.Pool.map_array}.  Both return results in input
    order, so a combinator's batch strategy is dispatcher-agnostic. *)

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
  batch : (dispatcher -> Space.config array -> float array) option;
      (** how this layer evaluates a whole array of configurations at
          once (input-order results); [None] means {!eval_batch} falls
          back to dispatching [eval] directly (deterministic
          objectives) or to a sequential input-order fold (noisy
          ones).  Combinator authors wrap the layer below with
          {!run_batch}. *)
  noisy : bool;  (** [with_noise] was applied somewhere in the stack *)
  stats : (unit -> stats) option;  (** set by [cached]; use {!stats} *)
}

val create : space:Space.t -> direction:direction -> (Space.config -> float) -> t

val eval_batch :
  ?pool:Harmony_parallel.Pool.t -> t -> Space.config array -> float array
(** [eval_batch ?pool t configs] measures every configuration and
    returns the readings in input order, byte-identical to the
    sequential fold [Array.map t.eval configs] at any pool size:

    - a [cached] layer makes one memo pass per batch — hits (and
      in-batch duplicates) answer up front, only the distinct misses
      reach the dispatcher, and hit/miss totals match the sequential
      fold exactly;
    - keyed randomness ([with_faults], [Measure.robust]) batches by
      configuration: distinct configurations fan out, repeated
      occurrences of one configuration keep their in-order attempt
      sequence on a single task;
    - shared-stream noise ([with_noise]) forces the whole batch onto
      the sequential fold, so the draw order never changes.

    Without [pool] the dispatch itself is sequential; the memo pass
    and per-layer bookkeeping are identical either way, so 1-domain
    and N-domain runs produce the same bytes.  When evaluations raise,
    the first exception by configuration group (rather than strictly
    by input position) is re-raised after the batch completes. *)

val run_batch : t -> dispatcher -> Space.config array -> float array
(** The engine underneath {!eval_batch}, with an explicit dispatcher:
    [t.batch] when the layer has a strategy, otherwise the
    deterministic fan-out / noisy sequential-fold fallback.  For
    combinator authors delegating to the layer below. *)

val sequential_dispatcher : dispatcher

val pool_dispatcher : Harmony_parallel.Pool.t -> dispatcher

val group_by_key : Space.config array -> int list array
(** Occurrence indices grouped by {!Space.config_key}: groups in
    first-occurrence order, indices within a group in input order. *)

val batch_by_key :
  (Space.config -> float) -> dispatcher -> Space.config array -> float array
(** Batch strategy for layers whose randomness is keyed per
    configuration: one dispatcher task per distinct configuration,
    repeated occurrences evaluated in input order within the task. *)

val better : t -> float -> float -> bool
(** [better t a b] is true when performance [a] is strictly preferable
    to [b] under the objective's direction. *)

val best_of : t -> float array -> float
(** Best value in a non-empty array under the objective's direction. *)

val worst_of : t -> float array -> float

val eval_default : t -> float
(** Evaluate the all-defaults configuration. *)

val noisy : t -> bool
(** Whether [with_noise] was applied at any layer. *)

val stats : t -> stats option
(** Memo counters when the objective (or an objective it was derived
    from with [with_*] combinators) is [cached]; [None] otherwise. *)

val with_noise : Harmony_numerics.Rng.t -> level:float -> t -> t
(** [with_noise rng ~level t] multiplies every measurement by a factor
    uniform in [1-level, 1+level] — the paper's run-to-run
    perturbation (Section 5.2, 0% to +/-25%).  Marks the objective
    {!noisy}. *)

val with_snap : t -> t
(** Snap configurations onto the grid before evaluating; makes an
    objective total over continuous proposals. *)

type fault_rates = {
  transient : float;         (** per-attempt probability of a transient
                                 failure *)
  persistent : float;        (** per-configuration probability that every
                                 attempt fails *)
  timeout : float;           (** per-attempt probability of a timed-out
                                 measurement ({!timed_out}) *)
  outlier : float;           (** per-attempt probability of multiplicative
                                 corruption of the reading *)
  outlier_magnitude : float; (** corruption factor: a corrupted reading is
                                 multiplied or divided by this (> 0) *)
}

val no_faults : fault_rates

val fault_profile : float -> fault_rates
(** [fault_profile rate] is the standard injection mix the CLI's
    [--faults RATE] uses: transients at [rate], outliers at [rate/2],
    timeouts at [rate/4], persistently broken configurations at
    [rate/8], magnitude 8.
    @raise Invalid_argument when [rate] is outside [0, 1]. *)

val with_faults : ?rates:fault_rates -> seed:int -> t -> t
(** Seeded, deterministic fault injection over the whole measurement
    path — the test harness for everything in {!Measure}.  Each fault
    decision is a pure function of [(seed, configuration, attempt
    index)], where the attempt index counts physical evaluations of
    that configuration: replaying a run replays its faults exactly,
    independent of what other configurations were measured in
    between.  Transient and persistent faults raise
    {!Measurement_failed}; timeouts return {!timed_out}; outliers
    multiply or divide the true reading by [outlier_magnitude].
    Marks the objective {!noisy} (a transient objective is not a
    function of the configuration), so [cached] refuses to sit
    directly on top of it — vet measurements with [Measure.robust]
    first.
    @raise Invalid_argument on rates outside [0, 1] or a non-positive
    magnitude. *)

val cached : ?telemetry:Harmony_telemetry.Telemetry.t -> ?freeze_noise:bool -> t -> t
(** Memoize measurements per configuration (key: {!Space.config_key},
    so bit-identical configurations — which grid-snapped proposals
    are — share an entry).  Repeated configurations return their
    recorded value instead of re-measuring: the paper's "save time by
    not retrying all those configurations again" within one execution.
    Counters are exposed through {!stats}.  Thread-safe: concurrent
    evaluations from pool domains serialize on the memo table so the
    same configuration is never measured twice.

    Ordering with respect to noise is explicit, never silent:
    memoizing a {!noisy} objective freezes the first random draw of
    every configuration, so [cached] raises [Invalid_argument] on a
    noisy objective unless [~freeze_noise:true] acknowledges the
    freeze (cache-after-noise).  To keep noise live, cache the
    deterministic objective first and apply [with_noise] on top
    (noise-after-cache).  Unbounded table — intended for tuning-scale
    evaluation counts.

    Counts are recorded on a telemetry registry — [telemetry] when a
    live handle is given (counters [objective.memo.hits] /
    [objective.memo.misses]), a private registry otherwise — and
    {!stats} reads them back, so there is exactly one counting path.
    Several cached objectives sharing one handle merge their counts. *)

val with_cache : t -> t
(** [cached ~freeze_noise:true] — the historical name.  Prefer
    {!cached}, which refuses to freeze noise silently. *)

val negate : t -> t
(** Flip the direction by negating measurements (useful for reusing
    minimizers as maximizers in tests). *)
