(** Objective functions: what the tuner measures.

    An objective wraps a search space with an evaluation function and
    a direction.  Throughput-style metrics (the paper's WIPS) are
    higher-is-better; latency/time metrics are lower-is-better.  The
    tuner and all experiment code work against this interface, so the
    synthetic rule data, the web-service simulator, and analytic test
    functions are interchangeable. *)

open Harmony_param

type direction = Higher_is_better | Lower_is_better

type stats = {
  hits : int;    (** evaluations answered from the memo table *)
  misses : int;  (** evaluations that reached the underlying objective *)
  evals : int;   (** total evaluation requests, [hits + misses] *)
}
(** Counters of a [cached] objective (immutable snapshot). *)

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
  noisy : bool;  (** [with_noise] was applied somewhere in the stack *)
  stats : (unit -> stats) option;  (** set by [cached]; use {!stats} *)
}

val create : space:Space.t -> direction:direction -> (Space.config -> float) -> t

val better : t -> float -> float -> bool
(** [better t a b] is true when performance [a] is strictly preferable
    to [b] under the objective's direction. *)

val best_of : t -> float array -> float
(** Best value in a non-empty array under the objective's direction. *)

val worst_of : t -> float array -> float

val eval_default : t -> float
(** Evaluate the all-defaults configuration. *)

val noisy : t -> bool
(** Whether [with_noise] was applied at any layer. *)

val stats : t -> stats option
(** Memo counters when the objective (or an objective it was derived
    from with [with_*] combinators) is [cached]; [None] otherwise. *)

val with_noise : Harmony_numerics.Rng.t -> level:float -> t -> t
(** [with_noise rng ~level t] multiplies every measurement by a factor
    uniform in [1-level, 1+level] — the paper's run-to-run
    perturbation (Section 5.2, 0% to +/-25%).  Marks the objective
    {!noisy}. *)

val with_snap : t -> t
(** Snap configurations onto the grid before evaluating; makes an
    objective total over continuous proposals. *)

val cached : ?freeze_noise:bool -> t -> t
(** Memoize measurements per configuration (key: {!Space.config_key},
    so bit-identical configurations — which grid-snapped proposals
    are — share an entry).  Repeated configurations return their
    recorded value instead of re-measuring: the paper's "save time by
    not retrying all those configurations again" within one execution.
    Counters are exposed through {!stats}.  Thread-safe: concurrent
    evaluations from pool domains serialize on the memo table so the
    same configuration is never measured twice.

    Ordering with respect to noise is explicit, never silent:
    memoizing a {!noisy} objective freezes the first random draw of
    every configuration, so [cached] raises [Invalid_argument] on a
    noisy objective unless [~freeze_noise:true] acknowledges the
    freeze (cache-after-noise).  To keep noise live, cache the
    deterministic objective first and apply [with_noise] on top
    (noise-after-cache).  Unbounded table — intended for tuning-scale
    evaluation counts. *)

val with_cache : t -> t
(** [cached ~freeze_noise:true] — the historical name.  Prefer
    {!cached}, which refuses to freeze noise silently. *)

val negate : t -> t
(** Flip the direction by negating measurements (useful for reusing
    minimizers as maximizers in tests). *)
