open Harmony_param
module Rng = Harmony_numerics.Rng

type direction = Higher_is_better | Lower_is_better

type fault = Transient | Persistent | Timeout | Outlier

exception Measurement_failed of fault

let timed_out = Float.nan

let fault_to_string = function
  | Transient -> "transient"
  | Persistent -> "persistent"
  | Timeout -> "timeout"
  | Outlier -> "outlier"

type stats = {
  hits : int;
  misses : int;
  evals : int;
  faults : int;
  retries : int;
}

let empty_stats = { hits = 0; misses = 0; evals = 0; faults = 0; retries = 0 }

type dispatcher = { run : 'a. ('a -> float) -> 'a array -> float array }

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
  batch : (dispatcher -> Space.config array -> float array) option;
  noisy : bool;
  stats : (unit -> stats) option;
}

let create ~space ~direction eval =
  { space; direction; eval; batch = None; noisy = false; stats = None }

let sequential_dispatcher = { run = (fun f xs -> Array.map f xs) }

let pool_dispatcher pool =
  { run = (fun f xs -> Harmony_parallel.Pool.map_array pool f xs) }

(* The batch engine's fallback: a combinator stack without its own
   batch strategy fans a deterministic objective straight out to the
   dispatcher; a noisy one (shared RNG stream — draw order matters)
   stays on a sequential input-order fold, so batching never reorders
   draws. *)
let run_batch t disp configs =
  match t.batch with
  | Some b -> b disp configs
  | None -> if t.noisy then Array.map t.eval configs else disp.run t.eval configs

let eval_batch ?pool t configs =
  if Array.length configs = 0 then [||]
  else
    let disp =
      match pool with
      | None -> sequential_dispatcher
      | Some pool -> pool_dispatcher pool
    in
    run_batch t disp configs

(* Occurrence indices grouped by configuration key, groups in
   first-occurrence order, indices within a group in input order. *)
let group_by_key configs =
  let n = Array.length configs in
  let groups : (string, int list) Hashtbl.t =
    Hashtbl.create (Stdlib.max 16 (2 * n))
  in
  let rev_order = ref [] in
  for i = 0 to n - 1 do
    let k = Space.config_key configs.(i) in
    match Hashtbl.find_opt groups k with
    | Some tail -> Hashtbl.replace groups k (i :: tail)
    | None ->
        Hashtbl.add groups k [ i ];
        rev_order := k :: !rev_order
  done;
  Array.of_list
    (List.rev_map
       (fun k ->
         match Hashtbl.find_opt groups k with
         | Some tail -> List.rev tail
         | None -> [])
       !rev_order)

(* Batch strategy for layers whose randomness is keyed per
   configuration (fault injection, retry policies): distinct
   configurations are independent and fan out across domains, while
   repeated occurrences of one configuration stay on one task in input
   order, preserving that configuration's attempt sequence exactly. *)
let batch_by_key eval disp configs =
  let groups = group_by_key configs in
  let results = Array.make (Array.length configs) 0.0 in
  let eval_group idxs =
    List.iter (fun i -> results.(i) <- eval configs.(i)) idxs;
    0.0
  in
  ignore (disp.run eval_group groups : float array);
  results

let better t a b =
  match t.direction with
  | Higher_is_better -> a > b
  | Lower_is_better -> a < b

let best_of t values =
  if Array.length values = 0 then invalid_arg "Objective.best_of: empty array";
  Array.fold_left
    (fun acc v -> if better t v acc then v else acc)
    values.(0) values

let worst_of t values =
  if Array.length values = 0 then invalid_arg "Objective.worst_of: empty array";
  Array.fold_left
    (fun acc v -> if better t acc v then v else acc)
    values.(0) values

let eval_default t = t.eval (Space.defaults t.space)

let noisy t = t.noisy
let stats t = match t.stats with None -> None | Some get -> Some (get ())

let with_noise rng ~level t =
  if level < 0.0 then invalid_arg "Objective.with_noise: negative level";
  (* One shared RNG stream: the draw order is the evaluation order, so
     batches of a noisy objective must stay sequential — [batch] is
     cleared and the [run_batch] fallback keeps the input-order fold. *)
  {
    t with
    eval = (fun c -> Rng.perturb rng level (t.eval c));
    batch = None;
    noisy = true;
  }

let with_snap t =
  let snap c = Space.snap t.space c in
  {
    t with
    eval = (fun c -> t.eval (snap c));
    batch = Some (fun disp configs -> run_batch t disp (Array.map snap configs));
  }

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

type fault_rates = {
  transient : float;
  persistent : float;
  timeout : float;
  outlier : float;
  outlier_magnitude : float;
}

let no_faults =
  {
    transient = 0.0;
    persistent = 0.0;
    timeout = 0.0;
    outlier = 0.0;
    outlier_magnitude = 8.0;
  }

let fault_profile rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Objective.fault_profile: rate outside [0, 1]";
  {
    transient = rate;
    persistent = rate /. 8.0;
    timeout = rate /. 4.0;
    outlier = rate /. 2.0;
    outlier_magnitude = 8.0;
  }

let with_faults ?(rates = fault_profile 0.1) ~seed t =
  let check name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg ("Objective.with_faults: " ^ name ^ " rate outside [0, 1]")
  in
  check "transient" rates.transient;
  check "persistent" rates.persistent;
  check "timeout" rates.timeout;
  check "outlier" rates.outlier;
  if rates.outlier_magnitude <= 0.0 then
    invalid_arg "Objective.with_faults: outlier_magnitude must be positive";
  (* Fault decisions are pure functions of (seed, configuration,
     per-configuration attempt index): re-running the same tuning
     session replays the same faults bit-for-bit, and independent
     pool arms with their own [with_faults] objectives stay
     byte-identical at any domain count.  (Evaluating one faulty
     objective for the *same* configuration from several domains at
     once interleaves the attempt counter — give each parallel arm
     its own objective, the discipline the parallel engine already
     uses.) *)
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let draw key attempt tag =
    let st = Rng.create (Hashtbl.hash (seed, key, attempt, tag)) in
    Rng.float st 1.0
  in
  let eval c =
    let key = Space.config_key c in
    let attempt =
      Mutex.protect lock (fun () ->
          let n = Option.value (Hashtbl.find_opt attempts key) ~default:0 in
          Hashtbl.replace attempts key (n + 1);
          n)
    in
    if draw key (-1) "persistent" < rates.persistent then
      raise (Measurement_failed Persistent);
    if draw key attempt "transient" < rates.transient then
      raise (Measurement_failed Transient);
    if draw key attempt "timeout" < rates.timeout then timed_out
    else
      let v = t.eval c in
      if draw key attempt "outlier" < rates.outlier then
        if draw key attempt "outlier-direction" < 0.5 then
          v *. rates.outlier_magnitude
        else v /. rates.outlier_magnitude
      else v
  in
  (* A faulty objective is not a deterministic function of the
     configuration (transients clear on retry), so mark it noisy:
     [cached] then refuses to freeze a possibly-corrupt first draw
     unless told to, exactly as for measurement noise.  Fault draws
     are keyed per configuration, so a by-key batch reproduces the
     sequential draws exactly at any domain count. *)
  { t with eval; batch = Some (batch_by_key eval); noisy = true }

(* Counter names under which [cached] records on the telemetry
   registry — the single counting path (DESIGN.md §11); [stats] is a
   thin view over these. *)
let memo_hits = "objective.memo.hits"
let memo_misses = "objective.memo.misses"

module Telemetry = Harmony_telemetry.Telemetry

let cached ?(telemetry = Telemetry.off) ?(freeze_noise = false) t =
  if t.noisy && not freeze_noise then
    invalid_arg
      "Objective.cached: objective carries measurement noise; memoizing would \
       silently freeze the first draw of every configuration.  Either cache \
       the deterministic objective and apply with_noise on top, or pass \
       ~freeze_noise:true to freeze draws on purpose (cache-after-noise)";
  let table = Hashtbl.create 256 in
  (* All counts live on a telemetry registry — the caller's handle
     when one was supplied (so a traced run sees memo activity), a
     private one otherwise.  [stats] stays a thin view either way.
     Callers sharing one handle across several cached objectives get
     merged counts, by design. *)
  let reg = if Telemetry.enabled telemetry then telemetry else Telemetry.create () in
  (* One lock guards both the table and the counters, and stays held
     across the underlying measurement: two domains racing on the same
     un-measured configuration must not both measure it (under frozen
     noise they would record different draws and break determinism).
     The cost is that concurrent evaluations of a cached objective
     serialize — parallelize across objectives, not inside one.
     Lock order: this lock, then the registry's (never reversed). *)
  let lock = Mutex.create () in
  let eval c =
    Mutex.protect lock (fun () ->
        let k = Space.config_key c in
        match Hashtbl.find_opt table k with
        | Some v ->
            Telemetry.incr reg memo_hits;
            v
        | None ->
            Telemetry.incr reg memo_misses;
            let v = t.eval c in
            Hashtbl.add table k v;
            v)
  in
  (* One memo pass per batch: hits (and in-batch duplicates of a miss,
     which the sequential fold would answer from the just-filled
     entry) are resolved up front, and only the distinct misses reach
     the dispatcher.  Counter totals match the sequential fold
     exactly.  The lock is held across the whole batch, like a single
     measurement — parallelism happens below this layer, on the
     deduplicated misses. *)
  let batch disp configs =
    Mutex.protect lock (fun () ->
        let n = Array.length configs in
        let keys = Array.map Space.config_key configs in
        let results = Array.make n 0.0 in
        let filled = Array.make n false in
        let pending : (string, unit) Hashtbl.t =
          Hashtbl.create (Stdlib.max 16 n)
        in
        let rev_miss = ref [] in
        let hits = ref 0 in
        for i = 0 to n - 1 do
          match Hashtbl.find_opt table keys.(i) with
          | Some v ->
              incr hits;
              results.(i) <- v;
              filled.(i) <- true
          | None ->
              if Hashtbl.mem pending keys.(i) then incr hits
              else begin
                Hashtbl.add pending keys.(i) ();
                rev_miss := i :: !rev_miss
              end
        done;
        let miss_idx = Array.of_list (List.rev !rev_miss) in
        let values =
          run_batch t disp (Array.map (fun i -> configs.(i)) miss_idx)
        in
        Array.iteri (fun j i -> Hashtbl.add table keys.(i) values.(j)) miss_idx;
        Telemetry.incr reg ~by:!hits memo_hits;
        Telemetry.incr reg ~by:(Array.length miss_idx) memo_misses;
        for i = 0 to n - 1 do
          if not filled.(i) then begin
            match Hashtbl.find_opt table keys.(i) with
            | Some v -> results.(i) <- v
            | None -> () (* unreachable: the key was hit or just measured *)
          end
        done;
        results)
  in
  let get () =
    Mutex.protect lock (fun () ->
        (* When a measurement layer below also keeps counters (the
           retrying [Measure.robust] does), its miss count is the
           number of *physical* measurements — a memo miss that took
           three attempts really cost three, so the merged record
           reports the physical count, not the logical one. *)
        let under =
          match t.stats with None -> empty_stats | Some get -> get ()
        in
        let misses =
          match t.stats with
          | None -> Telemetry.counter_value reg memo_misses
          | Some _ -> under.misses
        in
        let hits = Telemetry.counter_value reg memo_hits + under.hits in
        {
          hits;
          misses;
          evals = hits + misses;
          faults = under.faults;
          retries = under.retries;
        })
  in
  { t with eval; batch = Some batch; stats = Some get }

let with_cache t = cached ~freeze_noise:true t

let negate t =
  let direction =
    match t.direction with
    | Higher_is_better -> Lower_is_better
    | Lower_is_better -> Higher_is_better
  in
  {
    t with
    direction;
    eval = (fun c -> -.t.eval c);
    batch =
      Some (fun disp configs -> Array.map Float.neg (run_batch t disp configs));
  }
