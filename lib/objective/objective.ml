open Harmony_param
module Rng = Harmony_numerics.Rng

type direction = Higher_is_better | Lower_is_better

type stats = { hits : int; misses : int; evals : int }

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
  noisy : bool;
  stats : (unit -> stats) option;
}

let create ~space ~direction eval =
  { space; direction; eval; noisy = false; stats = None }

let better t a b =
  match t.direction with
  | Higher_is_better -> a > b
  | Lower_is_better -> a < b

let best_of t values =
  if Array.length values = 0 then invalid_arg "Objective.best_of: empty array";
  Array.fold_left
    (fun acc v -> if better t v acc then v else acc)
    values.(0) values

let worst_of t values =
  if Array.length values = 0 then invalid_arg "Objective.worst_of: empty array";
  Array.fold_left
    (fun acc v -> if better t acc v then v else acc)
    values.(0) values

let eval_default t = t.eval (Space.defaults t.space)

let noisy t = t.noisy
let stats t = match t.stats with None -> None | Some get -> Some (get ())

let with_noise rng ~level t =
  if level < 0.0 then invalid_arg "Objective.with_noise: negative level";
  { t with eval = (fun c -> Rng.perturb rng level (t.eval c)); noisy = true }

let with_snap t = { t with eval = (fun c -> t.eval (Space.snap t.space c)) }

(* The counters are mutable internals; [stats] hands out immutable
   snapshots. *)
type counters = { mutable c_hits : int; mutable c_misses : int }

let cached ?(freeze_noise = false) t =
  if t.noisy && not freeze_noise then
    invalid_arg
      "Objective.cached: objective carries measurement noise; memoizing would \
       silently freeze the first draw of every configuration.  Either cache \
       the deterministic objective and apply with_noise on top, or pass \
       ~freeze_noise:true to freeze draws on purpose (cache-after-noise)";
  let table = Hashtbl.create 256 in
  let counters = { c_hits = 0; c_misses = 0 } in
  (* One lock guards both the table and the counters, and stays held
     across the underlying measurement: two domains racing on the same
     un-measured configuration must not both measure it (under frozen
     noise they would record different draws and break determinism).
     The cost is that concurrent evaluations of a cached objective
     serialize — parallelize across objectives, not inside one. *)
  let lock = Mutex.create () in
  let eval c =
    Mutex.protect lock (fun () ->
        let k = Space.config_key c in
        match Hashtbl.find_opt table k with
        | Some v ->
            counters.c_hits <- counters.c_hits + 1;
            v
        | None ->
            counters.c_misses <- counters.c_misses + 1;
            let v = t.eval c in
            Hashtbl.add table k v;
            v)
  in
  let get () =
    Mutex.protect lock (fun () ->
        {
          hits = counters.c_hits;
          misses = counters.c_misses;
          evals = counters.c_hits + counters.c_misses;
        })
  in
  { t with eval; stats = Some get }

let with_cache t = cached ~freeze_noise:true t

let negate t =
  let direction =
    match t.direction with
    | Higher_is_better -> Lower_is_better
    | Lower_is_better -> Higher_is_better
  in
  { t with direction; eval = (fun c -> -.t.eval c) }
