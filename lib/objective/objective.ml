open Harmony_param
module Rng = Harmony_numerics.Rng

type direction = Higher_is_better | Lower_is_better

type fault = Transient | Persistent | Timeout | Outlier

exception Measurement_failed of fault

let timed_out = Float.nan

let fault_to_string = function
  | Transient -> "transient"
  | Persistent -> "persistent"
  | Timeout -> "timeout"
  | Outlier -> "outlier"

type stats = {
  hits : int;
  misses : int;
  evals : int;
  faults : int;
  retries : int;
}

let empty_stats = { hits = 0; misses = 0; evals = 0; faults = 0; retries = 0 }

type t = {
  space : Space.t;
  direction : direction;
  eval : Space.config -> float;
  noisy : bool;
  stats : (unit -> stats) option;
}

let create ~space ~direction eval =
  { space; direction; eval; noisy = false; stats = None }

let better t a b =
  match t.direction with
  | Higher_is_better -> a > b
  | Lower_is_better -> a < b

let best_of t values =
  if Array.length values = 0 then invalid_arg "Objective.best_of: empty array";
  Array.fold_left
    (fun acc v -> if better t v acc then v else acc)
    values.(0) values

let worst_of t values =
  if Array.length values = 0 then invalid_arg "Objective.worst_of: empty array";
  Array.fold_left
    (fun acc v -> if better t acc v then v else acc)
    values.(0) values

let eval_default t = t.eval (Space.defaults t.space)

let noisy t = t.noisy
let stats t = match t.stats with None -> None | Some get -> Some (get ())

let with_noise rng ~level t =
  if level < 0.0 then invalid_arg "Objective.with_noise: negative level";
  { t with eval = (fun c -> Rng.perturb rng level (t.eval c)); noisy = true }

let with_snap t = { t with eval = (fun c -> t.eval (Space.snap t.space c)) }

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

type fault_rates = {
  transient : float;
  persistent : float;
  timeout : float;
  outlier : float;
  outlier_magnitude : float;
}

let no_faults =
  {
    transient = 0.0;
    persistent = 0.0;
    timeout = 0.0;
    outlier = 0.0;
    outlier_magnitude = 8.0;
  }

let fault_profile rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Objective.fault_profile: rate outside [0, 1]";
  {
    transient = rate;
    persistent = rate /. 8.0;
    timeout = rate /. 4.0;
    outlier = rate /. 2.0;
    outlier_magnitude = 8.0;
  }

let with_faults ?(rates = fault_profile 0.1) ~seed t =
  let check name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg ("Objective.with_faults: " ^ name ^ " rate outside [0, 1]")
  in
  check "transient" rates.transient;
  check "persistent" rates.persistent;
  check "timeout" rates.timeout;
  check "outlier" rates.outlier;
  if rates.outlier_magnitude <= 0.0 then
    invalid_arg "Objective.with_faults: outlier_magnitude must be positive";
  (* Fault decisions are pure functions of (seed, configuration,
     per-configuration attempt index): re-running the same tuning
     session replays the same faults bit-for-bit, and independent
     pool arms with their own [with_faults] objectives stay
     byte-identical at any domain count.  (Evaluating one faulty
     objective for the *same* configuration from several domains at
     once interleaves the attempt counter — give each parallel arm
     its own objective, the discipline the parallel engine already
     uses.) *)
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let draw key attempt tag =
    let st = Rng.create (Hashtbl.hash (seed, key, attempt, tag)) in
    Rng.float st 1.0
  in
  let eval c =
    let key = Space.config_key c in
    let attempt =
      Mutex.protect lock (fun () ->
          let n = Option.value (Hashtbl.find_opt attempts key) ~default:0 in
          Hashtbl.replace attempts key (n + 1);
          n)
    in
    if draw key (-1) "persistent" < rates.persistent then
      raise (Measurement_failed Persistent);
    if draw key attempt "transient" < rates.transient then
      raise (Measurement_failed Transient);
    if draw key attempt "timeout" < rates.timeout then timed_out
    else
      let v = t.eval c in
      if draw key attempt "outlier" < rates.outlier then
        if draw key attempt "outlier-direction" < 0.5 then
          v *. rates.outlier_magnitude
        else v /. rates.outlier_magnitude
      else v
  in
  (* A faulty objective is not a deterministic function of the
     configuration (transients clear on retry), so mark it noisy:
     [cached] then refuses to freeze a possibly-corrupt first draw
     unless told to, exactly as for measurement noise. *)
  { t with eval; noisy = true }

(* Counter names under which [cached] records on the telemetry
   registry — the single counting path (DESIGN.md §11); [stats] is a
   thin view over these. *)
let memo_hits = "objective.memo.hits"
let memo_misses = "objective.memo.misses"

module Telemetry = Harmony_telemetry.Telemetry

let cached ?(telemetry = Telemetry.off) ?(freeze_noise = false) t =
  if t.noisy && not freeze_noise then
    invalid_arg
      "Objective.cached: objective carries measurement noise; memoizing would \
       silently freeze the first draw of every configuration.  Either cache \
       the deterministic objective and apply with_noise on top, or pass \
       ~freeze_noise:true to freeze draws on purpose (cache-after-noise)";
  let table = Hashtbl.create 256 in
  (* All counts live on a telemetry registry — the caller's handle
     when one was supplied (so a traced run sees memo activity), a
     private one otherwise.  [stats] stays a thin view either way.
     Callers sharing one handle across several cached objectives get
     merged counts, by design. *)
  let reg = if Telemetry.enabled telemetry then telemetry else Telemetry.create () in
  (* One lock guards both the table and the counters, and stays held
     across the underlying measurement: two domains racing on the same
     un-measured configuration must not both measure it (under frozen
     noise they would record different draws and break determinism).
     The cost is that concurrent evaluations of a cached objective
     serialize — parallelize across objectives, not inside one.
     Lock order: this lock, then the registry's (never reversed). *)
  let lock = Mutex.create () in
  let eval c =
    Mutex.protect lock (fun () ->
        let k = Space.config_key c in
        match Hashtbl.find_opt table k with
        | Some v ->
            Telemetry.incr reg memo_hits;
            v
        | None ->
            Telemetry.incr reg memo_misses;
            let v = t.eval c in
            Hashtbl.add table k v;
            v)
  in
  let get () =
    Mutex.protect lock (fun () ->
        (* When a measurement layer below also keeps counters (the
           retrying [Measure.robust] does), its miss count is the
           number of *physical* measurements — a memo miss that took
           three attempts really cost three, so the merged record
           reports the physical count, not the logical one. *)
        let under =
          match t.stats with None -> empty_stats | Some get -> get ()
        in
        let misses =
          match t.stats with
          | None -> Telemetry.counter_value reg memo_misses
          | Some _ -> under.misses
        in
        let hits = Telemetry.counter_value reg memo_hits + under.hits in
        {
          hits;
          misses;
          evals = hits + misses;
          faults = under.faults;
          retries = under.retries;
        })
  in
  { t with eval; stats = Some get }

let with_cache t = cached ~freeze_noise:true t

let negate t =
  let direction =
    match t.direction with
    | Higher_is_better -> Lower_is_better
    | Lower_is_better -> Higher_is_better
  in
  { t with direction; eval = (fun c -> -.t.eval c) }
