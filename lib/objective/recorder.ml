open Harmony_param

type entry = { index : int; config : Space.config; performance : float }
type t = { mutable rev_entries : entry list; mutable next : int }

let wrap ?on_record obj =
  let r = { rev_entries = []; next = 0 } in
  let record c performance =
    let entry = { index = r.next; config = Array.copy c; performance } in
    r.rev_entries <- entry :: r.rev_entries;
    r.next <- r.next + 1;
    match on_record with None -> () | Some f -> f entry
  in
  let eval c =
    let performance = obj.Objective.eval c in
    record c performance;
    performance
  in
  (* A batch is recorded after the underlying evaluations return, in
     input order on the calling domain — the entry sequence (and the
     [on_record] hook order) is the same as the sequential fold's. *)
  let batch disp configs =
    let values = Objective.run_batch obj disp configs in
    Array.iteri (fun i v -> record configs.(i) v) values;
    values
  in
  (r, { obj with Objective.eval; batch = Some batch })

let entries r = List.rev r.rev_entries
let count r = r.next

let clear r =
  r.rev_entries <- [];
  r.next <- 0

let performances r =
  let a = Array.make r.next 0.0 in
  List.iter (fun e -> a.(e.index) <- e.performance) r.rev_entries;
  a

let best obj r =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some b ->
          if
            Objective.better obj e.performance b.performance
            || (Float.equal e.performance b.performance && e.index < b.index)
          then Some e
          else acc)
    None r.rev_entries

let lookup r config =
  let rec find = function
    | [] -> None
    | e :: rest ->
        if Space.config_equal e.config config then Some e.performance
        else find rest
  in
  find r.rev_entries
