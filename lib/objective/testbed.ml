open Harmony_param

let grid_space ~dims ~lo ~hi ~step ~default =
  let p i =
    Param.make ~name:(Printf.sprintf "p%d" i) ~min_value:lo ~max_value:hi ~step
      ~default
  in
  Space.create (List.init dims p)

let quadratic_bowl ?(dims = 3) ?target () =
  let space = grid_space ~dims ~lo:0.0 ~hi:100.0 ~step:1.0 ~default:10.0 in
  let target =
    match target with Some t -> t | None -> Array.make dims 50.0
  in
  if Array.length target <> dims then invalid_arg "Testbed.quadratic_bowl: target arity";
  let eval c =
    let s = ref 0.0 in
    Array.iteri
      (fun i v ->
        let d = v -. target.(i) in
        s := !s +. (d *. d))
      c;
    !s
  in
  Objective.create ~space ~direction:Objective.Lower_is_better eval

let rosenbrock ?(dims = 2) () =
  let space = grid_space ~dims ~lo:(-2.048) ~hi:2.048 ~step:0.016 ~default:(-1.2) in
  let eval c =
    let s = ref 0.0 in
    for i = 0 to dims - 2 do
      let a = c.(i + 1) -. (c.(i) *. c.(i)) in
      let b = 1.0 -. c.(i) in
      s := !s +. (100.0 *. a *. a) +. (b *. b)
    done;
    !s
  in
  Objective.create ~space ~direction:Objective.Lower_is_better eval

let rastrigin ?(dims = 2) () =
  let space = grid_space ~dims ~lo:(-5.12) ~hi:5.12 ~step:0.08 ~default:4.0 in
  let eval c =
    let s = ref (10.0 *. float_of_int dims) in
    Array.iter
      (fun v -> s := !s +. ((v *. v) -. (10.0 *. cos (2.0 *. Float.pi *. v))))
      c;
    !s
  in
  Objective.create ~space ~direction:Objective.Lower_is_better eval

let interior_peak ?(dims = 3) ?peak () =
  let space = grid_space ~dims ~lo:0.0 ~hi:100.0 ~step:1.0 ~default:10.0 in
  let peak = match peak with Some p -> p | None -> Array.make dims 60.0 in
  if Array.length peak <> dims then invalid_arg "Testbed.interior_peak: peak arity";
  (* A smooth single peak; performance collapses towards the box
     boundary, mimicking thrashing at extreme parameter values. *)
  let eval c =
    let d2 = ref 0.0 in
    Array.iteri
      (fun i v ->
        let d = (v -. peak.(i)) /. 100.0 in
        d2 := !d2 +. (d *. d))
      c;
    100.0 *. exp (-4.0 *. !d2)
  in
  Objective.create ~space ~direction:Objective.Higher_is_better eval

let step_plateau ?(dims = 2) () =
  let space = grid_space ~dims ~lo:0.0 ~hi:100.0 ~step:1.0 ~default:0.0 in
  let eval c =
    let s = ref 0.0 in
    Array.iter
      (fun v ->
        (* Plateaus of width 20 rising towards the middle then falling. *)
        let bucket = int_of_float v / 20 in
        let score = match bucket with 0 -> 10.0 | 1 -> 30.0 | 2 -> 50.0 | 3 -> 30.0 | _ -> 10.0 in
        s := !s +. score)
      c;
    !s
  in
  Objective.create ~space ~direction:Objective.Higher_is_better eval

let with_irrelevant obj idxs =
  let space = obj.Objective.space in
  List.iter
    (fun i ->
      if i < 0 || i >= Space.dims space then
        invalid_arg "Testbed.with_irrelevant: index out of range")
    idxs;
  let defaults = Space.defaults space in
  let mask c =
    let c' = Array.copy c in
    List.iter (fun i -> c'.(i) <- defaults.(i)) idxs;
    c'
  in
  let eval c = obj.Objective.eval (mask c) in
  let batch disp configs =
    Objective.run_batch obj disp (Array.map mask configs)
  in
  { obj with Objective.eval; batch = Some batch }
