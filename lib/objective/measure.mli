(** The fault-tolerant measurement policy.

    A live system does not behave like an infallible
    [config -> float]: trial runs fail, time out, and return corrupted
    readings.  This module turns a faulty objective into a vetted one:

    - {b retry with capped exponential backoff} on transient failures
      and timeouts (all waiting happens on a {!Clock.t} — a simulated
      clock, so tests never sleep);
    - {b median-of-k re-measurement} for noisy objectives, so a single
      corrupted reading cannot pass as the truth;
    - {b MAD-based outlier rejection} among the k readings
      ({!Harmony_numerics.Stats.mad});
    - a {b give-up policy}: a measurement that stays broken surfaces
      as [(float, failure) result] from {!measure}, and as a
      direction-aware worst-case penalty from the total objective
      {!robust} builds — a failed vertex is penalized instead of
      poisoning the simplex.

    Fault injection for tests and ablations lives in
    {!Objective.with_faults}. *)

open Harmony_param

(** Simulated time in milliseconds.  Backoff advances it; nothing ever
    wall-sleeps. *)
module Clock : sig
  type t

  val create : ?now:float -> unit -> t
  val now : t -> float

  val sleep : t -> float -> unit
  (** Advance the clock by [d] ms (no-op for [d <= 0]). *)
end

type policy = {
  max_attempts : int;     (** physical attempts per wanted reading *)
  backoff_ms : float;     (** delay before the first retry *)
  backoff_factor : float; (** delay multiplier per retry (>= 1) *)
  backoff_cap_ms : float; (** backoff ceiling *)
  samples : int;          (** readings per logical measurement of a
                              {e noisy} objective (median-of-k);
                              deterministic objectives take one *)
  mad_threshold : float;  (** reject readings farther than this many
                              MADs from the median *)
}

val default_policy : policy
(** 4 attempts, 10 ms backoff doubling to an 80 ms cap, median-of-3,
    MAD threshold 6. *)

type failure = {
  attempts : int;                 (** physical attempts spent *)
  faults : int;                   (** faulty readings along the way *)
  last_fault : Objective.fault;   (** what finally made it give up *)
}

val pp_failure : Format.formatter -> failure -> unit

val measure :
  ?policy:policy ->
  ?clock:Clock.t ->
  Objective.t ->
  Space.config ->
  (float, failure) result
(** One robust logical measurement: retries, backoff, median-of-k and
    outlier rejection per the policy.  [Error] when no usable reading
    survived the attempt budget (a {!Objective.Persistent} fault gives
    up immediately — retrying a broken configuration is wasted
    budget).
    @raise Invalid_argument on a malformed policy. *)

val measure_batch :
  ?policy:policy ->
  ?clock:Clock.t ->
  ?pool:Harmony_parallel.Pool.t ->
  Objective.t ->
  Space.config array ->
  (float, failure) result array
(** Batch counterpart of {!measure}: one logical measurement per
    configuration, results in input order, byte-identical to mapping
    {!measure} sequentially.  Distinct configurations fan out across
    the pool; repeated occurrences of one configuration are measured
    in input order on a single task, so its fault/attempt sequence is
    exactly the sequential one.  All backoff accumulates on the one
    [clock] (a sum, independent of interleaving). *)

type summary = {
  measurements : int;  (** logical measurements requested *)
  attempts : int;      (** physical attempts spent *)
  retries : int;       (** attempts forced by a faulty reading *)
  faults : int;        (** faulty readings observed (failures,
                           timeouts, rejected outliers) *)
  give_ups : int;      (** measurements that exhausted the policy and
                           were penalized *)
  backoff_ms : float;  (** simulated time spent backing off *)
}

val no_summary : summary
val pp_summary : Format.formatter -> summary -> unit

type handle
(** Live view onto a {!robust} objective's counters. *)

val summary : handle -> summary

val penalty_for : Objective.direction -> float
(** The default worst-case penalty for a given-up measurement:
    [-1e9] when higher is better, [+1e9] when lower is. *)

val robust :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?policy:policy ->
  ?clock:Clock.t ->
  ?penalty:float ->
  Objective.t ->
  Objective.t * handle
(** [robust obj] is a total objective whose every evaluation is a
    {!measure}: faults are retried, readings vetted, and a measurement
    that still fails evaluates to [penalty] (default
    {!penalty_for} the objective's direction) — worst-case, so the
    simplex walks away from it rather than being poisoned.  Exposes
    merged {!Objective.stats} where [misses] count {e physical}
    measurements and [faults]/[retries] come from this layer; the
    handle gives the full {!summary}.  Thread-safe; for byte-identical
    parallel runs give each arm its own [robust] (and faulty)
    objective, as the parallel engine's arms already do.

    Counts are recorded on a telemetry registry — [telemetry] when a
    live handle is given (counters [measure.measurements] /
    [measure.attempts] / [measure.retries] / [measure.faults] /
    [measure.give_ups], gauge [measure.backoff_ms]), a private
    registry otherwise — and {!summary} reads them back, so there is
    exactly one counting path. *)
