(** Evaluation recording.

    "During the tuning process, Active Harmony will keep a record of
    all the parameter values together with the associated performance
    results" (Section 4.2).  Wrapping an objective in a recorder
    captures that log; it is the raw material of the experience
    database and of the tuning-trace metrics. *)

open Harmony_param

type entry = { index : int; config : Space.config; performance : float }

type t

val wrap : ?on_record:(entry -> unit) -> Objective.t -> t * Objective.t
(** [wrap obj] returns a recorder and an objective that behaves like
    [obj] but logs every evaluation (in order) into the recorder.
    [on_record] is called with each entry right after it is logged —
    the hook incremental checkpointing hangs off (exceptions it raises
    propagate out of the evaluation). *)

val entries : t -> entry list
(** All evaluations, oldest first. *)

val count : t -> int
val clear : t -> unit

val performances : t -> float array
(** Measured values in evaluation order. *)

val best : Objective.t -> t -> entry option
(** Best recorded entry under the objective's direction (ties broken
    towards the earliest). *)

val lookup : t -> Space.config -> float option
(** Most recent recorded measurement of exactly this configuration,
    if any — lets a tuner skip re-measuring known points. *)
