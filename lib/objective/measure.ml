module Stats = Harmony_numerics.Stats

module Clock = struct
  (* The current time lives in a one-cell floatarray under a lock so
     batched measurements running on several domains can back off
     concurrently: the total advance is a sum, hence independent of
     the interleaving. *)
  type t = { cell : floatarray; lock : Mutex.t }

  let create ?(now = 0.0) () =
    { cell = Float.Array.make 1 now; lock = Mutex.create () }

  let now t = Mutex.protect t.lock (fun () -> Float.Array.get t.cell 0)

  let sleep t d =
    if d > 0.0 then
      Mutex.protect t.lock (fun () ->
          Float.Array.set t.cell 0 (Float.Array.get t.cell 0 +. d))
end

type policy = {
  max_attempts : int;
  backoff_ms : float;
  backoff_factor : float;
  backoff_cap_ms : float;
  samples : int;
  mad_threshold : float;
}

let default_policy =
  {
    max_attempts = 4;
    backoff_ms = 10.0;
    backoff_factor = 2.0;
    backoff_cap_ms = 80.0;
    samples = 3;
    mad_threshold = 6.0;
  }

let validate_policy p =
  if p.max_attempts < 1 then invalid_arg "Measure: max_attempts < 1";
  if p.samples < 1 then invalid_arg "Measure: samples < 1";
  if p.backoff_ms < 0.0 then invalid_arg "Measure: negative backoff_ms";
  if p.backoff_factor < 1.0 then invalid_arg "Measure: backoff_factor < 1";
  if p.backoff_cap_ms < 0.0 then invalid_arg "Measure: negative backoff_cap_ms";
  if p.mad_threshold <= 0.0 then invalid_arg "Measure: mad_threshold <= 0"

type failure = {
  attempts : int;
  faults : int;
  last_fault : Objective.fault;
}

let pp_failure ppf f =
  Format.fprintf ppf "gave up after %d attempts (%d faults, last: %s)"
    f.attempts f.faults
    (Objective.fault_to_string f.last_fault)

type summary = {
  measurements : int;
  attempts : int;
  retries : int;
  faults : int;
  give_ups : int;
  backoff_ms : float;
}

let no_summary =
  {
    measurements = 0;
    attempts = 0;
    retries = 0;
    faults = 0;
    give_ups = 0;
    backoff_ms = 0.0;
  }

let penalty_for = function
  | Objective.Higher_is_better -> -1e9
  | Objective.Lower_is_better -> 1e9

(* One logical measurement.  Returns the vetted result plus the
   (attempts, retries, faults) it cost, so callers can merge the
   counts into shared counters under their own lock. *)
let measure_one ~policy ~clock (obj : Objective.t) c =
  (* A deterministic objective needs one good reading; a noisy one
     (measurement noise, fault injection) gets the median-of-k
     treatment so a corrupted reading cannot pass as the truth. *)
  let wanted = if Objective.noisy obj then policy.samples else 1 in
  let readings = ref [] in
  let attempts = ref 0 in
  let retries = ref 0 in
  let faults = ref 0 in
  let last_fault = ref Objective.Transient in
  let delay = ref policy.backoff_ms in
  (* This measurement's own backoff total, tracked locally: the shared
     clock advances under every domain at once, so a before/after
     difference would depend on the interleaving — this sum does
     not. *)
  let slept = ref 0.0 in
  let backoff () =
    slept := !slept +. !delay;
    Clock.sleep clock !delay;
    delay := Float.min policy.backoff_cap_ms (!delay *. policy.backoff_factor)
  in
  let aborted = ref false in
  (* Each of the [wanted] readings has its own retry budget; backoff
     grows across the whole logical measurement and is capped. *)
  let rec take_reading budget ~retrying =
    if budget <= 0 || !aborted then ()
    else begin
      incr attempts;
      if retrying then incr retries;
      match obj.Objective.eval c with
      | v when Float.is_finite v -> readings := v :: !readings
      | _ ->
          (* The timeout sentinel (or any non-finite reading). *)
          incr faults;
          last_fault := Objective.Timeout;
          if budget > 1 then backoff ();
          take_reading (budget - 1) ~retrying:true
      | exception Objective.Measurement_failed Objective.Persistent ->
          (* Retrying a persistently broken configuration is wasted
             budget: abort the whole measurement. *)
          incr faults;
          last_fault := Objective.Persistent;
          aborted := true
      | exception Objective.Measurement_failed kind ->
          incr faults;
          last_fault := kind;
          if budget > 1 then backoff ();
          take_reading (budget - 1) ~retrying:true
    end
  in
  let take_round () =
    for _ = 1 to wanted do
      if not !aborted then take_reading policy.max_attempts ~retrying:false
    done
  in
  (* MAD-based rejection: a reading farther from the median than
     [mad_threshold] * MAD is an outlier.  When the MAD collapses to
     zero (a majority of identical readings) any deviating reading is
     rejected; the epsilon keeps honest float jitter alive.  Returns
     the kept readings and how many were rejected — rejection counts
     are charged once, by the caller. *)
  let vet all =
    if Array.length all < 3 then (all, 0)
    else begin
      let med = Stats.median all in
      let mad = Stats.mad all in
      let scale = Float.max mad (1e-9 *. Float.max 1.0 (Float.abs med)) in
      let kept =
        Array.of_list
          (List.filter
             (fun x -> Float.abs (x -. med) <= policy.mad_threshold *. scale)
             (Array.to_list all))
      in
      let rejected = Array.length all - Array.length kept in
      ((if Array.length kept = 0 then [| med |] else kept), rejected)
    end
  in
  take_round ();
  (* A median can be fooled when corrupted readings outnumber honest
     ones within one round ([v; 8v; 8v]).  Any rejection marks the
     whole measurement suspect: take one confirmation round and re-vet
     over everything, so the corrupted minority of the larger sample
     is voted out. *)
  let vetted, rejected =
    let _, first_rejected = vet (Array.of_list !readings) in
    if first_rejected > 0 && wanted > 1 && not !aborted then take_round ();
    vet (Array.of_list !readings)
  in
  if rejected > 0 then begin
    faults := !faults + rejected;
    last_fault := Objective.Outlier
  end;
  let result =
    match !readings with
    | [] ->
        Error { attempts = !attempts; faults = !faults; last_fault = !last_fault }
    | _ -> Ok (Stats.median vetted)
  in
  (result, !attempts, !retries, !faults, !slept)

let measure ?(policy = default_policy) ?(clock = Clock.create ()) obj c =
  validate_policy policy;
  let result, _, _, _, _ = measure_one ~policy ~clock obj c in
  result

(* Batch counterpart of [measure]: one logical measurement per input
   configuration, distinct configurations fanned across the pool,
   repeated occurrences of one configuration measured in input order
   on a single task (the per-configuration fault/attempt sequence is
   what must stay ordered).  Results come back in input order and are
   byte-identical to mapping [measure] sequentially. *)
let measure_batch ?(policy = default_policy) ?(clock = Clock.create ()) ?pool obj
    configs =
  validate_policy policy;
  let groups = Objective.group_by_key configs in
  let results =
    Array.make (Array.length configs)
      (Error { attempts = 0; faults = 0; last_fault = Objective.Transient })
  in
  let measure_group idxs =
    List.iter
      (fun i ->
        let result, _, _, _, _ = measure_one ~policy ~clock obj configs.(i) in
        results.(i) <- result)
      idxs
  in
  (match pool with
  | Some pool ->
      ignore
        (Harmony_parallel.Pool.map_array pool measure_group groups : unit array)
  | None -> Array.iter measure_group groups);
  results

module Telemetry = Harmony_telemetry.Telemetry

(* Counter names under which [robust] records on the telemetry
   registry — the single counting path (DESIGN.md §11); [summary] and
   the merged [Objective.stats] are thin views over these. *)
let c_measurements = "measure.measurements"
let c_attempts = "measure.attempts"
let c_retries = "measure.retries"
let c_faults = "measure.faults"
let c_give_ups = "measure.give_ups"
let g_backoff = "measure.backoff_ms"

(* Per-measurement backoff totals, for the trace analyzer's backoff
   phase: how much of a run's latency was spent waiting out faults.
   Bucket increments commute, so the merged histogram is deterministic
   at any pool size even though measurements land from every domain. *)
let h_backoff = "measure.backoff_wait"
let backoff_bounds = [| 0.; 10.; 20.; 40.; 80.; 160.; 320.; 640. |]

type handle = {
  registry : Telemetry.t;
  handle_lock : Mutex.t;
  clock : Clock.t;
  clock_start : float;
}

let summary h =
  Mutex.protect h.handle_lock (fun () ->
      {
        measurements = Telemetry.counter_value h.registry c_measurements;
        attempts = Telemetry.counter_value h.registry c_attempts;
        retries = Telemetry.counter_value h.registry c_retries;
        faults = Telemetry.counter_value h.registry c_faults;
        give_ups = Telemetry.counter_value h.registry c_give_ups;
        backoff_ms = Clock.now h.clock -. h.clock_start;
      })

let pp_summary ppf s =
  Format.fprintf ppf
    "%d measurements, %d attempts (%d retries, %d faults, %d give-ups), %.0f ms backoff"
    s.measurements s.attempts s.retries s.faults s.give_ups s.backoff_ms

let robust ?(telemetry = Telemetry.off) ?(policy = default_policy)
    ?(clock = Clock.create ()) ?penalty (obj : Objective.t) =
  validate_policy policy;
  let penalty =
    Option.value penalty ~default:(penalty_for obj.Objective.direction)
  in
  (* All counts live on a telemetry registry — the caller's handle
     when one was supplied (so a traced run sees measurement
     activity), a private one otherwise.  The handle lock still
     groups the per-measurement increments so a [summary] snapshot is
     internally consistent.  Lock order: handle lock, then the
     registry's (never reversed). *)
  let reg = if Telemetry.enabled telemetry then telemetry else Telemetry.create () in
  let lock = Mutex.create () in
  let handle =
    { registry = reg; handle_lock = lock; clock; clock_start = Clock.now clock }
  in
  let eval c =
    let result, attempts, retries, faults, slept =
      measure_one ~policy ~clock obj c
    in
    Mutex.protect lock (fun () ->
        Telemetry.incr reg c_measurements;
        Telemetry.incr reg ~by:attempts c_attempts;
        Telemetry.incr reg ~by:retries c_retries;
        Telemetry.incr reg ~by:faults c_faults;
        Telemetry.observe reg ~bounds:backoff_bounds h_backoff slept;
        Telemetry.gauge reg g_backoff (Clock.now clock -. handle.clock_start);
        match result with
        | Ok _ -> ()
        | Error _ -> Telemetry.incr reg c_give_ups);
    match result with Ok v -> v | Error _ -> penalty
  in
  (* Batched measurements group by configuration (the per-config
     attempt sequence is the ordered resource); counter increments
     commute, and the backoff gauge is re-set once after the batch so
     its final value is the deterministic total, not whichever task
     happened to write last. *)
  let batch disp configs =
    let results = Objective.batch_by_key eval disp configs in
    Mutex.protect lock (fun () ->
        Telemetry.gauge reg g_backoff (Clock.now clock -. handle.clock_start));
    results
  in
  let get () =
    Mutex.protect lock (fun () ->
        let u =
          match obj.Objective.stats with
          | None -> Objective.empty_stats
          | Some get -> get ()
        in
        (* Misses are *physical* measurements: the memo layer below (if
           any) already reports them; otherwise every attempt this
           layer made reached the real system. *)
        let misses =
          match obj.Objective.stats with
          | None -> Telemetry.counter_value reg c_attempts
          | Some _ -> u.Objective.misses
        in
        let hits = u.Objective.hits in
        {
          Objective.hits;
          misses;
          evals = hits + misses;
          faults = Telemetry.counter_value reg c_faults + u.Objective.faults;
          retries = Telemetry.counter_value reg c_retries + u.Objective.retries;
        })
  in
  ({ obj with Objective.eval; batch = Some batch; stats = Some get }, handle)
