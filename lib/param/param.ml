type t = {
  name : string;
  min_value : float;
  max_value : float;
  step : float;
  default : float;
}

let num_values_of ~min_value ~max_value ~step =
  1 + int_of_float (floor (((max_value -. min_value) /. step) +. 1e-9))

let snap_raw ~min_value ~max_value ~step v =
  let v = Float.min max_value (Float.max min_value v) in
  let i = Float.round ((v -. min_value) /. step) in
  let n = num_values_of ~min_value ~max_value ~step in
  let i = Float.min (float_of_int (n - 1)) (Float.max 0.0 i) in
  min_value +. (i *. step)

let make ~name ~min_value ~max_value ~step ~default =
  if max_value < min_value then invalid_arg "Param.make: max < min";
  if step <= 0.0 then invalid_arg "Param.make: step <= 0";
  if default < min_value || default > max_value then
    invalid_arg "Param.make: default out of range";
  { name; min_value; max_value; step;
    default = snap_raw ~min_value ~max_value ~step default }

let int_range ~name ~lo ~hi ?(step = 1) ~default () =
  make ~name ~min_value:(float_of_int lo) ~max_value:(float_of_int hi)
    ~step:(float_of_int step) ~default:(float_of_int default)

let num_values p =
  num_values_of ~min_value:p.min_value ~max_value:p.max_value ~step:p.step

let value_at p i =
  if i < 0 || i >= num_values p then invalid_arg "Param.value_at: out of range";
  p.min_value +. (float_of_int i *. p.step)

let values p = Array.init (num_values p) (value_at p)
let clamp p v = Float.min p.max_value (Float.max p.min_value v)

let snap p v =
  snap_raw ~min_value:p.min_value ~max_value:p.max_value ~step:p.step v

let index_of p v =
  let v = snap p v in
  int_of_float (Float.round ((v -. p.min_value) /. p.step))

let is_valid p v =
  v >= p.min_value -. 1e-9 && v <= p.max_value +. 1e-9
  && Float.abs (snap p v -. v) < 1e-9

let normalize p v =
  let span = p.max_value -. p.min_value in
  if Float.equal span 0.0 then 0.0 else (clamp p v -. p.min_value) /. span

let denormalize p x =
  snap p (p.min_value +. (x *. (p.max_value -. p.min_value)))

let pp ppf p =
  Format.fprintf ppf "%s in [%g, %g] step %g default %g" p.name p.min_value
    p.max_value p.step p.default
