module Rng = Harmony_numerics.Rng

type expr =
  | Const of int
  | Ref of string
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type bundle = { name : string; lo : expr; hi : expr; step : expr }
type t = bundle list

exception Parse_error of string

let rec expr_refs = function
  | Const _ -> []
  | Ref n -> [ n ]
  | Neg e -> expr_refs e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> expr_refs a @ expr_refs b

let of_bundles bundles =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Hashtbl.mem seen b.name then
        invalid_arg ("Rsl.of_bundles: duplicate bundle " ^ b.name);
      let refs = expr_refs b.lo @ expr_refs b.hi @ expr_refs b.step in
      List.iter
        (fun r ->
          if not (Hashtbl.mem seen r) then
            invalid_arg
              (Printf.sprintf "Rsl.of_bundles: bundle %s refers to %s which is not earlier"
                 b.name r))
        refs;
      Hashtbl.add seen b.name ())
    bundles;
  bundles

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Slash
  | Int of int
  | Ident of string
  | Dollar

let tokenize s =
  let n = String.length s in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '{' -> loop (i + 1) (Lbrace :: acc)
      | '}' -> loop (i + 1) (Rbrace :: acc)
      | '(' -> loop (i + 1) (Lparen :: acc)
      | ')' -> loop (i + 1) (Rparen :: acc)
      | '+' -> loop (i + 1) (Plus :: acc)
      | '-' -> loop (i + 1) (Minus :: acc)
      | '*' -> loop (i + 1) (Star :: acc)
      | '/' -> loop (i + 1) (Slash :: acc)
      | '$' -> loop (i + 1) (Dollar :: acc)
      | '0' .. '9' ->
          let j = ref i in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          loop !j (Int (int_of_string (String.sub s i (!j - i))) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
          let is_ident c =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_'
          in
          let j = ref i in
          while !j < n && is_ident s.[!j] do
            incr j
          done;
          loop !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  loop 0 []

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                          *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok what =
  let t = advance st in
  if t <> tok then raise (Parse_error ("expected " ^ what))

let expect_ident st what =
  match advance st with
  | Ident s -> s
  | Lbrace | Rbrace | Lparen | Rparen | Plus | Minus | Star | Slash | Int _
  | Dollar ->
      raise (Parse_error ("expected identifier: " ^ what))

let expect_keyword st kw =
  match advance st with
  | Ident s when s = kw -> ()
  | Ident _ | Lbrace | Rbrace | Lparen | Rparen | Plus | Minus | Star | Slash
  | Int _ | Dollar ->
      raise (Parse_error ("expected keyword " ^ kw))

let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match peek st with
  | Some Plus ->
      ignore (advance st);
      parse_expr_rest st (Add (lhs, parse_term st))
  | Some Minus ->
      ignore (advance st);
      parse_expr_rest st (Sub (lhs, parse_term st))
  | Some (Lbrace | Rbrace | Lparen | Rparen | Star | Slash | Int _ | Ident _ | Dollar)
  | None ->
      lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match peek st with
  | Some Star ->
      ignore (advance st);
      parse_term_rest st (Mul (lhs, parse_factor st))
  | Some Slash ->
      ignore (advance st);
      parse_term_rest st (Div (lhs, parse_factor st))
  | Some (Lbrace | Rbrace | Lparen | Rparen | Plus | Minus | Int _ | Ident _ | Dollar)
  | None ->
      lhs

and parse_factor st =
  match advance st with
  | Int k -> Const k
  | Minus -> Neg (parse_factor st)
  | Dollar -> Ref (expect_ident st "after $")
  | Lparen ->
      let e = parse_expr st in
      expect st Rparen ")";
      e
  | Lbrace | Rbrace | Rparen | Plus | Star | Slash | Ident _ ->
      raise (Parse_error "expected expression")

let parse_bundle st =
  expect st Lbrace "{";
  expect_keyword st "harmonyBundle";
  let name = expect_ident st "bundle name" in
  expect st Lbrace "{";
  expect_keyword st "int";
  expect st Lbrace "{";
  let lo = parse_expr st in
  let hi = parse_expr st in
  let step = parse_expr st in
  expect st Rbrace "}";
  expect st Rbrace "}";
  expect st Rbrace "}";
  { name; lo; hi; step }

let parse s =
  let st = { toks = tokenize s } in
  let rec loop acc =
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_bundle st :: acc)
  in
  let bundles = loop [] in
  if bundles = [] then raise (Parse_error "no bundles");
  try of_bundles bundles with Invalid_argument msg -> raise (Parse_error msg)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let rec expr_to_string = function
  | Const k -> string_of_int k
  | Ref n -> "$" ^ n
  | Neg e -> "-" ^ atom_to_string e
  | Add (a, b) -> expr_to_string a ^ "+" ^ term_to_string b
  | Sub (a, b) -> expr_to_string a ^ "-" ^ term_to_string b
  | Mul (a, b) -> term_to_string a ^ "*" ^ atom_to_string b
  | Div (a, b) -> term_to_string a ^ "/" ^ atom_to_string b

and term_to_string e =
  match e with
  | Add _ | Sub _ -> "(" ^ expr_to_string e ^ ")"
  | Const _ | Ref _ | Neg _ | Mul _ | Div _ -> expr_to_string e

and atom_to_string e =
  match e with
  | Add _ | Sub _ | Mul _ | Div _ -> "(" ^ expr_to_string e ^ ")"
  | Const _ | Ref _ | Neg _ -> expr_to_string e

(* The three bounds are space-separated, so a field that starts with a
   unary minus would be absorbed into the preceding expression when
   re-parsed ("1 -5" reads as 1-5); parenthesize those. *)
let field_to_string e =
  let s = expr_to_string e in
  if String.length s > 0 && s.[0] = '-' then "(" ^ s ^ ")" else s

let bundle_to_string b =
  Printf.sprintf "{ harmonyBundle %s { int {%s %s %s} }}" b.name
    (field_to_string b.lo) (field_to_string b.hi) (field_to_string b.step)

let to_string t = String.concat "\n" (List.map bundle_to_string t)
let names t = List.map (fun b -> b.name) t

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let rec eval_expr lookup = function
  | Const k -> k
  | Ref n -> lookup n
  | Neg e -> -eval_expr lookup e
  | Add (a, b) -> eval_expr lookup a + eval_expr lookup b
  | Sub (a, b) -> eval_expr lookup a - eval_expr lookup b
  | Mul (a, b) -> eval_expr lookup a * eval_expr lookup b
  | Div (a, b) -> eval_expr lookup a / eval_expr lookup b

let lookup_in t values name =
  let rec find i = function
    | [] -> raise Not_found
    | b :: _ when b.name = name -> values.(i)
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t

let bounds t values i =
  let b =
    match List.nth_opt t i with
    | Some b -> b
    | None -> invalid_arg "Rsl.bounds: index out of range"
  in
  let lookup = lookup_in t values in
  let lo = eval_expr lookup b.lo in
  let hi = eval_expr lookup b.hi in
  let step = eval_expr lookup b.step in
  if step <= 0 then invalid_arg ("Rsl.bounds: non-positive step for " ^ b.name);
  (lo, hi, step)

(* Interval arithmetic over bound expressions; division uses the
   four-corner rule and requires the divisor interval to exclude 0. *)
let rec eval_interval lookup = function
  | Const k -> (k, k)
  | Ref n -> lookup n
  | Neg e ->
      let lo, hi = eval_interval lookup e in
      (-hi, -lo)
  | Add (a, b) ->
      let alo, ahi = eval_interval lookup a and blo, bhi = eval_interval lookup b in
      (alo + blo, ahi + bhi)
  | Sub (a, b) ->
      let alo, ahi = eval_interval lookup a and blo, bhi = eval_interval lookup b in
      (alo - bhi, ahi - blo)
  | Mul (a, b) ->
      let alo, ahi = eval_interval lookup a and blo, bhi = eval_interval lookup b in
      let corners = [ alo * blo; alo * bhi; ahi * blo; ahi * bhi ] in
      (List.fold_left min max_int corners, List.fold_left max min_int corners)
  | Div (a, b) ->
      let alo, ahi = eval_interval lookup a and blo, bhi = eval_interval lookup b in
      if blo <= 0 && bhi >= 0 then
        invalid_arg "Rsl.static_bounds: division by an interval containing 0";
      let corners = [ alo / blo; alo / bhi; ahi / blo; ahi / bhi ] in
      (List.fold_left min max_int corners, List.fold_left max min_int corners)

let static_bounds t =
  let known = Hashtbl.create 8 in
  let lookup n =
    match Hashtbl.find_opt known n with
    | Some iv -> iv
    | None -> invalid_arg ("Rsl.static_bounds: unknown reference " ^ n)
  in
  let out =
    List.map
      (fun b ->
        let lo_lo, _lo_hi = eval_interval lookup b.lo in
        let _hi_lo, hi_hi = eval_interval lookup b.hi in
        if hi_hi < lo_lo then
          invalid_arg ("Rsl.static_bounds: bundle " ^ b.name ^ " is always empty");
        Hashtbl.add known b.name (lo_lo, hi_hi);
        (lo_lo, hi_hi))
      t
  in
  Array.of_list out

let to_space t =
  let boxes = static_bounds t in
  let midpoints = Hashtbl.create 8 in
  let params =
    List.mapi
      (fun i b ->
        let lo, hi = boxes.(i) in
        let step =
          eval_expr
            (fun n ->
              match Hashtbl.find_opt midpoints n with
              | Some v -> v
              | None -> invalid_arg ("Rsl.to_space: unknown reference " ^ n))
            b.step
        in
        let step = max 1 step in
        Hashtbl.add midpoints b.name ((lo + hi) / 2);
        Param.make ~name:b.name ~min_value:(float_of_int lo)
          ~max_value:(float_of_int hi) ~step:(float_of_int step)
          ~default:(float_of_int ((lo + hi) / 2)))
      t
  in
  Space.create params

let is_feasible t values =
  List.length t = Array.length values
  && begin
       let ok = ref true in
       List.iteri
         (fun i _ ->
           if !ok then begin
             let lo, hi, step = bounds t values i in
             let v = values.(i) in
             if v < lo || v > hi || (v - lo) mod step <> 0 then ok := false
           end)
         t;
       !ok
     end

let feasible_count ?(limit = max_int) t =
  let n = List.length t in
  let values = Array.make n 0 in
  let count = ref 0 in
  let rec go i =
    if !count >= limit then ()
    else if i = n then incr count
    else begin
      let lo, hi, step = bounds t values i in
      let v = ref lo in
      while !v <= hi && !count < limit do
        values.(i) <- !v;
        go (i + 1);
        v := !v + step
      done
    end
  in
  go 0;
  min !count limit

let enumerate t =
  let n = List.length t in
  (* Depth-first generation, made lazy with Seq.  The [values] array is
     copied at each leaf so emitted configurations are independent. *)
  let rec go i values () =
    if i = n then Seq.Cons (Array.copy values, Seq.empty)
    else begin
      let lo, hi, step = bounds t values i in
      let rec values_from v () =
        if v > hi then Seq.Nil
        else begin
          values.(i) <- v;
          Seq.append (go (i + 1) values) (values_from (v + step)) ()
        end
      in
      values_from lo ()
    end
  in
  fun () -> go 0 (Array.make n 0) ()

let sample rng t =
  let n = List.length t in
  let values = Array.make n 0 in
  let rec go i =
    if i = n then Some (Array.copy values)
    else begin
      let lo, hi, step = bounds t values i in
      if hi < lo then None
      else begin
        let choices = 1 + ((hi - lo) / step) in
        values.(i) <- lo + (step * Rng.int rng choices);
        go (i + 1)
      end
    end
  in
  go 0

let repair t c =
  let n = List.length t in
  if Array.length c <> n then invalid_arg "Rsl.repair: arity mismatch";
  let values = Array.make n 0 in
  List.iteri
    (fun i _ ->
      let lo, hi, step = bounds t values i in
      if hi < lo then values.(i) <- lo
      else begin
        let v = c.(i) in
        let v = Float.min (float_of_int hi) (Float.max (float_of_int lo) v) in
        let k = Float.round ((v -. float_of_int lo) /. float_of_int step) in
        let kmax = (hi - lo) / step in
        let k = max 0 (min kmax (int_of_float k)) in
        values.(i) <- lo + (k * step)
      end)
    t;
  Array.map float_of_int values
