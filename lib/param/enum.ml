let check_labels labels =
  if labels = [] then invalid_arg "Enum: empty label list";
  if List.length (List.sort_uniq String.compare labels) <> List.length labels then
    invalid_arg "Enum: duplicate labels"

let param ~name ?default labels =
  check_labels labels;
  let default_index =
    match default with
    | None -> 0
    | Some d -> (
        match List.find_index (String.equal d) labels with
        | Some i -> i
        | None -> invalid_arg ("Enum.param: unknown default " ^ d))
  in
  Param.make ~name ~min_value:0.0
    ~max_value:(float_of_int (List.length labels - 1))
    ~step:1.0
    ~default:(float_of_int default_index)

let label_of labels v =
  check_labels labels;
  let n = List.length labels in
  let i = max 0 (min (n - 1) (int_of_float (Float.round v))) in
  match List.nth_opt labels i with
  | Some label -> label
  | None -> invalid_arg "Enum.label_of: index out of range"

let value_of labels label =
  check_labels labels;
  match List.find_index (String.equal label) labels with
  | Some i -> float_of_int i
  | None -> raise Not_found
