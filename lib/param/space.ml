module Rng = Harmony_numerics.Rng

type config = float array
type t = { params : Param.t array }

let create ps =
  if ps = [] then invalid_arg "Space.create: empty parameter list";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (p : Param.t) ->
      if Hashtbl.mem seen p.Param.name then
        invalid_arg ("Space.create: duplicate parameter " ^ p.Param.name);
      Hashtbl.add seen p.Param.name ())
    ps;
  { params = Array.of_list ps }

let params t = t.params
let dims t = Array.length t.params

let param t i =
  if i < 0 || i >= dims t then invalid_arg "Space.param: out of range";
  t.params.(i)

let index_of_name t name =
  let rec loop i =
    if i >= dims t then raise Not_found
    else if t.params.(i).Param.name = name then i
    else loop (i + 1)
  in
  loop 0

let defaults t = Array.map (fun (p : Param.t) -> p.Param.default) t.params
let mins t = Array.map (fun (p : Param.t) -> p.Param.min_value) t.params
let maxs t = Array.map (fun (p : Param.t) -> p.Param.max_value) t.params

let check_arity name t c =
  if Array.length c <> dims t then invalid_arg (name ^ ": arity mismatch")

let snap t c =
  check_arity "Space.snap" t c;
  Array.mapi (fun i v -> Param.snap t.params.(i) v) c

let is_valid t c =
  Array.length c = dims t
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if not (Param.is_valid t.params.(i) v) then ok := false) c;
       !ok
     end

let normalize t c =
  check_arity "Space.normalize" t c;
  Array.mapi (fun i v -> Param.normalize t.params.(i) v) c

let denormalize t x =
  check_arity "Space.denormalize" t x;
  Array.mapi (fun i v -> Param.denormalize t.params.(i) v) x

let cardinality t =
  Array.fold_left
    (fun acc p -> acc *. float_of_int (Param.num_values p))
    1.0 t.params

let random rng t =
  Array.map
    (fun p -> Param.value_at p (Rng.int rng (Param.num_values p)))
    t.params

let neighbors t c =
  check_arity "Space.neighbors" t c;
  let out = ref [] in
  for i = dims t - 1 downto 0 do
    let p = t.params.(i) in
    let idx = Param.index_of p c.(i) in
    if idx + 1 < Param.num_values p then begin
      let c' = Array.copy c in
      c'.(i) <- Param.value_at p (idx + 1);
      out := c' :: !out
    end;
    if idx > 0 then begin
      let c' = Array.copy c in
      c'.(i) <- Param.value_at p (idx - 1);
      out := c' :: !out
    end
  done;
  !out

let enumerate t =
  let n = dims t in
  let sizes = Array.map Param.num_values t.params in
  (* State: index vector; None once exhausted. *)
  let rec next idxs () =
    match idxs with
    | None -> Seq.Nil
    | Some idxs ->
        let c = Array.mapi (fun i k -> Param.value_at t.params.(i) k) idxs in
        let succ = Array.copy idxs in
        let rec carry d =
          if d < 0 then None
          else if succ.(d) + 1 < sizes.(d) then begin
            succ.(d) <- succ.(d) + 1;
            Some succ
          end
          else begin
            succ.(d) <- 0;
            carry (d - 1)
          end
        in
        Seq.Cons (c, next (carry (n - 1)))
  in
  next (Some (Array.make n 0))

let distance t a b =
  Harmony_numerics.Stats.euclidean_distance (normalize t a) (normalize t b)

let config_key c =
  let b = Bytes.create (8 * Array.length c) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) c;
  Bytes.unsafe_to_string b

let config_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if Float.abs (v -. b.(i)) > 1e-9 then ok := false) a;
       !ok
     end

let pp_config t ppf c =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%g" t.params.(i).Param.name v)
    c;
  Format.fprintf ppf "}@]"

let config_to_string t c = Format.asprintf "%a" (pp_config t) c
