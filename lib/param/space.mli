(** A search space: an ordered set of tunable parameters.

    A configuration is a [float array] whose [i]-th entry is the value
    of the [i]-th parameter.  The Active Harmony tuner treats each
    parameter as an independent dimension (paper, Section 2). *)

type config = float array

type t

val create : Param.t list -> t
(** @raise Invalid_argument on duplicate parameter names or an empty
    list. *)

val params : t -> Param.t array
val dims : t -> int
val param : t -> int -> Param.t

val index_of_name : t -> string -> int
(** @raise Not_found when no parameter has that name. *)

val defaults : t -> config
(** Configuration with every parameter at its default value. *)

val mins : t -> config
val maxs : t -> config

val snap : t -> config -> config
(** Snap every coordinate onto its parameter grid (fresh array). *)

val is_valid : t -> config -> bool
(** All coordinates on-grid and in range, with the right arity. *)

val normalize : t -> config -> float array
(** Per-coordinate [0, 1] normalization (for distances and
    sensitivities). *)

val denormalize : t -> float array -> config

val cardinality : t -> float
(** Number of grid configurations, as a float (spaces like 2^1000 in
    the paper's motivation overflow any integer type). *)

val random : Harmony_numerics.Rng.t -> t -> config
(** Uniform over the grid. *)

val neighbors : t -> config -> config list
(** Configurations at +/- one step in exactly one coordinate. *)

val enumerate : t -> config Seq.t
(** Lazy row-major enumeration of every grid configuration.  Only
    sensible for small spaces (exhaustive search, Figure 4). *)

val distance : t -> config -> config -> float
(** Euclidean distance in normalized coordinates. *)

val config_key : config -> string
(** Compact hashable key: the exact bit pattern of every coordinate.
    Two configurations share a key iff they are bit-identical, which
    grid-snapped configurations produced by the same [Param] always
    are — the memo key for [Objective.cached]. *)

val config_equal : config -> config -> bool
(** Coordinate-wise equality within 1e-9. *)

val pp_config : t -> Format.formatter -> config -> unit
val config_to_string : t -> config -> string
