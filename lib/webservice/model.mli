(** Closed-queueing-network throughput model of the 3-tier service.

    A fast, deterministic stand-in for running the benchmark: N
    emulated browsers with exponential think time circulate through
    proxy, application, and database stations.  Solved by Schweitzer
    approximate mean value analysis with the Seidmann multi-server
    transformation, plus a retry penalty when the application tier's
    accept queue overflows.

    The model evaluates one configuration in microseconds, which makes
    exhaustive-ish sweeps (Figure 4) and long tuning traces cheap; the
    discrete-event {!Simulation} validates its shape. *)

type options = {
  clients : int;        (** emulated browsers (default 120) *)
  think_ms : float;     (** mean think time (default 1000 ms) *)
}

val default_options : options

(** The Schweitzer AMVA fixed-point solver, exposed with its scratch
    state so hot paths can re-solve without allocating: all
    per-iteration arrays live in a caller-owned (or per-domain)
    {!Amva.scratch}. *)
module Amva : sig
  type scratch

  val scratch : unit -> scratch

  val solve :
    ?scratch:scratch ->
    ?max_iterations:int ->
    ?early_exit:bool ->
    ?warm:bool ->
    clients:int ->
    think_ms:float ->
    demands_ms:float array ->
    servers:int array ->
    unit ->
    float
  (** Throughput (interactions per ms).  [max_iterations] defaults to
      200.  [early_exit] (default true) stops at the exact fixed point
      — once throughput and every queue length repeat bitwise, the
      remaining iterations are the identity, so the result is provably
      byte-identical to the fixed-budget solve.  [warm] (default
      false) starts from the scratch's previous solution when the
      population, think time, and servers match and at most one
      station's demand changed — the incremental re-solve for
      one-parameter sweeps; leave it off on shared paths that must be
      evaluation-order-independent.
      @raise Invalid_argument on zero stations or mismatched lengths. *)

  val queue_lengths : scratch -> float array
  (** Per-station mean queue lengths of the scratch's last solve. *)
end

type result = {
  wips : float;             (** web interactions per second *)
  cache_hit : float;        (** mix-weighted cache hit probability *)
  utilization : float * float * float;  (** proxy, app, db *)
  bottleneck : string;      (** name of the most utilized station *)
  reject_fraction : float;  (** estimated accept-queue overflow *)
}

val evaluate : ?options:options -> Wsconfig.t -> mix:Tpcw.mix -> result

val wips : ?options:options -> Wsconfig.t -> mix:Tpcw.mix -> float

val objective : ?options:options -> mix:Tpcw.mix -> unit -> Harmony_objective.Objective.t
(** Higher-is-better WIPS over {!Wsconfig.space}. *)
