open Harmony_objective
module Rng = Harmony_numerics.Rng
module Sim = Harmony_des.Sim
module Resource = Harmony_des.Resource

type options = {
  clients : int;
  think_ms : float;
  warmup_ms : float;
  horizon_ms : float;
  backoff_ms : float;
  seed : int;
  session_persistence : float;
}

let default_options =
  { clients = 120; think_ms = 1000.0; warmup_ms = 20_000.0; horizon_ms = 120_000.0;
    backoff_ms = 800.0; seed = 1; session_persistence = 0.0 }

type result = {
  wips : float;
  wipsb : float;
  wipso : float;
  completions : int;
  rejections : int;
  cache_hits : int;
  mean_response_ms : float;
  p50_response_ms : float;
  p95_response_ms : float;
  utilization : float * float * float;
}

(* Response times accumulate in a growable floatarray owned by an
   arena, not a cons list: a 120-client run completes ~12k
   interactions, and list cells plus the Array.of_list + sort copies
   at percentile time dominated the simulation's allocations.  The
   running total also lives in the arena ([totals]) because a mutable
   float field in a mixed record boxes on every store. *)
module Arena = struct
  type t = {
    mutable response_times : floatarray;
    mutable count : int;
    totals : floatarray;
  }

  let create ?(capacity = 4096) () =
    {
      response_times = Float.Array.create (Stdlib.max 16 capacity);
      count = 0;
      totals = Float.Array.make 1 0.0;
    }

  let reset a =
    a.count <- 0;
    Float.Array.set a.totals 0 0.0

  let push a v =
    let cap = Float.Array.length a.response_times in
    if a.count = cap then begin
      let bigger = Float.Array.create (2 * cap) in
      Float.Array.blit a.response_times 0 bigger 0 a.count;
      a.response_times <- bigger
    end;
    Float.Array.set a.response_times a.count v;
    a.count <- a.count + 1;
    Float.Array.set a.totals 0 (Float.Array.get a.totals 0 +. v)
end

type counters = {
  mutable completions : int;
  mutable browse : int;
  mutable order : int;
  mutable rejections : int;
  mutable cache_hits : int;
}

(* The default arena is per-domain: a domain runs one simulation at a
   time, each run resets it, and its capacity persists across
   evaluations — so the steady-state hot path never grows it. *)
let arena_key = Domain.DLS.new_key (fun () -> Arena.create ())

let run ?(options = default_options) ?arena config ~mix =
  if options.clients < 1 then invalid_arg "Simulation.run: clients < 1";
  if options.horizon_ms <= 0.0 then invalid_arg "Simulation.run: horizon <= 0";
  let fx = Effects.derive config ~mix in
  let rng = Rng.create options.seed in
  let sim = Sim.create () in
  let proxy =
    Resource.create ~capacity:(Effects.proxy_servers fx)
      ~queue_limit:(Effects.proxy_queue_limit fx) ()
  in
  let app =
    Resource.create ~capacity:(Effects.app_servers fx)
      ~queue_limit:(Effects.app_queue_limit fx) ()
  in
  let db =
    Resource.create ~capacity:(Effects.db_servers fx)
      ~queue_limit:(Effects.db_queue_limit fx) ()
  in
  let arena =
    match arena with Some a -> a | None -> Domain.DLS.get arena_key
  in
  Arena.reset arena;
  let k = { completions = 0; browse = 0; order = 0; rejections = 0; cache_hits = 0 } in
  let measure_start = options.warmup_ms in
  let measure_end = options.warmup_ms +. options.horizon_ms in
  let in_window sim =
    let t = Sim.now sim in
    t >= measure_start && t < measure_end
  in
  let record_completion sim interaction started =
    if in_window sim then begin
      k.completions <- k.completions + 1;
      (match Tpcw.category interaction with
      | Tpcw.Browse -> k.browse <- k.browse + 1
      | Tpcw.Order -> k.order <- k.order + 1);
      Arena.push arena (Sim.now sim -. started)
    end
  in
  (* One emulated browser's endless think/request cycle.  Each browser
     remembers its previous interaction so sessions can persist within
     a Browse/Order category; a rejection retries the same
     interaction after a backoff. *)
  let rec think previous sim =
    Sim.schedule sim ~delay:(Rng.exponential rng options.think_ms) (issue previous)
  and issue previous sim =
    let interaction =
      if Float.equal options.session_persistence 0.0 then Tpcw.sample rng mix
      else
        Tpcw.sample_next rng mix ~persistence:options.session_persistence ~previous
    in
    run_interaction interaction sim
  and run_interaction interaction sim =
    let think sim = think (Some interaction) sim in
    let started = Sim.now sim in
    let reject sim =
      if in_window sim then k.rejections <- k.rejections + 1;
      Sim.schedule sim ~delay:(Rng.exponential rng options.backoff_ms)
        (run_interaction interaction)
    in
    let finish_db sim =
      record_completion sim interaction started;
      think sim
    in
    let after_app sim =
      let db_ms = Effects.db_service_ms fx interaction in
      if db_ms <= 0.0 then begin
        record_completion sim interaction started;
        think sim
      end
      else
        Resource.submit sim db
          ~service_time:(Rng.exponential rng db_ms)
          ~on_complete:finish_db ~on_reject:reject
    in
    let after_proxy sim =
      let hit = Rng.float rng 1.0 < Effects.cache_hit_probability fx interaction in
      if hit then begin
        if in_window sim then k.cache_hits <- k.cache_hits + 1;
        (* Served from cache: the hit cost was charged at the proxy
           via the service-time sample below, which uses the blended
           expectation; charge the small residual here as zero. *)
        record_completion sim interaction started;
        think sim
      end
      else
        Resource.submit sim app
          ~service_time:(Rng.exponential rng (Effects.app_service_ms fx interaction))
          ~on_complete:after_app ~on_reject:reject
    in
    let proxy_ms =
      let h = Effects.cache_hit_probability fx interaction in
      (h *. Effects.proxy_hit_ms fx interaction)
      +. ((1.0 -. h) *. Effects.proxy_forward_ms fx interaction)
    in
    Resource.submit sim proxy
      ~service_time:(Rng.exponential rng (Float.max 1e-6 proxy_ms))
      ~on_complete:after_proxy ~on_reject:reject
  in
  for _ = 1 to options.clients do
    (* Stagger initial arrivals across one think time. *)
    Sim.schedule sim ~delay:(Rng.float rng options.think_ms) (issue None)
  done;
  Sim.run ~until:measure_end sim;
  let seconds = options.horizon_ms /. 1000.0 in
  let utilization_of resource =
    Harmony_des.Resource.utilization_time resource
    /. (measure_end *. float_of_int (Harmony_des.Resource.capacity resource))
  in
  (* One in-place sort of the arena buffer serves both percentiles —
     no list-to-array copy, no per-percentile sorted copy. *)
  let p50, p95 =
    if k.completions = 0 then (0.0, 0.0)
    else begin
      Harmony_numerics.Stats.sort_floatarray ~len:arena.Arena.count
        arena.Arena.response_times;
      ( Harmony_numerics.Stats.percentile_sorted_floatarray
          ~len:arena.Arena.count arena.Arena.response_times 50.0,
        Harmony_numerics.Stats.percentile_sorted_floatarray
          ~len:arena.Arena.count arena.Arena.response_times 95.0 )
    end
  in
  {
    wips = float_of_int k.completions /. seconds;
    wipsb = float_of_int k.browse /. seconds;
    wipso = float_of_int k.order /. seconds;
    completions = k.completions;
    rejections = k.rejections;
    cache_hits = k.cache_hits;
    mean_response_ms =
      (if k.completions = 0 then 0.0
       else Float.Array.get arena.Arena.totals 0 /. float_of_int k.completions);
    p50_response_ms = p50;
    p95_response_ms = p95;
    utilization = (utilization_of proxy, utilization_of app, utilization_of db);
  }

let wips ?options config ~mix = (run ?options config ~mix).wips

let objective ?options ~mix () =
  Objective.create ~space:Wsconfig.space ~direction:Objective.Higher_is_better
    (fun c -> wips ?options (Wsconfig.of_config c) ~mix)
