open Harmony_objective

type options = { clients : int; think_ms : float }

let default_options = { clients = 120; think_ms = 1000.0 }

type result = {
  wips : float;
  cache_hit : float;
  utilization : float * float * float;
  bottleneck : string;
  reject_fraction : float;
}

(* Schweitzer AMVA with Seidmann's multi-server approximation: a
   c-server station with demand D becomes a queueing station with
   demand D/c plus a pure delay of D*(c-1)/c. *)
module Amva = struct
  (* All per-iteration state lives in preallocated floatarrays (float
     refs and Array.mapi in the fixed-point loop cost ~30 words per
     iteration, ~6k words per evaluation).  [acc] holds the loop's
     scalar state: slot 0 is the previous iteration's throughput. *)
  type scratch = {
    mutable q_demand : floatarray;
    mutable q : floatarray;
    mutable r : floatarray;
    acc : floatarray;
    (* Previous solution, for warm-started incremental re-solves. *)
    mutable prev_q : floatarray;
    mutable prev_demands : floatarray;
    mutable prev_servers : int array;
    mutable prev_k : int;
    mutable prev_clients : int;
    prev_think_ms : floatarray;
    mutable prev_valid : bool;
  }

  let scratch () =
    {
      q_demand = Float.Array.create 0;
      q = Float.Array.create 0;
      r = Float.Array.create 0;
      acc = Float.Array.make 2 0.0;
      prev_q = Float.Array.create 0;
      prev_demands = Float.Array.create 0;
      prev_servers = [||];
      prev_k = 0;
      prev_clients = 0;
      prev_think_ms = Float.Array.make 1 Float.nan;
      prev_valid = false;
    }

  let ensure s k =
    if Float.Array.length s.q < k then begin
      s.q_demand <- Float.Array.make k 0.0;
      s.q <- Float.Array.make k 0.0;
      s.r <- Float.Array.make k 0.0;
      s.prev_q <- Float.Array.make k 0.0;
      s.prev_demands <- Float.Array.make k 0.0;
      s.prev_servers <- Array.make k 0
    end

  (* Warm start is valid when the previous solve had the same shape
     and at most one station's demand changed: the fixed point is the
     same map iterated from a nearby point, so it converges in a
     handful of iterations instead of tens. *)
  let warm_applicable s ~k ~clients ~think_ms ~demands_ms ~servers =
    s.prev_valid && s.prev_k = k && s.prev_clients = clients
    && Float.equal (Float.Array.get s.prev_think_ms 0) think_ms
    && (let same = ref true in
        for i = 0 to k - 1 do
          if s.prev_servers.(i) <> servers.(i) then same := false
        done;
        !same)
    &&
    let changed = ref 0 in
    for i = 0 to k - 1 do
      if not (Float.equal (Float.Array.get s.prev_demands i) demands_ms.(i))
      then incr changed
    done;
    !changed <= 1

  let solve ?scratch:sc ?(max_iterations = 200) ?(early_exit = true)
      ?(warm = false) ~clients ~think_ms ~demands_ms ~servers () =
    let k = Array.length demands_ms in
    if k = 0 then invalid_arg "Amva.solve: no stations";
    if Array.length servers <> k then invalid_arg "Amva.solve: length mismatch";
    let s = match sc with Some s -> s | None -> scratch () in
    ensure s k;
    let n = float_of_int clients in
    let qd = s.q_demand and q = s.q and r = s.r and acc = s.acc in
    Float.Array.set acc 1 0.0;
    for i = 0 to k - 1 do
      Float.Array.set qd i (demands_ms.(i) /. float_of_int servers.(i));
      Float.Array.set acc 1
        (Float.Array.get acc 1
        +. demands_ms.(i)
           *. float_of_int (servers.(i) - 1)
           /. float_of_int servers.(i))
    done;
    let fixed_delay = Float.Array.get acc 1 in
    if warm && warm_applicable s ~k ~clients ~think_ms ~demands_ms ~servers
    then Float.Array.blit s.prev_q 0 q 0 k
    else begin
      let q0 = n /. float_of_int (Stdlib.max 1 k) in
      for i = 0 to k - 1 do
        Float.Array.set q i q0
      done
    end;
    Float.Array.set acc 0 0.0;
    let iters = ref 0 in
    let running = ref true in
    let changed = ref false in
    while !running && !iters < max_iterations do
      incr iters;
      Float.Array.set acc 1 0.0;
      for i = 0 to k - 1 do
        let ri =
          Float.Array.get qd i
          *. (1.0 +. (Float.Array.get q i *. (n -. 1.0) /. n))
        in
        Float.Array.set r i ri;
        Float.Array.set acc 1 (Float.Array.get acc 1 +. ri)
      done;
      let x = n /. (think_ms +. fixed_delay +. Float.Array.get acc 1) in
      changed := false;
      for i = 0 to k - 1 do
        let qi = x *. Float.Array.get r i in
        if not (Float.equal qi (Float.Array.get q i)) then changed := true;
        Float.Array.set q i qi
      done;
      (* Exact fixed point: once x and every q_i repeat bitwise, all
         remaining iterations are the identity, so exiting here is
         provably byte-identical to running the full budget. *)
      if
        early_exit
        && (not !changed)
        && Float.equal x (Float.Array.get acc 0)
      then running := false;
      Float.Array.set acc 0 x
    done;
    Float.Array.blit q 0 s.prev_q 0 k;
    for i = 0 to k - 1 do
      Float.Array.set s.prev_demands i demands_ms.(i);
      s.prev_servers.(i) <- servers.(i)
    done;
    s.prev_k <- k;
    s.prev_clients <- clients;
    Float.Array.set s.prev_think_ms 0 think_ms;
    s.prev_valid <- true;
    Float.Array.get acc 0

  let queue_lengths s =
    Array.init s.prev_k (fun i -> Float.Array.get s.prev_q i)
end

(* M/M/c/K blocking probability (Erlang loss with waiting room):
   computed from the birth-death chain with a running normalization so
   large K never overflows. [offered] is in Erlangs (arrival rate x
   mean service time).  The running terms live in a two-cell
   floatarray — float refs would box on every state. *)
let mmck_blocking ~servers ~queue ~offered =
  if offered <= 0.0 then 0.0
  else begin
    let k = servers + queue in
    let c = float_of_int servers in
    let acc = Float.Array.make 2 1.0 in
    (* acc.(0) = p_n relative to p_0, acc.(1) = running total. *)
    for n = 0 to k - 1 do
      let rate = offered /. Float.min c (float_of_int (n + 1)) in
      let rel = Float.Array.get acc 0 *. rate in
      (* Guard against runaway growth in deeply saturated systems. *)
      if rel > 1e12 then begin
        Float.Array.set acc 1 ((Float.Array.get acc 1 /. rel) +. 1.0);
        Float.Array.set acc 0 1.0
      end
      else begin
        Float.Array.set acc 0 rel;
        Float.Array.set acc 1 (Float.Array.get acc 1 +. rel)
      end
    done;
    Float.Array.get acc 0 /. Float.Array.get acc 1
  end

(* Per-domain scratch: contents are fully reinitialized by each cold
   solve, so evaluations stay order-independent and byte-identical at
   any domain count; the warm-started path is opt-in via Amva.solve
   and never used here. *)
let scratch_key = Domain.DLS.new_key (fun () -> Amva.scratch ())

let evaluate ?(options = default_options) config ~mix =
  if options.clients < 1 then invalid_arg "Model.evaluate: clients < 1";
  let fx = Effects.derive config ~mix in
  let demands =
    [|
      Float.max 1e-6 (Effects.mean_proxy_ms fx);
      Float.max 1e-6 (Effects.mean_app_ms fx);
      Float.max 1e-6 (Effects.mean_db_ms fx);
    |]
  in
  let servers =
    [|
      Effects.proxy_servers fx; Effects.app_servers fx; Effects.db_servers fx;
    |]
  in
  let x =
    Amva.solve
      ~scratch:(Domain.DLS.get scratch_key)
      ~clients:options.clients ~think_ms:options.think_ms ~demands_ms:demands
      ~servers ()
  in
  (* Accept-queue overflow at the proxy and app tiers: requests that
     find the backlog full are rejected and retried after a client
     backoff, costing throughput. *)
  let blocking i queue_limit =
    mmck_blocking ~servers:servers.(i) ~queue:queue_limit
      ~offered:(x *. demands.(i))
  in
  let over_proxy = blocking 0 (Effects.proxy_queue_limit fx) in
  let over_app = blocking 1 (Effects.app_queue_limit fx) in
  let reject_fraction = Float.min 0.9 (over_proxy +. over_app) in
  let x = x *. (1.0 -. (0.5 *. reject_fraction)) in
  let util i = Float.min 1.0 (x *. demands.(i) /. float_of_int servers.(i)) in
  let u = (util 0, util 1, util 2) in
  let bottleneck =
    let u0, u1, u2 = u in
    if u1 >= u0 && u1 >= u2 then "app" else if u2 >= u0 then "db" else "proxy"
  in
  {
    wips = x *. 1000.0;
    cache_hit = Effects.mean_cache_hit fx;
    utilization = u;
    bottleneck;
    reject_fraction;
  }

let wips ?options config ~mix = (evaluate ?options config ~mix).wips

let objective ?options ~mix () =
  Objective.create ~space:Wsconfig.space ~direction:Objective.Higher_is_better
    (fun c -> wips ?options (Wsconfig.of_config c) ~mix)
