(** Discrete-event simulation of the 3-tier cluster web service.

    N emulated browsers think, issue a TPC-W interaction drawn from
    the mix, and wait for the response.  A request visits the proxy
    (cache hit ends it there), then the application tier's connector
    pool, then the database connection pool; each tier is a
    capacity-limited server pool with a bounded accept queue
    ({!Harmony_des.Resource}).  A rejected request makes the browser
    back off and retry.  Service times are exponential around the
    means given by {!Effects}.

    Slower than {!Model} but stochastic and structurally faithful;
    used to validate the model and for the end-to-end examples. *)

type options = {
  clients : int;       (** emulated browsers (default 120) *)
  think_ms : float;    (** mean think time (default 1000 ms) *)
  warmup_ms : float;   (** measurements discarded before this (default 20_000) *)
  horizon_ms : float;  (** measured interval length (default 120_000) *)
  backoff_ms : float;  (** browser backoff after a rejection (default 800) *)
  seed : int;          (** simulation randomness (default 1) *)
  session_persistence : float;
      (** probability that a browser's next interaction stays in the
          previous one's Browse/Order category ({!Tpcw.sample_next});
          0 (the default) reproduces independent sampling, larger
          values make arrivals bursty without changing the stationary
          mix *)
}

val default_options : options

type result = {
  wips : float;           (** completions per second in the measured interval *)
  wipsb : float;          (** browse-category completions per second *)
  wipso : float;          (** order-category completions per second *)
  completions : int;
  rejections : int;
  cache_hits : int;
  mean_response_ms : float;
  p50_response_ms : float;  (** median response time, 0 when nothing completed *)
  p95_response_ms : float;
  utilization : float * float * float;
      (** average busy fraction of the proxy, app, and db pools over
          the whole run (warmup included) — comparable to
          {!Model.result.utilization} *)
}

(** Reusable measurement buffers.  An arena owns the response-time
    buffer a run fills; passing one explicitly lets a caller amortize
    its capacity across many runs.  Ownership rules: an arena belongs
    to exactly one run at a time, {!run} resets it on entry and leaves
    the (sorted) samples of the finished run behind, so its contents
    are only meaningful until the next run borrows it.  Without an
    explicit arena each domain reuses a private one, which is safe
    because a domain runs one simulation at a time. *)
module Arena : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] is the initial response-time buffer size in samples
      (default 4096); the buffer grows geometrically when exceeded. *)
end

val run : ?options:options -> ?arena:Arena.t -> Wsconfig.t -> mix:Tpcw.mix -> result

val wips : ?options:options -> Wsconfig.t -> mix:Tpcw.mix -> float

val objective : ?options:options -> mix:Tpcw.mix -> unit -> Harmony_objective.Objective.t
(** Higher-is-better WIPS over {!Wsconfig.space}.  Each evaluation
    reseeds from [options.seed] so the objective is deterministic per
    configuration. *)
