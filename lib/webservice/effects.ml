type t = {
  config : Wsconfig.t;
  mix : Tpcw.mix;
  hit_window : float;     (* fraction of cacheable objects inside [min,max] *)
  hit_in_window : float;  (* hit probability for an in-window object *)
  proxy_inflation : float;
  app_inflation : float;
  db_inflation : float;
  delayed_write_factor : float;
}

let node_ram_mb = 1000.0

(* Object sizes are modelled exponential with this mean (KB). *)
let mean_object_kb = 12.0

(* Working set of distinct cacheable objects (TPC-W scale factor
   10,000 items plus static content). *)
let working_set_objects = 4000.0

(* Per-packet costs on 100 Mbps Ethernet with 2004 syscall overheads:
   each buffered write at the app tier and each result packet from the
   database costs a round of syscalls and wire turnarounds. *)
let syscall_ms = 1.0
let db_packet_ms = 3.0

(* CPU/disk parallelism ceilings: worker processes beyond the app
   tier's CPU contexts add no capacity, and database connections
   beyond the disk/CPU queue depth only add contention.  Extra
   processes still consume memory (thrashing). *)
let app_cpu_contexts = 10
let db_parallelism = 12

let thrash demand_mb =
  (* Quadratic slowdown once memory demand passes RAM; capped — a
     paging system is roughly an order of magnitude slower, not
     arbitrarily slow. *)
  let ratio = demand_mb /. (0.9 *. node_ram_mb) in
  if ratio <= 1.0 then 1.0
  else Float.min 10.0 (1.0 +. (8.0 *. (ratio -. 1.0) *. (ratio -. 1.0)))

let derive (config : Wsconfig.t) ~mix =
  let mink = float_of_int config.proxy_min_object_kb in
  let maxk = float_of_int config.proxy_max_object_kb in
  let hit_window =
    Float.max 0.0 (exp (-.mink /. mean_object_kb) -. exp (-.maxk /. mean_object_kb))
  in
  (* Average size of a cached object: conditional mean of the
     exponential over the window, approximated by min + mean. *)
  let avg_cached_kb = mink +. mean_object_kb in
  let capacity_objects =
    float_of_int config.proxy_cache_mem_mb *. 1024.0 /. avg_cached_kb
  in
  let hit_in_window = capacity_objects /. (capacity_objects +. working_set_objects) in
  (* Squid shares its node with the OS: a cache close to node RAM
     pages. *)
  let proxy_mem = (float_of_int config.proxy_cache_mem_mb *. 1.25) +. 150.0 in
  let proxy_inflation = thrash proxy_mem in
  (* Each worker process costs a base footprint plus its transfer
     buffers; backlog slots pin socket buffers too. *)
  let app_mem =
    (float_of_int config.ajp_max_processors
    *. (6.0 +. (0.05 *. float_of_int config.http_buffer_kb)))
    +. (0.05 *. float_of_int (config.ajp_accept_count + config.http_accept_count))
  in
  let app_inflation =
    thrash app_mem +. (0.004 *. float_of_int config.ajp_max_processors)
  in
  let db_mem =
    (float_of_int config.mysql_max_connections
    *. (3.0 +. (0.08 *. float_of_int config.mysql_net_buffer_kb)))
    +. (0.04 *. float_of_int config.mysql_delayed_queue)
  in
  let write_frac = Tpcw.write_fraction mix in
  let lock_contention =
    let c = float_of_int config.mysql_max_connections /. 96.0 in
    1.0 +. (0.6 *. write_frac *. (c ** 1.5))
  in
  let db_inflation =
    (thrash db_mem *. lock_contention)
    +. (0.002 *. float_of_int config.mysql_max_connections)
  in
  (* Delayed-insert batching: a longer queue absorbs more write cost,
     with saturating returns. *)
  let q = float_of_int config.mysql_delayed_queue in
  let delayed_write_factor = 1.0 -. (0.45 *. (q /. (q +. 1500.0))) in
  { config; mix; hit_window; hit_in_window; proxy_inflation; app_inflation;
    db_inflation; delayed_write_factor }

let cache_hit_probability t i =
  if (Tpcw.demand i).Tpcw.cacheable then t.hit_window *. t.hit_in_window else 0.0

let proxy_hit_ms t i =
  let d = Tpcw.demand i in
  (0.8 +. (0.008 *. d.Tpcw.response_kb)) *. t.proxy_inflation

let proxy_forward_ms t i =
  let d = Tpcw.demand i in
  (0.4 +. (0.012 *. d.Tpcw.response_kb)) *. t.proxy_inflation

let app_service_ms t i =
  let d = Tpcw.demand i in
  let packets = ceil (d.Tpcw.response_kb /. float_of_int t.config.Wsconfig.http_buffer_kb) in
  (d.Tpcw.app_ms +. (syscall_ms *. packets)) *. t.app_inflation

let db_service_ms t i =
  let d = Tpcw.demand i in
  if
    Float.equal d.Tpcw.db_ms 0.0
    && Float.equal d.Tpcw.db_write_ms 0.0
    && Float.equal d.Tpcw.db_result_kb 0.0
  then
    0.0
  else begin
    let packets =
      ceil (d.Tpcw.db_result_kb /. float_of_int t.config.Wsconfig.mysql_net_buffer_kb)
    in
    (d.Tpcw.db_ms
    +. (d.Tpcw.db_write_ms *. t.delayed_write_factor)
    +. (db_packet_ms *. packets))
    *. t.db_inflation
  end

let proxy_servers _ = 16
let proxy_queue_limit t = t.config.Wsconfig.http_accept_count
let app_servers t = min t.config.Wsconfig.ajp_max_processors app_cpu_contexts
let app_queue_limit t = t.config.Wsconfig.ajp_accept_count
let db_servers t = min t.config.Wsconfig.mysql_max_connections db_parallelism
let db_queue_limit _ = 512

let weighted t f =
  Array.fold_left (fun acc (i, w) -> acc +. (w *. f i)) 0.0 t.mix.Tpcw.weights

let mean_cache_hit t = weighted t (cache_hit_probability t)

let mean_proxy_ms t =
  weighted t (fun i ->
      let h = cache_hit_probability t i in
      (h *. proxy_hit_ms t i) +. ((1.0 -. h) *. proxy_forward_ms t i))

let mean_app_ms t =
  weighted t (fun i ->
      let h = cache_hit_probability t i in
      (1.0 -. h) *. app_service_ms t i)

let mean_db_ms t =
  weighted t (fun i ->
      let h = cache_hit_probability t i in
      (1.0 -. h) *. db_service_ms t i)
