open Harmony
module Frame = Harmony_persist.Frame
module Persist = Harmony_persist.Persist
module Journal = Harmony_persist.Journal
module Pool = Harmony_parallel.Pool
module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export
module Flight = Harmony_telemetry.Flight

type message =
  | Client of { client : string; payload : Server.message }
  | Deregister of { client : string }
  | Service_metrics
  | Dump_flight

type reply =
  | Client_reply of { client : string; reply : Server.reply }
  | Deregistered of { client : string }
  | Service_stats of string
  | Flight_dump of string
  | Service_error of string

type event = Recv of message | Reply of string | Shed of message

(* A batch entry with its admission metadata: when the work was
   enqueued (for the queue-delay histogram) and the logical tick after
   which it is not worth doing.  Both are on the admission clock
   ([Admission.now]); [None] means unknown/none. *)
type envelope = {
  message : message;
  enqueued_at : int option;
  deadline : int option;
}

let envelope ?enqueued_at ?deadline message = { message; enqueued_at; deadline }

(* Per-shard durability plumbing: the same WAL discipline as
   [Server.persist], except the replayable essence interleaves many
   clients' sessions, so each log entry remembers which client owns it
   (an accepted re-register or a deregister prunes exactly that
   client's entries). *)
type shard_persist = {
  journal : Journal.t;
  snapshot : string;
  compact_every : int;
  mutable seq : int;
  mutable session_log : (int * string * event) list;  (* newest first *)
}

type shard = {
  tel : Telemetry.t;
  sessions : (string, Server.t) Hashtbl.t;
  mutable persist : shard_persist option;
}

(* The in-service burn-rate monitor: one {!Slo.t} per objective
   (handle latency, admission queue delay), fed after every admission
   tick from the merged per-shard histograms.  Single-owner state,
   touched only from the submitting domain (like the admission
   layer). *)
type slo_monitor = {
  slo_spec : Slo.spec;
  handle_mon : Slo.t;
  delay_mon : Slo.t;
}

type t = {
  options : Simplex.options option;
  max_report_failures : int option;
  shards_ : shard array;
  admission : Admission.t option;
  seqs : (string, int ref) Hashtbl.t;
      (* per-client message sequence, advanced in arrival order on the
         submitting domain only — the deterministic seed of each
         message's trace context *)
  slo : slo_monitor option;
}

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* FNV-1a, 32-bit: a tiny, cross-version-stable string hash.  The shard
   map is part of the on-disk layout (shard journals), so it must not
   depend on [Hashtbl.hash] internals. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let shard_for ~shards client =
  if shards < 1 then invalid_arg "Service.shard_for: shards < 1";
  fnv1a client mod shards

let shards t = Array.length t.shards_
let shard_of_client t client = shard_for ~shards:(shards t) client

let sessions t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.sessions) 0 t.shards_

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

(* The per-message handle-latency histogram the loadgen SLO asserts
   against.  The default decade bounds cannot resolve a logical-clock
   p99 in the tens of ticks, so every shard pins these before the
   first observation. *)
let handle_ms_bounds =
  [| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let create ?options ?max_report_failures ?telemetry ?admission ?slo ~shards ()
    =
  if shards < 1 then invalid_arg "Service.create: shards < 1";
  let tel_for =
    match telemetry with Some f -> f | None -> fun _ -> Telemetry.off
  in
  let shards_ =
    Array.init shards (fun i ->
        let tel = tel_for i in
        Telemetry.declare_histogram tel ~bounds:handle_ms_bounds
          "server.handle_ms";
        { tel; sessions = Hashtbl.create 64; persist = None })
  in
  let admission =
    (* The admission state shares the shard telemetry handles, so its
       counters and queue-delay histogram land in the merged registry
       (and in [Service_metrics] replies) for free. *)
    Option.map
      (fun config ->
        Admission.create ~telemetry:(fun i -> shards_.(i).tel) ~shards config)
      admission
  in
  let slo =
    Option.map
      (fun spec ->
        {
          slo_spec = spec;
          handle_mon = Slo.create spec.Slo.burn;
          delay_mon = Slo.create spec.Slo.burn;
        })
      slo
  in
  {
    options;
    max_report_failures;
    shards_;
    admission;
    seqs = Hashtbl.create 256;
    slo;
  }

let admission t = t.admission
let admission_now t =
  match t.admission with Some a -> Admission.now a | None -> 0

let shard_telemetry t i =
  if i >= 0 && i < Array.length t.shards_ then t.shards_.(i).tel
  else Telemetry.off

let merged_telemetry t =
  Telemetry.merged (Array.to_list (Array.map (fun s -> s.tel) t.shards_))

let metrics t = Export.prometheus (merged_telemetry t)

(* ------------------------------------------------------------------ *)
(* Text codec                                                          *)

(* Words that can never be client ids: single-session commands (so a
   stray unprefixed server message reads as a protocol error, not as a
   client called "query"), the deregister verb, the serve loop's
   [quit], and the service's own command. *)
let reserved =
  [ "register"; "query"; "report"; "metrics"; "done"; "quit";
    "service-metrics"; "dump-flight" ]

let is_space c =
  Char.equal c ' ' || Char.equal c '\t' || Char.equal c '\n'
  || Char.equal c '\r'

let valid_client id =
  String.length id > 0
  && (not (String.exists is_space id))
  && not (List.exists (String.equal id) reserved)

let parse_message text =
  let text = String.trim text in
  if String.equal text "service-metrics" then Ok Service_metrics
  else if String.equal text "dump-flight" then Ok Dump_flight
  else
    let first_line_end =
      match String.index_opt text '\n' with
      | Some i -> i
      | None -> String.length text
    in
    match String.index_opt (String.sub text 0 first_line_end) ' ' with
    | None -> Error ("missing client id: " ^ text)
    | Some i -> (
        let client = String.sub text 0 i in
        let rest = String.sub text (i + 1) (String.length text - i - 1) in
        if not (valid_client client) then Error ("bad client id: " ^ client)
        else
          match String.trim rest with
          | "done" -> Ok (Deregister { client })
          | _ -> (
              match Server.parse_message rest with
              | Ok payload -> Ok (Client { client; payload })
              | Error e -> Error e))

let message_to_string = function
  | Client { client; payload } ->
      client ^ " " ^ Server.message_to_string payload
  | Deregister { client } -> client ^ " done"
  | Service_metrics -> "service-metrics"
  | Dump_flight -> "dump-flight"

let reply_to_string = function
  | Client_reply { client; reply } ->
      client ^ " " ^ Server.reply_to_string reply
  | Deregistered { client } -> client ^ " bye"
  | Service_stats text -> "stats\n" ^ String.trim text
  | Flight_dump text -> "flight\n" ^ String.trim text
  | Service_error msg -> "error " ^ msg

(* ------------------------------------------------------------------ *)
(* Shard-local message application (no journaling)                     *)

let unknown_client shard client =
  Telemetry.incr shard.tel "service.unknown_client";
  Server.Rejected ("unknown client " ^ client ^ ": register first")

let apply ?ctx t shard = function
  | Service_metrics ->
      (* Routed at the service level (it needs every shard's registry);
         a shard only sees it through a corrupted journal, where a
         deterministic error keeps replay total. *)
      Service_error "service-metrics is not shard-local"
  | Dump_flight ->
      (* Same service-level routing: it reads every shard's ring. *)
      Service_error "dump-flight is not shard-local"
  | Deregister { client } -> (
      match Hashtbl.find_opt shard.sessions client with
      | None ->
          (match unknown_client shard client with
          | Server.Rejected msg -> Service_error msg
          | Server.Assign _ | Server.Done _ | Server.Stats _ ->
              Service_error "unknown client")
      | Some _ ->
          Hashtbl.remove shard.sessions client;
          Telemetry.incr shard.tel "service.deregisters";
          Deregistered { client })
  | Client { client; payload } -> (
      match Hashtbl.find_opt shard.sessions client with
      | Some server ->
          Client_reply { client; reply = Server.handle ?ctx server payload }
      | None -> (
          match payload with
          | Server.Register _ ->
              (* First contact: the client's dedicated session.  It
                 shares the shard's telemetry handle and runs with
                 [reject_reregister], so a duplicate register while
                 tuning is a total error reply, never a silent reset. *)
              let server =
                Server.create ?options:t.options
                  ?max_report_failures:t.max_report_failures
                  ~reject_reregister:true ~telemetry:shard.tel ()
              in
              let reply = Server.handle ?ctx server payload in
              (match reply with
              | Server.Rejected _ -> ()
              | Server.Assign _ | Server.Done _ | Server.Stats _ ->
                  Telemetry.incr shard.tel "service.registers";
                  Hashtbl.add shard.sessions client server);
              Client_reply { client; reply }
          | Server.Query | Server.Report _ | Server.Report_failed
          | Server.Metrics ->
              Client_reply { client; reply = unknown_client shard client }))

(* ------------------------------------------------------------------ *)
(* Write-ahead journal: event codec                                    *)

module Event = struct
  type t = event = Recv of message | Reply of string | Shed of message

  let encode ~seq = function
    | Recv m -> Printf.sprintf "%d recv %s" seq (message_to_string m)
    | Reply text -> Printf.sprintf "%d reply %s" seq text
    | Shed m -> Printf.sprintf "%d shed %s" seq (message_to_string m)

  let decode record =
    match String.index_opt record ' ' with
    | None -> None
    | Some i -> (
        match int_of_string_opt (String.sub record 0 i) with
        | None -> None
        | Some seq when seq < 1 -> None
        | Some seq -> (
            let rest =
              String.sub record (i + 1) (String.length record - i - 1)
            in
            let payload_of tag =
              if String.starts_with ~prefix:(tag ^ " ") rest then
                Some
                  (String.sub rest (String.length tag + 1)
                     (String.length rest - String.length tag - 1))
              else None
            in
            match payload_of "recv" with
            | Some text -> (
                match parse_message text with
                | Ok m -> Some (seq, Recv m)
                | Error _ -> None)
            | None -> (
                match payload_of "reply" with
                | Some text -> Some (seq, Reply text)
                | None -> (
                    match payload_of "shed" with
                    | Some text -> (
                        match parse_message text with
                        | Ok m -> Some (seq, Shed m)
                        | Error _ -> None)
                    | None -> None))))
end

(* ------------------------------------------------------------------ *)
(* Journaling, snapshots, recovery                                     *)

let shard_journal ~journal ~shard = journal ^ ".shard" ^ string_of_int shard
let snapshot_path path = path ^ ".snapshot"
let default_compact_every = 64
let snapshot_magic = "harmony-service-snapshot"
let snapshot_header seq = Printf.sprintf "%s 1 %d" snapshot_magic seq

let parse_snapshot_header record =
  match String.split_on_char ' ' record with
  | [ magic; "1"; seq ] when String.equal magic snapshot_magic ->
      int_of_string_opt seq
  | _ -> None

(* Only messages that can change shard state are journaled; queries
   and metrics probes are read-only up to idempotent re-issue, which
   deterministic replay regenerates for free. *)
let journaled = function
  | Client { payload = Server.Register _ | Server.Report _
                       | Server.Report_failed; _ } -> true
  | Client { payload = Server.Query | Server.Metrics; _ } -> false
  | Deregister _ -> true
  | Service_metrics | Dump_flight -> false

let log_client = function
  | Client { client; _ } | Deregister { client } -> client
  | Service_metrics | Dump_flight ->
      ""  (* never journaled; no valid client is "" *)

(* The multi-client replayable essence.  A successful deregister
   removes the client's whole history (nothing to replay); an accepted
   register replaces it with the fresh registration; everything else
   (including rejected registers and failed deregisters, whose error
   replies are still cross-checks) appends under its owner. *)
let extend_log log ~seq message reply =
  let client = log_client message in
  let prune log =
    List.filter (fun (_, c, _) -> not (String.equal c client)) log
  in
  match reply with
  | Deregistered _ -> prune log
  | Client_reply { reply = r; _ } ->
      let recv = (seq, client, Recv message) in
      let rep = (seq, client, Reply (reply_to_string reply)) in
      let accepted_register =
        (match message with
        | Client { payload = Server.Register _; _ } -> true
        | Client { payload = Server.Query | Server.Report _
                             | Server.Report_failed | Server.Metrics; _ }
        | Deregister _ | Service_metrics | Dump_flight -> false)
        && (match r with
           | Server.Rejected _ -> false
           | Server.Assign _ | Server.Done _ | Server.Stats _ -> true)
      in
      if accepted_register then rep :: recv :: prune log
      else rep :: recv :: log
  | Service_error _ | Service_stats _ | Flight_dump _ ->
      (seq, client, Reply (reply_to_string reply))
      :: (seq, client, Recv message)
      :: log

let compact p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Frame.encode (snapshot_header p.seq));
  List.iter
    (fun (seq, _client, ev) ->
      Buffer.add_string buf (Frame.encode (Event.encode ~seq ev)))
    (List.rev p.session_log);
  Persist.write_atomic ~path:p.snapshot (Buffer.contents buf);
  Journal.reset p.journal

let journal_append tel journal record =
  Journal.append journal record;
  Telemetry.incr tel "service.journal.appends";
  Telemetry.incr tel "service.journal.fsyncs"

(* ------------------------------------------------------------------ *)
(* Handling                                                            *)

let handle_in_shard ?ctx t shard message =
  Telemetry.incr shard.tel "service.messages";
  (* Each WAL write is its own correlated span.  It sits {e outside}
     the server.handle span on purpose: the message must be durable
     before any session state changes, so journal time is trace-level
     self time (harmony_trace self), not handle latency. *)
  let journal_span record =
    let args =
      match ctx with
      | Some c ->
          Telemetry.Ctx.args (Telemetry.Ctx.child c "service.journal.append")
      | None -> []
    in
    Telemetry.span_begin shard.tel ~args "service.journal.append";
    (match shard.persist with
    | Some p -> journal_append shard.tel p.journal record
    | None -> ());
    Telemetry.span_end shard.tel "service.journal.append"
  in
  (match shard.persist with
  | Some p when journaled message ->
      (* WAL discipline: the message is durable before any session
         state changes; a crash loses at most the reply. *)
      p.seq <- p.seq + 1;
      journal_span (Event.encode ~seq:p.seq (Recv message))
  | Some _ | None -> ());
  let reply = apply ?ctx t shard message in
  (match shard.persist with
  | Some p when journaled message ->
      journal_span (Event.encode ~seq:p.seq (Reply (reply_to_string reply)));
      p.session_log <- extend_log p.session_log ~seq:p.seq message reply;
      if Journal.records p.journal > p.compact_every then begin
        Telemetry.incr shard.tel "service.journal.compactions";
        compact p
      end
  | Some _ | None -> ());
  reply

(* Priority classes for the admission layer: a session's lifecycle
   messages must always land (a completed tuning run that cannot
   deregister leaks its slot forever), measurements matter next, and
   read-only probes are shed first. *)
let priority_of_message = function
  | Client { payload = Server.Register _; _ } | Deregister _ ->
      Admission.Critical
  | Client { payload = Server.Report _ | Server.Report_failed; _ } ->
      Admission.Normal
  | Client { payload = Server.Query | Server.Metrics; _ }
  | Service_metrics | Dump_flight ->
      Admission.Low

(* A rejection is a total, client-addressed reply: the caller can
   route it back to exactly the client whose message was shed. *)
let shed_reply message text =
  match message with
  | Client { client; _ } | Deregister { client } ->
      Client_reply { client; reply = Server.Rejected text }
  | Service_metrics | Dump_flight -> Service_error text

(* An admission rejection of a state-changing message is journaled
   (shed + literal reply, same seq) so recovery replays the full reply
   stream — rejections included — byte-for-byte.  Runs only from the
   submitting domain, before the batch dispatches, so it never races
   the shard tasks' own appends. *)
let journal_shed_in_shard shard message reply_text =
  match shard.persist with
  | Some p when journaled message ->
      p.seq <- p.seq + 1;
      journal_append shard.tel p.journal
        (Event.encode ~seq:p.seq (Shed message));
      journal_append shard.tel p.journal
        (Event.encode ~seq:p.seq (Reply reply_text));
      let client = log_client message in
      p.session_log <-
        (p.seq, client, Reply reply_text)
        :: (p.seq, client, Shed message)
        :: p.session_log;
      if Journal.records p.journal > p.compact_every then begin
        Telemetry.incr shard.tel "service.journal.compactions";
        compact p
      end
  | Some _ | None -> ()

(* Cancellation sheds work that was already admitted but not yet run.
   It is never journaled (the message was never acknowledged, so a
   recovering client re-sends it) and counted directly on the shard
   handle — [Telemetry] has its own lock, so this is safe from inside
   a pool task, unlike the single-owner admission state. *)
let cancelled_text =
  Admission.reject_text ~reason:Admission.Cancelled ~retry_after:0
    ~degraded:false

let cancelled_reply shard message =
  Telemetry.incr shard.tel Admission.c_rejected;
  Telemetry.incr shard.tel Admission.c_cancelled;
  shed_reply message cancelled_text

let admission_check ?exemplar t ~shard env =
  match t.admission with
  | None -> Admission.Admit
  | Some a -> (
      match env.message with
      | Service_metrics | Dump_flight -> Admission.check_service a
      | Client { client; _ } | Deregister { client } ->
          Admission.check a ~shard ~client
            ~priority:(priority_of_message env.message)
            ?enqueued_at:env.enqueued_at ?deadline:env.deadline ?exemplar ())

(* The trace root for a client message: derived from (client, seq)
   where seq is the client's message arrival index, advanced on the
   submitting domain before dispatch — so trace ids are a function of
   the message stream alone and byte-identical at any domain count. *)
let next_ctx t client =
  let r =
    match Hashtbl.find_opt t.seqs client with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.seqs client r;
        r
  in
  incr r;
  Telemetry.Ctx.root ~client ~seq:!r

(* ------------------------------------------------------------------ *)
(* Flight recorder and SLO monitor                                     *)

(* Every shard's recent telemetry events, oldest-first per shard, as
   JSONL with a [shard] field — the black-box dump written on crash,
   on an SLO page, or in reply to [dump-flight]. *)
let flight_dump t =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i shard ->
      match Telemetry.flight shard.tel with
      | None -> ()
      | Some f -> Buffer.add_string buf (Flight.to_jsonl ~shard:i f))
    t.shards_;
  Buffer.contents buf

let feed_monitor t mon name ~threshold =
  let total, violations =
    Array.fold_left
      (fun (tot, vi) shard ->
        match Telemetry.histogram_value shard.tel name with
        | None -> (tot, vi)
        | Some snap ->
            ( tot + snap.Telemetry.count,
              vi + Slo.violations_in snap ~threshold ))
      (0, 0) t.shards_
  in
  Slo.feed mon ~total ~violations

(* Feed both objectives once per handled batch/envelope, after all
   shard tasks have joined (histogram sums across shards are then
   stable), and expose the combined state on shard 0's registry.
   State transitions are rare instants; the gauge is set every tick
   (metric writes record no events, so the logical clock — and with it
   every latency measurement — is unaffected). *)
let slo_tick t =
  match t.slo with
  | None -> ()
  | Some m ->
      let tel0 = t.shards_.(0).tel in
      let h_before, h_after =
        feed_monitor t m.handle_mon m.slo_spec.Slo.handle_histogram
          ~threshold:m.slo_spec.Slo.handle_threshold
      in
      let d_before, d_after =
        feed_monitor t m.delay_mon m.slo_spec.Slo.delay_histogram
          ~threshold:m.slo_spec.Slo.delay_threshold
      in
      let combined =
        Slo.worst (Slo.state m.handle_mon) (Slo.state m.delay_mon)
      in
      Telemetry.gauge tel0 "service.slo.state"
        (float_of_int (Slo.state_rank combined));
      let transition objective before after =
        if Slo.state_rank after <> Slo.state_rank before then begin
          Telemetry.instant tel0 "service.slo.transition"
            ~args:
              [
                ("objective", Telemetry.Str objective);
                ("from", Telemetry.Str (Slo.state_to_string before));
                ("to", Telemetry.Str (Slo.state_to_string after));
              ];
          match after with
          | Slo.Page -> Telemetry.incr tel0 "service.slo.pages"
          | Slo.Healthy | Slo.Warn -> ()
        end
      in
      transition "handle" h_before h_after;
      transition "queue_delay" d_before d_after

let slo_state t =
  Option.map
    (fun m -> Slo.worst (Slo.state m.handle_mon) (Slo.state m.delay_mon))
    t.slo

let slo_pages t =
  match t.slo with
  | None -> 0
  | Some m -> Slo.pages m.handle_mon + Slo.pages m.delay_mon

let handle_env t env =
  (match t.admission with Some a -> Admission.tick a | None -> ());
  let reply =
    match env.message with
    | Service_metrics -> (
        match Admission.verdict_text (admission_check t ~shard:0 env) with
        | None -> Service_stats (metrics t)
        | Some text -> Service_error text)
    | Dump_flight -> (
        match Admission.verdict_text (admission_check t ~shard:0 env) with
        | None -> Flight_dump (flight_dump t)
        | Some text -> Service_error text)
    | Client { client; _ } | Deregister { client } -> (
        let s = shard_of_client t client in
        let ctx = next_ctx t client in
        match
          Admission.verdict_text
            (admission_check t ~shard:s
               ~exemplar:(Telemetry.Ctx.trace_id ctx)
               env)
        with
        | None ->
            let reply = handle_in_shard ~ctx t t.shards_.(s) env.message in
            (match t.admission with
            | Some a -> Admission.complete a ~shard:s
            | None -> ());
            reply
        | Some text ->
            let reply = shed_reply env.message text in
            journal_shed_in_shard t.shards_.(s) env.message
              (reply_to_string reply);
            reply)
  in
  slo_tick t;
  reply

let handle t message = handle_env t (envelope message)

let handle_batch_env ?pool ?(cancel = Pool.Cancel.none) t envelopes =
  let msgs = Array.of_list envelopes in
  let n = Array.length msgs in
  let replies = Array.make n None in
  let nshards = shards t in
  (match t.admission with Some a -> Admission.tick a | None -> ());
  (* [Service_metrics] probes are answered at their arrival index
     against the pre-batch snapshot: computed once before any of this
     batch's decisions or messages can touch the registry, so the
     probe's position inside the batch does not change its reply. *)
  let has_probe =
    Array.exists
      (fun e ->
        match e.message with
        | Service_metrics -> true
        | Client _ | Deregister _ | Dump_flight -> false)
      msgs
  in
  let pre_metrics = if has_probe then metrics t else "" in
  (* [Dump_flight] gets the same pre-batch-snapshot treatment as the
     metrics probe, for the same reason: its position inside the batch
     must not change its reply. *)
  let has_dump =
    Array.exists
      (fun e ->
        match e.message with
        | Dump_flight -> true
        | Client _ | Deregister _ | Service_metrics -> false)
      msgs
  in
  let pre_dump = if has_dump then flight_dump t else "" in
  (* Admission runs sequentially, in arrival order, before anything is
     dispatched: decisions (and their journaled sheds) are a
     deterministic function of the batch alone.  [admitted] counts
     per-shard slots to release once the round joins.  Trace contexts
     are derived here too — on the submitting domain, in arrival order
     — so the ids the shard tasks stamp are domain-count-invariant. *)
  let per_shard = Array.make nshards [] in
  let admitted = Array.make nshards 0 in
  let ctxs = Array.make n None in
  Array.iteri
    (fun i env ->
      match env.message with
      | Service_metrics -> (
          match Admission.verdict_text (admission_check t ~shard:0 env) with
          | None -> replies.(i) <- Some (Service_stats pre_metrics)
          | Some text -> replies.(i) <- Some (Service_error text))
      | Dump_flight -> (
          match Admission.verdict_text (admission_check t ~shard:0 env) with
          | None -> replies.(i) <- Some (Flight_dump pre_dump)
          | Some text -> replies.(i) <- Some (Service_error text))
      | Client { client; _ } | Deregister { client } -> (
          let s = shard_of_client t client in
          let ctx = next_ctx t client in
          ctxs.(i) <- Some ctx;
          match
            Admission.verdict_text
              (admission_check t ~shard:s
                 ~exemplar:(Telemetry.Ctx.trace_id ctx)
                 env)
          with
          | None ->
              admitted.(s) <- admitted.(s) + 1;
              per_shard.(s) <- i :: per_shard.(s)
          | Some text ->
              let reply = shed_reply env.message text in
              journal_shed_in_shard t.shards_.(s) env.message
                (reply_to_string reply);
              replies.(i) <- Some reply))
    msgs;
  let run (shard_ix, ixs) =
    let shard = t.shards_.(shard_ix) in
    List.map
      (fun i ->
        (* Task-boundary cancellation check: a cancelled round sheds
           the not-yet-run suffix of each shard batch with total,
           retryable replies instead of occupying the domain. *)
        if Pool.Cancel.cancelled cancel then
          (i, cancelled_reply shard msgs.(i).message)
        else (i, handle_in_shard ?ctx:ctxs.(i) t shard msgs.(i).message))
      ixs
  in
  let inputs = Array.init nshards (fun s -> (s, List.rev per_shard.(s))) in
  let outputs =
    match pool with
    | Some pool -> Pool.try_map_array ~cancel pool run inputs
    | None ->
        (* Sequential path: [run] itself honors the token per message,
           so only real exceptions land in [Error]. *)
        Array.map
          (fun input -> try Ok (run input) with e -> Error e)
          inputs
  in
  (* Release the round's inflight slots before any re-raise, so a
     crashed round cannot leak budget. *)
  (match t.admission with
  | Some a ->
      Array.iteri
        (fun s k ->
          for _ = 1 to k do
            Admission.complete a ~shard:s
          done)
        admitted
  | None -> ());
  (* Non-cancellation task failures (journal sink I/O, chaos faults)
     re-raise exactly as [Pool.map_array] would: first by shard
     index, after every task has finished. *)
  Array.iter
    (function
      | Error Pool.Cancelled | Ok _ -> ()
      | Error e -> raise e)
    outputs;
  Array.iteri
    (fun shard_ix result ->
      match result with
      | Ok pairs -> List.iter (fun (i, r) -> replies.(i) <- Some r) pairs
      | Error _ ->
          (* The whole shard task was shed before it started. *)
          let shard = t.shards_.(shard_ix) in
          List.iter
            (fun i -> replies.(i) <- Some (cancelled_reply shard msgs.(i).message))
            (snd inputs.(shard_ix)))
    outputs;
  slo_tick t;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         (* Unreachable: every index was routed to a shard, rejected,
            or answered as a metrics slot; kept total for the T2
            no-abort contract. *)
         | None -> Service_error "internal: unanswered slot")
       replies)

let handle_batch ?pool ?cancel t messages =
  handle_batch_env ?pool ?cancel t (List.map (fun m -> envelope m) messages)

(* ------------------------------------------------------------------ *)
(* Attach / detach                                                     *)

let attach_shard ?wrap shard ~path ~compact_every =
  (match shard.persist with
  | Some p -> Journal.close p.journal
  | None -> ());
  let _scan, journal = Journal.open_file ?wrap path in
  Journal.reset journal;
  Persist.remove_if_exists (snapshot_path path);
  Persist.remove_if_exists (snapshot_path path ^ ".tmp");
  shard.persist <-
    Some
      { journal; snapshot = snapshot_path path; compact_every; seq = 0;
        session_log = [] }

let attach_journals ?(compact_every = default_compact_every) ?wrap t
    ~journal () =
  if compact_every < 1 then
    invalid_arg "Service.attach_journals: compact_every < 1";
  Array.iteri
    (fun i shard ->
      let wrap = Option.map (fun w -> w ~shard:i) wrap in
      attach_shard ?wrap shard
        ~path:(shard_journal ~journal ~shard:i)
        ~compact_every)
    t.shards_

let detach_journals t =
  Array.iter
    (fun shard ->
      match shard.persist with
      | None -> ()
      | Some p ->
          Journal.close p.journal;
          shard.persist <- None)
    t.shards_

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

(* Decode one shard's snapshot + journal into a seq-ordered event
   list; mirrors [Server.load_events]. *)
let load_events path =
  let dropped = ref 0 in
  let decode_record record =
    match Event.decode record with
    | Some ev -> Some ev
    | None ->
        incr dropped;
        None
  in
  let snap = Journal.read (snapshot_path path) in
  let snap_events, snap_seq =
    match snap.Frame.records with
    | [] -> ([], 0)
    | header :: rest -> (
        match parse_snapshot_header header with
        | None ->
            dropped := !dropped + 1 + List.length rest;
            ([], 0)
        | Some seq -> (List.filter_map decode_record rest, seq))
  in
  let journal_events =
    List.filter_map
      (fun record ->
        match decode_record record with
        | Some (seq, _) when seq <= snap_seq ->
            incr dropped;
            None
        | Some ev -> Some ev
        | None -> None)
      (Journal.read path).Frame.records
  in
  (snap_events @ journal_events, !dropped)

(* Re-apply one shard's recorded messages to its fresh sessions.  The
   recorded replies are cross-checks deterministic replay must
   regenerate byte-for-byte; the first divergence (or a non-monotone
   seq) drops everything after it.  A [Shed] record is not re-applied
   (the message never touched state — the admission layer rejected it)
   and its paired reply is kept literally: that is what makes
   journaled rejections replay byte-for-byte without the admission
   state being replayable.  [literal] holds the pending shed's
   (seq, client). *)
let replay_shard t shard events =
  let rec go events last_reply literal applied dropped log seq =
    match events with
    | [] -> (applied, dropped, log, seq)
    | (s, Recv m) :: rest ->
        if s <= seq then
          (applied, dropped + 1 + List.length rest, log, seq)
        else
          let reply = apply t shard m in
          let log = extend_log log ~seq:s m reply in
          go rest (Some reply) None (applied + 1) dropped log s
    | (s, Shed m) :: rest ->
        if s <= seq then
          (applied, dropped + 1 + List.length rest, log, seq)
        else
          let client = log_client m in
          go rest last_reply
            (Some (s, client))
            (applied + 1) dropped
            ((s, client, Shed m) :: log)
            s
    | (s, Reply text) :: rest -> (
        match literal with
        | Some (ls, client) ->
            if s = ls then
              go rest last_reply None applied dropped
                ((s, client, Reply text) :: log)
                seq
            else (applied, dropped + 1 + List.length rest, log, seq)
        | None ->
            let consistent =
              s = seq
              &&
              match last_reply with
              | Some r -> String.equal (reply_to_string r) text
              | None -> false
            in
            if consistent then go rest last_reply None applied dropped log seq
            else (applied, dropped + 1 + List.length rest, log, seq))
  in
  go events None None 0 0 [] 0

type shard_recovery = { shard : int; replayed : int; dropped : int }

type recovery = {
  service : t;
  replayed : int;
  dropped : int;
  per_shard : shard_recovery list;
}

let recover ?options ?max_report_failures ?telemetry ?admission ?slo ?wrap
    ?(compact_every = default_compact_every) ~shards ~journal () =
  if compact_every < 1 then
    invalid_arg "Service.recover: compact_every < 1";
  let t =
    create ?options ?max_report_failures ?telemetry ?admission ?slo ~shards ()
  in
  let per_shard =
    List.init shards (fun i ->
        let shard = t.shards_.(i) in
        let path = shard_journal ~journal ~shard:i in
        let events, dropped_load = load_events path in
        let applied, dropped_replay, session_log, seq =
          replay_shard t shard events
        in
        let wrap = Option.map (fun w -> w ~shard:i) wrap in
        let _scan, j = Journal.open_file ?wrap path in
        let p =
          { journal = j; snapshot = snapshot_path path; compact_every; seq;
            session_log }
        in
        shard.persist <- Some p;
        (* Checkpoint on the way up: torn tails, stale records and
           diverged suffixes are durably gone after recovery. *)
        compact p;
        let dropped = dropped_load + dropped_replay in
        Telemetry.incr shard.tel ~by:applied "service.recovery.replayed";
        Telemetry.incr shard.tel ~by:dropped "service.recovery.dropped";
        { shard = i; replayed = applied; dropped })
  in
  let replayed =
    List.fold_left (fun a (r : shard_recovery) -> a + r.replayed) 0 per_shard
  in
  let dropped =
    List.fold_left (fun a (r : shard_recovery) -> a + r.dropped) 0 per_shard
  in
  { service = t; replayed; dropped; per_shard }
