(** Admission control for the service edge: bounded inflight budgets,
    a per-client token-bucket rate limiter, logical deadlines, and
    hysteretic load shedding by priority class.

    Every decision is a function of a deterministic logical clock (one
    tick per batch) and integer arithmetic, so seeded runs stay
    byte-reproducible at any domain count.  Rejections are total
    values — the service renders them as [Rejected] replies with a
    machine-readable [retry-after=N] hint; nothing is dropped and
    nothing raises on the admission path.

    The module holds no global state: a value of type {!t} belongs to
    one service and is consulted only from the submitting domain
    (admission runs sequentially, in arrival order, before any work is
    dispatched to the pool), so it needs no locking. *)

type config = {
  max_inflight : int;
      (** Per-shard budget of admitted messages per dispatch round;
          [0] disables the cap.  Critical messages are exempt. *)
  rate : int;
      (** Tokens granted to each client bucket every [refill_every]
          ticks; [0] disables rate limiting. *)
  burst : int;
      (** Bucket capacity (and initial fill) when [rate > 0]. *)
  refill_every : int;
      (** Ticks between bucket refills when [rate > 0]. *)
  degrade_window : int;
      (** Hysteresis window length in ticks; [0] disables degraded
          mode. *)
  degrade_high : int;
      (** Sheds per window at or above which a shard enters degraded
          mode at the next window rollover. *)
  degrade_low : int;
      (** Sheds per window at or below which a degraded shard
          recovers at the next window rollover.  Between [degrade_low]
          and [degrade_high] the shard keeps its current mode. *)
}

val unlimited : config
(** All features off: every check admits.  Useful as a base record. *)

val default_config : config
(** The serve-loop defaults behind the CLI flags: rate limiting off,
    [max_inflight = 64], and a 16-tick hysteresis window with
    [degrade_high = max_inflight] and [degrade_low = max_inflight/8]. *)

type priority =
  | Critical  (** register / deregister: never shed, exempt from the
                  inflight cap (a session's completion must land). *)
  | Normal    (** report / report-failed: shed only by cap or rate. *)
  | Low       (** query / metrics: shed first when degraded. *)

type reason =
  | Deadline_expired  (** the message's logical deadline passed. *)
  | Rate_limited      (** the client's token bucket is empty. *)
  | Over_capacity     (** the shard's inflight budget is exhausted. *)
  | Degraded_shed     (** the shard is degraded and the message is
                          [Low] priority. *)
  | Cancelled         (** the batch was cooperatively cancelled before
                          this message ran. *)

type verdict =
  | Admit
  | Reject of { reason : reason; retry_after : int; degraded : bool }
      (** [retry_after] is in ticks; [0] means "retry immediately with
          fresh work" (expired or cancelled messages are not worth
          resubmitting as-is). *)

type t

val create :
  ?telemetry:(int -> Harmony_telemetry.Telemetry.t) ->
  shards:int ->
  config ->
  t
(** [create ~shards config] builds admission state for [shards]
    shards.  [telemetry i] supplies shard [i]'s handle (typically the
    service's own shard handles so merged exports see admission
    counters); defaults to {!Harmony_telemetry.Telemetry.off}.
    @raise Invalid_argument on a non-sensical [config] (negative
    fields, [rate > 0] with [burst < 1] or [refill_every < 1], or
    [degrade_window > 0] with [degrade_high < 1] or
    [degrade_low > degrade_high]) or [shards < 1]. *)

val config : t -> config

val now : t -> int
(** The logical clock: the number of {!tick} calls so far. *)

val tick : t -> unit
(** Advance the clock one batch.  Window rollovers happen here: a
    shard whose window elapsed evaluates the hysteresis thresholds
    against the sheds it counted, flips its degraded flag accordingly,
    and starts a fresh window. *)

val degraded : t -> shard:int -> bool
(** Whether [shard] is currently in degraded mode. *)

val any_degraded : t -> bool

val check :
  t ->
  shard:int ->
  client:string ->
  priority:priority ->
  ?enqueued_at:int ->
  ?deadline:int ->
  ?exemplar:string ->
  unit ->
  verdict
(** Admission decision for one message, in arrival order.  Checks run
    deadline first, then degraded shedding, then the client's token
    bucket, then the shard inflight cap.  [Admit] consumes one
    inflight slot (release it with {!complete}) and one token, and
    observes [now - enqueued_at] in the queue-delay histogram when
    [enqueued_at] is given ([exemplar] attaches the message's trace id
    to the bucket that delay lands in).  A [deadline] of [d] admits
    messages up to and including tick [d]. *)

val check_service : t -> verdict
(** Admission for a service-level probe ([Service_metrics]): [Low]
    priority against shard 0's degraded flag, exempt from buckets and
    caps (it has no client and occupies no shard slot). *)

val complete : t -> shard:int -> unit
(** Release one inflight slot on [shard]; call once per admitted
    message after its dispatch round joins. *)

val reject_text : reason:reason -> retry_after:int -> degraded:bool -> string
(** Render a rejection as the reply-text grammar
    ["<reason>: retry-after=<n>[ degraded]"] with reasons
    [deadline-expired], [rate-limited], [overloaded], [shed],
    [cancelled].  The service wraps this in [Server.Rejected], so
    clients see ["error shed: retry-after=3 degraded"]. *)

val verdict_text : verdict -> string option
(** [reject_text] for a [Reject]; [None] for [Admit]. *)

val retry_after_of_text : string -> int option
(** Parse the [retry-after=N] hint back out of a reply line; [None]
    when the line is not an admission rejection.  Total on arbitrary
    input (the chaos harness feeds it every reply it sees). *)

val is_rejection_text : string -> bool
(** Whether a reply line carries the admission-rejection grammar. *)

(** Registry names for the decision counters and the queue-delay
    histogram, recorded on the owning shard's telemetry handle. *)

val c_admitted : string
val c_rejected : string
val c_rate_limited : string
val c_over_capacity : string
val c_shed : string
val c_deadline_expired : string
val c_cancelled : string
val c_degrade_transitions : string
val g_degraded : string
val h_queue_delay : string
