(** SLO budgets and a multi-window burn-rate monitor.

    The budgets half parses [bench/service_slo.json] so the loadgen
    harness, the CLI and the in-service monitor agree on one set of
    objectives.  The monitor half is a deterministic multi-window
    burn-rate alert on the logical clock: a fast window catches acute
    breaches, a slow window confirms them, and the ok → warn → page
    state machine is hysteretic so it cannot flap at a threshold. *)

module Telemetry = Harmony_telemetry.Telemetry

type state = Healthy | Warn | Page

val state_to_string : state -> string
(** ["ok"], ["warn"], ["page"]. *)

val state_rank : state -> int
(** [Healthy] 0, [Warn] 1, [Page] 2 — the gauge encoding. *)

val worst : state -> state -> state
(** The more severe of two states (combined service state). *)

type burn_config = {
  fast_window : int;  (** feeds in the fast window (admission ticks) *)
  slow_window : int;  (** feeds in the slow window; also ring size *)
  budget : float;  (** tolerated violating fraction, e.g. 0.01 for p99 *)
  warn_burn : float;  (** fast burn that arms Warn *)
  page_burn : float;  (** fast burn that (with slow confirmation) pages *)
}

val default_burn : burn_config
(** 8-feed fast window, 64-feed slow window, 1% budget, warn at 2x
    burn, page at 8x. *)

(** {1 Budgets (bench/service_slo.json)} *)

type budgets = {
  handle_hist : string;  (** histogram name for handle latency *)
  handle_q : float;  (** objective quantile, e.g. 0.99 *)
  handle_max : float;  (** max ticks at that quantile *)
  delay_hist : string;  (** histogram name for admission queue delay *)
  delay_max : float;  (** max p99 queue-delay ticks (unscaled) *)
  excess_rejection_max : float;  (** tolerated rejection excess rate *)
  burn : burn_config;  (** optional "burn" object; defaults otherwise *)
}

val budgets_of_json : string -> (budgets, string) result
(** Parse the JSON text of [bench/service_slo.json].  The [burn]
    object is optional (each field defaults from {!default_burn});
    invalid burn configurations are an [Error], not a clamp. *)

(** What the in-service monitor watches: the two histograms and the
    per-observation violation thresholds derived from the budgets. *)
type spec = {
  handle_histogram : string;
  handle_threshold : float;
  delay_histogram : string;
  delay_threshold : float;
  burn : burn_config;
}

val spec_of_budgets : budgets -> spec

(** {1 Burn-rate monitor} *)

type t
(** One monitored objective.  Not thread-safe: feed from the service's
    sequential admission path only. *)

val create : burn_config -> t
(** @raise Invalid_argument on an invalid configuration (windows < 1,
    slow < fast, budget outside (0, 1], page < warn). *)

val feed : t -> total:int -> violations:int -> state * state
(** Record one tick's {e cumulative} observation counts (the monitor
    takes deltas internally, so callers can pass histogram snapshots
    directly) and step the state machine.  Returns
    [(before, after)]. *)

val burn_rates : t -> float * float
(** Current (fast, slow) burn rates; 0 over an empty window. *)

val state : t -> state
val pages : t -> int
(** Transitions into [Page] so far. *)

val transitions : t -> int
(** All state changes so far. *)

val feeds : t -> int
(** Feeds seen so far. *)

val violations_in : Telemetry.histogram_snapshot -> threshold:float -> int
(** Observations in buckets whose upper bound exceeds [threshold] —
    conservative when the threshold falls strictly inside a bucket,
    exact when it is a bucket bound. *)
