module Telemetry = Harmony_telemetry.Telemetry

type config = {
  max_inflight : int;
  rate : int;
  burst : int;
  refill_every : int;
  degrade_window : int;
  degrade_high : int;
  degrade_low : int;
}

let unlimited =
  { max_inflight = 0; rate = 0; burst = 0; refill_every = 0;
    degrade_window = 0; degrade_high = 0; degrade_low = 0 }

let default_config =
  { max_inflight = 64; rate = 0; burst = 0; refill_every = 1;
    degrade_window = 16; degrade_high = 64; degrade_low = 8 }

type priority = Critical | Normal | Low

type reason =
  | Deadline_expired
  | Rate_limited
  | Over_capacity
  | Degraded_shed
  | Cancelled

type verdict =
  | Admit
  | Reject of { reason : reason; retry_after : int; degraded : bool }

(* Per-client token bucket.  [last] is the tick the bucket was last
   brought current to; refills are whole periods so the arithmetic is
   exact integer math (no drift, no float). *)
type bucket = { mutable tokens : int; mutable last : int }

type shard_state = {
  tel : Telemetry.t;
  mutable inflight : int;
  mutable degraded : bool;
  mutable window_start : int;
  mutable window_shed : int;
}

type t = {
  config : config;
  mutable clock : int;
  shard_state : shard_state array;
  buckets : (string, bucket) Hashtbl.t;
}

(* Registry names. *)
let c_admitted = "service.admission.admitted"
let c_rejected = "service.admission.rejected"
let c_rate_limited = "service.admission.rate_limited"
let c_over_capacity = "service.admission.over_capacity"
let c_shed = "service.admission.shed"
let c_deadline_expired = "service.admission.deadline_expired"
let c_cancelled = "service.admission.cancelled"
let c_degrade_transitions = "service.admission.degrade_transitions"
let g_degraded = "service.admission.degraded"
let h_queue_delay = "service.admission.queue_delay"

(* Same decade-free bounds as [Service.handle_ms_bounds]: logical-tick
   delays live in the first few buckets. *)
let queue_delay_bounds =
  [| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let validate ~shards config =
  if shards < 1 then invalid_arg "Admission.create: shards < 1";
  if config.max_inflight < 0 then
    invalid_arg "Admission.create: max_inflight < 0";
  if config.rate < 0 then invalid_arg "Admission.create: rate < 0";
  if config.rate > 0 && config.burst < 1 then
    invalid_arg "Admission.create: rate > 0 needs burst >= 1";
  if config.rate > 0 && config.refill_every < 1 then
    invalid_arg "Admission.create: rate > 0 needs refill_every >= 1";
  if config.degrade_window < 0 then
    invalid_arg "Admission.create: degrade_window < 0";
  if config.degrade_window > 0 && config.degrade_high < 1 then
    invalid_arg "Admission.create: degrade_window > 0 needs degrade_high >= 1";
  if config.degrade_window > 0 && config.degrade_low > config.degrade_high
  then invalid_arg "Admission.create: degrade_low > degrade_high";
  if config.degrade_window > 0 && config.degrade_low < 0 then
    invalid_arg "Admission.create: degrade_low < 0"

let create ?telemetry ~shards config =
  validate ~shards config;
  let tel_for =
    match telemetry with Some f -> f | None -> fun _ -> Telemetry.off
  in
  let shard_state =
    Array.init shards (fun i ->
        let tel = tel_for i in
        Telemetry.declare_histogram tel ~bounds:queue_delay_bounds
          h_queue_delay;
        Telemetry.gauge tel g_degraded 0.;
        { tel; inflight = 0; degraded = false; window_start = 0;
          window_shed = 0 })
  in
  { config; clock = 0; shard_state; buckets = Hashtbl.create 64 }

let config t = t.config
let now t = t.clock

let tick t =
  t.clock <- t.clock + 1;
  if t.config.degrade_window > 0 then
    Array.iter
      (fun s ->
        if t.clock - s.window_start >= t.config.degrade_window then begin
          let was = s.degraded in
          if s.window_shed >= t.config.degrade_high then s.degraded <- true
          else if s.window_shed <= t.config.degrade_low then
            s.degraded <- false;
          if not (Bool.equal s.degraded was) then begin
            Telemetry.incr s.tel c_degrade_transitions;
            Telemetry.gauge s.tel g_degraded (if s.degraded then 1. else 0.)
          end;
          s.window_shed <- 0;
          s.window_start <- t.clock
        end)
      t.shard_state

let degraded t ~shard =
  shard >= 0
  && shard < Array.length t.shard_state
  && t.shard_state.(shard).degraded

let any_degraded t = Array.exists (fun s -> s.degraded) t.shard_state

(* Bring a client's bucket current, creating it full on first
   contact. *)
let bucket_for t client =
  match Hashtbl.find_opt t.buckets client with
  | Some b ->
      let periods = (t.clock - b.last) / t.config.refill_every in
      if periods > 0 then begin
        b.tokens <- min t.config.burst (b.tokens + (periods * t.config.rate));
        b.last <- b.last + (periods * t.config.refill_every)
      end;
      b
  | None ->
      let b = { tokens = t.config.burst; last = t.clock } in
      Hashtbl.add t.buckets client b;
      b

let reject s ~reason ~retry_after =
  Telemetry.incr s.tel c_rejected;
  (match reason with
  | Deadline_expired -> Telemetry.incr s.tel c_deadline_expired
  | Rate_limited -> Telemetry.incr s.tel c_rate_limited
  | Over_capacity -> Telemetry.incr s.tel c_over_capacity
  | Degraded_shed -> Telemetry.incr s.tel c_shed
  | Cancelled -> Telemetry.incr s.tel c_cancelled);
  Reject { reason; retry_after; degraded = s.degraded }

let check t ~shard ~client ~priority ?enqueued_at ?deadline ?exemplar () =
  let s = t.shard_state.(shard) in
  match deadline with
  | Some d when d < t.clock ->
      s.window_shed <- s.window_shed + 1;
      reject s ~reason:Deadline_expired ~retry_after:0
  | Some _ | None -> (
      let degraded_shed =
        s.degraded
        && (match priority with Low -> true | Critical | Normal -> false)
      in
      if degraded_shed then begin
        (* Degraded-mode sheds are the response, not the signal: they do
           not feed the window, or the shed clients' own retries would
           hold [window_shed] above the low watermark and latch the
           shard degraded forever.  Only genuine pressure — capacity,
           rate and deadline rejections — keeps the mode on.  Back off
           until the current window can roll over and the shard gets a
           chance to recover. *)
        let retry_after =
          max 1 (s.window_start + t.config.degrade_window - t.clock)
        in
        reject s ~reason:Degraded_shed ~retry_after
      end
      else
        let bucket_verdict =
          if t.config.rate = 0 then None
          else
            let b = bucket_for t client in
            if b.tokens > 0 then begin
              b.tokens <- b.tokens - 1;
              None
            end
            else Some (max 1 (b.last + t.config.refill_every - t.clock))
        in
        match bucket_verdict with
        | Some retry_after ->
            s.window_shed <- s.window_shed + 1;
            reject s ~reason:Rate_limited ~retry_after
        | None ->
            let over_cap =
              t.config.max_inflight > 0
              && s.inflight >= t.config.max_inflight
              && (match priority with
                 | Critical -> false
                 | Normal | Low -> true)
            in
            if over_cap then begin
              s.window_shed <- s.window_shed + 1;
              reject s ~reason:Over_capacity ~retry_after:1
            end
            else begin
              s.inflight <- s.inflight + 1;
              Telemetry.incr s.tel c_admitted;
              (match enqueued_at with
              | Some at ->
                  let delay = max 0 (t.clock - at) in
                  Telemetry.observe s.tel ~bounds:queue_delay_bounds
                    ?exemplar h_queue_delay (float_of_int delay)
              | None -> ());
              Admit
            end)

let check_service t =
  let s = t.shard_state.(0) in
  if any_degraded t then begin
    (* Not counted toward the window for the same reason degraded
       sheds are not: periodic probes must not keep the mode latched. *)
    let retry_after =
      if t.config.degrade_window > 0 then
        max 1 (s.window_start + t.config.degrade_window - t.clock)
      else 1
    in
    reject s ~reason:Degraded_shed ~retry_after
  end
  else begin
    Telemetry.incr s.tel c_admitted;
    Admit
  end

let complete t ~shard =
  let s = t.shard_state.(shard) in
  if s.inflight > 0 then s.inflight <- s.inflight - 1

(* ------------------------------------------------------------------ *)
(* Reply-text grammar                                                  *)

let reason_text = function
  | Deadline_expired -> "deadline-expired"
  | Rate_limited -> "rate-limited"
  | Over_capacity -> "overloaded"
  | Degraded_shed -> "shed"
  | Cancelled -> "cancelled"

let reject_text ~reason ~retry_after ~degraded =
  Printf.sprintf "%s: retry-after=%d%s" (reason_text reason) retry_after
    (if degraded then " degraded" else "")

let verdict_text = function
  | Admit -> None
  | Reject { reason; retry_after; degraded } ->
      Some (reject_text ~reason ~retry_after ~degraded)

let marker = "retry-after="

(* Find the [retry-after=N] token; total on arbitrary input.  A
   rejection rendered by [reject_text] always round-trips; anything
   else without the marker word-boundary parses to [None]. *)
let retry_after_of_text text =
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\n')
  in
  List.find_map
    (fun w ->
      if String.starts_with ~prefix:marker w then
        let n =
          String.sub w (String.length marker)
            (String.length w - String.length marker)
        in
        match int_of_string_opt n with
        | Some v when v >= 0 -> Some v
        | Some _ | None -> None
      else None)
    words

let is_rejection_text text =
  match retry_after_of_text text with Some _ -> true | None -> false
