(** The sharded multi-session tuning service.

    One {!Harmony.Server} holds one tuning conversation.  This module
    turns it into a {e service}: a registry of thousands of concurrent
    sessions keyed by client id, sharded by a deterministic hash of
    the id, with every message routed to its client's session.  Each
    shard owns its sessions, its own write-ahead journal (with
    snapshot compaction), and its own telemetry handle, so shards
    share nothing and a batch of messages can be handled with the
    shards fanned across a {!Harmony_parallel.Pool} — replies come
    back in input order and are byte-identical to the sequential path
    at any domain count.

    {v
      client -> service              service -> client
      ------------------             -----------------
      c7 register max                c7 assign B=3 C=4
      { harmonyBundle B ... }
      c7 report 42.5                 c7 assign B=4 C=2
      c9 register min                c9 assign N=1
      c7 query                       c7 assign B=4 C=2
      ...                            c7 done B=4 C=2 perf=57
      c7 done                        c7 bye
      service-metrics                stats
                                     <merged Prometheus text>
    v}

    {b Protocol.}  Every client message is a {!Harmony.Server} message
    prefixed by the client id; [<id> done] deregisters the client; the
    unprefixed [service-metrics] dumps the merged per-shard registries
    in Prometheus text form.  Sessions are created by the client's
    first [register]; a duplicate [register] from an already-active
    client id is a total error reply, never a silent session reset
    (the per-client sessions run with [reject_reregister]).

    {b Determinism.}  A client id always hashes to the same shard;
    each shard handles its messages in arrival order through the
    deterministic single-session stack; telemetry is per-shard with a
    logical clock.  Hence the full reply stream, every metric, and
    every journal byte are independent of the domain count.

    {b Durability.}  {!attach_journals} gives every shard a
    crash-safe write-ahead journal ([<path>.shard<i>]); {!recover}
    re-opens all of them, replays each shard's messages through the
    deterministic stack with byte-for-byte reply cross-checks, and
    degrades shard-by-shard: one corrupt shard costs that shard's
    tail, never the other shards' sessions. *)

open Harmony

(** {1 Messages and replies} *)

type message =
  | Client of { client : string; payload : Server.message }
      (** a single-session protocol message addressed by client id *)
  | Deregister of { client : string }
      (** [<id> done]: drop the client's session (its slot is freed;
          a later [register] from the same id starts fresh) *)
  | Service_metrics
      (** [service-metrics]: merged per-shard Prometheus registries
          (read-only, never journaled) *)

type reply =
  | Client_reply of { client : string; reply : Server.reply }
  | Deregistered of { client : string }  (** renders as ["<id> bye"] *)
  | Service_stats of string  (** merged Prometheus text *)
  | Service_error of string  (** service-level protocol error *)

type t

(** {1 Construction and routing} *)

val create :
  ?options:Simplex.options ->
  ?max_report_failures:int ->
  ?telemetry:(int -> Harmony_telemetry.Telemetry.t) ->
  shards:int ->
  unit ->
  t
(** A service with [shards] empty shards.  [options] and
    [max_report_failures] configure every per-client session exactly
    like {!Server.create}.  [telemetry] supplies one handle per shard
    index (default: all {!Harmony_telemetry.Telemetry.off}); handles
    must be distinct per shard or parallel batches would contend and
    interleave nondeterministically.  Each shard declares a
    fine-grained [server.handle_ms] histogram on its handle so the
    p99 handle-latency SLO has sub-decade resolution.
    @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val shard_for : shards:int -> string -> int
(** The pure routing function: FNV-1a over the client id, mod
    [shards].  Independent of any runtime state, so clients can be
    routed without the service in hand.
    @raise Invalid_argument when [shards < 1]. *)

val shard_of_client : t -> string -> int
val sessions : t -> int
(** Live sessions across all shards. *)

(** {1 Handling} *)

val handle : t -> message -> reply
(** Process one message through its shard.  Total: every protocol
    error (unknown client, duplicate register, bad spec) is an error
    reply, never an exception.  While a journal is attached, the
    sink's I/O exceptions propagate exactly as in {!Server.handle} —
    a service that cannot persist a message must not acknowledge it. *)

val handle_batch :
  ?pool:Harmony_parallel.Pool.t -> t -> message list -> reply list
(** Handle a batch: messages are partitioned per shard {e preserving
    arrival order within each shard}, the shard batches are drained
    via [Pool.map_array] (or sequentially without a [pool]), and the
    replies are reassembled in input order.  For client-addressed
    messages the result is byte-identical to calling {!handle} on
    each message in order, at any domain count.  A [Service_metrics]
    inside a batch is answered {e after} the batch drains (its reply
    reflects the whole batch — the one deliberate divergence from the
    sequential reference, documented rather than paid for with a
    barrier per metrics probe). *)

(** {1 Telemetry} *)

val shard_telemetry : t -> int -> Harmony_telemetry.Telemetry.t
(** The handle shard [i] was created with ({!Harmony_telemetry.Telemetry.off}
    when out of range — total). *)

val merged_telemetry : t -> Harmony_telemetry.Telemetry.t
(** {!Harmony_telemetry.Telemetry.merged} over all shard handles. *)

val metrics : t -> string
(** The merged registry in Prometheus text form — what
    [Service_metrics] answers. *)

(** {1 Text codec} *)

val parse_message : string -> (message, string) result
(** Total parser for the service line protocol: ["<id> <server
    message>"] (register keeps its following specification lines),
    ["<id> done"], ["service-metrics"].  Client ids are one
    whitespace-free token that is not a protocol keyword. *)

val message_to_string : message -> string
(** Inverse of {!parse_message} (reports keep their exact float bits,
    as in {!Server.message_to_string} — journal replay depends on
    it). *)

val reply_to_string : reply -> string

(** {1 Durability & whole-service recovery} *)

(** One shard-journal record: a message as received or the reply the
    shard produced, both carrying the shard's sequence number (the
    same WAL discipline as {!Server.Event}). *)
module Event : sig
  type t = Recv of message | Reply of string

  val encode : seq:int -> t -> string
  val decode : string -> (int * t) option
  (** Total inverse of {!encode}; [None] on anything malformed. *)
end

val shard_journal : journal:string -> shard:int -> string
(** [<journal>.shard<i>] — where shard [i] persists. *)

val attach_journals :
  ?compact_every:int ->
  ?wrap:(shard:int -> Harmony_persist.Persist.sink -> Harmony_persist.Persist.sink) ->
  t ->
  journal:string ->
  unit ->
  unit
(** Start write-ahead journaling on every shard (fresh files; use
    {!recover} to resume).  State-changing messages ([register],
    [report], [report failed], [done]) are fsync'd before they are
    applied; each shard compacts independently once its journal
    exceeds [compact_every] records (default 64), writing its live
    sessions' replayable essence to [<shard path>.snapshot].  [wrap]
    interposes per shard (the crash harness faults a single shard's
    sink).
    @raise Invalid_argument when [compact_every < 1]. *)

val detach_journals : t -> unit
(** Close every shard journal, leaving the files recoverable. *)

type shard_recovery = { shard : int; replayed : int; dropped : int }

type recovery = {
  service : t;  (** rebuilt service, already journaling again *)
  replayed : int;  (** client messages re-applied, all shards *)
  dropped : int;  (** records discarded (stale, malformed, diverged) *)
  per_shard : shard_recovery list;  (** ascending shard order *)
}

val recover :
  ?options:Simplex.options ->
  ?max_report_failures:int ->
  ?telemetry:(int -> Harmony_telemetry.Telemetry.t) ->
  ?compact_every:int ->
  shards:int ->
  journal:string ->
  unit ->
  recovery
(** Rebuild a service from its per-shard journals after a crash.
    Every shard independently loads its snapshot + journal, replays
    its messages through the deterministic stack cross-checking each
    recorded reply byte-for-byte, keeps the longest self-consistent
    prefix, and compacts on the way out.  Never raises on corrupt
    input: a torn, stale or garbage shard degrades to that shard's
    valid prefix (possibly empty) while the other shards recover in
    full.  [options], [max_report_failures] and [shards] must match
    the crashed service's for replay to be faithful.  Per-shard
    totals surface on each shard's telemetry as
    [service.recovery.replayed] / [service.recovery.dropped] counters
    (so the merged registry sums them).
    @raise Invalid_argument when [shards < 1] or [compact_every < 1]
    (and [Sys_error] / [Unix.Unix_error] if the journal files cannot
    be re-opened for writing). *)
