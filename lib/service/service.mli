(** The sharded multi-session tuning service.

    One {!Harmony.Server} holds one tuning conversation.  This module
    turns it into a {e service}: a registry of thousands of concurrent
    sessions keyed by client id, sharded by a deterministic hash of
    the id, with every message routed to its client's session.  Each
    shard owns its sessions, its own write-ahead journal (with
    snapshot compaction), and its own telemetry handle, so shards
    share nothing and a batch of messages can be handled with the
    shards fanned across a {!Harmony_parallel.Pool} — replies come
    back in input order and are byte-identical to the sequential path
    at any domain count.

    {v
      client -> service              service -> client
      ------------------             -----------------
      c7 register max                c7 assign B=3 C=4
      { harmonyBundle B ... }
      c7 report 42.5                 c7 assign B=4 C=2
      c9 register min                c9 assign N=1
      c7 query                       c7 assign B=4 C=2
      ...                            c7 done B=4 C=2 perf=57
      c7 done                        c7 bye
      service-metrics                stats
                                     <merged Prometheus text>
    v}

    {b Protocol.}  Every client message is a {!Harmony.Server} message
    prefixed by the client id; [<id> done] deregisters the client; the
    unprefixed [service-metrics] dumps the merged per-shard registries
    in Prometheus text form.  Sessions are created by the client's
    first [register]; a duplicate [register] from an already-active
    client id is a total error reply, never a silent session reset
    (the per-client sessions run with [reject_reregister]).

    {b Determinism.}  A client id always hashes to the same shard;
    each shard handles its messages in arrival order through the
    deterministic single-session stack; telemetry is per-shard with a
    logical clock.  Hence the full reply stream, every metric, and
    every journal byte are independent of the domain count.

    {b Durability.}  {!attach_journals} gives every shard a
    crash-safe write-ahead journal ([<path>.shard<i>]); {!recover}
    re-opens all of them, replays each shard's messages through the
    deterministic stack with byte-for-byte reply cross-checks, and
    degrades shard-by-shard: one corrupt shard costs that shard's
    tail, never the other shards' sessions.

    {b Overload.}  With an {!Admission} config the service polices its
    edge: per-shard inflight budgets, per-client token buckets,
    logical deadlines, and hysteretic degraded-mode shedding by
    priority class.  Rejections are total [Rejected] replies carrying
    a [retry-after=N] hint (see {!Admission.reject_text}); they are
    journaled as [shed] records so recovery replays them byte-for-byte
    — and because a rejected message never touches its session, the
    accepted-reply subsequence stays byte-identical to a dedicated
    single-session server.  DESIGN.md §15 has the full argument. *)

open Harmony

(** {1 Messages and replies} *)

type message =
  | Client of { client : string; payload : Server.message }
      (** a single-session protocol message addressed by client id *)
  | Deregister of { client : string }
      (** [<id> done]: drop the client's session (its slot is freed;
          a later [register] from the same id starts fresh) *)
  | Service_metrics
      (** [service-metrics]: merged per-shard Prometheus registries
          (read-only, never journaled) *)
  | Dump_flight
      (** [dump-flight]: every shard's flight-recorder ring as JSONL
          (read-only, never journaled; empty without attached
          recorders) *)

type reply =
  | Client_reply of { client : string; reply : Server.reply }
  | Deregistered of { client : string }  (** renders as ["<id> bye"] *)
  | Service_stats of string  (** merged Prometheus text *)
  | Flight_dump of string  (** flight-recorder JSONL, all shards *)
  | Service_error of string  (** service-level protocol error *)

type t

(** An envelope carries one batch entry's admission metadata, both on
    the admission logical clock ({!admission_now}): when the work was
    enqueued (queue-delay histogram) and the last tick at which it is
    still worth doing. *)
type envelope = {
  message : message;
  enqueued_at : int option;
  deadline : int option;
}

val envelope : ?enqueued_at:int -> ?deadline:int -> message -> envelope

(** {1 Construction and routing} *)

val create :
  ?options:Simplex.options ->
  ?max_report_failures:int ->
  ?telemetry:(int -> Harmony_telemetry.Telemetry.t) ->
  ?admission:Admission.config ->
  ?slo:Slo.spec ->
  shards:int ->
  unit ->
  t
(** A service with [shards] empty shards.  [options] and
    [max_report_failures] configure every per-client session exactly
    like {!Server.create}.  [telemetry] supplies one handle per shard
    index (default: all {!Harmony_telemetry.Telemetry.off}); handles
    must be distinct per shard or parallel batches would contend and
    interleave nondeterministically.  Each shard declares a
    fine-grained [server.handle_ms] histogram on its handle so the
    p99 handle-latency SLO has sub-decade resolution.  [admission]
    turns on edge policing (see {!Admission}); its state shares the
    shard telemetry handles, so decision counters and the queue-delay
    histogram appear in the merged registry.

    [slo] attaches an in-service burn-rate monitor (see {!Slo}): after
    every handled envelope/batch the handle-latency and queue-delay
    histograms are folded across shards and fed to one {!Slo.t} per
    objective; the combined state is exported as the
    [service.slo.state] gauge (0 ok / 1 warn / 2 page) on shard 0,
    transitions as [service.slo.transition] instants, and entries into
    page as the [service.slo.pages] counter.  Purely observational:
    the monitor never sheds or steers.
    @raise Invalid_argument when [shards < 1] (or the config is
    invalid, as in {!Admission.create} / {!Slo.create}). *)

val admission : t -> Admission.t option
(** The live admission state, when the service was created with one
    (tests inspect degraded flags and the logical clock through
    this). *)

val admission_now : t -> int
(** The admission logical clock: ticks once per {!handle} /
    {!handle_batch} call.  [0] when admission is off — with no
    admission state there are no deadlines to compare against. *)

val shards : t -> int

val shard_for : shards:int -> string -> int
(** The pure routing function: FNV-1a over the client id, mod
    [shards].  Independent of any runtime state, so clients can be
    routed without the service in hand.
    @raise Invalid_argument when [shards < 1]. *)

val shard_of_client : t -> string -> int
val sessions : t -> int
(** Live sessions across all shards. *)

(** {1 Handling} *)

val handle : t -> message -> reply
(** Process one message through its shard.  Total: every protocol
    error (unknown client, duplicate register, bad spec) is an error
    reply, never an exception.  While a journal is attached, the
    sink's I/O exceptions propagate exactly as in {!Server.handle} —
    a service that cannot persist a message must not acknowledge it.
    Equivalent to {!handle_env} on a bare envelope. *)

val handle_env : t -> envelope -> reply
(** {!handle} with admission metadata: the admission layer (when
    configured) decides before the shard sees the message; a rejection
    is a total [Rejected] reply with a [retry-after=N] hint, journaled
    as a [shed] record when the message class is journaled. *)

val handle_batch :
  ?pool:Harmony_parallel.Pool.t ->
  ?cancel:Harmony_parallel.Pool.Cancel.t ->
  t ->
  message list ->
  reply list
(** Handle a batch: messages are partitioned per shard {e preserving
    arrival order within each shard}, the shard batches are drained
    via the pool (or sequentially without a [pool]), and the replies
    are reassembled in input order.  For client-addressed messages the
    result is byte-identical to calling {!handle} on each message in
    order, at any domain count.  A [Service_metrics] inside a batch is
    answered {e at its arrival index against the pre-batch snapshot}:
    the registry as of batch start, computed before any of the batch's
    messages apply, so the probe's position within the batch cannot
    change its reply and the batched stream matches a sequential run
    that answers each probe before its round.  [cancel] is checked at
    task boundaries: once fired, not-yet-run messages answer with
    total, retryable [cancelled: retry-after=0] rejections (never
    journaled — an unacknowledged message is a lost message, which the
    WAL contract already covers). *)

val handle_batch_env :
  ?pool:Harmony_parallel.Pool.t ->
  ?cancel:Harmony_parallel.Pool.Cancel.t ->
  t ->
  envelope list ->
  reply list
(** {!handle_batch} with per-entry admission metadata.  Admission runs
    sequentially in arrival order {e before} anything dispatches, so
    decisions (and journaled sheds) are a deterministic function of
    the batch alone: expired deadlines are shed first, then degraded
    shards shed [Low]-priority work, then per-client token buckets and
    the per-shard inflight budget apply (Critical lifecycle messages
    are exempt from budget and degraded shedding — a finished run must
    always be able to deregister).  One clock tick per call. *)

(** {1 Telemetry} *)

val shard_telemetry : t -> int -> Harmony_telemetry.Telemetry.t
(** The handle shard [i] was created with ({!Harmony_telemetry.Telemetry.off}
    when out of range — total). *)

val merged_telemetry : t -> Harmony_telemetry.Telemetry.t
(** {!Harmony_telemetry.Telemetry.merged} over all shard handles. *)

val metrics : t -> string
(** The merged registry in Prometheus text form — what
    [Service_metrics] answers. *)

val flight_dump : t -> string
(** Every shard's flight-recorder ring as JSONL (each line carries a
    [shard] field; oldest-first per shard) — what [Dump_flight]
    answers, and what the loadgen harness writes to disk on a crash or
    an SLO page.  Empty when no shard handle has an attached
    recorder. *)

val slo_state : t -> Slo.state option
(** The burn-rate monitor's combined state (worst of the handle and
    queue-delay objectives); [None] when the service was created
    without [?slo]. *)

val slo_pages : t -> int
(** Total transitions into [Page] across both objectives (0 without a
    monitor). *)

(** {1 Text codec} *)

val parse_message : string -> (message, string) result
(** Total parser for the service line protocol: ["<id> <server
    message>"] (register keeps its following specification lines),
    ["<id> done"], ["service-metrics"], ["dump-flight"].  Client ids
    are one whitespace-free token that is not a protocol keyword. *)

val message_to_string : message -> string
(** Inverse of {!parse_message} (reports keep their exact float bits,
    as in {!Server.message_to_string} — journal replay depends on
    it). *)

val reply_to_string : reply -> string

(** {1 Durability & whole-service recovery} *)

(** One shard-journal record: a message as received, the reply the
    shard produced, or a message the admission layer shed — all
    carrying the shard's sequence number (the same WAL discipline as
    {!Server.Event}).  A [Shed] message was never applied; on replay
    its paired reply is taken literally instead of regenerated, which
    is what makes journaled rejections replay byte-for-byte. *)
module Event : sig
  type t = Recv of message | Reply of string | Shed of message

  val encode : seq:int -> t -> string
  val decode : string -> (int * t) option
  (** Total inverse of {!encode}; [None] on anything malformed. *)
end

val shard_journal : journal:string -> shard:int -> string
(** [<journal>.shard<i>] — where shard [i] persists. *)

val attach_journals :
  ?compact_every:int ->
  ?wrap:(shard:int -> Harmony_persist.Persist.sink -> Harmony_persist.Persist.sink) ->
  t ->
  journal:string ->
  unit ->
  unit
(** Start write-ahead journaling on every shard (fresh files; use
    {!recover} to resume).  State-changing messages ([register],
    [report], [report failed], [done]) are fsync'd before they are
    applied; each shard compacts independently once its journal
    exceeds [compact_every] records (default 64), writing its live
    sessions' replayable essence to [<shard path>.snapshot].  [wrap]
    interposes per shard (the crash harness faults a single shard's
    sink).
    @raise Invalid_argument when [compact_every < 1]. *)

val detach_journals : t -> unit
(** Close every shard journal, leaving the files recoverable. *)

type shard_recovery = { shard : int; replayed : int; dropped : int }

type recovery = {
  service : t;  (** rebuilt service, already journaling again *)
  replayed : int;  (** client messages re-applied, all shards *)
  dropped : int;  (** records discarded (stale, malformed, diverged) *)
  per_shard : shard_recovery list;  (** ascending shard order *)
}

val recover :
  ?options:Simplex.options ->
  ?max_report_failures:int ->
  ?telemetry:(int -> Harmony_telemetry.Telemetry.t) ->
  ?admission:Admission.config ->
  ?slo:Slo.spec ->
  ?wrap:(shard:int -> Harmony_persist.Persist.sink -> Harmony_persist.Persist.sink) ->
  ?compact_every:int ->
  shards:int ->
  journal:string ->
  unit ->
  recovery
(** Rebuild a service from its per-shard journals after a crash.
    Every shard independently loads its snapshot + journal, replays
    its messages through the deterministic stack cross-checking each
    recorded reply byte-for-byte, keeps the longest self-consistent
    prefix, and compacts on the way out.  Never raises on corrupt
    input: a torn, stale or garbage shard degrades to that shard's
    valid prefix (possibly empty) while the other shards recover in
    full.  [options], [max_report_failures] and [shards] must match
    the crashed service's for replay to be faithful.  Per-shard
    totals surface on each shard's telemetry as
    [service.recovery.replayed] / [service.recovery.dropped] counters
    (so the merged registry sums them).  [shed] records replay
    literally (see {!Event}); [admission] recreates edge policing on
    the recovered service with fresh state — admission decisions are
    recorded, not replayed, so the clock restarting at 0 cannot
    diverge the replay.  [wrap] interposes per shard on the re-opened
    journal sinks (the chaos harness arms the next fault here).
    @raise Invalid_argument when [shards < 1] or [compact_every < 1]
    (and [Sys_error] / [Unix.Unix_error] if the journal files cannot
    be re-opened for writing). *)
