(* SLO budgets and a multi-window burn-rate monitor.

   The budgets half parses bench/service_slo.json — the single source
   of truth for the service's latency objectives — so the loadgen
   harness, the CLI and the in-service monitor all read the same
   numbers.

   The monitor half is the classic multi-window burn-rate alert,
   transplanted onto the logical clock: each feed is one admission
   tick's cumulative (total, violating) observation counts; the burn
   rate over a window is the violating fraction divided by the error
   budget (1 - quantile, e.g. 1% for a p99 objective).  A fast window
   catches acute breaches, a slow window confirms they are not a
   blip, and the ok→warn→page state machine is hysteretic so the
   state cannot flap at a threshold boundary.  Everything is
   deterministic: same feed sequence, same states. *)

module Telemetry = Harmony_telemetry.Telemetry
module Tjson = Harmony_telemetry.Tjson

type state = Healthy | Warn | Page

let state_to_string = function
  | Healthy -> "ok"
  | Warn -> "warn"
  | Page -> "page"

let state_rank = function Healthy -> 0 | Warn -> 1 | Page -> 2
let worst a b = if state_rank a >= state_rank b then a else b

type burn_config = {
  fast_window : int;  (* feeds (admission ticks) *)
  slow_window : int;
  budget : float;  (* tolerated violating fraction, e.g. 0.01 for p99 *)
  warn_burn : float;  (* burn rate that arms Warn *)
  page_burn : float;  (* burn rate that (with slow confirmation) pages *)
}

let default_burn =
  {
    fast_window = 8;
    slow_window = 64;
    budget = 0.01;
    warn_burn = 2.0;
    page_burn = 8.0;
  }

let validate_burn c =
  if c.fast_window < 1 then Error "fast_window < 1"
  else if c.slow_window < c.fast_window then Error "slow_window < fast_window"
  else if not (c.budget > 0.0 && c.budget <= 1.0) then
    Error "budget outside (0, 1]"
  else if not (c.warn_burn > 0.0) then Error "warn_burn <= 0"
  else if not (c.page_burn >= c.warn_burn) then Error "page_burn < warn_burn"
  else Ok c

(* ------------------------------------------------------------------ *)
(* Budgets (bench/service_slo.json)                                    *)

type budgets = {
  handle_hist : string;
  handle_q : float;
  handle_max : float;
  delay_hist : string;
  delay_max : float;
  excess_rejection_max : float;
  burn : burn_config;
}

let budgets_of_json text =
  match Tjson.parse text with
  | Error e -> Error e
  | Ok json -> (
      let field name conv = Option.bind (Tjson.member name json) conv in
      let burn =
        match Tjson.member "burn" json with
        | None -> Ok default_burn
        | Some b ->
            let sub name conv = Option.bind (Tjson.member name b) conv in
            let int_of name fallback =
              match sub name Tjson.to_float with
              | Some v -> int_of_float v
              | None -> fallback
            in
            let float_of name fallback =
              Option.value ~default:fallback (sub name Tjson.to_float)
            in
            validate_burn
              {
                fast_window = int_of "fast_window" default_burn.fast_window;
                slow_window = int_of "slow_window" default_burn.slow_window;
                budget = float_of "budget" default_burn.budget;
                warn_burn = float_of "warn_burn" default_burn.warn_burn;
                page_burn = float_of "page_burn" default_burn.page_burn;
              }
      in
      let req name conv =
        match field name conv with
        | Some v -> Ok v
        | None -> Error ("missing field " ^ name)
      in
      let ( let* ) = Result.bind in
      let* burn = Result.map_error (fun e -> "burn: " ^ e) burn in
      let* h = req "histogram" Tjson.to_str in
      let* q = req "quantile" Tjson.to_float in
      let* m = req "max_ticks" Tjson.to_float in
      let* dh = req "queue_delay_histogram" Tjson.to_str in
      let* dm = req "max_p99_queue_delay_ticks" Tjson.to_float in
      let* rm = req "max_excess_rejection_rate" Tjson.to_float in
      Ok
        {
          handle_hist = h;
          handle_q = q;
          handle_max = m;
          delay_hist = dh;
          delay_max = dm;
          excess_rejection_max = rm;
          burn;
        })

(* What the in-service monitor watches: two histograms, each with the
   tick threshold above which an observation violates its objective.
   The delay threshold is the {e unscaled} queue-delay budget — the
   monitor reports pressure relative to the steady-state objective;
   the loadgen's pass/fail scaling by the offered overload factor is
   the harness's business, not the monitor's. *)
type spec = {
  handle_histogram : string;
  handle_threshold : float;
  delay_histogram : string;
  delay_threshold : float;
  burn : burn_config;
}

let spec_of_budgets b =
  {
    handle_histogram = b.handle_hist;
    handle_threshold = b.handle_max;
    delay_histogram = b.delay_hist;
    delay_threshold = b.delay_max;
    burn = b.burn;
  }

(* ------------------------------------------------------------------ *)
(* Burn-rate monitor                                                   *)

type t = {
  cfg : burn_config;
  d_total : int array;  (* per-feed deltas, ring of slow_window *)
  d_viol : int array;
  mutable next : int;  (* feeds ever seen; ring slot = next mod slow *)
  mutable last_total : int;
  mutable last_viol : int;
  mutable state_ : state;
  mutable pages_ : int;
  mutable transitions_ : int;
}

let create cfg =
  match validate_burn cfg with
  | Error e -> invalid_arg ("Slo.create: " ^ e)
  | Ok cfg ->
      {
        cfg;
        d_total = Array.make cfg.slow_window 0;
        d_viol = Array.make cfg.slow_window 0;
        next = 0;
        last_total = 0;
        last_viol = 0;
        state_ = Healthy;
        pages_ = 0;
        transitions_ = 0;
      }

let window_burn t window =
  let n = min t.next window in
  let total = ref 0 and viol = ref 0 in
  for j = 1 to n do
    let i = (t.next - j) mod t.cfg.slow_window in
    total := !total + t.d_total.(i);
    viol := !viol + t.d_viol.(i)
  done;
  if !total = 0 then 0.0
  else float_of_int !viol /. float_of_int !total /. t.cfg.budget

let burn_rates t =
  (window_burn t t.cfg.fast_window, window_burn t t.cfg.slow_window)

(* Hysteresis: escalation needs the fast window above a threshold
   (pages also need slow-window confirmation, so one hot tick cannot
   page); de-escalation needs the fast window to drop below {e half}
   the threshold that armed the state, so the state cannot flap when
   the burn hovers at the boundary. *)
let step_state cfg ~fast ~slow = function
  | Healthy ->
      if fast >= cfg.page_burn && slow >= cfg.warn_burn then Page
      else if fast >= cfg.warn_burn then Warn
      else Healthy
  | Warn ->
      if fast >= cfg.page_burn && slow >= cfg.warn_burn then Page
      else if fast < cfg.warn_burn /. 2.0 && slow < cfg.warn_burn then Healthy
      else Warn
  | Page -> if fast < cfg.page_burn /. 2.0 then Warn else Page

let feed t ~total ~violations =
  let dt = max 0 (total - t.last_total) in
  let dv = max 0 (violations - t.last_viol) in
  t.last_total <- total;
  t.last_viol <- violations;
  let i = t.next mod t.cfg.slow_window in
  t.d_total.(i) <- dt;
  t.d_viol.(i) <- dv;
  t.next <- t.next + 1;
  let fast, slow = burn_rates t in
  let before = t.state_ in
  let after = step_state t.cfg ~fast ~slow before in
  t.state_ <- after;
  if state_rank after <> state_rank before then begin
    t.transitions_ <- t.transitions_ + 1;
    match after with
    | Page -> t.pages_ <- t.pages_ + 1
    | Healthy | Warn -> ()
  end;
  (before, after)

let state t = t.state_
let pages t = t.pages_
let transitions t = t.transitions_
let feeds t = t.next

(* Violating observations in a histogram snapshot: the occupancy of
   every bucket whose upper bound exceeds the threshold.  Conservative
   when the threshold falls inside a bucket (the whole bucket counts),
   exact when it is a bucket bound — which the service's pinned bounds
   guarantee for the handle budget. *)
let violations_in (snap : Telemetry.histogram_snapshot) ~threshold =
  List.fold_left
    (fun acc (bound, occupancy) ->
      if bound > threshold then acc + occupancy else acc)
    0 snap.Telemetry.buckets
