open Harmony_param
open Harmony_objective
module Frame = Harmony_persist.Frame
module Persist = Harmony_persist.Persist
module Journal = Harmony_persist.Journal
module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
  | Query
  | Report of float
  | Report_failed
  | Metrics

type reply =
  | Assign of (string * int) list
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string
  | Stats of string

type session = {
  rsl : Rsl.t;
  names : string list;
  controller : Controller.t;
  direction : Objective.direction;
  mutable outstanding : (string * int) list option;
      (* assignment awaiting its performance report *)
  mutable outstanding_failures : int;
      (* consecutive [report failed] for the outstanding assignment *)
  mutable failed_reports : int;
  mutable penalized : int;
}

(* Durability plumbing.  [seq] numbers the journaled client messages;
   each message's reply record carries the same seq, so recovery can
   pair them back up and a stale journal tail (a crash between
   snapshot rename and journal reset) is detected by seq alone.
   [session_log] is the replayable essence of the current session —
   everything since the last accepted [Register] — which is what a
   snapshot persists.  [Shed] records a message the admission layer
   rejected before it could touch state: replay must not re-apply it
   (admission state is not replayable), so its paired [Reply] is taken
   literally rather than regenerated. *)
type event = Recv of message | Reply of string | Shed of message

type persist = {
  journal : Journal.t;
  snapshot : string;
  compact_every : int;
  mutable seq : int;
  mutable session_log : (int * event) list;  (* newest first *)
}

type t = {
  options : Simplex.options;
  max_report_failures : int;
  reject_reregister : bool;
  telemetry : Telemetry.t;
  mutable session : session option;
  mutable persist : persist option;
  mutable handled : int;  (* messages ever handled; seeds fallback trace roots *)
}

let create ?(options = Simplex.default_options) ?(max_report_failures = 3)
    ?(reject_reregister = false) ?(telemetry = Telemetry.off) () =
  if max_report_failures < 1 then
    invalid_arg "Server.create: max_report_failures < 1";
  { options; max_report_failures; reject_reregister; telemetry;
    session = None; persist = None; handled = 0 }

let spec t = Option.map (fun s -> s.rsl) t.session

let fault_counters t =
  match t.session with
  | None -> (0, 0)
  | Some s -> (s.failed_reports, s.penalized)

let better direction a b =
  match direction with
  | Objective.Higher_is_better -> a > b
  | Objective.Lower_is_better -> a < b

let assignment_of_config session config =
  (* Proposals come from the box space; project into the restricted
     region so the client only ever runs meaningful configurations.
     The controller is told the performance of its own proposal — the
     projection distance is at most one conditional-range clamp, the
     same approximation Rsl.repair-based tuning makes everywhere. *)
  let feasible = Rsl.repair session.rsl config in
  List.mapi (fun i name -> (name, int_of_float feasible.(i))) session.names

(* Advance the controller to its next request and turn it into a
   reply, remembering the outstanding assignment. *)
let next_reply session =
  match Controller.pending session.controller with
  | `Measure config ->
      let assignment = assignment_of_config session config in
      session.outstanding <- Some assignment;
      session.outstanding_failures <- 0;
      Assign assignment
  | `Done outcome ->
      session.outstanding <- None;
      session.outstanding_failures <- 0;
      (* Graceful degradation: if the budget ran out while later
         vertices kept failing (their penalized measurements drag the
         simplex's notion of "best" down), fall back to the best
         configuration a client actually measured. *)
      let best_config, performance =
        match Controller.best_so_far session.controller with
        | Some (config, perf)
          when better session.direction perf outcome.Simplex.best_performance
          ->
            (config, perf)
        | Some _ | None ->
            (outcome.Simplex.best_config, outcome.Simplex.best_performance)
      in
      Done { best = assignment_of_config session best_config; performance }

let message_kind = function
  | Register _ -> "register"
  | Query -> "query"
  | Report _ -> "report"
  | Report_failed -> "report-failed"
  | Metrics -> "metrics"

let handle_message t message =
  match (message, t.session) with
  (* Read-only introspection: the server's own metrics registry in
     Prometheus text form.  Valid in any state, never journaled. *)
  | Metrics, _ -> Stats (Export.prometheus t.telemetry)
  (* Duplicate registration guard (opt-in): a second [register] while
     a tuning session is still mid-flight used to rely on caller
     discipline — under one shared server it silently threw away the
     live session.  With [reject_reregister] the duplicate gets a
     total error reply and the active session is untouched; once the
     session has finished (or was aborted) re-registering is again the
     normal way to start the next one. *)
  | Register _, Some session
    when t.reject_reregister
         && (match Controller.pending session.controller with
            | `Measure _ -> true
            | `Done _ -> false) ->
      Rejected
        "already registered: an active session is mid-tuning (finish it \
         before re-registering)"
  | Register { spec; direction }, _ -> (
      match Rsl.parse spec with
      | exception Rsl.Parse_error msg -> Rejected ("bad specification: " ^ msg)
      | rsl -> (
          match Rsl.to_space rsl with
          | exception Invalid_argument msg -> Rejected msg
          | space ->
              let direction =
                match direction with
                | Minimize -> Objective.Lower_is_better
                | Maximize -> Objective.Higher_is_better
              in
              (* A structurally valid spec can still be untunable —
                 e.g. a single feasible point gives the search kernel a
                 degenerate initial simplex.  [handle] is total: such
                 specs are rejected, never raised (the fuzz suite
                 drives this with arbitrary generated specs). *)
              match
                Controller.create ~telemetry:t.telemetry ~options:t.options
                  ~space ~direction ()
              with
              | exception Invalid_argument msg ->
                  Rejected ("untunable specification: " ^ msg)
              | controller ->
              let session =
                {
                  rsl;
                  names = Rsl.names rsl;
                  controller;
                  direction;
                  outstanding = None;
                  outstanding_failures = 0;
                  failed_reports = 0;
                  penalized = 0;
                }
              in
              t.session <- Some session;
              next_reply session))
  | Query, None -> Rejected "no specification registered"
  | Query, Some session -> (
      (* Idempotent: repeat the outstanding assignment if any. *)
      match session.outstanding with
      | Some assignment -> Assign assignment
      | None -> next_reply session)
  | Report _, None | Report_failed, None ->
      Rejected "no specification registered"
  | Report performance, Some session -> (
      match session.outstanding with
      | None -> Rejected "no assignment outstanding"
      | Some _ ->
          session.outstanding <- None;
          session.outstanding_failures <- 0;
          (match Controller.pending session.controller with
          | `Measure _ -> Controller.report session.controller performance
          | `Done _ -> ());
          next_reply session)
  | Report_failed, Some session -> (
      match session.outstanding with
      | None -> Rejected "no assignment outstanding"
      | Some assignment ->
          session.failed_reports <- session.failed_reports + 1;
          session.outstanding_failures <- session.outstanding_failures + 1;
          if session.outstanding_failures < t.max_report_failures then
            (* Re-assign: the client retries the same configuration
               (transient failures clear; the client applies its own
               backoff between attempts). *)
            Assign assignment
          else begin
            (* The configuration stays broken: feed the controller a
               worst-case penalty so the search moves away from it, and
               hand out the next proposal. *)
            session.penalized <- session.penalized + 1;
            session.outstanding <- None;
            session.outstanding_failures <- 0;
            (match Controller.pending session.controller with
            | `Measure _ ->
                Controller.report session.controller
                  (Measure.penalty_for session.direction)
            | `Done _ -> ());
            next_reply session
          end)

(* Message handling is total.  A registered spec can defeat the search
   kernel only after tuning has started — a space degenerate in one
   dimension snaps every initial vertex onto the same hyperplane, which
   Simplex.optimize detects after the initial vertices are measured,
   i.e. inside [Controller.report].  The kernel is unusable from that
   point, so the session is aborted: the client gets [Rejected] and
   must re-register (the fuzz suite drives this with arbitrary
   generated specs). *)
let handle_total t message =
  match handle_message t message with
  | reply -> reply
  | exception Invalid_argument msg ->
      t.session <- None;
      Rejected ("session aborted: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Line codec                                                          *)

let parse_message text =
  let text = String.trim text in
  match String.index_opt text '\n' with
  | Some i -> (
      let first = String.trim (String.sub text 0 i) in
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      match String.split_on_char ' ' first with
      | [ "register"; "min" ] -> Ok (Register { spec = rest; direction = Minimize })
      | [ "register"; "max" ] -> Ok (Register { spec = rest; direction = Maximize })
      | _ -> Error ("unknown multi-line command: " ^ first))
  | None -> (
      match String.split_on_char ' ' text with
      | [ "query" ] -> Ok Query
      | [ "metrics" ] -> Ok Metrics
      | [ "report"; "failed" ] -> Ok Report_failed
      | [ "report"; value ] -> (
          match float_of_string_opt value with
          | Some v -> Ok (Report v)
          | None -> Error ("bad performance value: " ^ value))
      (* A register with no specification lines still parses (the spec
         is just empty, and registration will reject it) — so every
         journaled message, however degenerate, decodes on replay. *)
      | [ "register"; "min" ] -> Ok (Register { spec = ""; direction = Minimize })
      | [ "register"; "max" ] -> Ok (Register { spec = ""; direction = Maximize })
      | _ -> Error ("unknown command: " ^ text))

let reply_to_string = function
  | Assign assignment ->
      "assign "
      ^ String.concat " "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) assignment)
  | Done { best; performance } ->
      Printf.sprintf "done %s perf=%g"
        (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) best))
        performance
  | Rejected msg -> "error " ^ msg
  | Stats text -> "stats\n" ^ String.trim text

let message_to_string = function
  | Register { spec; direction } ->
      let dir = match direction with Minimize -> "min" | Maximize -> "max" in
      "register " ^ dir ^ "\n" ^ spec
  | Query -> "query"
  (* %.17g round-trips every float through [parse_message] exactly, so
     replaying a journaled report feeds the controller the same bits. *)
  | Report performance -> Printf.sprintf "report %.17g" performance
  | Report_failed -> "report failed"
  | Metrics -> "metrics"

(* ------------------------------------------------------------------ *)
(* Write-ahead journal: event codec                                    *)

module Event = struct
  type t = event = Recv of message | Reply of string | Shed of message

  let encode ~seq = function
    | Recv m -> Printf.sprintf "%d recv %s" seq (message_to_string m)
    | Reply text -> Printf.sprintf "%d reply %s" seq text
    | Shed m -> Printf.sprintf "%d shed %s" seq (message_to_string m)

  let decode record =
    match String.index_opt record ' ' with
    | None -> None
    | Some i -> (
        match int_of_string_opt (String.sub record 0 i) with
        | None -> None
        | Some seq when seq < 1 -> None
        | Some seq -> (
            let rest =
              String.sub record (i + 1) (String.length record - i - 1)
            in
            let payload_of tag =
              if String.starts_with ~prefix:(tag ^ " ") rest then
                Some
                  (String.sub rest (String.length tag + 1)
                     (String.length rest - String.length tag - 1))
              else None
            in
            match payload_of "recv" with
            | Some text -> (
                match parse_message text with
                | Ok m -> Some (seq, Recv m)
                | Error _ -> None)
            | None -> (
                match payload_of "reply" with
                | Some text -> Some (seq, Reply text)
                | None -> (
                    match payload_of "shed" with
                    | Some text -> (
                        match parse_message text with
                        | Ok m -> Some (seq, Shed m)
                        | Error _ -> None)
                    | None -> None))))
end

(* ------------------------------------------------------------------ *)
(* Journaling, snapshots, recovery                                     *)

let snapshot_path path = path ^ ".snapshot"
let default_compact_every = 64
let snapshot_magic = "harmony-snapshot"
let snapshot_header seq = Printf.sprintf "%s 1 %d" snapshot_magic seq

let parse_snapshot_header record =
  match String.split_on_char ' ' record with
  | [ magic; "1"; seq ] when String.equal magic snapshot_magic ->
      int_of_string_opt seq
  | _ -> None

(* Only client messages that can change server state are journaled;
   [Query] is read-only up to idempotent re-issue of the outstanding
   assignment, which deterministic replay regenerates for free. *)
let journaled_persist t message =
  match t.persist with
  | None -> None
  | Some p -> (
      match message with
      | Register _ | Report _ | Report_failed -> Some p
      | Query | Metrics -> None)

(* The session log restarts at an *accepted* register: a rejected
   re-register leaves the live session untouched, so its events must
   stay in the replayable essence. *)
let extend_session_log log ~seq message reply =
  let recv = (seq, Recv message) in
  let rep = (seq, Reply (reply_to_string reply)) in
  let is_register =
    match message with
    | Register _ -> true
    | Query | Report _ | Report_failed | Metrics -> false
  in
  let rejected =
    match reply with
    | Rejected _ -> true
    | Assign _ | Done _ | Stats _ -> false
  in
  if is_register && not rejected then [ rep; recv ] else rep :: recv :: log

(* Snapshot = atomically-written replayable essence of the current
   session (original seqs preserved), after which the journal restarts
   empty.  Crash windows: before the rename we still have old snapshot
   + full journal; between rename and reset we have new snapshot + a
   stale journal whose seqs are all <= the header seq (skipped on
   load); after the reset we are clean. *)
let compact p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Frame.encode (snapshot_header p.seq));
  List.iter
    (fun (seq, ev) -> Buffer.add_string buf (Frame.encode (Event.encode ~seq ev)))
    (List.rev p.session_log);
  Persist.write_atomic ~path:p.snapshot (Buffer.contents buf);
  Journal.reset p.journal

(* Every [Journal.append] frames, writes and fsyncs one record. *)
let journal_append tel journal record =
  Journal.append journal record;
  Telemetry.incr tel "server.journal.appends";
  Telemetry.incr tel "server.journal.fsyncs"

let handle ?ctx t message =
  let tel = t.telemetry in
  t.handled <- t.handled + 1;
  (* A message arriving without a service-derived trace context (direct
     embedding, replay, examples) still gets a deterministic root keyed
     by arrival order, so every handle span carries correlation ids. *)
  let ctx =
    match ctx with
    | Some c -> c
    | None -> Telemetry.Ctx.root ~client:"server" ~seq:t.handled
  in
  Telemetry.span_begin tel "server.handle"
    ~args:
      (("kind", Telemetry.Str (message_kind message)) :: Telemetry.Ctx.args ctx);
  Telemetry.incr tel "server.messages";
  let started = Telemetry.now tel in
  (* Each WAL write (frame + fsync) is its own child span, so the trace
     attributes journal latency separately from search work. *)
  let journal_span p record =
    let jctx = Telemetry.Ctx.child ctx "server.journal.append" in
    Telemetry.span_begin tel "server.journal.append"
      ~args:(Telemetry.Ctx.args jctx);
    journal_append tel p.journal record;
    Telemetry.span_end tel "server.journal.append"
  in
  (match journaled_persist t message with
  | None -> ()
  | Some p ->
      (* WAL discipline: the message is durable before any state
         changes, so a crash can lose at most the reply, never an
         applied-but-unlogged mutation. *)
      p.seq <- p.seq + 1;
      journal_span p (Event.encode ~seq:p.seq (Recv message)));
  let reply =
    let sctx = Telemetry.Ctx.child ctx "server.search" in
    Telemetry.span_begin tel "server.search" ~args:(Telemetry.Ctx.args sctx);
    let reply = handle_total t message in
    Telemetry.span_end tel "server.search";
    reply
  in
  (match journaled_persist t message with
  | None -> ()
  | Some p ->
      journal_span p (Event.encode ~seq:p.seq (Reply (reply_to_string reply)));
      p.session_log <- extend_session_log p.session_log ~seq:p.seq message reply;
      if Journal.records p.journal > p.compact_every then begin
        Telemetry.incr tel "server.journal.compactions";
        compact p
      end);
  Telemetry.observe tel
    ~exemplar:(Telemetry.Ctx.trace_id ctx)
    "server.handle_ms"
    (Telemetry.now tel -. started);
  Telemetry.span_end tel "server.handle";
  reply

(* Record an admission-layer rejection: the message never reached
   [handle], but the decision must survive a crash so recovery can
   replay the whole reply stream — including rejections —
   byte-for-byte.  The reply is journaled verbatim (admission state is
   not replayable, so replay re-emits it literally).  No-op without an
   attached journal: an undurable rejection loses nothing. *)
let journal_shed t message ~reply =
  match t.persist with
  | None -> ()
  | Some p ->
      (match message with
      | Register _ | Report _ | Report_failed -> ()
      | Query | Metrics ->
          invalid_arg "Server.journal_shed: message is never journaled");
      let tel = t.telemetry in
      p.seq <- p.seq + 1;
      journal_append tel p.journal (Event.encode ~seq:p.seq (Shed message));
      journal_append tel p.journal (Event.encode ~seq:p.seq (Reply reply));
      p.session_log <-
        (p.seq, Reply reply) :: (p.seq, Shed message) :: p.session_log;
      if Journal.records p.journal > p.compact_every then begin
        Telemetry.incr tel "server.journal.compactions";
        compact p
      end

let attach_journal ?(compact_every = default_compact_every) ?wrap t ~journal:path
    () =
  if compact_every < 1 then invalid_arg "Server.attach_journal: compact_every < 1";
  (match t.persist with
  | Some p -> Journal.close p.journal
  | None -> ());
  let _scan, journal = Journal.open_file ?wrap path in
  (* A fresh attachment starts a fresh log: whatever sat at [path]
     belongs to some other run (use [recover] to resume one). *)
  Journal.reset journal;
  Persist.remove_if_exists (snapshot_path path);
  Persist.remove_if_exists (snapshot_path path ^ ".tmp");
  t.persist <-
    Some
      { journal; snapshot = snapshot_path path; compact_every; seq = 0;
        session_log = [] }

let detach_journal t =
  match t.persist with
  | None -> ()
  | Some p ->
      Journal.close p.journal;
      t.persist <- None

(* Decode snapshot + journal into one seq-ordered event list.  Total:
   torn tails were already dropped by the frame scan; records that do
   not decode, a snapshot without a valid header, and stale journal
   records (seq <= snapshot header seq) are counted as dropped. *)
let load_events path =
  let dropped = ref 0 in
  let decode_record record =
    match Event.decode record with
    | Some ev -> Some ev
    | None ->
        incr dropped;
        None
  in
  let snap = Journal.read (snapshot_path path) in
  let snap_events, snap_seq =
    match snap.Frame.records with
    | [] -> ([], 0)
    | header :: rest -> (
        match parse_snapshot_header header with
        | None ->
            (* Unusable snapshot: fall back to the journal alone. *)
            dropped := !dropped + 1 + List.length rest;
            ([], 0)
        | Some seq -> (List.filter_map decode_record rest, seq))
  in
  let journal_events =
    List.filter_map
      (fun record ->
        match decode_record record with
        | Some (seq, _) when seq <= snap_seq ->
            incr dropped;
            None
        | Some ev -> Some ev
        | None -> None)
      (Journal.read path).Frame.records
  in
  (snap_events @ journal_events, !dropped)

(* Re-apply recorded client messages to a fresh server.  Reply records
   are cross-checks: deterministic replay must regenerate the recorded
   reply byte-for-byte, and the first divergence (or a non-monotone
   seq) invalidates everything after it — recovery degrades to the
   longest self-consistent prefix.  A [Shed] record is not re-applied
   (the message never touched state); its paired reply is accepted
   literally, which is exactly what makes journaled rejections replay
   byte-for-byte.  [literal] is the pending shed reply's seq. *)
let replay_events server events =
  let rec go events last_reply literal applied dropped log seq =
    match events with
    | [] -> (last_reply, applied, dropped, log, seq)
    | (s, Recv m) :: rest ->
        if s <= seq then (last_reply, applied, dropped + 1 + List.length rest, log, seq)
        else
          let reply = handle_total server m in
          let log = extend_session_log log ~seq:s m reply in
          go rest (Some reply) None (applied + 1) dropped log s
    | (s, Shed m) :: rest ->
        if s <= seq then (last_reply, applied, dropped + 1 + List.length rest, log, seq)
        else go rest last_reply (Some s) (applied + 1) dropped ((s, Shed m) :: log) s
    | (s, Reply text) :: rest -> (
        match literal with
        | Some ls ->
            if s = ls then
              go rest last_reply None applied dropped ((s, Reply text) :: log) seq
            else (last_reply, applied, dropped + 1 + List.length rest, log, seq)
        | None ->
            let consistent =
              s = seq
              &&
              match last_reply with
              | Some r -> String.equal (reply_to_string r) text
              | None -> false
            in
            if consistent then go rest last_reply None applied dropped log seq
            else (last_reply, applied, dropped + 1 + List.length rest, log, seq))
  in
  go events None None 0 0 [] 0

type recovery = {
  server : t;
  last_reply : reply option;
  replayed : int;
  dropped : int;
}

let recover ?options ?max_report_failures ?reject_reregister ?telemetry
    ?(compact_every = default_compact_every) ~journal:path () =
  if compact_every < 1 then invalid_arg "Server.recover: compact_every < 1";
  let server =
    create ?options ?max_report_failures ?reject_reregister ?telemetry ()
  in
  let events, dropped_load = load_events path in
  let last_reply, replayed, dropped_replay, session_log, seq =
    replay_events server events
  in
  let _scan, journal = Journal.open_file path in
  let p =
    { journal; snapshot = snapshot_path path; compact_every; seq; session_log }
  in
  server.persist <- Some p;
  (* Checkpoint on the way up: the recovered state becomes one atomic
     snapshot and the journal restarts empty, so torn tails, stale
     records and diverged suffixes are durably gone. *)
  compact p;
  let dropped = dropped_load + dropped_replay in
  Telemetry.gauge server.telemetry "server.recovery.replayed"
    (float_of_int replayed);
  Telemetry.gauge server.telemetry "server.recovery.dropped"
    (float_of_int dropped);
  { server; last_reply; replayed; dropped }

(* ------------------------------------------------------------------ *)
(* Reconstructing the measurement trace from a journal                 *)

let assignment_of_reply_text text =
  match String.split_on_char ' ' text with
  | "assign" :: pairs when pairs <> [] ->
      let parse pair =
        match String.index_opt pair '=' with
        | None -> None
        | Some i -> (
            match
              int_of_string_opt
                (String.sub pair (i + 1) (String.length pair - i - 1))
            with
            | Some v -> Some (String.sub pair 0 i, v)
            | None -> None)
      in
      let parsed = List.filter_map parse pairs in
      if List.length parsed = List.length pairs then Some parsed else None
  | _ -> None

let journal_evaluations path =
  let events, _dropped = load_events path in
  let current = ref [] in
  let last_assign = ref None in
  (* A register tentatively restarts the trace; the paired reply at the
     same seq can veto it (an "error" reply means the old session
     survived). *)
  let pending = ref None in
  List.iter
    (fun (seq, ev) ->
      (match !pending with
      | Some (ps, _, _) when seq > ps -> pending := None
      | Some _ | None -> ());
      match ev with
      | Recv (Register _) ->
          pending := Some (seq, !current, !last_assign);
          current := [];
          last_assign := None
      | Recv (Report performance) -> (
          match !last_assign with
          | Some assignment -> current := (assignment, performance) :: !current
          | None -> ())
      | Recv Report_failed | Recv Query | Recv Metrics -> ()
      (* A shed message was never applied: it contributes no
         evaluation, and its literal "error ..." reply matches no
         pending register (sheds never set [pending]). *)
      | Shed _ -> ()
      | Reply text -> (
          if String.starts_with ~prefix:"error" text then (
            match !pending with
            | Some (ps, saved, saved_assign) when ps = seq ->
                current := saved;
                last_assign := saved_assign;
                pending := None
            | Some _ | None -> ())
          else
            match assignment_of_reply_text text with
            | Some assignment -> last_assign := Some assignment
            | None -> ()))
    events;
  List.rev !current
