open Harmony_param
open Harmony_objective

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
  | Query
  | Report of float
  | Report_failed

type reply =
  | Assign of (string * int) list
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string

type session = {
  rsl : Rsl.t;
  names : string list;
  controller : Controller.t;
  direction : Objective.direction;
  mutable outstanding : (string * int) list option;
      (* assignment awaiting its performance report *)
  mutable outstanding_failures : int;
      (* consecutive [report failed] for the outstanding assignment *)
  mutable failed_reports : int;
  mutable penalized : int;
}

type t = {
  options : Simplex.options;
  max_report_failures : int;
  mutable session : session option;
}

let create ?(options = Simplex.default_options) ?(max_report_failures = 3) () =
  if max_report_failures < 1 then
    invalid_arg "Server.create: max_report_failures < 1";
  { options; max_report_failures; session = None }

let spec t = Option.map (fun s -> s.rsl) t.session

let fault_counters t =
  match t.session with
  | None -> (0, 0)
  | Some s -> (s.failed_reports, s.penalized)

let better direction a b =
  match direction with
  | Objective.Higher_is_better -> a > b
  | Objective.Lower_is_better -> a < b

let assignment_of_config session config =
  (* Proposals come from the box space; project into the restricted
     region so the client only ever runs meaningful configurations.
     The controller is told the performance of its own proposal — the
     projection distance is at most one conditional-range clamp, the
     same approximation Rsl.repair-based tuning makes everywhere. *)
  let feasible = Rsl.repair session.rsl config in
  List.mapi (fun i name -> (name, int_of_float feasible.(i))) session.names

(* Advance the controller to its next request and turn it into a
   reply, remembering the outstanding assignment. *)
let next_reply session =
  match Controller.pending session.controller with
  | `Measure config ->
      let assignment = assignment_of_config session config in
      session.outstanding <- Some assignment;
      session.outstanding_failures <- 0;
      Assign assignment
  | `Done outcome ->
      session.outstanding <- None;
      session.outstanding_failures <- 0;
      (* Graceful degradation: if the budget ran out while later
         vertices kept failing (their penalized measurements drag the
         simplex's notion of "best" down), fall back to the best
         configuration a client actually measured. *)
      let best_config, performance =
        match Controller.best_so_far session.controller with
        | Some (config, perf)
          when better session.direction perf outcome.Simplex.best_performance
          ->
            (config, perf)
        | Some _ | None ->
            (outcome.Simplex.best_config, outcome.Simplex.best_performance)
      in
      Done { best = assignment_of_config session best_config; performance }

let handle_message t message =
  match (message, t.session) with
  | Register { spec; direction }, _ -> (
      match Rsl.parse spec with
      | exception Rsl.Parse_error msg -> Rejected ("bad specification: " ^ msg)
      | rsl -> (
          match Rsl.to_space rsl with
          | exception Invalid_argument msg -> Rejected msg
          | space ->
              let direction =
                match direction with
                | Minimize -> Objective.Lower_is_better
                | Maximize -> Objective.Higher_is_better
              in
              (* A structurally valid spec can still be untunable —
                 e.g. a single feasible point gives the search kernel a
                 degenerate initial simplex.  [handle] is total: such
                 specs are rejected, never raised (the fuzz suite
                 drives this with arbitrary generated specs). *)
              match Controller.create ~options:t.options ~space ~direction () with
              | exception Invalid_argument msg ->
                  Rejected ("untunable specification: " ^ msg)
              | controller ->
              let session =
                {
                  rsl;
                  names = Rsl.names rsl;
                  controller;
                  direction;
                  outstanding = None;
                  outstanding_failures = 0;
                  failed_reports = 0;
                  penalized = 0;
                }
              in
              t.session <- Some session;
              next_reply session))
  | Query, None -> Rejected "no specification registered"
  | Query, Some session -> (
      (* Idempotent: repeat the outstanding assignment if any. *)
      match session.outstanding with
      | Some assignment -> Assign assignment
      | None -> next_reply session)
  | Report _, None | Report_failed, None ->
      Rejected "no specification registered"
  | Report performance, Some session -> (
      match session.outstanding with
      | None -> Rejected "no assignment outstanding"
      | Some _ ->
          session.outstanding <- None;
          session.outstanding_failures <- 0;
          (match Controller.pending session.controller with
          | `Measure _ -> Controller.report session.controller performance
          | `Done _ -> ());
          next_reply session)
  | Report_failed, Some session -> (
      match session.outstanding with
      | None -> Rejected "no assignment outstanding"
      | Some assignment ->
          session.failed_reports <- session.failed_reports + 1;
          session.outstanding_failures <- session.outstanding_failures + 1;
          if session.outstanding_failures < t.max_report_failures then
            (* Re-assign: the client retries the same configuration
               (transient failures clear; the client applies its own
               backoff between attempts). *)
            Assign assignment
          else begin
            (* The configuration stays broken: feed the controller a
               worst-case penalty so the search moves away from it, and
               hand out the next proposal. *)
            session.penalized <- session.penalized + 1;
            session.outstanding <- None;
            session.outstanding_failures <- 0;
            (match Controller.pending session.controller with
            | `Measure _ ->
                Controller.report session.controller
                  (Measure.penalty_for session.direction)
            | `Done _ -> ());
            next_reply session
          end)

(* [handle] is total.  A registered spec can defeat the search kernel
   only after tuning has started — a space degenerate in one dimension
   snaps every initial vertex onto the same hyperplane, which
   Simplex.optimize detects after the initial vertices are measured,
   i.e. inside [Controller.report].  The kernel is unusable from that
   point, so the session is aborted: the client gets [Rejected] and
   must re-register (the fuzz suite drives this with arbitrary
   generated specs). *)
let handle t message =
  match handle_message t message with
  | reply -> reply
  | exception Invalid_argument msg ->
      t.session <- None;
      Rejected ("session aborted: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Line codec                                                          *)

let parse_message text =
  let text = String.trim text in
  match String.index_opt text '\n' with
  | Some i -> (
      let first = String.trim (String.sub text 0 i) in
      let rest = String.sub text (i + 1) (String.length text - i - 1) in
      match String.split_on_char ' ' first with
      | [ "register"; "min" ] -> Ok (Register { spec = rest; direction = Minimize })
      | [ "register"; "max" ] -> Ok (Register { spec = rest; direction = Maximize })
      | _ -> Error ("unknown multi-line command: " ^ first))
  | None -> (
      match String.split_on_char ' ' text with
      | [ "query" ] -> Ok Query
      | [ "report"; "failed" ] -> Ok Report_failed
      | [ "report"; value ] -> (
          match float_of_string_opt value with
          | Some v -> Ok (Report v)
          | None -> Error ("bad performance value: " ^ value))
      | _ -> Error ("unknown command: " ^ text))

let reply_to_string = function
  | Assign assignment ->
      "assign "
      ^ String.concat " "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) assignment)
  | Done { best; performance } ->
      Printf.sprintf "done %s perf=%g"
        (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) best))
        performance
  | Rejected msg -> "error " ^ msg
