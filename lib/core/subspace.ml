open Harmony_param
open Harmony_objective

type t = {
  full : Objective.t;
  indices : int array; (* ascending, distinct *)
  base : Space.config;
  reduced : Objective.t;
}

let embed_with ~indices ~base reduced_config =
  let c = Array.copy base in
  Array.iteri (fun k idx -> c.(idx) <- reduced_config.(k)) indices;
  c

let project obj ~indices ?base () =
  let space = obj.Objective.space in
  let n = Space.dims space in
  let indices = List.sort_uniq Int.compare indices in
  if indices = [] then invalid_arg "Subspace.project: empty index list";
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Subspace.project: index out of range")
    indices;
  let base =
    match base with
    | Some b ->
        if Array.length b <> n then invalid_arg "Subspace.project: base arity";
        Space.snap space b
    | None -> Space.defaults space
  in
  let indices = Array.of_list indices in
  let reduced_space =
    Space.create (List.map (fun i -> Space.param space i) (Array.to_list indices))
  in
  let reduced =
    Objective.create ~space:reduced_space ~direction:obj.Objective.direction
      (fun rc -> obj.Objective.eval (embed_with ~indices ~base rc))
  in
  { full = obj; indices; base; reduced }

let objective t = t.reduced
let embed t rc = embed_with ~indices:t.indices ~base:t.base rc

let restrict t c =
  if Array.length c <> Space.dims t.full.Objective.space then
    invalid_arg "Subspace.restrict: arity mismatch";
  Array.map (fun i -> c.(i)) t.indices

let indices t = Array.to_list t.indices
