open Harmony_param
module Lstsq = Harmony_numerics.Lstsq
module Stats = Harmony_numerics.Stats

type vertex_choice = Nearest | Latest

let select ~k ~choice ~space ~points ~target =
  let arr = Array.of_list points in
  let m = Array.length arr in
  let k = min k m in
  match choice with
  | Latest -> Array.sub arr (m - k) k
  | Nearest ->
      let tn = Space.normalize space target in
      let keyed =
        Array.map
          (fun (c, p) -> (Stats.euclidean_distance (Space.normalize space c) tn, (c, p)))
          arr
      in
      Array.sort (fun (a, _) (b, _) -> Float.compare a b) keyed;
      Array.map snd (Array.sub keyed 0 k)

let estimate ?k ?(choice = Nearest) ~space ~points ~target () =
  if points = [] then invalid_arg "Estimator.estimate: no historical points";
  let dims = Space.dims space in
  let k = match k with Some k -> max 1 k | None -> dims + 1 in
  let chosen = select ~k ~choice ~space ~points ~target in
  let coords = Array.map (fun (c, _) -> Space.normalize space c) chosen in
  let values = Array.map snd chosen in
  if Array.length chosen = 1 then values.(0)
  else begin
    let coeffs = Lstsq.fit_hyperplane coords values in
    Lstsq.predict_hyperplane coeffs (Space.normalize space target)
  end

let fill ?k ?choice ~space ~points ~targets () =
  List.map (fun target -> (target, estimate ?k ?choice ~space ~points ~target ())) targets
