open Harmony_param
open Harmony_objective
module Rng = Harmony_numerics.Rng

type outcome = {
  best_config : Space.config;
  best_performance : float;
  trace : Recorder.entry list;
  evaluations : int;
}

let outcome_of_recorder obj recorder =
  match Recorder.best obj recorder with
  | None -> invalid_arg "Baselines: no evaluations performed"
  | Some best ->
      {
        best_config = best.Recorder.config;
        best_performance = best.Recorder.performance;
        trace = Recorder.entries recorder;
        evaluations = Recorder.count recorder;
      }

let random_search rng ?(max_evaluations = 400) obj =
  if max_evaluations < 1 then invalid_arg "Baselines.random_search: empty budget";
  let recorder, recorded = Recorder.wrap obj in
  for _ = 1 to max_evaluations do
    ignore (recorded.Objective.eval (Space.random rng obj.Objective.space))
  done;
  outcome_of_recorder obj recorder

let check_cardinality name limit space =
  let card = Space.cardinality space in
  if card > float_of_int limit then
    invalid_arg
      (Printf.sprintf "%s: space has %.3g configurations (limit %d)" name card limit)

let exhaustive ?(limit = 1_000_000) obj =
  check_cardinality "Baselines.exhaustive" limit obj.Objective.space;
  let recorder, recorded = Recorder.wrap obj in
  Seq.iter
    (fun c -> ignore (recorded.Objective.eval c))
    (Space.enumerate obj.Objective.space);
  outcome_of_recorder obj recorder

let sweep ?(limit = 1_000_000) obj =
  check_cardinality "Baselines.sweep" limit obj.Objective.space;
  let out = ref [] in
  Seq.iter
    (fun c -> out := obj.Objective.eval c :: !out)
    (Space.enumerate obj.Objective.space);
  Array.of_list (List.rev !out)

let random_sweep rng ~samples obj =
  if samples < 1 then invalid_arg "Baselines.random_sweep: samples < 1";
  Array.init samples (fun _ ->
      obj.Objective.eval (Space.random rng obj.Objective.space))

let simulated_annealing rng ?(max_evaluations = 400) ?initial_temperature obj =
  if max_evaluations < 1 then
    invalid_arg "Baselines.simulated_annealing: empty budget";
  let space = obj.Objective.space in
  let recorder, recorded = Recorder.wrap obj in
  let eval c = recorded.Objective.eval c in
  let current = ref (Space.defaults space) in
  let current_value = ref (eval !current) in
  let t0 =
    match initial_temperature with
    | Some t -> t
    | None -> Float.max 1e-9 (0.1 *. Float.abs !current_value)
  in
  (* Geometric cooling reaching t0/100 at the end of the budget. *)
  let steps = max 1 (max_evaluations - 1) in
  let alpha = exp (log 0.01 /. float_of_int steps) in
  let temperature = ref t0 in
  while Recorder.count recorder < max_evaluations do
    let neighbors = Space.neighbors space !current in
    (match neighbors with
    | [] -> ()
    | _ :: _ ->
        let candidate = Rng.choice rng (Array.of_list neighbors) in
        let v = eval candidate in
        let accept =
          Objective.better obj v !current_value
          ||
          let delta = Float.abs (v -. !current_value) in
          Rng.float rng 1.0 < exp (-.delta /. !temperature)
        in
        if accept then begin
          current := candidate;
          current_value := v
        end);
    temperature := !temperature *. alpha
  done;
  outcome_of_recorder obj recorder

(* ------------------------------------------------------------------ *)
(* Powell's direction-set method on a grid.                           *)

let powell ?(max_evaluations = 400) ?(line_points = 9) obj =
  if line_points < 3 then invalid_arg "Baselines.powell: line_points < 3";
  let space = obj.Objective.space in
  let n = Space.dims space in
  let recorder, recorded = Recorder.wrap obj in
  let budget_left () = Recorder.count recorder < max_evaluations in
  let eval c = recorded.Objective.eval c in
  (* Line search: sample [line_points] parameters t such that
     current + t * dir stays in the box; keep the best snapped point. *)
  let line_search current current_value dir =
    (* Feasible t range per dimension, intersected. *)
    let tmin = ref neg_infinity and tmax = ref infinity in
    Array.iteri
      (fun i d ->
        if Float.abs d > 1e-12 then begin
          let p = Space.param space i in
          let lo = (p.Param.min_value -. current.(i)) /. d in
          let hi = (p.Param.max_value -. current.(i)) /. d in
          let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
          tmin := Float.max !tmin lo;
          tmax := Float.min !tmax hi
        end)
      dir;
    if !tmin > !tmax || Float.equal !tmax infinity || Float.equal !tmin neg_infinity
    then
      (current, current_value)
    else begin
      let best_c = ref current and best_v = ref current_value in
      let seen = ref [ current ] in
      for k = 0 to line_points - 1 do
        let t =
          !tmin +. (float_of_int k /. float_of_int (line_points - 1) *. (!tmax -. !tmin))
        in
        let c =
          Space.snap space (Array.mapi (fun i v -> v +. (t *. dir.(i))) current)
        in
        if (not (List.exists (Space.config_equal c) !seen)) && budget_left () then begin
          seen := c :: !seen;
          let v = eval c in
          if Objective.better obj v !best_v then begin
            best_c := c;
            best_v := v
          end
        end
      done;
      (!best_c, !best_v)
    end
  in
  let directions =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))
  in
  let current = ref (Space.defaults space) in
  let current_value = ref (eval !current) in
  let improved = ref true in
  while !improved && budget_left () do
    improved := false;
    let round_start = Array.copy !current in
    let round_start_value = !current_value in
    let biggest_gain = ref 0.0 in
    let biggest_idx = ref (-1) in
    Array.iteri
      (fun i dir ->
        if budget_left () then begin
          let before = !current_value in
          let c, v = line_search !current !current_value dir in
          let gain = Float.abs (v -. before) in
          if Objective.better obj v !current_value then begin
            current := c;
            current_value := v;
            improved := true
          end;
          if gain > !biggest_gain then begin
            biggest_gain := gain;
            biggest_idx := i
          end
        end)
      directions;
    (* Powell update: replace the direction of largest improvement by
       the overall displacement of this round. *)
    if !biggest_idx >= 0 then begin
      let disp = Array.mapi (fun i v -> v -. round_start.(i)) !current in
      let nonzero = Array.exists (fun v -> Float.abs v > 1e-12) disp in
      if nonzero && budget_left () then begin
        let c, v = line_search !current !current_value disp in
        if Objective.better obj v !current_value then begin
          current := c;
          current_value := v;
          improved := true
        end;
        directions.(!biggest_idx) <- disp
      end
    end;
    if
      Space.config_equal round_start !current
      && Float.equal round_start_value !current_value
    then improved := false
  done;
  outcome_of_recorder obj recorder
