open Harmony_param
open Harmony_objective

type _ Effect.t += Measure : Space.config -> float Effect.t

type state =
  | Waiting of {
      config : Space.config;
      resume : (float, unit) Effect.Deep.continuation;
    }
  | Finished of Simplex.outcome
  | Running  (** transient, only observable on re-entrant misuse *)

type t = {
  space : Space.t;
  direction : Objective.direction;
  mutable state : state;
  mutable measurements : int;
  mutable best : (Space.config * float) option;
}

let create ?telemetry ?(options = Simplex.default_options) ~space ~direction ()
    =
  let t =
    { space; direction; state = Running; measurements = 0; best = None }
  in
  (* Run the batch kernel with an objective whose every evaluation
     suspends via an effect; the continuation is parked in [t.state]
     until the client reports the measurement. *)
  let computation () =
    let objective =
      Objective.create ~space ~direction (fun config ->
          Effect.perform (Measure (Array.copy config)))
    in
    let outcome = Simplex.optimize ?telemetry ~options objective in
    t.state <- Finished outcome
  in
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
      = function
    | Measure config ->
        Some
          (fun resume -> t.state <- Waiting { config; resume })
    | _ -> None
  in
  Effect.Deep.match_with computation ()
    { retc = Fun.id; exnc = raise; effc };
  t

let pending t =
  match t.state with
  | Waiting { config; _ } -> `Measure (Array.copy config)
  | Finished outcome -> `Done outcome
  | Running -> invalid_arg "Controller.pending: controller is mid-step"

let report t performance =
  match t.state with
  | Finished _ -> invalid_arg "Controller.report: search already finished"
  | Running -> invalid_arg "Controller.report: no measurement outstanding"
  | Waiting { config; resume } ->
      t.measurements <- t.measurements + 1;
      (match t.best with
      | Some (_, best_perf)
        when not
               (match t.direction with
               | Objective.Higher_is_better -> performance > best_perf
               | Objective.Lower_is_better -> performance < best_perf) ->
          ()
      | Some _ | None -> t.best <- Some (Array.copy config, performance));
      t.state <- Running;
      (* Resuming runs the kernel until its next evaluation (which
         re-parks the state) or completion (which finishes it). *)
      Effect.Deep.continue resume performance

let measurements t = t.measurements
let best_so_far t = t.best
