(** The parameter prioritizing tool (Section 3).

    For each parameter, explore its values while every other parameter
    is held at its default, and define the sensitivity as

    {v |P_a - P_b| / |v'_a - v'_b| v}

    where [P_a]/[P_b] are the maximum/minimum observed performance,
    [v'] the parameter value normalized onto [0, 1] (so wide-ranged
    parameters get no excessive weight), and [a]/[b] the argmax/argmin
    points.  Large sensitivity means changing the parameter moves the
    performance directly, so it deserves tuning priority; flat
    parameters can be discarded or deferred.  The tool assumes
    parameter interactions are small (the paper points users to
    factorial designs otherwise). *)

open Harmony_objective

type score = {
  index : int;            (** parameter index in the space *)
  name : string;
  sensitivity : float;
  best_value : float;     (** parameter value at the best sweep point *)
  worst_value : float;
  evaluations : int;      (** sweep points measured *)
}

type report = { scores : score array (** in parameter order *) }

val subsample : int -> int -> int array
(** [subsample n count] picks [count] evenly spaced indices out of
    [0 .. n-1], endpoints included ([count >= n] returns them all;
    [count <= 1] returns index 0 alone — a one-point sweep, never a
    division by zero). *)

val analyze :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?pool:Harmony_parallel.Pool.t ->
  ?max_points:int ->
  ?repeats:int ->
  Objective.t ->
  report
(** One-at-a-time sweep of every parameter.  Parameters with more
    than [max_points] (default 16) grid values are subsampled evenly
    (endpoints always included).  [repeats] (default 1) measures each
    sweep point several times and averages — an extension beyond the
    paper that damps the max-min estimator's noise amplification on
    noisy systems (ablated in the benches).

    [pool] fans the per-parameter sweeps out across domains — they
    are independent by construction, so the report is identical to
    the sequential one.  Objectives marked {!Objective.noisy} ignore
    [pool] and stay sequential: their shared noise stream would make
    the draw order (and hence the scores) depend on scheduling.

    With a live [telemetry] handle the whole sweep is bracketed by a
    [sensitivity] span, each parameter yields a [sensitivity.param]
    instant (emitted after the sweeps, in parameter order, so the
    trace does not depend on pool scheduling), and
    [sensitivity.evaluations] counts the points measured. *)

val ranked : report -> score array
(** Scores sorted by decreasing sensitivity (ties by parameter
    order). *)

val top_n : report -> int -> int list
(** Indices of the [n] most sensitive parameters, ascending by index
    (clamped to the dimension count). *)

val evaluations : report -> int
(** Total objective evaluations the analysis spent. *)

val pp : Format.formatter -> report -> unit
