open Harmony_param
open Harmony_objective

type effects = {
  names : string array;
  main : float array;
  interactions : (int * int * float) array;
  runs : int;
}

let param_names space =
  Array.map (fun p -> p.Param.name) (Space.params space)

let level_values space (lo_frac, hi_frac) =
  if not (0.0 <= lo_frac && lo_frac < hi_frac && hi_frac <= 1.0) then
    invalid_arg "Factorial: levels must satisfy 0 <= lo < hi <= 1";
  Array.map
    (fun p -> (Param.denormalize p lo_frac, Param.denormalize p hi_frac))
    (Space.params space)

let full ?(levels = (0.0, 1.0)) ?(max_runs = 4096) obj =
  let space = obj.Objective.space in
  let n = Space.dims space in
  if n >= 63 || 1 lsl n > max_runs then
    invalid_arg "Factorial.full: too many parameters for a full design";
  let lv = level_values space levels in
  let runs = 1 lsl n in
  (* Response per corner; corner bit i set = parameter i at high. *)
  let responses =
    Array.init runs (fun corner ->
        let config =
          Array.init n (fun i ->
              let lo, hi = lv.(i) in
              if corner land (1 lsl i) <> 0 then hi else lo)
        in
        obj.Objective.eval config)
  in
  let half = float_of_int (runs / 2) in
  let main =
    Array.init n (fun i ->
        let acc = ref 0.0 in
        Array.iteri
          (fun corner y ->
            if corner land (1 lsl i) <> 0 then acc := !acc +. y
            else acc := !acc -. y)
          responses;
        !acc /. half)
  in
  let interactions =
    let out = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let acc = ref 0.0 in
        Array.iteri
          (fun corner y ->
            let si = corner land (1 lsl i) <> 0 in
            let sj = corner land (1 lsl j) <> 0 in
            if si = sj then acc := !acc +. y else acc := !acc -. y)
          responses;
        out := (i, j, !acc /. half) :: !out
      done
    done;
    Array.of_list (List.rev !out)
  in
  { names = param_names space; main; interactions; runs }

(* Standard Plackett-Burman generator rows (first row of the cyclic
   design); true = high level. *)
let pb_generators =
  [
    (8, [| true; true; true; false; true; false; false |]);
    (12, [| true; true; false; true; true; true; false; false; false; true; false |]);
    ( 16,
      [|
        true; true; true; true; false; true; false; true; true; false; false;
        true; false; false; false;
      |] );
    ( 20,
      [|
        true; true; false; false; true; true; true; true; false; true; false;
        true; false; false; false; false; true; true; false;
      |] );
    ( 24,
      [|
        true; true; true; true; true; false; true; false; true; true; false;
        false; true; true; false; false; true; false; true; false; false;
        false; false;
      |] );
  ]

let plackett_burman obj =
  let space = obj.Objective.space in
  let n = Space.dims space in
  let generator =
    List.find_opt (fun (runs, _) -> runs - 1 >= n) pb_generators
  in
  match generator with
  | None -> invalid_arg "Factorial.plackett_burman: more than 23 parameters"
  | Some (runs, row) ->
      let cols = runs - 1 in
      let lv = level_values space (0.0, 1.0) in
      (* Cyclic design: run r, column c = row.((c + r) mod cols); plus
         a final all-low run. *)
      let design =
        Array.init runs (fun r ->
            if r = runs - 1 then Array.make cols false
            else Array.init cols (fun c -> row.((c + r) mod cols)))
      in
      let responses =
        Array.map
          (fun signs ->
            let config =
              Array.init n (fun i ->
                  let lo, hi = lv.(i) in
                  if signs.(i) then hi else lo)
            in
            obj.Objective.eval config)
          design
      in
      let half = float_of_int (runs / 2) in
      let main =
        Array.init n (fun i ->
            let acc = ref 0.0 in
            Array.iteri
              (fun r y ->
                if design.(r).(i) then acc := !acc +. y else acc := !acc -. y)
              responses;
            !acc /. half)
      in
      { names = param_names space; main; interactions = [||]; runs }

let ranked_main t =
  let keyed = Array.mapi (fun i m -> (t.names.(i), m)) t.main in
  Array.sort (fun (_, a) (_, b) -> Float.compare (Float.abs b) (Float.abs a)) keyed;
  Array.to_list keyed

let interaction_ratio t =
  if Array.length t.interactions = 0 then 0.0
  else begin
    let max_main =
      Array.fold_left (fun acc m -> Float.max acc (Float.abs m)) 0.0 t.main
    in
    let max_inter =
      Array.fold_left
        (fun acc (_, _, e) -> Float.max acc (Float.abs e))
        0.0 t.interactions
    in
    if Float.equal max_main 0.0 then 0.0 else max_inter /. max_main
  end
