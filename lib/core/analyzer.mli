(** The data analyzer (Section 4.2, Figure 2).

    Before tuning starts, the analyzer observes a small number of
    sample requests to characterize the incoming workload (using a
    system-provided probe), classifies the characteristics against the
    experience database, and — on a match — prepares the tuning
    server: the best historical configurations seed the initial
    simplex, and any missing vertices get triangulation-estimated
    performances ({!Estimator}), so the expensive and oscillation-prone
    cold-start exploration is skipped.  Unrecognized workloads fall
    back to the default (no-training) tuning and their results become
    new experience. *)

open Harmony_objective

type t

val create : History.t -> t

val with_classifier : (History.t -> float array -> History.entry option) -> History.t -> t
(** Plug in a different classification mechanism (k-means, decision
    tree, MLP — see {!Harmony_ml}); the default is the paper's
    least-squares nearest neighbour ({!History.find_closest}). *)

val database : t -> History.t

val characterize : probe:(unit -> float array) -> samples:int -> float array
(** Average of [samples] probe observations — e.g. each observation is
    a web-interaction frequency vector from a short request window.
    Requires [samples >= 1]. *)

val classify : t -> float array -> History.entry option
(** The experience entry matching the observed characteristics, if
    any. *)

type preparation = {
  matched : History.entry option;   (** the experience used, if any *)
  init : Simplex.Init.t;            (** seeded init, or the fallback *)
  estimated_vertices : int;         (** vertices whose performance was
                                        triangulation-estimated *)
}

val prepare :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?fallback:Simplex.Init.t ->
  t ->
  Objective.t ->
  characteristics:float array ->
  preparation
(** Build the initial simplex for the observed workload: the matched
    entry's best distinct configurations (greedily diversified so the
    simplex keeps full rank) become the initial vertices.  When the
    stored characteristics match the observed ones exactly, their
    historical performances are trusted outright and any missing
    vertices get triangulation-estimated values; under a merely
    similar workload the configurations seed the simplex but are
    re-measured (stale values would anchor the search to a falsely
    good vertex).  Without a match, returns [fallback] (default
    {!Simplex.Init.Spread}) untouched.

    With a live [telemetry] handle the classification is bracketed by
    a [history.lookup] span, triangulation by an [estimator.fill]
    span, and the decision surfaces as a [history.matched] or
    [history.cold-start] instant. *)

val tune_with_experience :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?ctx:Harmony_telemetry.Telemetry.Ctx.t ->
  ?pool:Harmony_parallel.Pool.t ->
  ?options:Tuner.options ->
  ?label:string ->
  t ->
  Objective.t ->
  characteristics:float array ->
  Tuner.outcome * preparation
(** End-to-end: prepare from experience, tune, and record the new
    trace back into the database under the observed
    characteristics.  [pool] batches the tuner's deterministic
    evaluation phases across domains (see {!Tuner.tune}); the outcome
    is byte-identical with or without it. *)
