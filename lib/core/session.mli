(** High-level Active Harmony workflow.

    Ties the pieces together the way the paper's improved system uses
    them: (1) prioritize parameters once per new workload, (2) focus
    tuning on the top-n sensitive parameters, (3) characterize the
    incoming workload and train from the closest prior experience,
    (4) tune with the improved search refinement, and (5) store the
    run back into the experience database.

    {[
      let session = Session.create ~objective () in
      let report = Session.prioritize session in
      let outcome =
        Session.tune session ~top_n:6 ~characteristics ()
      in
      ...
    ]} *)

open Harmony_param
open Harmony_objective

type t

val create :
  objective:Objective.t -> ?db:History.t -> ?db_path:string ->
  ?checkpoint_every:int -> ?on_salvage:(int -> unit) ->
  ?options:Tuner.options -> ?measure:Measure.policy ->
  ?telemetry:Harmony_telemetry.Telemetry.t -> unit -> t
(** A session around an objective.  [db] defaults to a fresh empty
    database; with [db_path] instead, the database is loaded from that
    file when it exists ({!History.load_or_create}) and {!save_database}
    writes it back — experience then persists across executions.  A
    corrupt database file degrades to its salvageable prefix;
    [on_salvage] (if given) receives the dropped line count.

    [checkpoint_every] (requires [db_path]) turns on incremental
    durability: during {!tune}, every K completed evaluations the
    database is atomically re-saved with the evaluations made so far as
    a provisional "[in progress]" entry, so a mid-run kill loses at
    most K measurements.  A run that completes normally replaces the
    provisional snapshot with the clean final state.

    [options] defaults to {!Tuner.default_options} (improved spread
    init); [measure], when given, overrides [options.measure] and runs
    every tune through the fault-tolerant measurement pipeline.

    [telemetry], when a live handle, instruments the whole stack: each
    {!tune} runs under a [session.tune] root span, and the handle is
    passed down to the sensitivity sweep, the history lookup, the
    simplex kernel and the measurement pipeline.  Telemetry observes
    and never steers — results are byte-identical with it off.
    @raise Invalid_argument when both [db] and [db_path] are given,
    when [checkpoint_every < 1], or when [checkpoint_every] is given
    without [db_path]. *)

val save_database : t -> unit
(** Persist the experience database to the session's [db_path]; a
    no-op for sessions created without one. *)

val objective : t -> Objective.t
val database : t -> History.t

val prioritize : ?max_points:int -> t -> Sensitivity.report
(** Run the parameter prioritizing tool (cached: repeated calls return
    the first report). *)

val last_report : t -> Sensitivity.report option

type tune_result = {
  outcome : Tuner.outcome;
  tuned_indices : int list;       (** parameters actually tuned *)
  used_experience : bool;         (** true when history seeded the simplex *)
  full_best_config : Space.config; (** best configuration in the full space *)
  degraded : bool;  (** measurements kept failing: a vertex was
                        penalized after exhausting the retry policy, or
                        the budget ran out mid-faults — the result is
                        the best-known configuration, not a clean
                        convergence *)
  faults : int;     (** faulty readings the measurement pipeline saw *)
  retries : int;    (** physical re-measurements it spent on them *)
  projection : Subspace.t option;
      (** the subspace actually tuned when [top_n] was given; use
          {!trace_csv} to render the trace in the full space *)
}

val tune :
  ?top_n:int ->
  ?characteristics:float array ->
  ?label:string ->
  ?pool:Harmony_parallel.Pool.t ->
  ?options:Tuner.options ->
  t ->
  tune_result
(** Tune the objective.

    - With [top_n], only the n most sensitive parameters are tuned
      (running {!prioritize} first if needed); the rest stay at their
      defaults.
    - With [characteristics], the data analyzer seeds the simplex from
      the closest experience, and the run is recorded back into the
      database under those characteristics.
    - With [pool], the tuner's deterministic evaluation batches fan
      out across the pool's domains; the tuning result is
      byte-identical with or without it (see {!Tuner.tune}).
    - [options] overrides the session's tuner options for this run. *)

val trace_csv : t -> tune_result -> string
(** The run's tuning trace as CSV over the {e full} parameter space:
    header [iteration,<all param names...>,performance].  When the run
    was projected with [top_n], frozen parameters appear as constant
    columns at their pinned values (rather than being silently
    dropped, as rendering the subspace trace directly would). *)
