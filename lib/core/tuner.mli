(** The Active Harmony adaptation controller.

    Runs the {!Simplex} kernel against an objective while recording
    every (configuration, performance) measurement — the tuning
    trace.  The trace is what the paper's evaluation is about: not
    just the final configuration but the performance of the system
    {e while getting there} (Section 4.1), summarized by convergence
    time, worst performance, and oscillation statistics. *)

open Harmony_param
open Harmony_objective

type options = {
  init : Simplex.Init.t;
  max_evaluations : int;
  tolerance : float;
  measure : Measure.policy option;
      (** when set, every evaluation goes through the fault-tolerant
          measurement pipeline ({!Measure.robust}): retries with
          capped backoff, median-of-k vetting, and worst-case
          penalties for measurements that stay broken *)
  on_evaluation : (Recorder.entry -> unit) option;
      (** called after each recorded evaluation — the hook
          {!Session}'s incremental experience checkpointing uses *)
}

val default_options : options
(** [Spread] init, 400 evaluations, tolerance 1e-3, no measurement
    policy, no evaluation hook — mirror of
    {!Simplex.default_options}. *)

val original_options : options
(** The pre-improvement Active Harmony behaviour: [Extremes]
    initial simplex (Table 1's "original implementation"). *)

type outcome = {
  best_config : Space.config;
  best_performance : float;
  trace : Recorder.entry list;  (** every vetted measurement, in order;
                                    a given-up vertex appears with its
                                    penalty value *)
  evaluations : int;
  converged : bool;
  measurement : Measure.summary option;
      (** fault/retry accounting when [options.measure] was set *)
}

val tune :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?ctx:Harmony_telemetry.Telemetry.Ctx.t ->
  ?pool:Harmony_parallel.Pool.t ->
  ?options:options ->
  Objective.t ->
  outcome
(** With a live [telemetry] handle, each evaluation is bracketed by a
    [measure] span (the [End] carries the vetted performance), a
    [tuner.evaluations] counter counts them, and the handle is passed
    down to {!Simplex.optimize} (step spans) and {!Measure.robust}
    (retry/fault counters).  Telemetry observes and never steers: the
    tuning outcome is byte-identical with the handle off.

    With a trace context [ctx], every [measure] span carries the ids
    of a child context numbered in evaluation order
    ({!Harmony_telemetry.Telemetry.Ctx.child_i} with name
    ["measure"]), linking each physical measurement back to the run
    that requested it.  Batch evaluations emit their spans on the
    calling domain after the pool joins, so the ids — like the rest of
    the trace — are byte-identical at any domain count.

    With a [pool], the simplex phases that produce whole configuration
    sets (initial vertices, shrink, restarts) are measured as one
    {!Objective.eval_batch} each; the outcome, trace, and telemetry
    are byte-identical to the sequential run at any domain count. *)

val trace_csv : Space.t -> outcome -> string
(** The tuning trace as CSV: header
    [iteration,<param names...>,performance], one measurement per
    line — convenient for plotting the oscillation figures. *)

(** Trace summary metrics. *)
module Metrics : sig
  type t = {
    performance : float;            (** final best measured performance *)
    convergence_iteration : int;    (** the paper's "convergence time
                                        (iterations)" *)
    settling_iteration : int;       (** last iteration that still improved
                                        the best-so-far by >0.5% *)
    worst_performance : float;      (** Table 1's "worst performance" — worst
                                        measurement in the oscillation stage *)
    bad_iterations : int;           (** Table 2's count of bad-performance
                                        iterations *)
    initial_mean : float;           (** mean performance over the initial
                                        oscillation window *)
    initial_stddev : float;         (** its standard deviation — Table 2's
                                        "average (standard deviation)" *)
  }

  val of_outcome :
    ?convergence_fraction:float -> ?bad_fraction:float -> ?reference:float ->
    Objective.t -> outcome -> t
  (** [convergence_iteration] is the first measurement index (1-based)
      from which the best-so-far performance stays within
      [convergence_fraction] (default 0.05) of [reference] — the
      run's final best unless a common [reference] is given (compare
      two variants against the same target, as the paper's tables
      do).  [bad_iterations] counts measurements worse than
      [bad_fraction] (default 0.8) of the reference (direction-aware).
      The initial oscillation window is everything before convergence;
      [worst_performance], [initial_mean] and [initial_stddev] are
      computed over it. *)

  val pp : Format.formatter -> t -> unit
end
