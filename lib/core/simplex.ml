open Harmony_param
open Harmony_objective

let log_src = Logs.Src.create "harmony.simplex" ~doc:"Nelder-Mead tuning kernel"

module Log = (val Logs.src_log log_src)

module Init = struct
  type t =
    | Extremes
    | Spread
    | Around_default of float
    | Seeded of (Space.config * float option) list

  (* The original predefined simplex "tries the extreme values for the
     parameters" (Figure 1a): n+1 distinct corners of the box, rotating
     which half of the parameters sit at their maximum. *)
  let extremes space =
    let n = Space.dims space in
    let corner j =
      Array.init n (fun i ->
          let p = Space.param space i in
          if (i + j) mod (n + 1) < (n + 1) / 2 then p.Param.max_value
          else p.Param.min_value)
    in
    List.init (n + 1) (fun j -> (corner j, None))

  (* A staircase spread: vertex j places parameter i at the interior
     grid fraction (((i + j) mod (n+1)) + 1/2) / (n+1), so the n+1
     vertices jointly cover every (n+1)-ile of every parameter without
     touching the boundaries. *)
  let spread space =
    let n = Space.dims space in
    let vertex j =
      Array.init n (fun i ->
          let p = Space.param space i in
          let frac = (float_of_int ((i + j) mod (n + 1)) +. 0.5) /. float_of_int (n + 1) in
          Param.denormalize p frac)
    in
    List.init (n + 1) (fun j -> (vertex j, None))

  let around_default offset space =
    let n = Space.dims space in
    let base = Space.defaults space in
    let shifted i =
      let c = Array.copy base in
      let p = Space.param space i in
      let span = p.Param.max_value -. p.Param.min_value in
      let v = c.(i) +. (offset *. span) in
      (* Flip the offset direction rather than collapse onto the
         boundary. *)
      c.(i) <- (if v > p.Param.max_value then c.(i) -. (offset *. span) else v);
      c
    in
    (base, None) :: List.init n (fun i -> (shifted i, None))

  let dedup space vertices =
    let rec go seen = function
      | [] -> List.rev seen
      | (c, v) :: rest ->
          if List.exists (fun (c', _) -> Space.config_equal c c') seen then
            go seen rest
          else go ((c, v) :: seen) rest
    in
    go []
      (List.map (fun (c, v) -> (Space.snap space c, v)) vertices)

  let vertices t space =
    let n = Space.dims space in
    let raw =
      match t with
      | Extremes -> extremes space
      | Spread -> spread space
      | Around_default offset -> around_default offset space
      | Seeded seeds ->
          (* Fill up to n+1 vertices from a Spread simplex, skipping
             duplicates of the seeds. *)
          let seeds = dedup space seeds in
          let missing = (n + 1) - List.length seeds in
          if missing <= 0 then seeds
          else begin
            let fillers =
              List.filter
                (fun (c, _) ->
                  not (List.exists (fun (s, _) -> Space.config_equal c s) seeds))
                (spread space)
            in
            seeds @ List.filteri (fun i _ -> i < missing) fillers
          end
    in
    dedup space raw
end

type options = { init : Init.t; max_evaluations : int; tolerance : float }

let default_options = { init = Init.Spread; max_evaluations = 400; tolerance = 1e-3 }

type outcome = {
  best_config : Space.config;
  best_performance : float;
  evaluations : int;
  iterations : int;
  converged : bool;
}

type vertex = { config : Space.config; value : float }

(* Normalized simplex diameter: the largest pairwise Chebyshev
   distance in [0,1]^n coordinates. *)
let diameter space vertices =
  let norm = Array.map (fun v -> Space.normalize space v.config) vertices in
  let d = ref 0.0 in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if j > i then
            d := Float.max !d (Harmony_numerics.Stats.chebyshev_distance a b))
        norm)
    norm;
  !d

module Telemetry = Harmony_telemetry.Telemetry

let optimize ?(telemetry = Telemetry.off) ?pool ?(options = default_options) obj =
  let space = obj.Objective.space in
  let n = Space.dims space in
  if options.max_evaluations < n + 2 then
    invalid_arg "Simplex.optimize: budget below n+2 evaluations";
  let evaluations = ref 0 in
  (* Every measurement goes through the batch engine — the phases that
     produce whole config sets (initial simplex, shrink, restarts)
     issue one batch, single proposals are batches of one — so the
     evaluation sequence is identical with and without a pool. *)
  let eval_batch configs =
    evaluations := !evaluations + Array.length configs;
    Objective.eval_batch ?pool obj configs
  in
  let eval c = (eval_batch [| c |]).(0) in
  (* What the current simplex step did, for the step span's [kind]
     argument; set at each transformation site below. *)
  let step_kind = ref "none" in
  let budget_left () = !evaluations < options.max_evaluations in
  let iterations = ref 0 in
  let sort vertices =
    Array.sort
      (fun a b ->
        if Objective.better obj a.value b.value then -1
        else if Objective.better obj b.value a.value then 1
        else 0)
      vertices
  in
  let move ~from ~towards ~factor =
    Space.snap space
      (Array.mapi (fun d v -> v +. (factor *. (towards.(d) -. v))) from)
  in
  (* One Nelder-Mead run over a given simplex; returns with the
     simplex sorted, and whether it genuinely converged (by tolerance
     or because no transformation can change it any more). *)
  let search vertices =
    let k = Array.length vertices in
    sort vertices;
    let converged = ref false in
    let centroid () =
      let c = Array.make n 0.0 in
      for i = 0 to k - 2 do
        Array.iteri (fun d v -> c.(d) <- c.(d) +. v) vertices.(i).config
      done;
      Array.map (fun v -> v /. float_of_int (k - 1)) c
    in
    let is_vertex c =
      Array.exists (fun v -> Space.config_equal v.config c) vertices
    in
    let replace_worst kind v =
      step_kind := kind;
      vertices.(k - 1) <- v;
      sort vertices
    in
    (* Shrink every non-best vertex halfway towards the best one.  On a
       discrete grid this is the genuine fixpoint test: when shrinking
       moves nothing, the simplex cannot change any further. *)
    let shrink () =
      step_kind := "shrink";
      let best = vertices.(0) in
      (* Every move is computed from the pre-shrink simplex (each
         vertex shrinks towards the fixed best), so the changed
         vertices — capped at the remaining budget, in vertex order,
         exactly the set the per-vertex budget check admitted — can be
         evaluated as one batch. *)
      let rev_jobs = ref [] in
      let budget = ref (options.max_evaluations - !evaluations) in
      for i = 1 to k - 1 do
        let c = move ~from:vertices.(i).config ~towards:best.config ~factor:0.5 in
        if (not (Space.config_equal c vertices.(i).config)) && !budget > 0
        then begin
          decr budget;
          rev_jobs := (i, c) :: !rev_jobs
        end
      done;
      let jobs = Array.of_list (List.rev !rev_jobs) in
      let values = eval_batch (Array.map snd jobs) in
      Array.iteri
        (fun j (i, c) -> vertices.(i) <- { config = c; value = values.(j) })
        jobs;
      sort vertices;
      if Array.length jobs = 0 then converged := true
    in
    while budget_left () && not !converged do
      incr iterations;
      step_kind := "none";
      Telemetry.span_begin telemetry "simplex.step";
      Telemetry.incr telemetry "simplex.steps";
      if diameter space vertices <= options.tolerance then begin
        step_kind := "converged";
        converged := true
      end
      else begin
        let worst = vertices.(k - 1) in
        let second_worst = vertices.(k - 2) in
        let best = vertices.(0) in
        let cen = centroid () in
        (* Reflection of the worst vertex through the centroid; when
           snapping collapses it onto the simplex, fall through to
           contraction, then to a shrink. *)
        let reflected = move ~from:worst.config ~towards:cen ~factor:2.0 in
        if is_vertex reflected then begin
          let contracted = move ~from:worst.config ~towards:cen ~factor:0.5 in
          if is_vertex contracted || not (budget_left ()) then shrink ()
          else begin
            let v = eval contracted in
            if Objective.better obj v worst.value then
              replace_worst "contract" { config = contracted; value = v }
            else shrink ()
          end
        end
        else begin
          let rv = eval reflected in
          if Objective.better obj rv best.value && budget_left () then begin
            (* Try expanding further. *)
            let expanded = move ~from:worst.config ~towards:cen ~factor:3.0 in
            if Space.config_equal expanded reflected || is_vertex expanded then
              replace_worst "reflect" { config = reflected; value = rv }
            else begin
              let ev = eval expanded in
              if Objective.better obj ev rv then
                replace_worst "expand" { config = expanded; value = ev }
              else replace_worst "reflect" { config = reflected; value = rv }
            end
          end
          else if Objective.better obj rv second_worst.value then
            replace_worst "reflect" { config = reflected; value = rv }
          else if budget_left () then begin
            (* Contraction (keep the reflection if it at least beats
               the worst vertex). *)
            let contracted = move ~from:worst.config ~towards:cen ~factor:0.5 in
            if is_vertex contracted then
              if Objective.better obj rv worst.value then
                replace_worst "reflect" { config = reflected; value = rv }
              else shrink ()
            else begin
              let cv = eval contracted in
              if Objective.better obj cv worst.value then
                replace_worst "contract" { config = contracted; value = cv }
              else if Objective.better obj rv worst.value then
                replace_worst "reflect" { config = reflected; value = rv }
              else shrink ()
            end
          end
        end
      end;
      Telemetry.instant telemetry ("simplex." ^ !step_kind);
      Telemetry.span_end telemetry
        ~args:[ ("kind", Telemetry.Str !step_kind) ]
        "simplex.step"
    done;
    !converged
  in
  let eval_initial initial =
    (* Trusted vertices keep their value; the rest are evaluated as
       one batch — the first [budget-left] of them, exactly the set
       the sequential per-vertex budget check would have admitted. *)
    let missing =
      List.filter
        (fun (_, value) -> match value with None -> true | Some _ -> false)
        initial
    in
    let budget = Stdlib.max 0 (options.max_evaluations - !evaluations) in
    let admitted = List.filteri (fun i _ -> i < budget) missing in
    let values = eval_batch (Array.of_list (List.map fst admitted)) in
    let next = ref 0 in
    Array.of_list
      (List.filter_map
         (fun (config, value) ->
           match value with
           | Some v -> Some { config; value = v }
           | None ->
               if !next < Array.length values then begin
                 let v = values.(!next) in
                 incr next;
                 Some { config; value = v }
               end
               else None)
         initial)
  in
  let vertices =
    Telemetry.span telemetry "simplex.init" (fun () ->
        eval_initial (Init.vertices options.init space))
  in
  if Array.length vertices < 2 then
    invalid_arg "Simplex.optimize: degenerate initial simplex";
  let converged = ref (search vertices) in
  let best = ref vertices.(0) in
  (* Oriented restarts: a collapsed simplex loses dimensions (e.g.
     every vertex shares one coordinate) and can stall far from the
     optimum.  While budget remains, rebuild a fresh simplex around
     the incumbent best; the restart offset halves after each failed
     attempt, and the search only gives up once the smallest offset
     fails to improve. *)
  let min_offset = 0.05 in
  let offset = ref 0.25 in
  let keep_restarting = ref true in
  while
    budget_left () && !keep_restarting
    && !evaluations + n + 1 <= options.max_evaluations
  do
    let around =
      List.init n (fun i ->
          let c = Array.copy !best.config in
          let p = Space.param space i in
          let span = p.Param.max_value -. p.Param.min_value in
          let v = c.(i) +. (!offset *. span) in
          c.(i) <-
            (if v > p.Param.max_value then c.(i) -. (!offset *. span) else v);
          (c, None))
    in
    let restart =
      eval_initial ((!best.config, Some !best.value) :: Init.dedup space around)
    in
    if Array.length restart < 2 then keep_restarting := false
    else begin
      Telemetry.incr telemetry "simplex.restarts";
      let c =
        Telemetry.span telemetry "simplex.restart" (fun () -> search restart)
      in
      converged := c;
      if Objective.better obj restart.(0).value !best.value then begin
        Log.debug (fun m ->
            m "restart (offset %.2f) improved %g -> %g" !offset !best.value
              restart.(0).value);
        best := restart.(0)
      end
      else if !offset <= min_offset then keep_restarting := false;
      offset := Float.max min_offset (!offset /. 2.0)
    end
  done;
  Log.debug (fun m ->
      m "finished: best %g after %d evaluations (%d iterations, converged %b)"
        !best.value !evaluations !iterations !converged);
  {
    best_config = !best.config;
    best_performance = !best.value;
    evaluations = !evaluations;
    iterations = !iterations;
    converged = !converged;
  }
