open Harmony_param
open Harmony_objective

type score = {
  index : int;
  name : string;
  sensitivity : float;
  best_value : float;
  worst_value : float;
  evaluations : int;
}

type report = { scores : score array }

(* Evenly subsample [count] indices out of [0 .. n-1], endpoints
   included.  [count <= 1] degenerates to the first index alone (a
   one-point "sweep"); anything else would divide by [count - 1]. *)
let subsample n count =
  if n <= 0 then [||]
  else if count >= n then Array.init n Fun.id
  else if count <= 1 then [| 0 |]
  else
    Array.init count (fun i ->
        let f = float_of_int i /. float_of_int (count - 1) in
        int_of_float (Float.round (f *. float_of_int (n - 1))))

module Telemetry = Harmony_telemetry.Telemetry

let analyze ?(telemetry = Telemetry.off) ?pool ?(max_points = 16) ?(repeats = 1)
    obj =
  if max_points < 2 then invalid_arg "Sensitivity.analyze: max_points < 2";
  if repeats < 1 then invalid_arg "Sensitivity.analyze: repeats < 1";
  Telemetry.span telemetry "sensitivity" @@ fun () ->
  let space = obj.Objective.space in
  let defaults = Space.defaults space in
  let score_param index =
    let p = Space.param space index in
    let nv = Param.num_values p in
    let picks = subsample nv max_points in
    let values = Array.map (Param.value_at p) picks in
    let perfs =
      Array.map
        (fun v ->
          let c = Array.copy defaults in
          c.(index) <- v;
          let total = ref 0.0 in
          for _ = 1 to repeats do
            total := !total +. obj.Objective.eval c
          done;
          !total /. float_of_int repeats)
        values
    in
    (* argmax / argmin of the sweep. *)
    let a = ref 0 and b = ref 0 in
    Array.iteri
      (fun i perf ->
        if perf > perfs.(!a) then a := i;
        if perf < perfs.(!b) then b := i)
      perfs;
    let dp = Float.abs (perfs.(!a) -. perfs.(!b)) in
    let dv = Float.abs (Param.normalize p values.(!a) -. Param.normalize p values.(!b)) in
    let sensitivity = if Float.equal dv 0.0 then 0.0 else dp /. dv in
    {
      index;
      name = p.Param.name;
      sensitivity;
      best_value = values.(!a);
      worst_value = values.(!b);
      evaluations = Array.length values * repeats;
    }
  in
  let indices = Array.init (Space.dims space) Fun.id in
  let scores =
    (* One task per parameter: the one-at-a-time sweeps touch disjoint
       configurations and share no mutable state, so fanning them
       across domains preserves the sequential result exactly —
       provided the objective itself is deterministic.  A noisy
       objective draws from one shared stream, and the draw order then
       depends on scheduling: keep such analyses on the sequential
       path (or freeze the noise with [Objective.cached]). *)
    match pool with
    | Some pool when not (Objective.noisy obj) ->
        Harmony_parallel.Pool.map_array pool score_param indices
    | _ -> Array.map score_param indices
  in
  (* Per-parameter instants are emitted here, sequentially over the
     finished scores, so the trace is identical whether the sweeps ran
     pooled or not. *)
  Array.iter
    (fun s ->
      Telemetry.instant telemetry "sensitivity.param"
        ~args:
          [
            ("name", Telemetry.Str s.name);
            ("sensitivity", Telemetry.Num s.sensitivity);
          ];
      Telemetry.incr telemetry ~by:s.evaluations "sensitivity.evaluations")
    scores;
  { scores }

let ranked report =
  let scores = Array.copy report.scores in
  Array.sort
    (fun a b ->
      match Float.compare b.sensitivity a.sensitivity with
      | 0 -> Int.compare a.index b.index
      | c -> c)
    scores;
  scores

let top_n report n =
  let scores = ranked report in
  let n = max 0 (min n (Array.length scores)) in
  List.sort Int.compare (List.init n (fun i -> scores.(i).index))

let evaluations report =
  Array.fold_left (fun acc s -> acc + s.evaluations) 0 report.scores

let pp ppf report =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun s -> Format.fprintf ppf "%-24s %10.3f@," s.name s.sensitivity)
    (ranked report);
  Format.fprintf ppf "@]"
