open Harmony_param
open Harmony_objective

type score = {
  index : int;
  name : string;
  sensitivity : float;
  best_value : float;
  worst_value : float;
  evaluations : int;
}

type report = { scores : score array }

(* Evenly subsample [count] indices out of [0 .. n-1], endpoints
   included.  [count <= 1] degenerates to the first index alone (a
   one-point "sweep"); anything else would divide by [count - 1]. *)
let subsample n count =
  if n <= 0 then [||]
  else if count >= n then Array.init n Fun.id
  else if count <= 1 then [| 0 |]
  else
    Array.init count (fun i ->
        let f = float_of_int i /. float_of_int (count - 1) in
        int_of_float (Float.round (f *. float_of_int (n - 1))))

module Telemetry = Harmony_telemetry.Telemetry

let analyze ?(telemetry = Telemetry.off) ?pool ?(max_points = 16) ?(repeats = 1)
    obj =
  if max_points < 2 then invalid_arg "Sensitivity.analyze: max_points < 2";
  if repeats < 1 then invalid_arg "Sensitivity.analyze: repeats < 1";
  Telemetry.span telemetry "sensitivity" @@ fun () ->
  let space = obj.Objective.space in
  let defaults = Space.defaults space in
  (* Per-parameter sweep plans, flattened into one batch over every
     (parameter, value, repeat) in the exact sequential order — the
     one-at-a-time sweeps are independent, so the batch engine fans
     them across the pool while keeping the readings (and, for a noisy
     objective, the draw order — [eval_batch] then folds sequentially)
     byte-identical to the sequential per-parameter loops. *)
  let plans =
    Array.init (Space.dims space) (fun index ->
        let p = Space.param space index in
        let picks = subsample (Param.num_values p) max_points in
        (index, p, Array.map (Param.value_at p) picks))
  in
  let rev_configs = ref [] in
  Array.iter
    (fun (index, _, values) ->
      Array.iter
        (fun v ->
          let c = Array.copy defaults in
          c.(index) <- v;
          for _ = 1 to repeats do
            rev_configs := c :: !rev_configs
          done)
        values)
    plans;
  let all = Objective.eval_batch ?pool obj (Array.of_list (List.rev !rev_configs)) in
  let cursor = ref 0 in
  let scores =
    Array.map
      (fun (index, p, values) ->
        let perfs =
          Array.map
            (fun _ ->
              let total = ref 0.0 in
              for _ = 1 to repeats do
                total := !total +. all.(!cursor);
                incr cursor
              done;
              !total /. float_of_int repeats)
            values
        in
        (* argmax / argmin of the sweep. *)
        let a = ref 0 and b = ref 0 in
        Array.iteri
          (fun i perf ->
            if perf > perfs.(!a) then a := i;
            if perf < perfs.(!b) then b := i)
          perfs;
        let dp = Float.abs (perfs.(!a) -. perfs.(!b)) in
        let dv =
          Float.abs (Param.normalize p values.(!a) -. Param.normalize p values.(!b))
        in
        let sensitivity = if Float.equal dv 0.0 then 0.0 else dp /. dv in
        {
          index;
          name = p.Param.name;
          sensitivity;
          best_value = values.(!a);
          worst_value = values.(!b);
          evaluations = Array.length values * repeats;
        })
      plans
  in
  (* Per-parameter instants are emitted here, sequentially over the
     finished scores, so the trace is identical whether the sweeps ran
     pooled or not. *)
  Array.iter
    (fun s ->
      Telemetry.instant telemetry "sensitivity.param"
        ~args:
          [
            ("name", Telemetry.Str s.name);
            ("sensitivity", Telemetry.Num s.sensitivity);
          ];
      Telemetry.incr telemetry ~by:s.evaluations "sensitivity.evaluations")
    scores;
  { scores }

let ranked report =
  let scores = Array.copy report.scores in
  Array.sort
    (fun a b ->
      match Float.compare b.sensitivity a.sensitivity with
      | 0 -> Int.compare a.index b.index
      | c -> c)
    scores;
  scores

let top_n report n =
  let scores = ranked report in
  let n = max 0 (min n (Array.length scores)) in
  List.sort Int.compare (List.init n (fun i -> scores.(i).index))

let evaluations report =
  Array.fold_left (fun acc s -> acc + s.evaluations) 0 report.scores

let pp ppf report =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun s -> Format.fprintf ppf "%-24s %10.3f@," s.name s.sensitivity)
    (ranked report);
  Format.fprintf ppf "@]"
