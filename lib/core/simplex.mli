(** The Active Harmony tuning kernel: a Nelder-Mead simplex search
    adapted to discrete parameter spaces (paper Section 2), with
    pluggable initial-simplex strategies (Section 4.1).

    Continuous simplex proposals are snapped to the nearest grid
    point.  The search works directly under the objective's direction
    (maximizing WIPS or minimizing time). *)

open Harmony_param
open Harmony_objective

module Init : sig
  (** How the k+1 initial configurations are chosen. *)
  type t =
    | Extremes
        (** the original Active Harmony predefined simplex: n+1
            distinct corners of the box (rotating which half of the
            parameters sit at their maximum) — "tries the extreme
            values for the parameters" (Figure 1a) *)
    | Spread
        (** the paper's improvement: interior configurations equally
            distributed over the search space — "for each of n
            parameters, we increase 1/n of its extreme values every
            time in the first n explorations" (Figure 1b) *)
    | Around_default of float
        (** a simplex centred on the default configuration; the float
            is the per-parameter offset as a fraction of its range *)
    | Seeded of (Space.config * float option) list
        (** explicit vertices, e.g. from historical data.  A vertex
            with [Some perf] is {e trusted}: its (possibly estimated)
            performance is used without re-measuring — the paper's
            training stage (Sections 4.2-4.3).  Missing vertices are
            filled from a [Spread] simplex. *)

  val vertices : t -> Space.t -> (Space.config * float option) list
  (** The k+1 initial vertices (deduplicated, snapped). *)
end

type options = {
  init : Init.t;
  max_evaluations : int;  (** budget of objective evaluations *)
  tolerance : float;      (** stop when the normalized simplex diameter
                              falls below this *)
}

val default_options : options
(** [Spread] init, 400 evaluations, tolerance 1e-3. *)

type outcome = {
  best_config : Space.config;
  best_performance : float;
  evaluations : int;    (** objective evaluations actually spent *)
  iterations : int;     (** simplex transformation steps *)
  converged : bool;     (** true when stopped by the tolerance test *)
}

val optimize :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?pool:Harmony_parallel.Pool.t ->
  ?options:options ->
  Objective.t ->
  outcome
(** Run the search.  All proposals are snapped into the objective's
    space, so the objective is only ever called on valid grid
    configurations.

    Every measurement goes through {!Objective.eval_batch}: the phases
    that produce whole configuration sets — the initial simplex, the
    shrink step, each oriented restart — issue one batch, and with a
    [pool] those configurations are measured in parallel.  The
    evaluation sequence, budget accounting, and result are
    byte-identical with and without a pool at any domain count.

    With a live [telemetry] handle the search emits a [simplex.init]
    span around the initial-simplex evaluation, a [simplex.step] span
    per transformation step (its [kind] argument is
    reflect/expand/contract/shrink/converged, mirrored as a
    [simplex.<kind>] instant), a [simplex.restart] span per oriented
    restart, and [simplex.steps]/[simplex.restarts] counters.
    Telemetry observes and never steers: the search path is identical
    with the handle off. *)
