open Harmony_param
open Harmony_objective

type entry = {
  id : int;
  label : string;
  characteristics : float array;
  evaluations : (Space.config * float) list;
}

type t = { mutable rev_entries : entry list; mutable next_id : int }

let create () = { rev_entries = []; next_id = 0 }

let add t ?(label = "") ~characteristics ~evaluations () =
  let entry =
    {
      id = t.next_id;
      label;
      characteristics = Array.copy characteristics;
      evaluations =
        List.map (fun (c, p) -> (Array.copy c, p)) evaluations;
    }
  in
  t.rev_entries <- entry :: t.rev_entries;
  t.next_id <- t.next_id + 1;
  entry

let add_outcome t ?label ~characteristics outcome =
  let evaluations =
    List.map
      (fun e -> (e.Recorder.config, e.Recorder.performance))
      outcome.Tuner.trace
  in
  add t ?label ~characteristics ~evaluations ()

let entries t = List.rev t.rev_entries
let size t = List.length t.rev_entries

let find_closest t observed =
  let candidates =
    List.filter
      (fun e -> Array.length e.characteristics = Array.length observed)
      t.rev_entries
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
      let features = Array.of_list (List.map (fun e -> e.characteristics) candidates) in
      let idx = Harmony_ml.Nearest.nearest_index features observed in
      List.nth_opt candidates idx

let best_evaluations obj entry ~n =
  if n < 0 then invalid_arg "History.best_evaluations: negative n";
  let distinct =
    List.fold_left
      (fun acc (c, p) ->
        (* Keep the best measurement per distinct configuration. *)
        match List.find_opt (fun (c', _) -> Space.config_equal c c') acc with
        | Some (_, p') when not (Objective.better obj p p') -> acc
        | Some _ ->
            (c, p) :: List.filter (fun (c', _) -> not (Space.config_equal c c')) acc
        | None -> (c, p) :: acc)
      [] entry.evaluations
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) ->
        if Objective.better obj a b then -1
        else if Objective.better obj b a then 1
        else 0)
      distinct
  in
  List.filteri (fun i _ -> i < n) sorted

let merged_evaluations t =
  List.concat_map (fun e -> e.evaluations) (entries t)

let compress rng t ~max_entries =
  if max_entries < 1 then invalid_arg "History.compress: max_entries < 1";
  let all = Array.of_list (entries t) in
  let n = Array.length all in
  if n <= max_entries then begin
    let out = create () in
    Array.iter
      (fun e ->
        ignore
          (add out ~label:e.label ~characteristics:e.characteristics
             ~evaluations:e.evaluations ()))
      all;
    out
  end
  else begin
    let dim = Array.length all.(0).characteristics in
    Array.iter
      (fun e ->
        if Array.length e.characteristics <> dim then
          invalid_arg "History.compress: mixed characteristics arity")
      all;
    let features = Array.map (fun e -> e.characteristics) all in
    let { Harmony_ml.Kmeans.centroids; assignment; _ } =
      Harmony_ml.Kmeans.fit rng ~k:max_entries features
    in
    (* Representative per cluster: the member closest to the centroid;
       its evaluation log absorbs the whole cluster's (in id order). *)
    let out = create () in
    let emitted = Hashtbl.create max_entries in
    Array.iteri
      (fun i _ ->
        let cluster = assignment.(i) in
        if not (Hashtbl.mem emitted cluster) then begin
          Hashtbl.add emitted cluster ();
          let members =
            Array.to_list
              (Array.of_seq
                 (Seq.filter
                    (fun j -> assignment.(j) = cluster)
                    (Seq.init n Fun.id)))
          in
          let closest =
            let d e =
              Harmony_numerics.Stats.euclidean_distance
                all.(e).characteristics centroids.(cluster)
            in
            match members with
            | [] -> i (* unreachable: [i] is in its own cluster *)
            | m0 :: rest ->
                List.fold_left (fun best j -> if d j < d best then j else best) m0 rest
          in
          let evaluations =
            List.concat_map (fun j -> all.(j).evaluations) members
          in
          ignore
            (add out ~label:all.(closest).label
               ~characteristics:all.(closest).characteristics ~evaluations ())
        end)
      all;
    out
  end

(* ------------------------------------------------------------------ *)
(* Persistence: a line-oriented text format.

     entry <id> <label-with-%20-escapes>
     chars <x1> <x2> ...
     eval <perf> <c1> <c2> ...
     end
*)

let escape_label s =
  String.concat "%20" (String.split_on_char ' ' s)

(* Split on the literal substring "%20". *)
let unescape_label s =
  let sub = "%20" in
  let out = Buffer.create (String.length s) in
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i >= n then ()
    else if i + m <= n && String.sub s i m = sub then begin
      Buffer.add_char out ' ';
      go (i + m)
    end
    else begin
      Buffer.add_char out s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents out

let render t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry %d %s\n" e.id
           (if e.label = "" then "-" else escape_label e.label));
      Buffer.add_string buf "chars";
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf " %.17g" v))
        e.characteristics;
      Buffer.add_char buf '\n';
      List.iter
        (fun (c, p) ->
          Buffer.add_string buf (Printf.sprintf "eval %.17g" p);
          Array.iter
            (fun v -> Buffer.add_string buf (Printf.sprintf " %.17g" v))
            c;
          Buffer.add_char buf '\n')
        e.evaluations;
      Buffer.add_string buf "end\n")
    (entries t);
  Buffer.contents buf

(* A crash mid-save must never leave a truncated database: the file is
   replaced atomically (tmp + fsync + rename), so readers observe the
   old experience or the new, never a torn mixture. *)
let save t path = Harmony_persist.Persist.write_atomic ~path (render t)

(* Parse as far as the data is well-formed.  [t] accumulates the
   entries before the first malformed line; the malformed line and
   everything after it are dropped (their count is the warning).  An
   in-progress entry is only kept when nothing afterwards was
   malformed — a bad line inside an entry poisons that entry too. *)
let parse_lines lines =
  let t = create () in
  let current_label = ref None in
  let current_chars = ref [||] in
  let current_evals = ref [] in
  let flush_entry () =
    match !current_label with
    | None -> ()
    | Some label ->
        ignore
          (add t ~label ~characteristics:!current_chars
             ~evaluations:(List.rev !current_evals) ());
        current_label := None;
        current_chars := [||];
        current_evals := []
  in
  let floats values =
    List.map
      (fun v ->
        match float_of_string_opt v with
        | Some f -> f
        | None -> raise Exit)
      values
  in
  let rec go lines remaining =
    match lines with
    | [] ->
        flush_entry ();
        (t, 0, None)
    | line :: rest -> (
        let line = String.trim line in
        let malformed () =
          (t, remaining, Some ("History.load: malformed line: " ^ line))
        in
        if line = "" then go rest (remaining - 1)
        else
          match String.split_on_char ' ' line with
          | "entry" :: _id :: label :: _ ->
              flush_entry ();
              current_label :=
                Some (if label = "-" then "" else unescape_label label);
              go rest (remaining - 1)
          | "chars" :: values -> (
              match floats values with
              | vs ->
                  current_chars := Array.of_list vs;
                  go rest (remaining - 1)
              | exception Exit -> malformed ())
          | "eval" :: perf :: coords -> (
              match floats (perf :: coords) with
              | p :: cs ->
                  current_evals := (Array.of_list cs, p) :: !current_evals;
                  go rest (remaining - 1)
              | [] -> malformed ()
              | exception Exit -> malformed ())
          | [ "end" ] ->
              flush_entry ();
              go rest (remaining - 1)
          | _ -> malformed ())
  in
  go lines (List.length lines)

(* Split into lines without counting the virtual empty line a trailing
   newline produces — it would inflate the dropped-line count. *)
let lines_of contents =
  match List.rev (String.split_on_char '\n' contents) with
  | "" :: rev -> List.rev rev
  | [] | _ :: _ -> String.split_on_char '\n' contents

let load_salvage path =
  match Harmony_persist.Persist.read_file path with
  | None -> (create (), 0)
  | Some contents ->
      let t, dropped, _error = parse_lines (lines_of contents) in
      (t, dropped)

let load path =
  match Harmony_persist.Persist.read_file path with
  | None -> raise (Sys_error (path ^ ": cannot read"))
  | Some contents -> (
      match parse_lines (lines_of contents) with
      | t, _, None -> t
      | _, _, Some msg -> failwith msg)

let load_or_create ?warn path =
  if Sys.file_exists path then begin
    let t, dropped = load_salvage path in
    (match warn with
    | Some f when dropped > 0 -> f dropped
    | Some _ | None -> ());
    t
  end
  else create ()
