(** The Active Harmony tuning server.

    The system to be tuned registers its tunable parameters with a
    resource-specification-language program (Appendix B), then
    alternates between asking for the next configuration and reporting
    the measured performance; the server runs the adaptation
    controller behind the scenes.  The line-based message codec makes
    wrapping the server in a socket loop trivial, and the in-process
    {!handle} entry point is what the tests and examples use.

    {v
      client -> server          server -> client
      -----------------         -----------------
      register max              assign B=3 C=4
      { harmonyBundle B ... }
      query                     assign B=3 C=4
      report 42.5               assign B=4 C=2
      report failed             assign B=4 C=2   (re-assigned: retry it)
      report 57.0               ... eventually:
      query                     done B=4 C=2 perf=57.0
    v}

    Fault tolerance: a client whose trial run failed sends
    [report failed].  The server re-assigns the same configuration up
    to [max_report_failures - 1] times (the client retries with its
    own backoff); a configuration that stays broken is fed to the
    controller as a worst-case penalty so the search moves away from
    it, and when the budget runs out mid-faults the final [Done]
    degrades gracefully to the best configuration a client actually
    measured. *)

open Harmony_param

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
      (** RSL text; restarts the server's session *)
  | Query  (** what configuration should I run? *)
  | Report of float  (** performance of the last assigned configuration *)
  | Report_failed
      (** the last assigned configuration could not be measured (crash,
          timeout, invalid configuration) *)

type reply =
  | Assign of (string * int) list  (** bundle name, value — in spec order *)
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string  (** protocol or parse error *)

type t

val create :
  ?options:Simplex.options -> ?max_report_failures:int -> unit -> t
(** A server with no registered client yet.  [options] bounds each
    session's search (budget, tolerance, initial simplex).
    [max_report_failures] (default 3, must be >= 1) is how many
    consecutive [Report_failed] a configuration gets before it is
    penalized as worst-case and the search moves on.
    @raise Invalid_argument when [max_report_failures < 1]. *)

val handle : t -> message -> reply
(** Process one message.  [Query] before [Register], or
    [Report]/[Report_failed] without an outstanding assignment, yields
    [Rejected]; so does registering a spec that parses but cannot be
    tuned (e.g. a single feasible configuration — a degenerate initial
    simplex).  [handle] never raises: if the search kernel fails
    mid-session (a spec degenerate in one dimension is only detected
    once the initial vertices are measured), the session is aborted,
    the message is [Rejected], and the client must re-register.  Every
    assignment is feasible under the registered restrictions (box
    proposals are projected with {!Rsl.repair}). *)

val spec : t -> Rsl.t option
(** The currently registered specification, if any. *)

val fault_counters : t -> int * int
(** [(failed_reports, penalized)] for the current session:
    [Report_failed] messages received, and configurations written off
    as worst-case after exhausting their re-assignments.  [(0, 0)]
    when nothing is registered. *)

val parse_message : string -> (message, string) result
(** Parse the text form: ["register min|max\n<rsl...>"], ["query"],
    ["report <float>"], ["report failed"].  Total: never raises, even
    on arbitrary bytes (fuzzed in the property suite). *)

val reply_to_string : reply -> string
(** ["assign B=3 C=4"], ["done B=4 C=2 perf=57"], ["error <msg>"]. *)
