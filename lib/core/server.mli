(** The Active Harmony tuning server.

    The system to be tuned registers its tunable parameters with a
    resource-specification-language program (Appendix B), then
    alternates between asking for the next configuration and reporting
    the measured performance; the server runs the adaptation
    controller behind the scenes.  The line-based message codec makes
    wrapping the server in a socket loop trivial, and the in-process
    {!handle} entry point is what the tests and examples use.

    {v
      client -> server          server -> client
      -----------------         -----------------
      register max              assign B=3 C=4
      { harmonyBundle B ... }
      query                     assign B=3 C=4
      report 42.5               assign B=4 C=2
      report failed             assign B=4 C=2   (re-assigned: retry it)
      report 57.0               ... eventually:
      query                     done B=4 C=2 perf=57.0
    v}

    Fault tolerance: a client whose trial run failed sends
    [report failed].  The server re-assigns the same configuration up
    to [max_report_failures - 1] times (the client retries with its
    own backoff); a configuration that stays broken is fed to the
    controller as a worst-case penalty so the search moves away from
    it, and when the budget runs out mid-faults the final [Done]
    degrades gracefully to the best configuration a client actually
    measured.

    Durability: with {!attach_journal}, every state-changing message
    is appended to a write-ahead journal (length+CRC framed, fsync'd)
    {e before} it is applied, its reply right after.  {!recover}
    rebuilds the exact server state after a crash by replaying the
    journal over the last snapshot; because the whole search stack is
    deterministic, replay regenerates every reply byte-for-byte, and
    the recorded replies double as an integrity cross-check.  A torn
    or corrupt journal never raises — recovery degrades to the
    longest self-consistent prefix. *)

open Harmony_param

type direction = Minimize | Maximize

type message =
  | Register of { spec : string; direction : direction }
      (** RSL text; restarts the server's session *)
  | Query  (** what configuration should I run? *)
  | Report of float  (** performance of the last assigned configuration *)
  | Report_failed
      (** the last assigned configuration could not be measured (crash,
          timeout, invalid configuration) *)
  | Metrics
      (** read-only introspection: dump the server's telemetry
          registry (valid in any state, never journaled) *)

type reply =
  | Assign of (string * int) list  (** bundle name, value — in spec order *)
  | Done of { best : (string * int) list; performance : float }
  | Rejected of string  (** protocol or parse error *)
  | Stats of string
      (** the metrics registry in Prometheus text form (reply to
          {!Metrics}; empty when the server has no live telemetry
          handle) *)

type t

val create :
  ?options:Simplex.options -> ?max_report_failures:int ->
  ?reject_reregister:bool ->
  ?telemetry:Harmony_telemetry.Telemetry.t -> unit -> t
(** A server with no registered client yet.  [options] bounds each
    session's search (budget, tolerance, initial simplex).
    [max_report_failures] (default 3, must be >= 1) is how many
    consecutive [Report_failed] a configuration gets before it is
    penalized as worst-case and the search moves on.

    [reject_reregister] (default [false], preserving the historical
    restart-on-register behaviour) makes a [Register] arriving while a
    session is still mid-tuning answer with a total [Rejected] reply
    instead of silently discarding the live session; re-registering
    after the session finished (or aborted) still starts a fresh one.
    The sharded service sets this for every per-client session, so a
    duplicate register from an already-active client id is an error,
    not a session reset.

    With a live [telemetry] handle, every {!handle} call is bracketed
    by a [server.handle] span (its [kind] argument names the message),
    counted in [server.messages], and its latency observed in the
    [server.handle_ms] histogram (units are the handle's clock — inject
    a wall clock from [bin/] for real milliseconds); journal appends,
    fsyncs and compactions are counted under [server.journal.*].  The
    session's controller shares the handle, so the search kernel's
    [simplex.*] spans and instants advance the logical clock while a
    message is being handled — on the default logical clock,
    [server.handle_ms] therefore measures the {e search work} each
    message triggered (0 for an idempotent re-query, more for a step
    or a restart), which is what the service's p99 handle-latency SLO
    is asserted against.  The same registry is what the {!Metrics}
    message dumps.
    @raise Invalid_argument when [max_report_failures < 1]. *)

val handle :
  ?ctx:Harmony_telemetry.Telemetry.Ctx.t -> t -> message -> reply
(** Process one message.  [ctx] is the trace-correlation context for
    the message (the sharded service derives one per client message);
    without it the server derives a deterministic fallback root from
    its own arrival counter.  The [server.handle] span carries the
    context's ids, the search work and each WAL write get child spans
    ([server.search], [server.journal.append]), and the handle-latency
    observation attaches the trace id as a bucket exemplar.

    [Query] before [Register], or
    [Report]/[Report_failed] without an outstanding assignment, yields
    [Rejected]; so does registering a spec that parses but cannot be
    tuned (e.g. a single feasible configuration — a degenerate initial
    simplex).  [handle] never raises: if the search kernel fails
    mid-session (a spec degenerate in one dimension is only detected
    once the initial vertices are measured), the session is aborted,
    the message is [Rejected], and the client must re-register.  Every
    assignment is feasible under the registered restrictions (box
    proposals are projected with {!Rsl.repair}). *)

val spec : t -> Rsl.t option
(** The currently registered specification, if any. *)

val fault_counters : t -> int * int
(** [(failed_reports, penalized)] for the current session:
    [Report_failed] messages received, and configurations written off
    as worst-case after exhausting their re-assignments.  [(0, 0)]
    when nothing is registered. *)

val parse_message : string -> (message, string) result
(** Parse the text form: ["register min|max\n<rsl...>"], ["query"],
    ["report <float>"], ["report failed"], ["metrics"].  Total: never
    raises, even on arbitrary bytes (fuzzed in the property suite). *)

val reply_to_string : reply -> string
(** ["assign B=3 C=4"], ["done B=4 C=2 perf=57"], ["error <msg>"];
    [Stats] renders as ["stats"] followed by the Prometheus text on
    subsequent lines (the only multi-line reply). *)

val message_to_string : message -> string
(** Inverse of {!parse_message} (reports render with enough digits to
    round-trip the float exactly — journal replay depends on it). *)

(** {1 Durability & crash recovery} *)

(** One journal record: a client message as received, the reply the
    server produced for it (rendered with {!reply_to_string}), or a
    message the admission layer shed before it reached the server.
    All carry the message's sequence number; replies to received
    messages are cross-checks that deterministic replay must
    regenerate byte-for-byte, while a shed message's reply is replayed
    literally (the message never touched state, and admission state is
    not replayable). *)
module Event : sig
  type t = Recv of message | Reply of string | Shed of message

  val encode : seq:int -> t -> string
  (** The journal-record payload: ["<seq> recv <message>"],
      ["<seq> reply <reply>"] or ["<seq> shed <message>"]. *)

  val decode : string -> (int * t) option
  (** Total inverse of {!encode}; [None] on anything malformed. *)
end

val attach_journal :
  ?compact_every:int ->
  ?wrap:(Harmony_persist.Persist.sink -> Harmony_persist.Persist.sink) ->
  t ->
  journal:string ->
  unit ->
  unit
(** Start write-ahead journaling to [journal] (plus
    [journal ^ ".snapshot"] for compaction).  Attach to a {e fresh}
    server: any existing files at those paths are discarded — use
    {!recover} to resume a previous run.  Every [Register], [Report]
    and [Report_failed] is made durable (fsync) before it mutates
    state; [Query] is read-only and not journaled.  Once the journal
    exceeds [compact_every] records (default 64) it is compacted: the
    current session's replayable essence is written atomically to the
    snapshot and the journal restarts empty, so the on-disk footprint
    stays O(current session).  [wrap] interposes on the journal's file
    sink (the crash harness injects {!Harmony_persist.Persist.fault_sink}
    here).  While journaling, {!handle} can raise the sink's I/O
    exceptions ({!Harmony_persist.Persist.Crashed}, [Sys_error],
    [Unix.Unix_error]): a server that cannot persist an event must not
    acknowledge it.
    @raise Invalid_argument when [compact_every < 1]. *)

val detach_journal : t -> unit
(** Stop journaling and close the file; the journal and snapshot are
    left on disk exactly as last written (recoverable). *)

val journal_shed : t -> message -> reply:string -> unit
(** Make an admission-layer rejection durable: journal
    [Event.Shed message] plus the literal [reply] text under the next
    sequence number, without applying the message.  Recovery replays
    the recorded reply byte-for-byte.  No-op when no journal is
    attached; only meaningful for messages that would be journaled
    ([Register] / [Report] / [Report_failed]).
    @raise Invalid_argument for [Query]/[Metrics] with a journal
    attached (those are never journaled, shed or not). *)

type recovery = {
  server : t;  (** rebuilt server, already journaling to the same path *)
  last_reply : reply option;
      (** reply to the last durable message — [None] when nothing was
          replayed; a resuming client can simply send [query] *)
  replayed : int;  (** client messages re-applied *)
  dropped : int;
      (** decoded records discarded: stale (superseded by the
          snapshot), malformed, or past the first replay divergence —
          torn trailing bytes are dropped by the frame scan before
          records exist and are not counted *)
}

val recover :
  ?options:Simplex.options ->
  ?max_report_failures:int ->
  ?reject_reregister:bool ->
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?compact_every:int ->
  journal:string ->
  unit ->
  recovery
(** Rebuild a server from [journal] (and its snapshot) after a crash:
    load the snapshot's events, append the journal's (skipping records
    the snapshot already covers), and replay the client messages in
    order through the deterministic search stack, checking each
    recorded reply.  [options], [max_report_failures] and
    [reject_reregister] must match the crashed server's for replay to
    be faithful.  Never raises on
    corrupt input: missing files recover to a fresh server, torn or
    corrupt tails are dropped, and the first inconsistency ends the
    replay — the longest valid prefix wins.  On the way out the
    recovered state is compacted into a fresh snapshot, so a crash
    loop cannot re-accumulate damage.  With a live [telemetry] handle
    the replay totals surface as [server.recovery.replayed] /
    [server.recovery.dropped] gauges.
    @raise Invalid_argument when [compact_every < 1] (and [Sys_error] /
    [Unix.Unix_error] if the files cannot be re-opened for writing). *)

val journal_evaluations : string -> ((string * int) list * float) list
(** The client-measured evaluations of the journal's current session,
    oldest first: each [Report] paired with the assignment it
    measured.  This is what flows into the experience database, so a
    recovered run's entry can be compared byte-for-byte with an
    uninterrupted one.  Total: corrupt input yields the valid
    prefix. *)
