open Harmony_param
open Harmony_objective

module Telemetry = Harmony_telemetry.Telemetry

type t = {
  objective : Objective.t;
  db : History.t;
  db_path : string option;
  checkpoint_every : int option;
  options : Tuner.options;
  telemetry : Telemetry.t;
  mutable report : Sensitivity.report option;
  mutable tunes : int;  (* tune calls so far; seeds each run's trace root *)
}

let create ~objective ?db ?db_path ?checkpoint_every ?on_salvage
    ?(options = Tuner.default_options) ?measure ?(telemetry = Telemetry.off) () =
  (match (checkpoint_every, db_path) with
  | Some k, (Some _ | None) when k < 1 ->
      invalid_arg "Session.create: checkpoint_every must be >= 1"
  | Some _, None ->
      invalid_arg "Session.create: checkpoint_every requires db_path"
  | Some _, Some _ | None, (Some _ | None) -> ());
  let db =
    match (db, db_path) with
    | Some _, Some _ -> invalid_arg "Session.create: both db and db_path given"
    | Some db, None -> db
    | None, Some path -> History.load_or_create ?warn:on_salvage path
    | None, None -> History.create ()
  in
  let options =
    match measure with
    | None -> options
    | Some _ -> { options with Tuner.measure }
  in
  { objective; db; db_path; checkpoint_every; options; telemetry;
    report = None; tunes = 0 }

let save_database t =
  match t.db_path with None -> () | Some path -> History.save t.db path

let objective t = t.objective
let database t = t.db

let prioritize ?max_points t =
  match t.report with
  | Some report -> report
  | None ->
      let report =
        Sensitivity.analyze ~telemetry:t.telemetry ?max_points t.objective
      in
      t.report <- Some report;
      report

let last_report t = t.report

type tune_result = {
  outcome : Tuner.outcome;
  tuned_indices : int list;
  used_experience : bool;
  full_best_config : Space.config;
  degraded : bool;
  faults : int;
  retries : int;
  projection : Subspace.t option;
}

(* A provisional snapshot of the database for a mid-run checkpoint: the
   committed entries plus one in-progress entry holding the evaluations
   made so far.  Built on a copy so the live database never contains
   the provisional entry. *)
let checkpoint_database t ?label ?characteristics evaluations path =
  let copy = History.create () in
  List.iter
    (fun e ->
      ignore
        (History.add copy ~label:e.History.label
           ~characteristics:e.History.characteristics
           ~evaluations:e.History.evaluations ()))
    (History.entries t.db);
  ignore
    (History.add copy
       ~label:(Option.value label ~default:"run" ^ " [in progress]")
       ~characteristics:(Option.value characteristics ~default:[||])
       ~evaluations ());
  History.save copy path

let tune ?top_n ?characteristics ?label ?pool ?options t =
  let options = Option.value options ~default:t.options in
  (* Each run gets a trace root derived from the session's own call
     counter, so a multi-run session's traces are distinguishable and
     the ids are reproducible without any ambient state. *)
  t.tunes <- t.tunes + 1;
  let ctx = Telemetry.Ctx.root ~client:"session" ~seq:t.tunes in
  Telemetry.span t.telemetry ~args:(Telemetry.Ctx.args ctx) "session.tune"
  @@ fun () ->
  (* Opt-in incremental durability: every [checkpoint_every] completed
     evaluations, persist the experience gathered so far, so a mid-run
     kill loses at most that many measurements. *)
  let options =
    match (t.checkpoint_every, t.db_path) with
    | None, (Some _ | None) | Some _, None -> options
    | Some every, Some path ->
        let rev_pending = ref [] in
        let since_save = ref 0 in
        let base = options.Tuner.on_evaluation in
        let hook entry =
          (match base with None -> () | Some f -> f entry);
          rev_pending :=
            (Array.copy entry.Recorder.config, entry.Recorder.performance)
            :: !rev_pending;
          incr since_save;
          if !since_save >= every then begin
            since_save := 0;
            checkpoint_database t ?label ?characteristics
              (List.rev !rev_pending) path
          end
        in
        { options with Tuner.on_evaluation = Some hook }
  in
  (* Optional projection onto the most sensitive parameters. *)
  let projection =
    match top_n with
    | None -> None
    | Some n ->
        let report = prioritize t in
        let indices = Sensitivity.top_n report n in
        Some (Subspace.project t.objective ~indices ())
  in
  let working_objective =
    match projection with
    | None -> t.objective
    | Some sub -> Subspace.objective sub
  in
  let outcome, used_experience =
    match characteristics with
    | None ->
        ( Tuner.tune ~telemetry:t.telemetry ~ctx ?pool ~options
            working_objective,
          false )
    | Some characteristics ->
        let analyzer = Analyzer.create t.db in
        let outcome, preparation =
          Analyzer.tune_with_experience ~telemetry:t.telemetry ~ctx ?pool
            ~options ?label analyzer working_objective ~characteristics
        in
        (outcome, preparation.Analyzer.matched <> None)
  in
  let tuned_indices =
    match projection with
    | None -> List.init (Space.dims t.objective.Objective.space) Fun.id
    | Some sub -> Subspace.indices sub
  in
  let full_best_config =
    match projection with
    | None -> outcome.Tuner.best_config
    | Some sub -> Subspace.embed sub outcome.Tuner.best_config
  in
  let degraded, faults, retries =
    match outcome.Tuner.measurement with
    | None -> (false, 0, 0)
    | Some s ->
        (* Degraded: some vertex kept failing and was penalized, or the
           budget ran out while the pipeline was still fighting faults. *)
        ( s.Measure.give_ups > 0
          || (s.Measure.faults > 0 && not outcome.Tuner.converged),
          s.Measure.faults,
          s.Measure.retries )
  in
  (* With checkpointing on, replace the last provisional snapshot with
     the clean end-of-run state (the recorded entry when characteristics
     were given, no in-progress residue either way). *)
  (match (t.checkpoint_every, t.db_path) with
  | None, (Some _ | None) | Some _, None -> ()
  | Some _, Some _ -> save_database t);
  { outcome; tuned_indices; used_experience; full_best_config; degraded;
    faults; retries; projection }

(* The tuning trace in the *full* parameter space: with [~top_n] the
   tuner only saw the projected subspace, so each trace configuration
   is embedded back (frozen parameters at their pinned values) before
   rendering.  Rendering the subspace trace directly would silently
   drop the frozen columns. *)
let trace_csv t result =
  let outcome =
    match result.projection with
    | None -> result.outcome
    | Some sub ->
        {
          result.outcome with
          Tuner.trace =
            List.map
              (fun e ->
                { e with Recorder.config = Subspace.embed sub e.Recorder.config })
              result.outcome.Tuner.trace;
        }
  in
  Tuner.trace_csv t.objective.Objective.space outcome
