open Harmony_param
open Harmony_objective

let log_src = Logs.Src.create "harmony.analyzer" ~doc:"Workload data analyzer"

module Log = (val Logs.src_log log_src)

type t = {
  db : History.t;
  classifier : History.t -> float array -> History.entry option;
}

let with_classifier classifier db = { db; classifier }
let create db = with_classifier History.find_closest db
let database t = t.db

let characterize ~probe ~samples =
  if samples < 1 then invalid_arg "Analyzer.characterize: samples < 1";
  let first = probe () in
  let acc = Array.copy first in
  for _ = 2 to samples do
    let obs = probe () in
    if Array.length obs <> Array.length acc then
      invalid_arg "Analyzer.characterize: probe arity changed";
    Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) obs
  done;
  Array.map (fun v -> v /. float_of_int samples) acc

let classify t observed = t.classifier t.db observed

type preparation = {
  matched : History.entry option;
  init : Simplex.Init.t;
  estimated_vertices : int;
}

module Telemetry = Harmony_telemetry.Telemetry

let prepare ?(telemetry = Telemetry.off) ?(fallback = Simplex.Init.Spread) t obj
    ~characteristics =
  let matched =
    Telemetry.span telemetry "history.lookup" (fun () ->
        classify t characteristics)
  in
  match matched with
  | None ->
      Log.info (fun m -> m "no matching experience; cold start");
      Telemetry.instant telemetry "history.cold-start";
      { matched = None; init = fallback; estimated_vertices = 0 }
  | Some entry ->
      let space = obj.Objective.space in
      let dims = Space.dims space in
      (* Seed vertices are chosen for quality *and* diversity: the
         best historical configurations of one run cluster tightly
         around its optimum, and a degenerate simplex cannot adapt
         when the new workload's optimum lies elsewhere.  Greedily
         pick, among the better half of the history, the point
         farthest from the seeds chosen so far. *)
      let pool = History.best_evaluations obj entry ~n:max_int in
      let pool =
        let len = List.length pool in
        List.filteri (fun i _ -> 2 * i <= len) pool
      in
      let seeds =
        match pool with
        | [] -> []
        | best :: rest ->
            let dist a b = Space.distance space a b in
            let rec pick chosen remaining =
              if List.length chosen >= dims + 1 || remaining = [] then
                List.rev chosen
              else begin
                let score (c, _) =
                  List.fold_left
                    (fun acc (s, _) -> Float.min acc (dist c s))
                    infinity chosen
                in
                let farthest =
                  List.fold_left
                    (fun acc cand ->
                      match acc with
                      | None -> Some cand
                      | Some a -> if score cand > score a then Some cand else acc)
                    None remaining
                in
                match farthest with
                | None -> List.rev chosen
                | Some cand ->
                    pick (cand :: chosen)
                      (List.filter (fun c -> c != cand) remaining)
              end
            in
            pick [ best ] rest
      in
      (* Historical performance values are only trusted when the
         stored characteristics match the observed ones exactly; under
         a different workload the configurations still seed the
         simplex but are re-measured, since stale values would anchor
         the search to a falsely good vertex. *)
      let exact_match =
        Array.length entry.History.characteristics = Array.length characteristics
        && Harmony_numerics.Stats.euclidean_distance entry.History.characteristics
             characteristics
           < 1e-9
      in
      let trusted =
        List.map
          (fun (c, p) ->
            (Space.snap space c, if exact_match then Some p else None))
          seeds
      in
      let missing = (dims + 1) - List.length trusted in
      let estimated =
        if missing <= 0 || not exact_match then []
        else begin
          (* Fill the simplex with spread vertices whose performance is
             estimated by triangulation over the entry's history. *)
          let spread = Simplex.Init.vertices Simplex.Init.Spread space in
          let candidates =
            List.filter
              (fun (c, _) ->
                not (List.exists (fun (s, _) -> Space.config_equal c s) trusted))
              spread
          in
          let targets =
            List.filteri (fun i _ -> i < missing) (List.map fst candidates)
          in
          let points =
            List.map (fun (c, p) -> (Space.snap space c, p)) entry.History.evaluations
          in
          if points = [] then List.map (fun c -> (c, None)) targets
          else
            Telemetry.span telemetry "estimator.fill" (fun () ->
                List.map
                  (fun (c, p) -> (c, Some p))
                  (Estimator.fill ~space ~points ~targets ()))
        end
      in
      let estimated_vertices =
        List.length (List.filter (fun (_, p) -> p <> None) estimated)
      in
      Log.info (fun m ->
          m "matched experience %S (%d seeds, %d estimated, trusted %b)"
            entry.History.label (List.length trusted) estimated_vertices
            exact_match);
      Telemetry.instant telemetry "history.matched"
        ~args:
          [
            ("label", Telemetry.Str entry.History.label);
            ("seeds", Telemetry.Int (List.length trusted));
            ("estimated", Telemetry.Int estimated_vertices);
            ("trusted", Telemetry.Bool exact_match);
          ];
      {
        matched = Some entry;
        init = Simplex.Init.Seeded (trusted @ estimated);
        estimated_vertices;
      }

let tune_with_experience ?(telemetry = Telemetry.off) ?ctx ?pool
    ?(options = Tuner.default_options) ?label t obj ~characteristics =
  let preparation =
    prepare ~telemetry ~fallback:options.Tuner.init t obj ~characteristics
  in
  let options = { options with Tuner.init = preparation.init } in
  let outcome = Tuner.tune ~telemetry ?ctx ?pool ~options obj in
  ignore (History.add_outcome t.db ?label ~characteristics outcome);
  (outcome, preparation)
