open Harmony_param
open Harmony_objective

type options = {
  init : Simplex.Init.t;
  max_evaluations : int;
  tolerance : float;
  measure : Measure.policy option;
  on_evaluation : (Recorder.entry -> unit) option;
}

let default_options =
  {
    init = Simplex.Init.Spread;
    max_evaluations = 400;
    tolerance = 1e-3;
    measure = None;
    on_evaluation = None;
  }

let original_options = { default_options with init = Simplex.Init.Extremes }

type outcome = {
  best_config : Space.config;
  best_performance : float;
  trace : Recorder.entry list;
  evaluations : int;
  converged : bool;
  measurement : Measure.summary option;
}

module Telemetry = Harmony_telemetry.Telemetry

let tune ?(telemetry = Telemetry.off) ?ctx ?pool ?(options = default_options)
    obj =
  (* With a measurement policy, every evaluation the kernel requests
     goes through the fault-tolerant pipeline; a measurement that
     exhausts the policy evaluates to the worst-case penalty, so the
     simplex walks away from the failed vertex instead of being
     poisoned by it. *)
  let measured, handle =
    match options.measure with
    | None -> (obj, None)
    | Some policy ->
        let robust, handle = Measure.robust ~telemetry ~policy obj in
        (robust, Some handle)
  in
  (* A [measure] span per evaluation, closed with the vetted reading.
     Wrapping below the recorder keeps the span around the physical
     measurement; the recorder's own hook still fires in entry order. *)
  (* Trace correlation: each [measure] span is a child of [ctx],
     numbered in evaluation order.  The counter only ever advances on
     the calling domain (eval is sequential; batch spans are emitted
     after the pool joins), so the ids are a function of the
     evaluation sequence alone — identical at any pool size. *)
  let measure_seq = ref 0 in
  let measure_args () =
    match ctx with
    | None -> []
    | Some c ->
        let i = !measure_seq in
        incr measure_seq;
        Telemetry.Ctx.args (Telemetry.Ctx.child_i c "measure" i)
  in
  let traced =
    if not (Telemetry.enabled telemetry) then measured
    else
      {
        measured with
        Objective.eval =
          (fun c ->
            Telemetry.span_begin telemetry ~args:(measure_args ()) "measure";
            Telemetry.incr telemetry "tuner.evaluations";
            match measured.Objective.eval c with
            | v ->
                Telemetry.span_end telemetry
                  ~args:[ ("performance", Telemetry.Num v) ]
                  "measure";
                v
            | exception e ->
                Telemetry.span_end telemetry "measure";
                raise e);
        (* A batch emits its [measure] spans after the underlying
           evaluations return, one per reading in input order on the
           calling domain — the trace stays deterministic at any pool
           size (the spans bracket no wall time; the logical clock
           just orders them). *)
        batch =
          Some
            (fun disp configs ->
              let values = Objective.run_batch measured disp configs in
              Array.iter
                (fun v ->
                  Telemetry.span_begin telemetry ~args:(measure_args ())
                    "measure";
                  Telemetry.incr telemetry "tuner.evaluations";
                  Telemetry.span_end telemetry
                    ~args:[ ("performance", Telemetry.Num v) ]
                    "measure")
                values;
              values);
      }
  in
  let recorder, recorded = Recorder.wrap ?on_record:options.on_evaluation traced in
  let simplex_options =
    {
      Simplex.init = options.init;
      max_evaluations = options.max_evaluations;
      tolerance = options.tolerance;
    }
  in
  let result = Simplex.optimize ~telemetry ?pool ~options:simplex_options recorded in
  let trace = Recorder.entries recorder in
  (* The best *measured* point can beat the simplex's final best
     vertex (e.g. a good vertex was later shrunk away); report the
     best measurement, as a real tuning server would keep it.  With a
     seeded (trusted) simplex the trace can also be empty or worse
     than a trusted vertex, in which case the simplex result wins. *)
  let best_config, best_performance =
    match Recorder.best obj recorder with
    | Some e when Objective.better obj e.Recorder.performance result.Simplex.best_performance ->
        (e.Recorder.config, e.Recorder.performance)
    | Some _ | None -> (result.Simplex.best_config, result.Simplex.best_performance)
  in
  {
    best_config;
    best_performance;
    trace;
    evaluations = result.Simplex.evaluations;
    converged = result.Simplex.converged;
    measurement = Option.map Measure.summary handle;
  }

let trace_csv space outcome =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "iteration";
  Array.iter
    (fun p ->
      Buffer.add_char buf ',';
      Buffer.add_string buf p.Param.name)
    (Space.params space);
  Buffer.add_string buf ",performance\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (string_of_int (e.Recorder.index + 1));
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%g" v))
        e.Recorder.config;
      Buffer.add_string buf (Printf.sprintf ",%g\n" e.Recorder.performance))
    outcome.trace;
  Buffer.contents buf

module Metrics = struct
  type t = {
    performance : float;
    convergence_iteration : int;
    settling_iteration : int;
    worst_performance : float;
    bad_iterations : int;
    initial_mean : float;
    initial_stddev : float;
  }

  (* Direction-aware test: is [p] within [frac] of [target]? *)
  let within obj frac target p =
    match obj.Objective.direction with
    | Objective.Higher_is_better -> p >= target *. (1.0 -. frac)
    | Objective.Lower_is_better -> p <= target *. (1.0 +. frac)

  let of_outcome ?(convergence_fraction = 0.05) ?(bad_fraction = 0.8) ?reference
      obj outcome =
    let perfs =
      Array.of_list (List.map (fun e -> e.Recorder.performance) outcome.trace)
    in
    let n = Array.length perfs in
    if n = 0 then
      {
        performance = outcome.best_performance;
        convergence_iteration = 0;
        settling_iteration = 0;
        worst_performance = outcome.best_performance;
        bad_iterations = 0;
        initial_mean = outcome.best_performance;
        initial_stddev = 0.0;
      }
    else begin
      let final_best = outcome.best_performance in
      let reference = Option.value reference ~default:final_best in
      (* Best-so-far series. *)
      let best_so_far = Array.make n perfs.(0) in
      for i = 1 to n - 1 do
        best_so_far.(i) <-
          (if Objective.better obj perfs.(i) best_so_far.(i - 1) then perfs.(i)
           else best_so_far.(i - 1))
      done;
      let convergence_iteration =
        let rec find i =
          if i >= n then n
          else if within obj convergence_fraction reference best_so_far.(i) then
            i + 1
          else find (i + 1)
        in
        find 0
      in
      (* Last iteration that still improved the incumbent by more than
         0.5% (relative): how long the tuner kept finding better
         configurations. *)
      let settling_iteration =
        let last = ref 1 in
        for i = 1 to n - 1 do
          let prev = best_so_far.(i - 1) in
          if
            Objective.better obj best_so_far.(i) prev
            && Float.abs (best_so_far.(i) -. prev) > 0.005 *. Float.abs prev
          then last := i + 1
        done;
        !last
      in
      let bad_threshold =
        match obj.Objective.direction with
        | Objective.Higher_is_better -> fun p -> p < reference *. bad_fraction
        | Objective.Lower_is_better -> fun p -> p > reference /. bad_fraction
      in
      let bad_iterations =
        Array.fold_left (fun acc p -> if bad_threshold p then acc + 1 else acc) 0 perfs
      in
      (* The initial oscillation stage: everything before convergence. *)
      let window = Array.sub perfs 0 (max 1 convergence_iteration) in
      {
        performance = final_best;
        convergence_iteration;
        settling_iteration;
        worst_performance = Objective.worst_of obj window;
        bad_iterations;
        initial_mean = Harmony_numerics.Stats.mean window;
        initial_stddev = Harmony_numerics.Stats.stddev window;
      }
    end

  let pp ppf t =
    Format.fprintf ppf
      "perf=%.2f converge@%d settle@%d worst=%.2f bad=%d initial=%.2f (%.2f)"
      t.performance t.convergence_iteration t.settling_iteration
      t.worst_performance t.bad_iterations t.initial_mean t.initial_stddev
end
