(** Online (server-driven) tuning.

    Active Harmony is a {e runtime} tuning system: the application
    reports one performance measurement at a time and the adaptation
    controller replies with the next configuration to try (Section 2).
    This module inverts the {!Simplex} kernel into exactly that
    request/report protocol — the same search, one measurement per
    exchange — using OCaml 5 effect handlers, so the online behaviour
    is identical to {!Simplex.optimize} by construction.

    {[
      let c = Controller.create ~space ~direction:Higher_is_better () in
      let rec loop () =
        match Controller.pending c with
        | `Measure config ->
            Controller.report c (run_application_with config);
            loop ()
        | `Done outcome -> outcome
      in
      loop ()
    ]} *)

open Harmony_param
open Harmony_objective

type t

val create :
  ?telemetry:Harmony_telemetry.Telemetry.t ->
  ?options:Simplex.options ->
  space:Space.t ->
  direction:Objective.direction ->
  unit ->
  t
(** A fresh controller; the first {!pending} call already has a
    configuration to measure (unless the initial simplex is fully
    trusted).

    [telemetry] is threaded into the inverted {!Simplex.optimize}
    kernel, so a live handle sees the search's init/step/restart spans
    as the client's reports drive it.  Because the kernel suspends
    mid-span between messages, a span opened while handling one
    message may close while handling a later one — the {e metrics}
    derived from these events (logical-clock durations, step counters)
    are exact and deterministic, but strict stack nesting of the raw
    trace is not guaranteed across messages.  Default: {!Telemetry.off}. *)

val pending : t -> [ `Measure of Space.config | `Done of Simplex.outcome ]
(** What the controller wants next: a configuration to measure, or the
    final outcome.  Idempotent until {!report} is called. *)

val report : t -> float -> unit
(** Supply the measurement for the configuration last returned by
    {!pending}.
    @raise Invalid_argument if the search already finished or no
    measurement is outstanding. *)

val measurements : t -> int
(** Measurements reported so far. *)

val best_so_far : t -> (Space.config * float) option
(** Best (configuration, performance) among reported measurements
    under the controller's direction. *)
