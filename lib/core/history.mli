(** The experience (data characteristics) database (Section 4.2).

    Each entry pairs a workload-characteristics vector with the
    tuning experience gathered under that workload: every
    (configuration, performance) measurement, in order.  Lookups use
    the paper's least-squares classification — return the entry whose
    stored characteristics minimize the squared distance to the
    observed ones.  Entries persist in a plain-text format so
    experience accumulates across executions. *)

open Harmony_param
open Harmony_objective

type entry = {
  id : int;
  label : string;                 (** free-form tag, e.g. the mix name *)
  characteristics : float array;
  evaluations : (Space.config * float) list;  (** oldest first *)
}

type t

val create : unit -> t

val add :
  t -> ?label:string -> characteristics:float array ->
  evaluations:(Space.config * float) list -> unit -> entry
(** Appends an entry (ids are assigned sequentially) and returns it. *)

val add_outcome :
  t -> ?label:string -> characteristics:float array -> Tuner.outcome -> entry
(** Convenience: store a tuning run's trace as an entry. *)

val entries : t -> entry list
val size : t -> int

val find_closest : t -> float array -> entry option
(** Least-squares nearest entry; [None] on an empty database or when
    no entry has characteristics of the query's arity. *)

val best_evaluations : Objective.t -> entry -> n:int -> (Space.config * float) list
(** The entry's [n] best measurements under the objective's direction
    (distinct configurations, best first). *)

val merged_evaluations : t -> (Space.config * float) list
(** All measurements across all entries, oldest entry first. *)

val compress : Harmony_numerics.Rng.t -> t -> max_entries:int -> t
(** Bound the database size with the data analyzer's clustering
    mechanisms (Figure 2): k-means over the stored characteristics,
    keeping one representative entry per cluster (the one closest to
    the centroid) with the evaluation logs of its cluster merged into
    it.  Entries keep their original relative order.  Returns a new
    database; the input is untouched.
    @raise Invalid_argument if entries have differing characteristics
    arity or [max_entries < 1]. *)

val save : t -> string -> unit
(** Write to a file (text format, one record per line group).  The
    write is atomic ({!Harmony_persist.Persist.write_atomic}): a crash
    mid-save leaves the previous contents intact, never a truncated or
    corrupt database.
    @raise Sys_error (or [Unix.Unix_error]) on I/O failure. *)

val load : string -> t
(** Read a database written by {!save}.
    @raise Failure on a malformed file, [Sys_error] on I/O failure. *)

val load_salvage : string -> t * int
(** Tolerant read: the entries before the first malformed line, plus
    the number of lines dropped (0 on a clean file; a missing or
    unreadable file salvages to an empty database).  An entry cut
    short by the malformed line is dropped with it.  Never raises. *)

val load_or_create : ?warn:(int -> unit) -> string -> t
(** {!load_salvage} if the file exists, a fresh empty database
    otherwise — the natural open for experience that accumulates
    across executions.  Corrupt input degrades to the salvageable
    prefix instead of raising; [warn] (if given) receives the dropped
    line count when it is non-zero. *)
