open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

(* Performance = 50*a + 5*b, c irrelevant: a clean top-n landscape. *)
let space =
  Space.create
    [
      Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"b" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"c" ~lo:0 ~hi:10 ~default:5 ();
    ]

let obj =
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      (50.0 *. c.(0)) +. (5.0 *. c.(1)))

let test_prioritize_cached () =
  let count = ref 0 in
  let counted = { obj with Objective.eval = (fun c -> incr count; obj.Objective.eval c) } in
  let session = Session.create ~objective:counted () in
  Alcotest.(check bool) "no report yet" true (Session.last_report session = None);
  let r1 = Session.prioritize session in
  let after_first = !count in
  let r2 = Session.prioritize session in
  Alcotest.(check bool) "cached" true (r1 == r2);
  Alcotest.(check int) "no extra evaluations" after_first !count;
  Alcotest.(check bool) "report exposed" true (Session.last_report session = Some r1)

let test_tune_full_space () =
  let session = Session.create ~objective:obj () in
  let r = Session.tune session in
  Alcotest.(check (list int)) "all indices" [ 0; 1; 2 ] r.Session.tuned_indices;
  Alcotest.(check bool) "no experience" false r.Session.used_experience;
  Alcotest.(check bool) "found a good point" true
    (r.Session.outcome.Tuner.best_performance > 500.0)

let test_tune_top_n_projects () =
  let session = Session.create ~objective:obj () in
  let r = Session.tune ~top_n:1 session in
  Alcotest.(check (list int)) "most sensitive only" [ 0 ] r.Session.tuned_indices;
  (* The full-space best config keeps b and c at their defaults. *)
  Alcotest.(check (float 1e-9)) "b frozen" 5.0 r.Session.full_best_config.(1);
  Alcotest.(check (float 1e-9)) "c frozen" 5.0 r.Session.full_best_config.(2);
  Alcotest.(check (float 1e-9)) "a maximized" 10.0 r.Session.full_best_config.(0)

let test_tune_with_characteristics_records () =
  let db = History.create () in
  let session = Session.create ~objective:obj ~db () in
  let r1 = Session.tune ~characteristics:[| 0.9; 0.1 |] ~label:"w1" session in
  Alcotest.(check bool) "first run is cold" false r1.Session.used_experience;
  Alcotest.(check int) "recorded" 1 (History.size db);
  let r2 = Session.tune ~characteristics:[| 0.9; 0.1 |] ~label:"w1-again" session in
  Alcotest.(check bool) "second run reuses experience" true r2.Session.used_experience;
  Alcotest.(check int) "recorded again" 2 (History.size db)

let test_tune_options_override () =
  let count = ref 0 in
  let counted = { obj with Objective.eval = (fun c -> incr count; obj.Objective.eval c) } in
  let session = Session.create ~objective:counted () in
  let _ = Session.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 12 } session in
  Alcotest.(check bool) "budget honoured" true (!count <= 12)

let test_top_n_and_characteristics_compose () =
  let db = History.create () in
  let session = Session.create ~objective:obj ~db () in
  let _ = Session.tune ~top_n:2 ~characteristics:[| 0.5 |] session in
  let r = Session.tune ~top_n:2 ~characteristics:[| 0.5 |] session in
  Alcotest.(check bool) "experience reused in the subspace" true r.Session.used_experience;
  Alcotest.(check (list int)) "subspace indices" [ 0; 1 ] r.Session.tuned_indices;
  Alcotest.(check (float 1e-9)) "c frozen" 5.0 r.Session.full_best_config.(2)

let test_db_path_persists () =
  let path = Filename.temp_file "harmony_session" ".db" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let s1 = Session.create ~objective:obj ~db_path:path () in
      let _ = Session.tune ~characteristics:[| 0.3 |] s1 in
      Session.save_database s1;
      (* A new session picks up the stored experience. *)
      let s2 = Session.create ~objective:obj ~db_path:path () in
      Alcotest.(check int) "experience survived" 1 (History.size (Session.database s2));
      let r = Session.tune ~characteristics:[| 0.3 |] s2 in
      Alcotest.(check bool) "warm start" true r.Session.used_experience)

let test_db_and_path_conflict () =
  Alcotest.check_raises "both given"
    (Invalid_argument "Session.create: both db and db_path given") (fun () ->
      ignore
        (Session.create ~objective:obj ~db:(History.create ()) ~db_path:"/tmp/x" ()))

let test_save_without_path_is_noop () =
  let s = Session.create ~objective:obj () in
  Session.save_database s

let with_db_path f =
  let path = Filename.temp_file "harmony_session" ".db" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* An objective that "crashes the process" (raises) after [n]
   successful evaluations — the mid-run kill of the checkpoint tests. *)
let crashing_after n =
  let count = ref 0 in
  {
    obj with
    Objective.eval =
      (fun c ->
        incr count;
        if !count > n then raise Exit else obj.Objective.eval c);
  }

let test_checkpoint_validation () =
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Session.create: checkpoint_every must be >= 1")
    (fun () ->
      ignore
        (Session.create ~objective:obj ~db_path:"/tmp/x" ~checkpoint_every:0 ()));
  Alcotest.check_raises "no db_path"
    (Invalid_argument "Session.create: checkpoint_every requires db_path")
    (fun () -> ignore (Session.create ~objective:obj ~checkpoint_every:4 ()))

let test_checkpoint_bounds_loss () =
  with_db_path (fun path ->
      let completed = 10 and k = 3 in
      let session =
        Session.create ~objective:(crashing_after completed) ~db_path:path
          ~checkpoint_every:k ()
      in
      (match Session.tune ~label:"w" ~characteristics:[| 0.5 |] session with
      | exception Exit -> ()
      | _ -> Alcotest.fail "expected the mid-run crash to propagate");
      (* The checkpoint file is a complete, clean database... *)
      let db, dropped = History.load_salvage path in
      Alcotest.(check int) "checkpoint file is clean" 0 dropped;
      Alcotest.(check int) "one provisional entry" 1 (History.size db);
      let e = List.hd (History.entries db) in
      Alcotest.(check bool) "marked in progress" true
        (String.ends_with ~suffix:"[in progress]" e.History.label);
      (* ...holding every evaluation up to the last checkpoint: a kill
         loses at most K measurements. *)
      let persisted = List.length e.History.evaluations in
      Alcotest.(check int) "persisted at the last multiple of K"
        (completed / k * k) persisted;
      Alcotest.(check bool) "lost at most K" true (completed - persisted < k))

let test_checkpoint_clean_completion_replaces_provisional () =
  with_db_path (fun path ->
      let session =
        Session.create ~objective:obj ~db_path:path ~checkpoint_every:2
          ~options:{ Tuner.default_options with Tuner.max_evaluations = 9 }
          ()
      in
      let _ = Session.tune ~label:"w1" ~characteristics:[| 0.5 |] session in
      (* Strict load: the final state is clean, with the committed entry
         and no in-progress residue. *)
      let db = History.load path in
      Alcotest.(check int) "single committed entry" 1 (History.size db);
      Alcotest.(check string) "clean label" "w1"
        (List.hd (History.entries db)).History.label)

let test_checkpoint_without_characteristics_clears () =
  with_db_path (fun path ->
      let session =
        Session.create ~objective:obj ~db_path:path ~checkpoint_every:2
          ~options:{ Tuner.default_options with Tuner.max_evaluations = 9 }
          ()
      in
      let _ = Session.tune session in
      (* Provisional checkpoints were written during the run, but an
         unrecorded run's clean final state is an empty database. *)
      Alcotest.(check int) "no residue" 0 (History.size (History.load path)))

let test_create_surfaces_salvage_warning () =
  with_db_path (fun path ->
      let oc = open_out_bin path in
      output_string oc "entry 0 ok\nchars 1\neval 10 1\nend\ngarbage\n";
      close_out oc;
      let warned = ref 0 in
      let s =
        Session.create ~objective:obj ~db_path:path
          ~on_salvage:(fun n -> warned := n)
          ()
      in
      Alcotest.(check int) "salvage warning surfaced" 1 !warned;
      Alcotest.(check int) "prefix loaded" 1 (History.size (Session.database s)))

let suite =
  [
    Alcotest.test_case "prioritize cached" `Quick test_prioritize_cached;
    Alcotest.test_case "tune full space" `Quick test_tune_full_space;
    Alcotest.test_case "tune top_n projects" `Quick test_tune_top_n_projects;
    Alcotest.test_case "characteristics recorded" `Quick test_tune_with_characteristics_records;
    Alcotest.test_case "options override" `Quick test_tune_options_override;
    Alcotest.test_case "top_n + characteristics" `Quick test_top_n_and_characteristics_compose;
    Alcotest.test_case "db_path persists" `Quick test_db_path_persists;
    Alcotest.test_case "db and db_path conflict" `Quick test_db_and_path_conflict;
    Alcotest.test_case "save without path" `Quick test_save_without_path_is_noop;
    Alcotest.test_case "checkpoint validation" `Quick test_checkpoint_validation;
    Alcotest.test_case "checkpoint bounds loss" `Quick test_checkpoint_bounds_loss;
    Alcotest.test_case "checkpoint clean completion" `Quick
      test_checkpoint_clean_completion_replaces_provisional;
    Alcotest.test_case "checkpoint clears unrecorded run" `Quick
      test_checkpoint_without_characteristics_clears;
    Alcotest.test_case "create surfaces salvage warning" `Quick
      test_create_surfaces_salvage_warning;
  ]
