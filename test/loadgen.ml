(* Seeded, wall-clock-free load generator for the sharded service.

   Drives N simulated clients (default 10,000) through their whole
   lifecycle — register -> assign/report (with occasional idempotent
   queries and transient report-failures) -> done -> deregister — over
   interleaved schedules: every round each still-active client
   contributes its next message in a seeded-shuffled order and the
   whole round goes through [Service.handle_batch] on a domain pool.

   Two assertions close the loop:

   - Convergence/serializability: after the run, every client's
     recorded message sequence is replayed against a dedicated
     single-session [Server] and each reply must match the service's
     byte-for-byte (so 10k interleaved conversations were exactly N
     independent ones).

   - SLO: the p99 of the merged [server.handle_ms] histogram — logical
     ticks of search work per message, measured on the shards' logical
     clocks, so the number is deterministic — must stay within the
     budget checked into bench/service_slo.json.

   Everything is seeded; there is no wall clock anywhere in the run
   (wall time appears only in the human-readable summary). *)

open Harmony
module Service = Harmony_service.Service
module Pool = Harmony_parallel.Pool
module Rng = Harmony_numerics.Rng
module Telemetry = Harmony_telemetry.Telemetry
module Tjson = Harmony_telemetry.Tjson

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

let options = { Simplex.default_options with Simplex.max_evaluations = 12 }

type phase = Start | Tuning | Finishing | Finished

type client = {
  id : string;
  rng : Rng.t;
  direction : Server.direction;
  peak_b : float;
  peak_c : float;
  mutable phase : phase;
  mutable last_assign : (string * int) list option;
  mutable fail_budget : int;
  mutable sent : Server.message list;  (* newest first *)
  mutable service_replies : string list;  (* newest first *)
  mutable done_text : string option;
}

(* Performance is a pure function of (client, assignment): a bowl whose
   peak/valley location is drawn from the client's seed, so every
   client runs a different but perfectly reproducible search. *)
let respond c assignment =
  let v name = float_of_int (List.assoc name assignment) in
  let db = v "B" -. c.peak_b and dc = v "C" -. c.peak_c in
  let bowl = (db *. db) +. (dc *. dc) in
  match c.direction with
  | Server.Maximize -> 100.0 -. bowl
  | Server.Minimize -> bowl

let make_client master i =
  let rng = Rng.split master in
  {
    id = Printf.sprintf "c%d" i;
    direction = (if Rng.bool rng then Server.Maximize else Server.Minimize);
    peak_b = float_of_int (Rng.int_in rng 1 8);
    peak_c = float_of_int (Rng.int_in rng 1 4);
    rng;
    phase = Start;
    last_assign = None;
    fail_budget = 1;
    sent = [];
    service_replies = [];
    done_text = None;
  }

(* The client's next message given where its conversation stands.
   Server-protocol payloads are recorded for the reference replay;
   the final deregister is service-level and is not. *)
let next_message c =
  let payload p =
    c.sent <- p :: c.sent;
    Service.Client { client = c.id; payload = p }
  in
  match c.phase with
  | Start ->
      c.phase <- Tuning;
      payload (Server.Register { spec = paper_spec; direction = c.direction })
  | Tuning -> (
      match c.last_assign with
      | None -> payload Server.Query
      | Some a ->
          let roll = Rng.int c.rng 20 in
          if roll = 0 then payload Server.Query
          else if roll = 1 && c.fail_budget > 0 then begin
            c.fail_budget <- c.fail_budget - 1;
            payload Server.Report_failed
          end
          else payload (Server.Report (respond c a)))
  | Finishing | Finished -> Service.Deregister { client = c.id }

let protocol_failure = ref None

let fail_once fmt =
  Printf.ksprintf
    (fun msg -> if Option.is_none !protocol_failure then protocol_failure := Some msg)
    fmt

let on_reply c reply =
  match (c.phase, reply) with
  | (Start | Tuning), Service.Client_reply { client; reply } ->
      if not (String.equal client c.id) then
        fail_once "%s: reply routed to wrong client %s" c.id client;
      c.service_replies <- Server.reply_to_string reply :: c.service_replies;
      (match reply with
      | Server.Assign a -> c.last_assign <- Some a
      | Server.Done _ ->
          c.phase <- Finishing;
          c.done_text <- Some (Server.reply_to_string reply)
      | Server.Rejected msg -> fail_once "%s: rejected: %s" c.id msg
      | Server.Stats _ -> fail_once "%s: unexpected stats reply" c.id)
  | Finishing, Service.Deregistered { client } ->
      if not (String.equal client c.id) then
        fail_once "%s: bye routed to wrong client %s" c.id client;
      c.phase <- Finished
  | ( (Start | Tuning | Finishing | Finished),
      ( Service.Client_reply _ | Service.Deregistered _
      | Service.Service_stats _ | Service.Service_error _ ) ) as pr ->
      let _, r = pr in
      fail_once "%s: unexpected reply %s" c.id
        (String.concat " | "
           (String.split_on_char '\n' (Service.reply_to_string r)))

(* Replay the client's recorded conversation against a dedicated
   single-session server; every reply must match what the service
   said, byte for byte. *)
let reference_mismatches c =
  let server = Server.create ~options ~reject_reregister:true () in
  let sent = List.rev c.sent and got = List.rev c.service_replies in
  if List.length sent <> List.length got then 1
  else
    List.fold_left2
      (fun bad m expected ->
        let actual = Server.reply_to_string (Server.handle server m) in
        if String.equal actual expected then bad else bad + 1)
      0 sent got

let load_slo path =
  match Tjson.parse (In_channel.with_open_bin path In_channel.input_all) with
  | Error e -> Error (path ^ ": " ^ e)
  | Ok json -> (
      let field name conv =
        Option.bind (Tjson.member name json) conv
      in
      match
        ( field "histogram" Tjson.to_str,
          field "quantile" Tjson.to_float,
          field "max_ticks" Tjson.to_float )
      with
      | Some h, Some q, Some m -> Ok (h, q, m)
      | _ -> Error (path ^ ": missing histogram/quantile/max_ticks"))

let () =
  let clients = ref 10_000 in
  let shards = ref 8 in
  let domains = ref 4 in
  let seed = ref 2004 in
  let slo_path = ref "bench/service_slo.json" in
  let max_rounds = ref 400 in
  Arg.parse
    [
      ("--clients", Arg.Set_int clients, "N  simulated clients (default 10000)");
      ("--shards", Arg.Set_int shards, "N  service shards (default 8)");
      ("--domains", Arg.Set_int domains, "N  pool domains (default 4)");
      ("--seed", Arg.Set_int seed, "N  master seed (default 2004)");
      ("--slo", Arg.Set_string slo_path,
       "PATH  SLO budget (default bench/service_slo.json)");
      ("--max-rounds", Arg.Set_int max_rounds,
       "N  abort if the run does not drain (default 400)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [options]: drive the sharded service and check the SLO";
  let started = Unix.gettimeofday () in
  let master = Rng.create !seed in
  let fleet = Array.init !clients (make_client master) in
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~shards:!shards ()
  in
  let schedule_rng = Rng.split master in
  let rounds = ref 0 in
  let messages = ref 0 in
  Pool.with_pool ~domains:!domains (fun pool ->
      let remaining () =
        let ixs = ref [] in
        Array.iteri
          (fun i c ->
            match c.phase with
            | Finished -> ()
            | Start | Tuning | Finishing -> ixs := i :: !ixs)
          fleet;
        Array.of_list !ixs
      in
      let rec drive () =
        let active = remaining () in
        if Array.length active > 0 then begin
          incr rounds;
          if !rounds > !max_rounds then begin
            Printf.eprintf "loadgen: %d clients still active after %d rounds\n"
              (Array.length active) !max_rounds;
            exit 1
          end;
          Rng.shuffle schedule_rng active;
          let with_stats = !rounds mod 16 = 1 in
          let batch =
            Array.to_list (Array.map (fun i -> next_message fleet.(i)) active)
          in
          let batch = if with_stats then batch @ [ Service.Service_metrics ] else batch in
          messages := !messages + List.length batch;
          let replies = Service.handle_batch ~pool service batch in
          List.iteri
            (fun k reply ->
              if k < Array.length active then
                on_reply fleet.(active.(k)) reply
              else
                match reply with
                | Service.Service_stats _ -> ()
                | ( Service.Client_reply _ | Service.Deregistered _
                  | Service.Service_error _ ) as r ->
                    fail_once "service-metrics answered with %s"
                      (Service.reply_to_string r))
            replies;
          drive ()
        end
      in
      drive ();
      (* Every conversation must have fully drained through [done]. *)
      if Service.sessions service <> 0 then
        fail_once "%d sessions survived deregistration"
          (Service.sessions service);
      Array.iter
        (fun c -> if Option.is_none c.done_text then
            fail_once "%s never converged" c.id)
        fleet;
      (* Convergence + serializability: reference replay, fanned over
         the same pool. *)
      let mismatches =
        Array.fold_left ( + ) 0 (Pool.map_array pool reference_mismatches fleet)
      in
      let merged = Service.merged_telemetry service in
      let slo =
        match load_slo !slo_path with
        | Ok slo -> slo
        | Error msg ->
            Printf.eprintf "loadgen: %s\n" msg;
            exit 1
      in
      let hist_name, q, budget = slo in
      let p_q, p50, count =
        match List.assoc_opt hist_name (Telemetry.histograms merged) with
        | None -> (nan, nan, 0)
        | Some snap ->
            (Telemetry.quantile snap q, Telemetry.quantile snap 0.5, snap.count)
      in
      let slo_ok = Float.is_finite p_q && p_q <= budget in
      let elapsed = Unix.gettimeofday () -. started in
      Printf.printf
        "loadgen: clients=%d shards=%d domains=%d seed=%d rounds=%d \
         messages=%d handled=%d\n"
        !clients !shards !domains !seed !rounds !messages count;
      Printf.printf "loadgen: %s p50=%g p%g=%g budget=%g -> %s\n" hist_name p50
        (q *. 100.) p_q budget
        (if slo_ok then "within SLO" else "SLO VIOLATED");
      Printf.printf "loadgen: reference mismatches=%d (%.1fs wall)\n" mismatches
        elapsed;
      (match !protocol_failure with
      | Some msg -> Printf.printf "loadgen: protocol failure: %s\n" msg
      | None -> ());
      if mismatches > 0 || (not slo_ok) || Option.is_some !protocol_failure
      then exit 1)
