(* Seeded, wall-clock-free load and chaos generator for the sharded
   service.

   Closed-loop mode (default) drives N simulated clients (10,000 by
   default) through their whole lifecycle — register -> assign/report
   (with occasional idempotent queries and transient report-failures)
   -> done -> deregister — every still-active client contributing its
   next message each round through [Service.handle_batch_env] on a
   domain pool.

   Open-loop mode (--open-loop L) instead offers a sustained L x the
   service's admission capacity (shards x --max-inflight): a seeded
   arrival process keeps ~L x capacity conversations live regardless
   of how fast the service drains them, with seeded bursts, slow-client
   stalls, and a fraction of poisoned evaluations carrying deadlines
   tight enough to expire once the edge starts pushing back.  Rejected
   clients honor the [retry-after=N] hint and re-offer the same
   message; every client must still converge.

   Chaos mode (--chaos, open-loop only) additionally journals every
   shard and arms a fault-injecting sink on a seeded victim shard, so
   the journal crashes mid-burst; the driver recovers with
   [Service.recover], re-arms the next fault, resynchronizes every
   client whose message was in flight (an idempotent query against the
   per-client reference decides whether the lost message was applied),
   and keeps driving.

   Three assertions close the loop:

   - Totality: the service never raises (in chaos mode, the armed
     [Persist.Crashed] is the one expected exception, and only while a
     fault is armed).

   - Convergence/serializability: every accepted reply must match, byte
     for byte, what a dedicated single-session [Server] says to the
     same conversation — admission rejections leave no trace on it.
     The reference is maintained incrementally per client, which is
     what lets a crashed round be disambiguated after recovery.

   - SLO: the p99 of the merged [server.handle_ms] histogram, the p99
     admission queue delay, and the rejection rate (relative to the
     floor the offered overload forces) must stay within the budgets
     checked into bench/service_slo.json.

   Everything is seeded; there is no wall clock anywhere in the run
   (wall time appears only in the human-readable summary). *)

open Harmony
module Service = Harmony_service.Service
module Admission = Harmony_service.Admission
module Slo = Harmony_service.Slo
module Pool = Harmony_parallel.Pool
module Rng = Harmony_numerics.Rng
module Persist = Harmony_persist.Persist
module Telemetry = Harmony_telemetry.Telemetry
module Flight = Harmony_telemetry.Flight
module Export = Harmony_telemetry.Export

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

let options = { Simplex.default_options with Simplex.max_evaluations = 12 }

type phase = Idle | Start | Tuning | Finishing | Finished

(* One message offered to the service, with its admission metadata.
   [enqueued_at] survives retries, so the queue-delay histogram
   measures time-to-acceptance end to end; a poisoned message's
   [deadline] does too, which is how poison expires under load. *)
type pending = {
  msg : Service.message;
  payload : Server.message option;  (* None for the service-level deregister *)
  mutable enqueued_at : int;
  mutable deadline : int option;
}

type client = {
  id : string;
  rng : Rng.t;
  direction : Server.direction;
  peak_b : float;
  peak_c : float;
  mutable phase : phase;
  mutable reference : Server.t option;  (* created at the first applied register *)
  mutable last_assign : (string * int) list option;
  mutable fail_budget : int;
  mutable pending : pending option;
  mutable inflight : bool;  (* pending was offered in the current batch *)
  mutable backoff : int;  (* rounds left to honor a retry-after hint *)
  mutable stall : int;  (* rounds left of a seeded slow-client stall *)
  mutable rejections : int;
  mutable acked_muts : int;  (* acknowledged mutating messages, = journal Recvs *)
  mutable done_text : string option;
}

(* Performance is a pure function of (client, assignment): a bowl whose
   peak/valley location is drawn from the client's seed, so every
   client runs a different but perfectly reproducible search. *)
let respond c assignment =
  let v name = float_of_int (List.assoc name assignment) in
  let db = v "B" -. c.peak_b and dc = v "C" -. c.peak_c in
  let bowl = (db *. db) +. (dc *. dc) in
  match c.direction with
  | Server.Maximize -> 100.0 -. bowl
  | Server.Minimize -> bowl

let make_client master i =
  let rng = Rng.split master in
  {
    id = Printf.sprintf "c%d" i;
    direction = (if Rng.bool rng then Server.Maximize else Server.Minimize);
    peak_b = float_of_int (Rng.int_in rng 1 8);
    peak_c = float_of_int (Rng.int_in rng 1 4);
    rng;
    phase = Idle;
    reference = None;
    last_assign = None;
    fail_budget = 1;
    pending = None;
    inflight = false;
    backoff = 0;
    stall = 0;
    rejections = 0;
    acked_muts = 0;
    done_text = None;
  }

let protocol_failure = ref None

let fail_once fmt =
  Printf.ksprintf
    (fun msg -> if Option.is_none !protocol_failure then protocol_failure := Some msg)
    fmt

let mismatches = ref 0

(* ------------------------------------------------------------------ *)
(* The incremental reference: one dedicated single-session server per
   client, fed exactly the messages the service acknowledged.          *)

let reference_of c =
  match c.reference with
  | Some r -> r
  | None ->
      let r = Server.create ~options ~reject_reregister:true () in
      c.reference <- Some r;
      r

let cross_check c ~actual p =
  let expect = Server.reply_to_string (Server.handle (reference_of c) p) in
  if not (String.equal expect actual) then begin
    incr mismatches;
    fail_once "%s: service said %S, reference says %S" c.id actual expect
  end

(* Advance the conversation from an accepted reply. *)
let advance c (sr : Server.reply) =
  match sr with
  | Server.Assign a -> c.last_assign <- Some a
  | Server.Done _ ->
      c.phase <- Finishing;
      c.done_text <- Some (Server.reply_to_string sr)
  | Server.Rejected _ ->
      (* A protocol-level rejection the reference agreed with would be
         a driver bug — the schedule never sends an invalid message. *)
      fail_once "%s: unexpected protocol rejection" c.id
  | Server.Stats _ -> fail_once "%s: unexpected stats reply" c.id

(* The client's next message given where its conversation stands. *)
let fresh_pending ~now ~poison c =
  match c.phase with
  | Idle | Finished -> None
  | Finishing ->
      Some
        {
          msg = Service.Deregister { client = c.id };
          payload = None;
          enqueued_at = now;
          deadline = None;
        }
  | Start ->
      c.phase <- Tuning;
      let p = Server.Register { spec = paper_spec; direction = c.direction } in
      Some
        {
          msg = Service.Client { client = c.id; payload = p };
          payload = Some p;
          enqueued_at = now;
          deadline = None;
        }
  | Tuning ->
      let p =
        match c.last_assign with
        | None -> Server.Query
        | Some a ->
            let roll = Rng.int c.rng 20 in
            if roll = 0 then Server.Query
            else if roll = 1 && c.fail_budget > 0 then begin
              c.fail_budget <- c.fail_budget - 1;
              Server.Report_failed
            end
            else Server.Report (respond c a)
      in
      (* Poison: a deadline met only when the work is handled promptly
         — one retry-after round is enough to expire it. *)
      let deadline =
        match p with
        | Server.Report _ when poison > 0. && Rng.float c.rng 1.0 < poison ->
            Some (now + 1)
        | Server.Register _ | Server.Report _ | Server.Report_failed
        | Server.Query | Server.Metrics ->
            None
      in
      Some
        {
          msg = Service.Client { client = c.id; payload = p };
          payload = Some p;
          enqueued_at = now;
          deadline;
        }

(* Seeded slow-client stalls: after an accepted reply a tuning client
   occasionally goes quiet for a few rounds mid-conversation. *)
let maybe_stall ~stalls c =
  match c.phase with
  | Tuning -> if stalls && Rng.int c.rng 40 = 0 then c.stall <- Rng.int_in c.rng 1 5
  | Idle | Start | Finishing | Finished -> ()

let on_reply ~now ~stalls c reply =
  c.inflight <- false;
  match (c.pending, reply) with
  | ( None,
      ( Service.Client_reply _ | Service.Deregistered _ | Service.Service_stats _
      | Service.Flight_dump _ | Service.Service_error _ ) ) ->
      fail_once "%s: reply with nothing pending" c.id
  | Some pend, Service.Client_reply { client; reply = sr } -> (
      if not (String.equal client c.id) then
        fail_once "%s: reply routed to wrong client %s" c.id client;
      match sr with
      | Server.Rejected m when Admission.is_rejection_text m ->
          c.rejections <- c.rejections + 1;
          if String.starts_with ~prefix:"deadline-expired" m then begin
            (* The poisoned evaluation is dead; retry it clean. *)
            pend.enqueued_at <- now;
            pend.deadline <- None
          end
          else
            c.backoff <-
              (match Admission.retry_after_of_text m with
              | Some n -> max 1 n
              | None -> 1)
      | Server.Assign _ | Server.Done _ | Server.Rejected _ | Server.Stats _
        -> (
          match pend.payload with
          | Some p ->
              cross_check c ~actual:(Server.reply_to_string sr) p;
              (match p with
              | Server.Register _ | Server.Report _ | Server.Report_failed ->
                  c.acked_muts <- c.acked_muts + 1
              | Server.Query | Server.Metrics -> ());
              advance c sr;
              c.pending <- None;
              maybe_stall ~stalls c
          | None -> fail_once "%s: client reply to a deregister" c.id))
  | Some pend, Service.Deregistered { client } ->
      if not (String.equal client c.id) then
        fail_once "%s: bye routed to wrong client %s" c.id client;
      if Option.is_some pend.payload then
        fail_once "%s: bye while a client message was pending" c.id;
      c.phase <- Finished;
      c.pending <- None
  | Some _, (Service.Service_stats _ | Service.Flight_dump _
            | Service.Service_error _) ->
      fail_once "%s: service-level reply to a client message" c.id

(* ------------------------------------------------------------------ *)
(* Post-crash resynchronization.

   The journal is the exact record of what applied: recovery compacts
   every shard on its way out, so afterwards the snapshot (plus any
   journal tail) holds one [Recv] record per applied mutating message
   of every live session, and a deregistered client's history is
   dropped whole.  Comparing that per-client count with the driver's
   own count of acknowledged mutations decides an in-flight message's
   fate with no heuristics; and because replies are a deterministic
   function of the applied prefix, re-running an applied message on
   the client's reference regenerates, byte for byte, the reply the
   crash swallowed. *)

let applied_counts ~journal ~shards =
  let counts = Hashtbl.create 1024 in
  for s = 0 to shards - 1 do
    let shard_path = Service.shard_journal ~journal ~shard:s in
    List.iter
      (fun source ->
        List.iter
          (fun record ->
            match Service.Event.decode record with
            | Some (_seq, Service.Event.Recv m) -> (
                match m with
                | Service.Client { client; _ } | Service.Deregister { client }
                  ->
                    Hashtbl.replace counts client
                      (1
                      + Option.value ~default:0 (Hashtbl.find_opt counts client))
                | Service.Service_metrics | Service.Dump_flight -> ())
            | Some (_, (Service.Event.Reply _ | Service.Event.Shed _)) | None
              ->
                ())
          (Harmony_persist.Journal.read source).Harmony_persist.Frame.records)
      [ shard_path ^ ".snapshot"; shard_path ]
  done;
  counts

let resync_client counts c =
  if c.inflight then begin
    c.inflight <- false;
    match c.pending with
    | None -> ()
    | Some pend -> (
        let on_disk =
          Option.value ~default:0 (Hashtbl.find_opt counts c.id)
        in
        match pend.payload with
        | None ->
            (* In-flight deregister: applying it dropped the client's
               whole history, so any surviving record means it did not
               apply and the deregister is re-offered. *)
            if on_disk = 0 then begin
              c.phase <- Finished;
              c.pending <- None
            end
        | Some (Server.Query | Server.Metrics) ->
            (* Read-only and never journaled: re-offering is free. *)
            ()
        | Some ((Server.Register _ | Server.Report _ | Server.Report_failed)
                as p) ->
            if on_disk = c.acked_muts then ()  (* lost before apply *)
            else if on_disk = c.acked_muts + 1 then begin
              (* Applied; the reference regenerates the lost reply. *)
              c.acked_muts <- c.acked_muts + 1;
              advance c (Server.handle (reference_of c) p);
              c.pending <- None
            end
            else
              fail_once "%s: journal shows %d applied mutations, driver %d"
                c.id on_disk c.acked_muts)
  end

(* ------------------------------------------------------------------ *)
(* SLO budget — bench/service_slo.json, via the shared parser, so the
   harness asserts the exact numbers the in-service monitor watches. *)

let load_slo path =
  match
    Slo.budgets_of_json (In_channel.with_open_bin path In_channel.input_all)
  with
  | Ok b -> Ok b
  | Error e -> Error (path ^ ": " ^ e)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let () =
  let clients = ref 10_000 in
  let shards = ref 8 in
  let domains = ref 4 in
  let seed = ref 2004 in
  let slo_path = ref "bench/service_slo.json" in
  let max_rounds = ref (-1) in
  let open_loop = ref 0.0 in
  let max_inflight = ref (-1) in
  let rate = ref 0 in
  let poison = ref (-1.0) in
  let chaos = ref false in
  let crashes_wanted = ref 3 in
  let trace_path = ref "" in
  let flight_path = ref "" in
  Arg.parse
    [
      ("--clients", Arg.Set_int clients, "N  simulated clients (default 10000)");
      ("--shards", Arg.Set_int shards, "N  service shards (default 8)");
      ("--domains", Arg.Set_int domains, "N  pool domains (default 4)");
      ("--seed", Arg.Set_int seed, "N  master seed (default 2004)");
      ("--slo", Arg.Set_string slo_path,
       "PATH  SLO budget (default bench/service_slo.json)");
      ("--max-rounds", Arg.Set_int max_rounds,
       "N  abort if the run does not drain (default: 400 closed-loop, \
        scaled to clients/capacity open-loop)");
      ("--open-loop", Arg.Set_float open_loop,
       "L  offer L x admission capacity regardless of completions \
        (0 = closed loop, the default)");
      ("--max-inflight", Arg.Set_int max_inflight,
       "N  per-shard admission budget (default: unlimited closed-loop, \
        16 open-loop)");
      ("--rate", Arg.Set_int rate,
       "R  per-client token bucket, R tokens per round (default 0 = off)");
      ("--poison", Arg.Set_float poison,
       "P  fraction of evaluations carrying a too-tight deadline \
        (default: 0 closed-loop, 0.05 open-loop)");
      ("--chaos", Arg.Set chaos,
       "  journal every shard and crash it mid-burst on a seeded schedule \
        (open-loop only)");
      ("--crashes", Arg.Set_int crashes_wanted,
       "N  chaos faults to arm (default 3)");
      ("--trace", Arg.Set_string trace_path,
       "PATH  record every shard's events and write a segmented JSONL \
        trace (plus merged metrics) for harmony_trace");
      ("--flight-dump", Arg.Set_string flight_path,
       "PATH  attach per-shard flight recorders and dump them on a \
        crash or an SLO page");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [options]: drive the sharded service and check the SLOs";
  let open_loop_on = !open_loop > 0.0 in
  if !chaos && not open_loop_on then begin
    Printf.eprintf "loadgen: --chaos requires --open-loop\n";
    exit 1
  end;
  let max_inflight =
    match !max_inflight with
    | -1 -> if open_loop_on then 16 else 0
    | n when n >= 0 -> n
    | _ ->
        Printf.eprintf "loadgen: --max-inflight must be >= 0\n";
        exit 1
  in
  if open_loop_on && max_inflight = 0 then begin
    Printf.eprintf "loadgen: --open-loop needs a finite --max-inflight\n";
    exit 1
  end;
  let poison =
    match !poison with
    | p when p >= 0.0 -> p
    | _ -> if open_loop_on then 0.05 else 0.0
  in
  let slo =
    match load_slo !slo_path with
    | Ok slo -> slo
    | Error msg ->
        Printf.eprintf "loadgen: %s\n" msg;
        exit 1
  in
  let started = Unix.gettimeofday () in
  let master = Rng.create !seed in
  let fleet = Array.init !clients (make_client master) in
  let n = Array.length fleet in
  let capacity = !shards * max_inflight in
  let max_rounds =
    match !max_rounds with
    | -1 ->
        if open_loop_on then
          (* Total work scales with messages-per-conversation (~16) over
             per-round admission capacity; 4x headroom absorbs rejection
             backoff and seeded stalls. *)
          max 400 (4 * n * 16 / max 1 capacity)
        else 400
    | m -> m
  in
  let target_ready =
    if open_loop_on then max 1 (int_of_float (!open_loop *. float_of_int capacity))
    else n
  in
  (* The admission edge is always on so the decision counters and the
     queue-delay histogram exist; closed-loop defaults police
     nothing. *)
  let admission =
    {
      Admission.default_config with
      Admission.max_inflight;
      rate = !rate;
      burst = !rate;
      refill_every = 1;
    }
  in
  let record_events = not (String.equal !trace_path "") in
  let with_flight =
    record_events || not (String.equal !flight_path "")
  in
  let fresh_telemetry _ =
    let flight =
      if with_flight then Some (Flight.create ~capacity:512) else None
    in
    Telemetry.create ~record_events ?flight ()
  in
  let slo_spec = Slo.spec_of_budgets slo in
  let service =
    ref
      (Service.create ~options ~telemetry:fresh_telemetry ~admission
         ~slo:slo_spec ~shards:!shards ())
  in
  (* SLO pages survive recovery in this tally (the monitor itself is
     recreated fresh with the service). *)
  let pages_before_crashes = ref 0 in
  let dump_flight_to path =
    let text = Service.flight_dump !service in
    if not (String.equal text "") then
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text)
  in
  let retired_telemetry = ref [] in
  let shard_handles () = List.init !shards (Service.shard_telemetry !service) in
  (* Chaos plumbing: every fault is a byte budget on one seeded victim
     shard's re-opened sink, with enough margin above the journal's
     current size to survive recovery's own compaction and land
     mid-burst. *)
  let chaos_rng = Rng.split master in
  let faults_left = ref (if !chaos then !crashes_wanted else 0) in
  let crashes = ref 0 in
  let resyncs = ref 0 in
  let journal =
    if !chaos then begin
      let path = Filename.temp_file "harmony_chaos" ".journal" in
      Sys.remove path;
      Some path
    end
    else None
  in
  let next_wrap () =
    if !faults_left <= 0 then fun ~shard:_ sink -> sink
    else begin
      decr faults_left;
      let victim = Rng.int chaos_rng !shards in
      let current =
        match journal with
        | None -> 0
        | Some path ->
            String.length
              (Option.value ~default:""
                 (Persist.read_file
                    (Service.shard_journal ~journal:path ~shard:victim)))
      in
      let limit = current + Rng.int_in chaos_rng 4_000 40_000 in
      fun ~shard sink ->
        if shard = victim then Persist.fault_sink ~limit_bytes:limit sink
        else sink
    end
  in
  (match journal with
  | Some path ->
      Service.attach_journals ~wrap:(next_wrap ()) !service ~journal:path ()
  | None -> ());
  let cleanup_journal () =
    match journal with
    | None -> ()
    | Some path ->
        for s = 0 to !shards - 1 do
          let p = Service.shard_journal ~journal:path ~shard:s in
          List.iter Persist.remove_if_exists
            [ p; p ^ ".tmp"; p ^ ".snapshot"; p ^ ".snapshot.tmp" ]
        done
  in
  let arrival_rng = Rng.split master in
  let schedule_rng = Rng.split master in
  let rounds = ref 0 in
  let offered = ref 0 in
  let frontier = ref 0 in
  Pool.with_pool ~domains:!domains (fun pool ->
      let live () =
        Array.exists
          (fun c ->
            match c.phase with
            | Finished -> false
            | Idle | Start | Tuning | Finishing -> true)
          fleet
        || !frontier < n
      in
      let active_count () =
        Array.fold_left
          (fun acc c ->
            match c.phase with
            | Idle | Finished -> acc
            | Start | Tuning | Finishing -> acc + 1)
          0 fleet
      in
      let activate () =
        let deficit = target_ready - active_count () in
        if deficit > 0 && !frontier < n then begin
          (* Seeded bursts: some rounds overshoot the deficit, some
             under-fill it, so arrivals clump the way open-loop traffic
             does. *)
          let want =
            if not open_loop_on then deficit
            else
              match Rng.int arrival_rng 4 with
              | 0 -> 2 * deficit
              | 1 -> (deficit + 1) / 2
              | _ -> deficit
          in
          let k = min want (n - !frontier) in
          for _ = 1 to k do
            fleet.(!frontier).phase <- Start;
            incr frontier
          done
        end
      in
      let rec drive () =
        if live () then begin
          incr rounds;
          if !rounds > max_rounds then begin
            Printf.eprintf "loadgen: run did not drain after %d rounds\n"
              max_rounds;
            cleanup_journal ();
            exit 1
          end;
          activate ();
          (if Sys.getenv_opt "LOADGEN_DEBUG" <> None && !rounds mod 10 = 0 then
             let count p = Array.fold_left (fun a c -> if c.phase = p then a + 1 else a) 0 fleet in
             Printf.eprintf "round %d: idle=%d start=%d tuning=%d finishing=%d finished=%d inflight=%d backoff=%d stall=%d pending=%d\n%!"
               !rounds (count Idle) (count Start) (count Tuning) (count Finishing) (count Finished)
               (Array.fold_left (fun a c -> if c.inflight then a + 1 else a) 0 fleet)
               (Array.fold_left (fun a c -> if c.backoff > 0 then a + 1 else a) 0 fleet)
               (Array.fold_left (fun a c -> if c.stall > 0 then a + 1 else a) 0 fleet)
               (Array.fold_left (fun a c -> if Option.is_some c.pending then a + 1 else a) 0 fleet);
             let m = Telemetry.merged (shard_handles () @ !retired_telemetry) in
             Printf.eprintf "  admitted=%d rejected=%d cap=%d rate=%d dead=%d shed=%d degr=%d\n%!"
               (Telemetry.counter_value m Admission.c_admitted)
               (Telemetry.counter_value m Admission.c_rejected)
               (Telemetry.counter_value m Admission.c_over_capacity)
               (Telemetry.counter_value m Admission.c_rate_limited)
               (Telemetry.counter_value m Admission.c_deadline_expired)
               (Telemetry.counter_value m Admission.c_shed)
               (Telemetry.counter_value m Admission.c_degrade_transitions));
          let now = Service.admission_now !service + 1 in
          let senders = ref [] in
          Array.iter
            (fun c ->
              if c.backoff > 0 then c.backoff <- c.backoff - 1
              else if c.stall > 0 then c.stall <- c.stall - 1
              else if not c.inflight then begin
                (match c.pending with
                | Some _ -> ()
                | None -> c.pending <- fresh_pending ~now ~poison c);
                match c.pending with
                | Some _ -> senders := c :: !senders
                | None -> ()
              end)
            fleet;
          let senders = Array.of_list !senders in
          Rng.shuffle schedule_rng senders;
          let with_stats = !rounds mod 16 = 1 in
          let with_dump = with_flight && !rounds mod 64 = 33 in
          let envelopes =
            Array.to_list
              (Array.map
                 (fun c ->
                   match c.pending with
                   | Some pend ->
                       c.inflight <- true;
                       Service.envelope ~enqueued_at:pend.enqueued_at
                         ?deadline:pend.deadline pend.msg
                   | None -> Service.envelope Service.Service_metrics)
                 senders)
          in
          let envelopes =
            envelopes
            @ (if with_stats then [ Service.envelope Service.Service_metrics ]
               else [])
            @
            if with_dump then [ Service.envelope Service.Dump_flight ] else []
          in
          offered := !offered + List.length envelopes;
          (match Service.handle_batch_env ~pool !service envelopes with
          | replies ->
              List.iteri
                (fun k reply ->
                  if k < Array.length senders then
                    on_reply ~now ~stalls:open_loop_on senders.(k) reply
                  else
                    match reply with
                    | Service.Service_stats _ | Service.Flight_dump _ -> ()
                    | Service.Service_error m
                      when Admission.is_rejection_text m ->
                        (* A degraded shard sheds the probe itself. *)
                        ()
                    | ( Service.Client_reply _ | Service.Deregistered _
                      | Service.Service_error _ ) as r ->
                        fail_once "service probe answered with %s"
                          (Service.reply_to_string r))
                replies
          | exception Persist.Crashed when !chaos -> (
              match journal with
              | None -> fail_once "crash without a journal"
              | Some path ->
                  incr crashes;
                  (* The monitor dies with the service: bank its pages,
                     and dump the flight rings before they are retired —
                     this is the post-mortem the recorder exists for. *)
                  pages_before_crashes :=
                    !pages_before_crashes + Service.slo_pages !service;
                  if not (String.equal !flight_path "") then
                    dump_flight_to !flight_path;
                  retired_telemetry := shard_handles () @ !retired_telemetry;
                  let r =
                    Service.recover ~options ~telemetry:fresh_telemetry
                      ~admission ~slo:slo_spec ~wrap:(next_wrap ())
                      ~shards:!shards ~journal:path ()
                  in
                  service := r.Service.service;
                  let counts = applied_counts ~journal:path ~shards:!shards in
                  Array.iter
                    (fun c ->
                      if c.inflight then begin
                        incr resyncs;
                        resync_client counts c
                      end)
                    fleet)
          | exception e ->
              fail_once "the service raised %s" (Printexc.to_string e);
              raise e);
          drive ()
        end
      in
      drive ());
  (* Every conversation must have fully drained through [done] —
     rejected clients included. *)
  if Service.sessions !service <> 0 then
    fail_once "%d sessions survived deregistration" (Service.sessions !service);
  Array.iter
    (fun c ->
      if Option.is_none c.done_text then fail_once "%s never converged" c.id)
    fleet;
  let rejected_clients =
    Array.fold_left
      (fun acc c -> if c.rejections > 0 then acc + 1 else acc)
      0 fleet
  in
  let merged = Telemetry.merged (shard_handles () @ !retired_telemetry) in
  let counter = Telemetry.counter_value merged in
  let admitted = counter Admission.c_admitted in
  let rejected = counter Admission.c_rejected in
  let decisions = admitted + rejected in
  let rejection_rate =
    if decisions = 0 then 0.0
    else float_of_int rejected /. float_of_int decisions
  in
  (* The offered overload itself forces rejections: at L x capacity at
     most 1/L of the offers fit, so only the excess above that floor is
     the service's to answer for. *)
  let rejection_floor =
    if open_loop_on && !open_loop > 1.0 then 1.0 -. (1.0 /. !open_loop)
    else 0.0
  in
  let rejection_bound = rejection_floor +. slo.Slo.excess_rejection_max in
  let quantiles name q =
    match List.assoc_opt name (Telemetry.histograms merged) with
    | None -> (nan, nan, 0)
    | Some snap -> (Telemetry.quantile snap q, Telemetry.quantile snap 0.5, snap.Telemetry.count)
  in
  let p_handle, p50_handle, handled =
    quantiles slo.Slo.handle_hist slo.Slo.handle_q
  in
  let p_delay, p50_delay, delays = quantiles slo.Slo.delay_hist 0.99 in
  let handle_ok = Float.is_finite p_handle && p_handle <= slo.Slo.handle_max in
  (* Time-to-acceptance scales at least linearly with the offered
     overload (at L x capacity an accepted message waits through ~L
     rejected attempts), so the budget does too. *)
  let delay_budget = slo.Slo.delay_max *. Float.max 1.0 !open_loop in
  (* No admitted work at all would be its own failure; an empty
     histogram otherwise means stamping broke. *)
  let delay_ok = Float.is_finite p_delay && p_delay <= delay_budget && delays > 0 in
  let rejection_ok = rejection_rate <= rejection_bound in
  let elapsed = Unix.gettimeofday () -. started in
  Printf.printf
    "loadgen: clients=%d shards=%d domains=%d seed=%d rounds=%d offered=%d \
     handled=%d mode=%s\n"
    !clients !shards !domains !seed !rounds !offered handled
    (if open_loop_on then
       Printf.sprintf "open-loop x%g (capacity %d/round)" !open_loop capacity
     else "closed-loop");
  Printf.printf "loadgen: %s p50=%g p%g=%g budget=%g -> %s\n"
    slo.Slo.handle_hist p50_handle
    (slo.Slo.handle_q *. 100.)
    p_handle slo.Slo.handle_max
    (if handle_ok then "within SLO" else "SLO VIOLATED");
  Printf.printf "loadgen: %s p50=%g p99=%g budget=%g (n=%d) -> %s\n"
    slo.Slo.delay_hist p50_delay p_delay delay_budget delays
    (if delay_ok then "within SLO" else "SLO VIOLATED");
  Printf.printf
    "loadgen: admitted=%d rejected=%d rejection-rate=%.3f floor=%.3f \
     bound=%.3f -> %s\n"
    admitted rejected rejection_rate rejection_floor rejection_bound
    (if rejection_ok then "within SLO" else "SLO VIOLATED");
  Printf.printf
    "loadgen: goodput=%.1f/round deadline-expired=%d shed=%d rate-limited=%d \
     over-capacity=%d degrade-transitions=%d\n"
    (if !rounds = 0 then 0.0 else float_of_int admitted /. float_of_int !rounds)
    (counter Admission.c_deadline_expired)
    (counter Admission.c_shed)
    (counter Admission.c_rate_limited)
    (counter Admission.c_over_capacity)
    (counter Admission.c_degrade_transitions);
  Printf.printf
    "loadgen: rejected-then-converged clients=%d%s reference mismatches=%d \
     (%.1fs wall)\n"
    rejected_clients
    (if !chaos then
       Printf.sprintf " crashes=%d resyncs=%d" !crashes !resyncs
     else "")
    !mismatches elapsed;
  (* The in-service burn-rate monitor: pages from services retired by
     chaos recoveries plus the final one.  Chaos must page (sustained
     overload with crashes is exactly what the monitor exists for);
     the closed-loop tier must stay quiet — a page there means either
     the budgets or the monitor's thresholds drifted. *)
  let pages_total = !pages_before_crashes + Service.slo_pages !service in
  let final_state =
    match Service.slo_state !service with
    | Some s -> Slo.state_to_string s
    | None -> "off"
  in
  Printf.printf "loadgen: slo-monitor state=%s pages=%d -> %s\n" final_state
    pages_total
    (if !chaos then
       if pages_total > 0 then "paged as expected" else "NEVER PAGED"
     else if open_loop_on then "informational"
     else if pages_total = 0 then "quiet as expected"
     else "PAGED ON THE NORMAL TIER");
  if !chaos && pages_total = 0 then
    fail_once "chaos run never paged the SLO monitor";
  if (not open_loop_on) && pages_total > 0 then
    fail_once "SLO monitor paged %d times on the normal tier" pages_total;
  (* Post-run artifacts: the segmented trace for harmony_trace (one
     segment per shard — their logical clocks overlap — plus a
     metrics-only merged segment carrying the fleet-wide exemplars),
     and the flight rings' final contents. *)
  if not (String.equal !trace_path "") then
    Out_channel.with_open_bin !trace_path (fun oc ->
        List.iteri
          (fun i tel ->
            Printf.fprintf oc "{\"type\":\"segment\",\"name\":\"shard%d\",\"ts\":0}\n"
              i;
            Out_channel.output_string oc (Export.jsonl tel))
          (shard_handles ());
        Printf.fprintf oc "{\"type\":\"segment\",\"name\":\"merged\",\"ts\":0}\n";
        Out_channel.output_string oc (Export.jsonl merged));
  if not (String.equal !flight_path "") then dump_flight_to !flight_path;
  (match !protocol_failure with
  | Some msg -> Printf.printf "loadgen: protocol failure: %s\n" msg
  | None -> ());
  (* A chaos run that never crashed did not test what it claims to. *)
  if !chaos && !crashes = 0 then
    fail_once "chaos schedule armed %d faults but none fired" !crashes_wanted;
  cleanup_journal ();
  if
    !mismatches > 0 || (not handle_ok) || (not delay_ok) || (not rejection_ok)
    || Option.is_some !protocol_failure
  then exit 1
