(* The offline trace analyzer (tools/trace): loading both on-disk
   formats, reconstructing server.handle spans, phase attribution,
   critical paths, and the exemplar end-to-end check — all on
   synthetic traces small enough to verify by hand, plus one
   round-trip through the real exporter. *)

module Telemetry = Harmony_telemetry.Telemetry
module Export = Harmony_telemetry.Export

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) affix || go (i + 1)) in
  n = 0 || go 0

let load text =
  match Trace_core.of_string text with
  | Ok t -> t
  | Error e -> Alcotest.fail ("trace load: " ^ e)

(* One handle span with a journal child (2 ticks), a search child
   (3 ticks) and 3 ticks of self time:
     ts 10 begin handle | 11 begin journal | 13 end journal
     14 begin search | 17 end search | 18 end handle *)
let handle_span ~trace ~t0 =
  let ev kind name ts =
    Printf.sprintf
      {|{"type":"%s","name":"%s","ts":%g,"args":{"trace_id":"%s"}}|} kind name
      ts trace
  in
  String.concat "\n"
    [
      ev "begin" "server.handle" t0;
      ev "begin" "server.journal.append" (t0 +. 1.0);
      ev "end" "server.journal.append" (t0 +. 3.0);
      ev "begin" "server.search" (t0 +. 4.0);
      ev "end" "server.search" (t0 +. 7.0);
      ev "end" "server.handle" (t0 +. 8.0);
    ]

let test_attribution_splits_phases () =
  let t = load (handle_span ~trace:"aa11" ~t0:10.0) in
  match Trace_core.attribution t with
  | None -> Alcotest.fail "no handle spans reconstructed"
  | Some a ->
      Alcotest.(check int) "one span" 1 a.Trace_core.a_spans;
      Alcotest.(check (float 1e-9)) "total" 8.0 a.Trace_core.a_total;
      let phase p = a.Trace_core.a_phases.(Trace_core.phase_index p) in
      Alcotest.(check (float 1e-9)) "journal" 2.0 (phase Trace_core.Journal);
      Alcotest.(check (float 1e-9)) "search" 3.0 (phase Trace_core.Search);
      Alcotest.(check (float 1e-9)) "self" 3.0 (phase Trace_core.Handle);
      Alcotest.(check (float 1e-9)) "nothing unattributed" 0.0
        (phase Trace_core.Other);
      Alcotest.(check (float 1e-9)) "fully named" 1.0
        a.Trace_core.a_p99_attributed

let test_unknown_spans_are_unattributed () =
  let text =
    String.concat "\n"
      [
        {|{"type":"begin","name":"server.handle","ts":0}|};
        {|{"type":"begin","name":"mystery.work","ts":1}|};
        {|{"type":"end","name":"mystery.work","ts":5}|};
        {|{"type":"end","name":"server.handle","ts":6}|};
      ]
  in
  match Trace_core.attribution (load text) with
  | None -> Alcotest.fail "no handle spans"
  | Some a ->
      Alcotest.(check (float 1e-9))
        "unknown time lands in Other" 4.0
        a.Trace_core.a_phases.(Trace_core.phase_index Trace_core.Other);
      Alcotest.(check bool) "attribution fraction drops" true
        (a.Trace_core.a_p99_attributed < 0.95)

let test_suspended_spans_are_clipped () =
  (* The search kernel's effect-based spans can suspend at a Measure
     effect and close in a later message: a begin with no end inside
     the handle, and a stray end with no begin.  Neither may derail
     the walker. *)
  let text =
    String.concat "\n"
      [
        {|{"type":"begin","name":"server.handle","ts":0,"args":{"trace_id":"s1"}}|};
        {|{"type":"begin","name":"simplex.step","ts":1}|};
        {|{"type":"end","name":"server.handle","ts":4}|};
        {|{"type":"begin","name":"server.handle","ts":10,"args":{"trace_id":"s2"}}|};
        {|{"type":"end","name":"simplex.step","ts":12}|};
        {|{"type":"end","name":"server.handle","ts":13}|};
      ]
  in
  let t = load text in
  let recs = Trace_core.handles t in
  Alcotest.(check int) "both handles reconstructed" 2 (List.length recs);
  (match recs with
  | [ r1; r2 ] ->
      Alcotest.(check (float 1e-9))
        "suspended step attributed to search" 3.0
        r1.Trace_core.r_phases.(Trace_core.phase_index Trace_core.Search);
      (* The stray end is ignored; its preceding interval is handle
         self time. *)
      Alcotest.(check (float 1e-9))
        "resumed handle keeps self time" 3.0
        r2.Trace_core.r_phases.(Trace_core.phase_index Trace_core.Handle)
  | _ -> Alcotest.fail "expected exactly two records");
  match Trace_core.render_path t "s1" with
  | Error e -> Alcotest.fail e
  | Ok text ->
      Alcotest.(check bool) "clipped child marked suspended" true
        (contains ~affix:"(suspended)" text)

let test_segments_split () =
  let marker name = Printf.sprintf {|{"type":"segment","name":"%s","ts":0}|} name in
  let text =
    String.concat "\n"
      [
        marker "shard0";
        handle_span ~trace:"t0" ~t0:0.0;
        marker "shard1";
        handle_span ~trace:"t1" ~t0:0.0;
        marker "merged";
        {|{"type":"counter","name":"service.messages","value":2}|};
      ]
  in
  let t = load text in
  Alcotest.(check (list string))
    "segment names"
    [ "shard0"; "shard1"; "merged" ]
    (List.map (fun s -> s.Trace_core.seg_name) t.Trace_core.segments);
  Alcotest.(check int) "one handle per shard segment" 2
    (List.length (Trace_core.handles t))

let test_flight_dump_shards_segment () =
  (* A flight dump has no markers; the shard field changes mid-stream. *)
  let ev shard ts name kind =
    Printf.sprintf {|{"type":"%s","name":"%s","ts":%g,"shard":%d}|} kind name ts
      shard
  in
  let text =
    String.concat "\n"
      [
        ev 0 5.0 "server.handle" "begin";
        ev 0 7.0 "server.handle" "end";
        ev 1 2.0 "server.handle" "begin";
        ev 1 3.0 "server.handle" "end";
      ]
  in
  let t = load text in
  Alcotest.(check (list string))
    "shard segments" [ "shard0"; "shard1" ]
    (List.map (fun s -> s.Trace_core.seg_name) t.Trace_core.segments);
  Alcotest.(check int) "dropped nothing" 0 t.Trace_core.dropped

let test_malformed_lines_counted () =
  let text =
    String.concat "\n"
      [
        "flight";
        {|{"type":"begin","name":"server.handle","ts":0}|};
        "{torn";
        {|{"type":"end","name":"server.handle","ts":2}|};
      ]
  in
  let t = load text in
  Alcotest.(check int) "two unparsable lines skipped" 2 t.Trace_core.dropped;
  Alcotest.(check int) "span still reconstructed" 1
    (List.length (Trace_core.handles t))

let test_chrome_round_trip () =
  (* The analyzer must read back what Export.chrome writes. *)
  let tel = Telemetry.create () in
  let ctx = Telemetry.Ctx.root ~client:"alpha" ~seq:1 in
  Telemetry.span tel ~args:(Telemetry.Ctx.args ctx) "server.handle" (fun () ->
      Telemetry.span tel "server.search" (fun () -> ()));
  let t = load (Export.chrome tel) in
  match Trace_core.handles t with
  | [ r ] ->
      Alcotest.(check string)
        "trace id survives the chrome round trip"
        (Telemetry.Ctx.trace_id ctx) r.Trace_core.r_trace;
      (* Logical clock: begin search at tick 1, end at tick 2. *)
      Alcotest.(check (float 1e-9))
        "search child attributed" 1.0
        r.Trace_core.r_phases.(Trace_core.phase_index Trace_core.Search)
  | _ -> Alcotest.fail "expected one handle span from the chrome trace"

let test_jsonl_round_trip () =
  (* And what Export.jsonl writes, exemplars included. *)
  let tel = Telemetry.create () in
  let ctx = Telemetry.Ctx.root ~client:"alpha" ~seq:1 in
  Telemetry.span tel ~args:(Telemetry.Ctx.args ctx) "server.handle" (fun () ->
      ());
  Telemetry.observe tel
    ~bounds:[| 1.0; 5.0; 10.0 |]
    ~exemplar:(Telemetry.Ctx.trace_id ctx) "server.handle_ms" 2.0;
  let t = load (Export.jsonl tel) in
  (match Trace_core.find_histogram t "server.handle_ms" with
  | None -> Alcotest.fail "histogram lost in the round trip"
  | Some h -> (
      Alcotest.(check int) "count" 1 h.Trace_core.h_count;
      match Trace_core.p99_exemplar h with
      | None -> Alcotest.fail "exemplar lost in the round trip"
      | Some (trace_id, v) ->
          Alcotest.(check string)
            "exemplar trace id" (Telemetry.Ctx.trace_id ctx) trace_id;
          Alcotest.(check (float 1e-9)) "exemplar value" 2.0 v));
  match Trace_core.check_exemplar t with
  | Error e -> Alcotest.fail ("exemplar check: " ^ e)
  | Ok text ->
      Alcotest.(check bool) "critical path printed" true
        (contains ~affix:"critical path: server.handle" text)

let test_hist_quantile () =
  let h =
    {
      Trace_core.h_name = "x";
      h_count = 100;
      h_sum = 0.0;
      h_buckets = [ (1.0, 50); (5.0, 48); (10.0, 2) ];
      h_exemplars = [ (10.0, "deadbeef", 7.0) ];
    }
  in
  Alcotest.(check (option (float 1e-9)))
    "p50 in the first bucket" (Some 1.0)
    (Trace_core.hist_quantile h 0.5);
  Alcotest.(check (option (float 1e-9)))
    "p99 in the last bucket" (Some 10.0)
    (Trace_core.hist_quantile h 0.99);
  (match Trace_core.p99_exemplar h with
  | Some (id, _) -> Alcotest.(check string) "p99 exemplar" "deadbeef" id
  | None -> Alcotest.fail "expected the last bucket's exemplar");
  Alcotest.(check (option (float 1e-9)))
    "empty histogram has no quantile" None
    (Trace_core.hist_quantile { h with Trace_core.h_count = 0 } 0.99)

let test_critical_path () =
  let text =
    String.concat "\n"
      [
        {|{"type":"begin","name":"server.handle","ts":0,"args":{"trace_id":"cp"}}|};
        {|{"type":"begin","name":"server.journal.append","ts":1}|};
        {|{"type":"end","name":"server.journal.append","ts":2}|};
        {|{"type":"begin","name":"server.search","ts":2}|};
        {|{"type":"begin","name":"simplex.step","ts":3}|};
        {|{"type":"end","name":"simplex.step","ts":7}|};
        {|{"type":"end","name":"server.search","ts":8}|};
        {|{"type":"end","name":"server.handle","ts":9}|};
      ]
  in
  match Trace_core.render_path (load text) "cp" with
  | Error e -> Alcotest.fail e
  | Ok rendered ->
      (* The longest child chain is search -> step, not journal. *)
      Alcotest.(check bool) "path descends through search" true
        (Astring.String.is_infix
           ~affix:"server.handle -> server.search [6] -> simplex.step [4]"
           rendered)

let test_diff_and_top_render () =
  let ta = load (handle_span ~trace:"a" ~t0:0.0) in
  let tb =
    load
      (String.concat "\n"
         [
           handle_span ~trace:"b" ~t0:0.0;
           {|{"type":"gauge","name":"gc.major_collections","value":3}|};
         ])
  in
  match (Trace_core.attribution ta, Trace_core.attribution tb) with
  | Some a, Some b ->
      let diff = Trace_core.render_diff ta a tb b in
      Alcotest.(check bool) "diff lists phases" true
        (contains ~affix:"journal" diff);
      let top = Trace_core.render_top tb in
      Alcotest.(check bool) "top lists the gauge" true
        (contains ~affix:"gc.major_collections" top)
  | (None, (Some _ | None)) | (Some _, None) ->
      Alcotest.fail "attribution missing"

let suite =
  [
    ("attribution splits phases", `Quick, test_attribution_splits_phases);
    ( "unknown spans are unattributed",
      `Quick,
      test_unknown_spans_are_unattributed );
    ("suspended spans are clipped", `Quick, test_suspended_spans_are_clipped);
    ("segment markers split segments", `Quick, test_segments_split);
    ("flight dumps segment by shard", `Quick, test_flight_dump_shards_segment);
    ("malformed lines are counted", `Quick, test_malformed_lines_counted);
    ("chrome export round-trips", `Quick, test_chrome_round_trip);
    ("jsonl export round-trips with exemplars", `Quick, test_jsonl_round_trip);
    ("histogram quantiles and exemplars", `Quick, test_hist_quantile);
    ("critical path picks the longest chain", `Quick, test_critical_path);
    ("diff and top render", `Quick, test_diff_and_top_render);
  ]
