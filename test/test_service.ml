(* The sharded multi-session service: routing determinism, batched
   vs sequential byte-identity at any shard/domain count, duplicate
   registration, per-shard crash injection at every record boundary,
   corrupt-shard degradation, and a QCheck serializability property
   (any interleaving of k clients' messages gives each client exactly
   the conversation it would have had alone). *)

open Harmony
module Service = Harmony_service.Service
module Admission = Harmony_service.Admission
module Frame = Harmony_persist.Frame
module Persist = Harmony_persist.Persist
module Pool = Harmony_parallel.Pool
module Telemetry = Harmony_telemetry.Telemetry
module Gen = QCheck2.Gen

let seed = [| 0x5eed; 7 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make seed) t

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

(* Deterministic client: performance is a pure function of the
   assignment, so every resumed or re-registered run converges to the
   same [done] as the uninterrupted one. *)
let respond assignment =
  let v name = float_of_int (List.assoc name assignment) in
  let db = v "B" -. 3.0 and dc = v "C" -. 4.0 in
  100.0 -. (db *. db) -. (dc *. dc)

let options = { Simplex.default_options with Simplex.max_evaluations = 12 }

let register_msg client =
  Service.Client
    { client; payload = Server.Register { spec = paper_spec; direction = Server.Maximize } }

let report_msg client assignment =
  Service.Client { client; payload = Server.Report (respond assignment) }

let query_msg client = Service.Client { client; payload = Server.Query }

(* Two ids per shard at [shards = 2] (checked by the routing test
   below), so every shard journal interleaves two sessions. *)
let fleet = [ "alpha"; "bravo"; "echo"; "india" ]

let with_journal ~shards f =
  let path = Filename.temp_file "harmony_service" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      for s = 0 to shards - 1 do
        let p = Service.shard_journal ~journal:path ~shard:s in
        List.iter Persist.remove_if_exists
          [ p; p ^ ".tmp"; p ^ ".snapshot"; p ^ ".snapshot.tmp" ]
      done)
    (fun () -> f path)

(* Drive every client one message per round (register first, then one
   report per round) until all sessions are done; returns each
   client's final done-reply text. *)
let drive_all service clients =
  let state = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Service.handle service (register_msg c) with
      | Service.Client_reply { reply = Server.Assign a; _ } ->
          Hashtbl.replace state c (`Assign a)
      | r -> Alcotest.fail ("register: unexpected " ^ Service.reply_to_string r))
    clients;
  let rec round steps =
    if steps > 200 then Alcotest.fail "drive_all did not drain";
    let active =
      List.filter
        (fun c ->
          match Hashtbl.find_opt state c with
          | Some (`Assign _) -> true
          | _ -> false)
        clients
    in
    if active <> [] then begin
      List.iter
        (fun c ->
          match Hashtbl.find_opt state c with
          | Some (`Assign a) -> (
              match Service.handle service (report_msg c a) with
              | Service.Client_reply { reply = Server.Assign a'; _ } ->
                  Hashtbl.replace state c (`Assign a')
              | Service.Client_reply { reply = Server.Done _ as d; _ } ->
                  Hashtbl.replace state c (`Done (Server.reply_to_string d))
              | r ->
                  Alcotest.fail ("report: unexpected " ^ Service.reply_to_string r))
          | _ -> ())
        active;
      round (steps + 1)
    end
  in
  round 0;
  List.map
    (fun c ->
      match Hashtbl.find_opt state c with
      | Some (`Done text) -> (c, text)
      | _ -> Alcotest.fail (c ^ " never finished"))
    clients

(* Where does this client's conversation stand after a recovery?  Ask;
   a client the service no longer knows (or whose session was lost)
   starts over — exactly like a real client reconnecting. *)
let resume_to_done service client =
  let first =
    match Service.handle service (query_msg client) with
    | Service.Client_reply { reply = Server.Rejected _; _ } ->
        Service.handle service (register_msg client)
    | r -> r
  in
  let rec go reply steps =
    if steps > 300 then Alcotest.fail "resume did not reach done";
    match reply with
    | Service.Client_reply { reply = Server.Assign a; _ } ->
        go (Service.handle service (report_msg client a)) (steps + 1)
    | Service.Client_reply { reply = Server.Done _ as d; _ } ->
        Server.reply_to_string d
    | r -> Alcotest.fail ("resume: unexpected " ^ Service.reply_to_string r)
  in
  go first 0

(* Uninterrupted journaled reference run: per-client done replies plus
   each shard's journal bytes (compaction off so every record boundary
   is present in one file). *)
let reference ~shards () =
  with_journal ~shards (fun path ->
      let service = Service.create ~options ~shards () in
      Service.attach_journals ~compact_every:1_000_000 service ~journal:path ();
      let dones = drive_all service fleet in
      Service.detach_journals service;
      let bytes =
        Array.init shards (fun s ->
            Option.value ~default:""
              (Persist.read_file (Service.shard_journal ~journal:path ~shard:s)))
      in
      (dones, bytes))

let check_all_resume ~msg service dones_ref =
  List.iter
    (fun (c, done_ref) ->
      Alcotest.(check string)
        (Printf.sprintf "%s: %s done byte-identical" msg c)
        done_ref (resume_to_done service c))
    dones_ref

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let test_routing_deterministic () =
  List.iter
    (fun c ->
      Alcotest.(check int) (c ^ " routes stably")
        (Service.shard_for ~shards:8 c) (Service.shard_for ~shards:8 c))
    fleet;
  let service = Service.create ~shards:8 () in
  List.iter
    (fun c ->
      Alcotest.(check int) (c ^ " service routing matches pure routing")
        (Service.shard_for ~shards:8 c)
        (Service.shard_of_client service c))
    fleet;
  (* The journal layout depends on this exact split of the test fleet
     at two shards: two clients per shard. *)
  let split = List.map (Service.shard_for ~shards:2) fleet in
  Alcotest.(check int) "fleet covers both shards (shard 0)" 2
    (List.length (List.filter (fun s -> s = 0) split));
  Alcotest.(check int) "fleet covers both shards (shard 1)" 2
    (List.length (List.filter (fun s -> s = 1) split));
  (* Dense ids spread over shards. *)
  let hits = Array.make 4 0 in
  for i = 0 to 99 do
    let s = Service.shard_for ~shards:4 (Printf.sprintf "c%d" i) in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun s n ->
      Alcotest.(check bool) (Printf.sprintf "shard %d used" s) true (n > 0))
    hits;
  Alcotest.check_raises "shards < 1 rejected"
    (Invalid_argument "Service.shard_for: shards < 1") (fun () ->
      ignore (Service.shard_for ~shards:0 "x"))

(* ------------------------------------------------------------------ *)
(* Batched handling: byte-identity across domains, shards, and vs the
   sequential reference                                                *)

(* Adaptive driver over [handle_batch]: per round each live client
   contributes its next message (register -> report* -> deregister),
   optionally with a trailing service-metrics probe; returns the full
   reply stream as one string. *)
let batched_stream ?(probe = false) ~shards ~domains ids =
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~shards ()
  in
  let stream = Buffer.create 1024 in
  let state = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace state c `Start) ids;
  Pool.with_pool ~domains (fun pool ->
      let rec round steps =
        if steps > 200 then Alcotest.fail "batched run did not drain";
        let live =
          List.filter
            (fun c ->
              match Hashtbl.find_opt state c with
              | Some `Gone -> false
              | _ -> true)
            ids
        in
        if live <> [] then begin
          let batch =
            List.map
              (fun c ->
                match Hashtbl.find_opt state c with
                | Some `Start -> register_msg c
                | Some (`Assign a) -> report_msg c a
                | Some `Done -> Service.Deregister { client = c }
                | _ -> Alcotest.fail "inactive client scheduled")
              live
          in
          let batch =
            if probe then batch @ [ Service.Service_metrics ] else batch
          in
          let replies = Service.handle_batch ~pool service batch in
          List.iteri
            (fun k r ->
              Buffer.add_string stream (Service.reply_to_string r);
              Buffer.add_char stream '\n';
              if k < List.length live then
                let c = List.nth live k in
                match r with
                | Service.Client_reply { reply = Server.Assign a; _ } ->
                    Hashtbl.replace state c (`Assign a)
                | Service.Client_reply { reply = Server.Done _; _ } ->
                    Hashtbl.replace state c `Done
                | Service.Deregistered _ -> Hashtbl.replace state c `Gone
                | r ->
                    Alcotest.fail
                      ("batched run: unexpected " ^ Service.reply_to_string r))
            replies;
          round (steps + 1)
        end
      in
      round 0);
  Alcotest.(check int) "all sessions deregistered" 0 (Service.sessions service);
  Buffer.contents stream

(* The same rounds through [Service.handle] one message at a time (the
   sequential reference the batched path must reproduce byte-for-byte).
   The batched probe sits at the end of each round but answers the
   pre-batch snapshot, so the reference computes the probe reply
   before the round's messages and emits it at the probe's arrival
   index (end of round). *)
let sequential_stream ?(probe = false) ~shards ids =
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~shards ()
  in
  let stream = Buffer.create 1024 in
  let state = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace state c `Start) ids;
  let rec round steps =
    if steps > 200 then Alcotest.fail "sequential run did not drain";
    let live =
      List.filter
        (fun c ->
          match Hashtbl.find_opt state c with
          | Some `Gone -> false
          | _ -> true)
        ids
    in
    if live <> [] then begin
      let probe_reply =
        if probe then
          Some (Service.reply_to_string
                  (Service.handle service Service.Service_metrics))
        else None
      in
      List.iter
        (fun c ->
          let msg =
            match Hashtbl.find_opt state c with
            | Some `Start -> register_msg c
            | Some (`Assign a) -> report_msg c a
            | Some `Done -> Service.Deregister { client = c }
            | _ -> Alcotest.fail "inactive client scheduled"
          in
          let r = Service.handle service msg in
          Buffer.add_string stream (Service.reply_to_string r);
          Buffer.add_char stream '\n';
          match r with
          | Service.Client_reply { reply = Server.Assign a; _ } ->
              Hashtbl.replace state c (`Assign a)
          | Service.Client_reply { reply = Server.Done _; _ } ->
              Hashtbl.replace state c `Done
          | Service.Deregistered _ -> Hashtbl.replace state c `Gone
          | r ->
              Alcotest.fail
                ("sequential run: unexpected " ^ Service.reply_to_string r))
        live;
      (match probe_reply with
      | Some text ->
          Buffer.add_string stream text;
          Buffer.add_char stream '\n'
      | None -> ());
      round (steps + 1)
    end
  in
  round 0;
  Buffer.contents stream

let ids_10 = List.init 10 (Printf.sprintf "c%d")

let test_batch_identical_across_domains () =
  let one = batched_stream ~probe:true ~shards:4 ~domains:1 ids_10 in
  let four = batched_stream ~probe:true ~shards:4 ~domains:4 ids_10 in
  Alcotest.(check string)
    "full reply stream (metrics included) identical at 1 vs 4 domains" one four

let test_batch_identical_to_sequential () =
  let batched = batched_stream ~probe:true ~shards:4 ~domains:4 ids_10 in
  let sequential = sequential_stream ~probe:true ~shards:4 ids_10 in
  Alcotest.(check string) "batched == sequential reference, byte for byte"
    sequential batched

let test_client_replies_identical_across_shards () =
  let one = batched_stream ~shards:1 ~domains:2 ids_10 in
  let four = batched_stream ~shards:4 ~domains:2 ids_10 in
  Alcotest.(check string) "client replies independent of shard count" one four

(* ------------------------------------------------------------------ *)
(* Protocol fixtures                                                   *)

let test_duplicate_register_rejected () =
  let service = Service.create ~options ~shards:2 () in
  (match Service.handle service (register_msg "alpha") with
  | Service.Client_reply { reply = Server.Assign _; _ } -> ()
  | r -> Alcotest.fail ("register: unexpected " ^ Service.reply_to_string r));
  (* Bad: re-register while the session is mid-tuning. *)
  (match Service.handle service (register_msg "alpha") with
  | Service.Client_reply { client = "alpha"; reply = Server.Rejected msg } ->
      Alcotest.(check bool) "total error reply names the conflict" true
        (String.starts_with ~prefix:"already registered" msg)
  | r -> Alcotest.fail ("duplicate register: " ^ Service.reply_to_string r));
  (* The live session is untouched: the outstanding assignment is
     still there and tuning completes. *)
  (match Service.handle service (query_msg "alpha") with
  | Service.Client_reply { reply = Server.Assign _; _ } -> ()
  | r -> Alcotest.fail ("query after dup register: " ^ Service.reply_to_string r));
  let _done = resume_to_done service "alpha" in
  (* Good: once the session finished, re-registering starts afresh. *)
  (match Service.handle service (register_msg "alpha") with
  | Service.Client_reply { reply = Server.Assign _; _ } -> ()
  | r -> Alcotest.fail ("re-register after done: " ^ Service.reply_to_string r));
  (* Good: a deregistered id can register again too. *)
  let _done = resume_to_done service "alpha" in
  (match Service.handle service (Service.Deregister { client = "alpha" }) with
  | Service.Deregistered { client = "alpha" } -> ()
  | r -> Alcotest.fail ("deregister: " ^ Service.reply_to_string r));
  match Service.handle service (register_msg "alpha") with
  | Service.Client_reply { reply = Server.Assign _; _ } -> ()
  | r -> Alcotest.fail ("register after bye: " ^ Service.reply_to_string r)

let test_unknown_client_is_total () =
  let service = Service.create ~options ~shards:2 () in
  (match Service.handle service (query_msg "ghost") with
  | Service.Client_reply { client = "ghost"; reply = Server.Rejected msg } ->
      Alcotest.(check bool) "names the client" true
        (String.starts_with ~prefix:"unknown client ghost" msg)
  | r -> Alcotest.fail ("query: " ^ Service.reply_to_string r));
  match Service.handle service (Service.Deregister { client = "ghost" }) with
  | Service.Service_error msg ->
      Alcotest.(check bool) "deregister names the client" true
        (String.starts_with ~prefix:"unknown client ghost" msg)
  | r -> Alcotest.fail ("deregister: " ^ Service.reply_to_string r)

let test_parse_message () =
  (match Service.parse_message "c7 query" with
  | Ok (Service.Client { client = "c7"; payload = Server.Query }) -> ()
  | _ -> Alcotest.fail "c7 query");
  (match Service.parse_message "c7 done" with
  | Ok (Service.Deregister { client = "c7" }) -> ()
  | _ -> Alcotest.fail "c7 done");
  (match Service.parse_message "service-metrics" with
  | Ok Service.Service_metrics -> ()
  | _ -> Alcotest.fail "service-metrics");
  (match Service.parse_message ("c7 register max\n" ^ paper_spec) with
  | Ok (Service.Client { client = "c7"; payload = Server.Register _ }) -> ()
  | _ -> Alcotest.fail "multi-line register keeps its spec");
  (* Unprefixed server commands and reserved words are not client ids. *)
  List.iter
    (fun bad ->
      match Service.parse_message bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ bad))
    [ "query"; "report 1.5"; "query query"; "done c7"; "register max";
      "quit now"; "" ];
  (* Round trip. *)
  List.iter
    (fun m ->
      match Service.parse_message (Service.message_to_string m) with
      | Ok m' ->
          Alcotest.(check string) "round trip"
            (Service.message_to_string m)
            (Service.message_to_string m')
      | Error e -> Alcotest.fail e)
    [
      register_msg "alpha";
      query_msg "z9";
      Service.Client { client = "c1"; payload = Server.Report 0.125 };
      Service.Client { client = "c1"; payload = Server.Report_failed };
      Service.Deregister { client = "c2" };
      Service.Service_metrics;
    ]

let test_event_codec () =
  List.iter
    (fun m ->
      match Service.Event.decode (Service.Event.encode ~seq:7 (Service.Event.Recv m)) with
      | Some (7, Service.Event.Recv m') ->
          Alcotest.(check string) "recv round trip"
            (Service.message_to_string m)
            (Service.message_to_string m')
      | _ -> Alcotest.fail "recv did not round trip")
    [ register_msg "alpha"; query_msg "bravo";
      Service.Client { client = "c1"; payload = Server.Report 3.5 };
      Service.Deregister { client = "c2" } ];
  (match Service.Event.decode "9 reply alpha assign B=3 C=4" with
  | Some (9, Service.Event.Reply "alpha assign B=3 C=4") -> ()
  | _ -> Alcotest.fail "reply decode");
  (* Shed records (journaled rejections) round-trip like received
     messages. *)
  (match
     Service.Event.decode
       (Service.Event.encode ~seq:4
          (Service.Event.Shed
             (Service.Client { client = "c1"; payload = Server.Report 3.5 })))
   with
  | Some (4, Service.Event.Shed m) ->
      Alcotest.(check string) "shed round trip" "c1 report 3.5"
        (Service.message_to_string m)
  | _ -> Alcotest.fail "shed did not round trip");
  (match Service.Event.decode "4 shed not a message" with
  | None -> ()
  | Some _ -> Alcotest.fail "decoded a garbage shed");
  List.iter
    (fun garbage ->
      match Service.Event.decode garbage with
      | None -> ()
      | Some _ -> Alcotest.fail ("decoded garbage: " ^ garbage))
    [ ""; "junk"; "0 recv alpha query"; "5 recv query"; "5 recv done alpha";
      "7 recvalpha query" ]

let test_service_metrics_merges_shards () =
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~shards:2 ()
  in
  let _dones = drive_all service fleet in
  let merged = Telemetry.counters (Service.merged_telemetry service) in
  let total =
    List.fold_left
      (fun acc s ->
        acc
        + Telemetry.counter_value (Service.shard_telemetry service s)
            "service.messages")
      0 [ 0; 1 ]
  in
  Alcotest.(check bool) "both shards handled messages" true
    (List.for_all
       (fun s ->
         Telemetry.counter_value (Service.shard_telemetry service s)
           "service.messages"
         > 0)
       [ 0; 1 ]);
  Alcotest.(check int) "merged counter sums the shards" total
    (List.assoc "service.messages" merged);
  match Service.handle service Service.Service_metrics with
  | Service.Service_stats text ->
      Alcotest.(check bool) "prometheus text mentions the service" true
        (String.length text > 0)
  | r -> Alcotest.fail ("service-metrics: " ^ Service.reply_to_string r)

(* ------------------------------------------------------------------ *)
(* Crash injection: kill one shard at every record boundary            *)

let test_kill_one_shard_at_every_boundary () =
  let shards = 2 in
  let dones_ref, bytes = reference ~shards () in
  Array.iteri
    (fun victim shard_bytes ->
      let scan = Frame.scan shard_bytes in
      Alcotest.(check bool) "reference shard journal is clean" false
        scan.Frame.torn;
      Alcotest.(check bool) "enough boundaries to mean something" true
        (List.length scan.Frame.boundaries > 20);
      List.iter
        (fun cut ->
          with_journal ~shards (fun path ->
              Array.iteri
                (fun s full ->
                  let content =
                    if s = victim then String.sub full 0 cut else full
                  in
                  let oc =
                    open_out_bin (Service.shard_journal ~journal:path ~shard:s)
                  in
                  output_string oc content;
                  close_out oc)
                bytes;
              let r = Service.recover ~options ~shards ~journal:path () in
              Alcotest.(check int)
                (Printf.sprintf "shard %d cut %d: clean prefix, nothing dropped"
                   victim cut)
                0 r.Service.dropped;
              check_all_resume
                ~msg:(Printf.sprintf "shard %d killed at boundary %d" victim cut)
                r.Service.service dones_ref;
              Service.detach_journals r.Service.service))
        (0 :: scan.Frame.boundaries))
    bytes

(* A few torn (mid-record) cuts per shard: the torn record is lost,
   everything before it replays, every client still converges. *)
let test_kill_one_shard_mid_record () =
  let shards = 2 in
  let dones_ref, bytes = reference ~shards () in
  Array.iteri
    (fun victim shard_bytes ->
      let scan = Frame.scan shard_bytes in
      let torn_cuts =
        List.filteri
          (fun i _ -> i mod 5 = 0)
          (List.filter_map
             (fun b ->
               if b + 3 <= String.length shard_bytes then Some (b + 3) else None)
             (0 :: scan.Frame.boundaries))
      in
      List.iter
        (fun cut ->
          with_journal ~shards (fun path ->
              Array.iteri
                (fun s full ->
                  let content =
                    if s = victim then String.sub full 0 cut else full
                  in
                  let oc =
                    open_out_bin (Service.shard_journal ~journal:path ~shard:s)
                  in
                  output_string oc content;
                  close_out oc)
                bytes;
              let r = Service.recover ~options ~shards ~journal:path () in
              check_all_resume
                ~msg:(Printf.sprintf "shard %d torn at byte %d" victim cut)
                r.Service.service dones_ref;
              Service.detach_journals r.Service.service))
        torn_cuts)
    bytes

(* Live crash through the fault-injecting sink on exactly one shard,
   compaction on, so crashes land inside snapshot/reset windows too. *)
let test_live_crash_one_shard () =
  let shards = 2 in
  let dones_ref, bytes = reference ~shards () in
  let victim = Service.shard_for ~shards "alpha" in
  let total = String.length bytes.(victim) in
  let limits = List.init 10 (fun i -> 1 + (i * total / 10)) in
  List.iter
    (fun limit ->
      with_journal ~shards (fun path ->
          let service = Service.create ~options ~shards () in
          Service.attach_journals ~compact_every:4
            ~wrap:(fun ~shard sink ->
              if shard = victim then Persist.fault_sink ~limit_bytes:limit sink
              else sink)
            service ~journal:path ();
          let crashed =
            match drive_all service fleet with
            | _ -> false
            | exception Persist.Crashed -> true
          in
          if crashed then begin
            let r =
              Service.recover ~options ~compact_every:4 ~shards ~journal:path ()
            in
            check_all_resume
              ~msg:(Printf.sprintf "live crash at %d bytes" limit)
              r.Service.service dones_ref;
            Service.detach_journals r.Service.service
          end))
    limits

(* One shard's files replaced by garbage: that shard recovers empty
   (its clients start over), the other shard's sessions survive in
   full — and recovery itself never raises. *)
let test_corrupt_one_shard_salvages_the_rest () =
  let shards = 2 in
  let dones_ref, bytes = reference ~shards () in
  let victim = 0 in
  with_journal ~shards (fun path ->
      Array.iteri
        (fun s full ->
          let p = Service.shard_journal ~journal:path ~shard:s in
          (* A well-framed record of garbage plus torn bytes: the
             record decodes to nothing (counted as dropped), the tail
             is discarded by the frame scan. *)
          let content =
            if s = victim then Frame.encode "not a service event" ^ String.make 64 '\xde'
            else full
          in
          let oc = open_out_bin p in
          output_string oc content;
          close_out oc;
          if s = victim then
            Persist.write_atomic ~path:(p ^ ".snapshot") "\x00garbage\xff")
        bytes;
      let r = Service.recover ~options ~shards ~journal:path () in
      List.iter
        (fun (pr : Service.shard_recovery) ->
          if pr.shard = victim then begin
            Alcotest.(check int) "corrupt shard replays nothing" 0 pr.replayed;
            Alcotest.(check bool) "corrupt shard counted dropped input" true
              (pr.dropped > 0)
          end
          else
            Alcotest.(check bool) "healthy shard replays its sessions" true
              (pr.replayed > 0))
        r.Service.per_shard;
      (* Healthy-shard clients resume where they stood; corrupt-shard
         clients re-register — everyone converges to the reference. *)
      check_all_resume ~msg:"corrupt shard 0" r.Service.service dones_ref;
      Service.detach_journals r.Service.service)

(* Whole-service recovery cross-checks: recovering an intact two-shard
   run replays everything, drops nothing, and the merged telemetry
   carries the per-shard totals. *)
let test_recover_intact_service () =
  let shards = 2 in
  let dones_ref, bytes = reference ~shards () in
  with_journal ~shards (fun path ->
      Array.iteri
        (fun s full ->
          let oc = open_out_bin (Service.shard_journal ~journal:path ~shard:s) in
          output_string oc full;
          close_out oc)
        bytes;
      let r =
        Service.recover ~options ~shards
          ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
          ~journal:path ()
      in
      Alcotest.(check int) "nothing dropped" 0 r.Service.dropped;
      Alcotest.(check int) "every client message replayed"
        (List.fold_left
           (fun acc (pr : Service.shard_recovery) -> acc + pr.replayed)
           0 r.Service.per_shard)
        r.Service.replayed;
      Alcotest.(check int) "all sessions back" (List.length fleet)
        (Service.sessions r.Service.service);
      Alcotest.(check int) "merged recovery counter sums shards"
        r.Service.replayed
        (Telemetry.counter_value
           (Service.merged_telemetry r.Service.service)
           "service.recovery.replayed");
      check_all_resume ~msg:"intact recovery" r.Service.service dones_ref;
      Service.detach_journals r.Service.service)

(* ------------------------------------------------------------------ *)
(* Serializability (QCheck)                                            *)

let script_ids = [| "p"; "q"; "r" |]

let gen_step client : Service.message Gen.t =
  Gen.oneof
    [
      Gen.return (register_msg client);
      Gen.return (query_msg client);
      Gen.map
        (fun i -> Service.Client { client; payload = Server.Report (float_of_int i) })
        (Gen.int_bound 100);
      Gen.return (Service.Client { client; payload = Server.Report_failed });
      Gen.return (Service.Deregister { client });
    ]

let gen_scripts : (Service.message array array * int list) Gen.t =
  let gen_script c = Gen.list_size (Gen.int_range 1 8) (gen_step c) in
  Gen.bind
    (Gen.triple (gen_script script_ids.(0)) (gen_script script_ids.(1))
       (gen_script script_ids.(2)))
    (fun (a, b, c) ->
      let tokens =
        List.concat
          [
            List.map (fun _ -> 0) a;
            List.map (fun _ -> 1) b;
            List.map (fun _ -> 2) c;
          ]
      in
      Gen.map
        (fun order ->
          ([| Array.of_list a; Array.of_list b; Array.of_list c |], order))
        (Gen.shuffle_l tokens))

(* Any interleaving of k clients' messages gives each client, as its
   reply subsequence, byte-for-byte the conversation it would have had
   alone against a fresh service. *)
let prop_serializable =
  QCheck2.Test.make ~name:"interleaving serializes per client" ~count:120
    gen_scripts (fun (scripts, order) ->
      let service = Service.create ~options ~shards:3 () in
      let next = Array.make (Array.length scripts) 0 in
      let observed = Array.make (Array.length scripts) [] in
      List.iter
        (fun ci ->
          let msg = scripts.(ci).(next.(ci)) in
          next.(ci) <- next.(ci) + 1;
          let r = Service.handle service msg in
          observed.(ci) <- Service.reply_to_string r :: observed.(ci))
        order;
      let isolated ci =
        let alone = Service.create ~options ~shards:1 () in
        Array.to_list
          (Array.map
             (fun m -> Service.reply_to_string (Service.handle alone m))
             scripts.(ci))
      in
      let ok = ref true in
      Array.iteri
        (fun ci replies ->
          if List.rev replies <> isolated ci then ok := false)
        observed;
      !ok)

(* ------------------------------------------------------------------ *)
(* Admission control at the service edge                               *)

(* Batched driver that tolerates admission rejections: a rejected
   client keeps its state and simply re-offers the same message next
   round — the retry discipline the service's [retry-after] contract
   promises will converge. *)
let drive_batched_with_retries ?pool service clients =
  let state = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace state c `Start) clients;
  let rejections = ref 0 in
  let rec round n =
    if n > 400 then Alcotest.fail "retrying drive did not drain";
    let pending =
      List.filter
        (fun c ->
          match Hashtbl.find_opt state c with
          | Some (`Done _) -> false
          | _ -> true)
        clients
    in
    if pending <> [] then begin
      let msgs =
        List.map
          (fun c ->
            match Hashtbl.find_opt state c with
            | Some `Start -> register_msg c
            | Some (`Assign a) -> report_msg c a
            | _ -> Alcotest.fail "finished client scheduled")
          pending
      in
      let replies = Service.handle_batch ?pool service msgs in
      List.iter2
        (fun c r ->
          match r with
          | Service.Client_reply { reply = Server.Assign a; _ } ->
              Hashtbl.replace state c (`Assign a)
          | Service.Client_reply { reply = Server.Done _ as d; _ } ->
              Hashtbl.replace state c (`Done (Server.reply_to_string d))
          | Service.Client_reply { reply = Server.Rejected msg; _ }
            when Admission.is_rejection_text msg ->
              incr rejections
          | r ->
              Alcotest.fail
                ("retrying drive: unexpected " ^ Service.reply_to_string r))
        pending replies;
      round (n + 1)
    end
  in
  round 0;
  let dones =
    List.map
      (fun c ->
        match Hashtbl.find_opt state c with
        | Some (`Done text) -> (c, text)
        | _ -> Alcotest.fail (c ^ " never finished"))
      clients
  in
  (dones, !rejections)

(* Satellite: batched metrics probes answer the pre-batch snapshot at
   their arrival index — two probes in one batch agree with each other
   and with the registry as of batch start, wherever they sit. *)
let test_metrics_probe_pre_batch_snapshot () =
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~shards:2 ()
  in
  (match Service.handle_batch service [ register_msg "alpha" ] with
  | [ Service.Client_reply { reply = Server.Assign _; _ } ] -> ()
  | _ -> Alcotest.fail "register failed");
  let expected = Service.reply_to_string (Service.Service_stats (Service.metrics service)) in
  let replies =
    Service.handle_batch service
      [ Service.Service_metrics; register_msg "bravo";
        Service.Service_metrics ]
  in
  (match replies with
  | [ first; Service.Client_reply { reply = Server.Assign _; _ }; last ] ->
      Alcotest.(check string) "leading probe answers pre-batch registry"
        expected
        (Service.reply_to_string first);
      Alcotest.(check string) "trailing probe answers the same snapshot"
        expected
        (Service.reply_to_string last)
  | _ -> Alcotest.fail "unexpected batch shape");
  (* And the next batch's probe sees bravo's register. *)
  match Service.handle_batch service [ Service.Service_metrics ] with
  | [ Service.Service_stats text ] ->
      Alcotest.(check bool) "snapshot advanced between batches" false
        (String.equal expected
           (Service.reply_to_string (Service.Service_stats text)))
  | _ -> Alcotest.fail "probe failed"

let test_admission_rejects_and_retries () =
  let tight = { Admission.unlimited with Admission.max_inflight = 1 } in
  (* Registers are Critical: a full fleet registers in one batch even
     with a single-slot budget. *)
  let probe = Service.create ~options ~admission:tight ~shards:2 () in
  List.iter
    (fun r ->
      match r with
      | Service.Client_reply { reply = Server.Assign _; _ } -> ()
      | r -> Alcotest.fail ("register: " ^ Service.reply_to_string r))
    (Service.handle_batch probe (List.map register_msg fleet));
  (* Drive a fresh policed service to done under the 1-per-shard
     budget: the 4-client fleet must see real rejections and still
     converge to the same dones as an unpoliced service. *)
  let service =
    Service.create ~options
      ~telemetry:(fun _ -> Telemetry.create ~record_events:false ())
      ~admission:tight ~shards:2 ()
  in
  let plain = Service.create ~options ~shards:2 () in
  let dones_ref = drive_all plain fleet in
  let dones, rejections = drive_batched_with_retries service fleet in
  Alcotest.(check bool) "budget forced real rejections" true (rejections > 0);
  List.iter2
    (fun (c, d) (c', d') ->
      Alcotest.(check string) (c ^ " client id stable") c c';
      Alcotest.(check string)
        (c ^ " done byte-identical despite shedding") d d')
    dones_ref dones;
  (* Rejected messages never touched sessions: the admission counters
     add up against what the shards actually handled. *)
  let merged = Service.merged_telemetry service in
  Alcotest.(check bool) "over-capacity counted" true
    (Telemetry.counter_value merged Admission.c_over_capacity > 0);
  Alcotest.(check int) "rejected aggregates the splits"
    (Telemetry.counter_value merged Admission.c_over_capacity)
    (Telemetry.counter_value merged Admission.c_rejected)

let test_deadline_shed_before_dispatch () =
  let service =
    Service.create ~options ~admission:Admission.unlimited ~shards:1 ()
  in
  ignore (Service.handle_batch service []);
  (* Clock is now 1; a deadline of 0 is already dead and must be shed
     before the shard ever sees it. *)
  let replies =
    Service.handle_batch_env service
      [ Service.envelope ~deadline:0 (register_msg "alpha") ]
  in
  (match replies with
  | [ Service.Client_reply { client = "alpha"; reply = Server.Rejected msg } ]
    ->
      Alcotest.(check string) "deadline rejection text"
        "deadline-expired: retry-after=0" msg
  | _ -> Alcotest.fail "expected a deadline rejection");
  Alcotest.(check int) "no session was created" 0 (Service.sessions service);
  (* The same message with a live deadline registers fine. *)
  match
    Service.handle_batch_env service
      [ Service.envelope ~deadline:99 (register_msg "alpha") ]
  with
  | [ Service.Client_reply { reply = Server.Assign _; _ } ] -> ()
  | _ -> Alcotest.fail "live-deadline register failed"

let test_degraded_sheds_by_priority () =
  (* A 1-tick window with a 1-shed watermark flips the single shard
     degraded on the round after any shed, and recovers after any
     shed-free round. *)
  let service =
    Service.create ~options
      ~admission:
        { Admission.unlimited with Admission.max_inflight = 1;
          degrade_window = 1; degrade_high = 1; degrade_low = 0 }
      ~shards:1 ()
  in
  let adm = Option.get (Service.admission service) in
  ignore (Service.handle_batch service [ register_msg "alpha" ]);
  ignore (Service.handle_batch service [ register_msg "bravo" ]);
  (* Two Normal reports against one slot: one shed. *)
  (match
     Service.handle_batch service
       [ query_msg "alpha"; query_msg "bravo" ]
   with
  | [ Service.Client_reply { reply = r1; _ };
      Service.Client_reply { reply = r2; _ } ] ->
      let rejected =
        List.length
          (List.filter
             (function Server.Rejected _ -> true | _ -> false)
             [ r1; r2 ])
      in
      Alcotest.(check int) "one of two queries shed by the budget" 1 rejected
  | _ -> Alcotest.fail "unexpected replies");
  (* Next round the window has rolled: the shard is degraded, Low
     priority is shed outright with the degraded flag, Normal and
     Critical still pass. *)
  let replies =
    Service.handle_batch service
      [ query_msg "alpha";
        Service.Client { client = "bravo"; payload = Server.Report_failed };
        Service.Deregister { client = "alpha" } ]
  in
  Alcotest.(check bool) "shard reports degraded" true
    (Admission.degraded adm ~shard:0);
  (match replies with
  | [ Service.Client_reply { reply = Server.Rejected msg; _ };
      Service.Client_reply { reply = _; _ };
      Service.Deregistered { client = "alpha" } ] ->
      Alcotest.(check bool) "low-priority shed mentions degraded" true
        (String.length msg >= 8 && String.equal (String.sub msg 0 5) "shed:");
      Alcotest.(check bool) "shed reply carries the degraded flag" true
        (String.ends_with ~suffix:" degraded" msg)
  | _ -> Alcotest.fail "degraded round had unexpected shape");
  (* A quiet round (only exempt traffic, no sheds) recovers the shard
     hysteretically. *)
  ignore
    (Service.handle_batch service [ Service.Deregister { client = "bravo" } ]);
  ignore (Service.handle_batch service []);
  Alcotest.(check bool) "shard recovered after quiet window" false
    (Admission.degraded adm ~shard:0)

let test_cancelled_batch_is_total () =
  let service = Service.create ~options ~shards:2 () in
  Pool.with_pool ~domains:2 (fun pool ->
      let cancel = Pool.Cancel.create () in
      Pool.Cancel.cancel cancel;
      let replies =
        Service.handle_batch ~pool ~cancel service (List.map register_msg fleet)
      in
      Alcotest.(check int) "every slot answered" (List.length fleet)
        (List.length replies);
      List.iter
        (fun r ->
          match r with
          | Service.Client_reply { reply = Server.Rejected msg; _ } ->
              Alcotest.(check string) "cancelled rejection text"
                "cancelled: retry-after=0" msg
          | r ->
              Alcotest.fail ("cancelled: unexpected " ^ Service.reply_to_string r))
        replies;
      Alcotest.(check int) "no session state touched" 0
        (Service.sessions service);
      (* The same batch goes through once the token is fresh. *)
      let replies =
        Service.handle_batch ~pool service (List.map register_msg fleet)
      in
      List.iter
        (fun r ->
          match r with
          | Service.Client_reply { reply = Server.Assign _; _ } -> ()
          | r -> Alcotest.fail ("retry: unexpected " ^ Service.reply_to_string r))
        replies)

let test_critical_rejection_is_retryable () =
  (* Even Critical messages obey the per-client token bucket; the
     rejection is a total client-addressed reply and the session
     survives to retry. *)
  let service =
    Service.create ~options
      ~admission:
        { Admission.unlimited with Admission.rate = 1; burst = 1;
          refill_every = 4 }
      ~shards:1 ()
  in
  (match Service.handle service (register_msg "alpha") with
  | Service.Client_reply { reply = Server.Assign _; _ } -> ()
  | r -> Alcotest.fail ("register: " ^ Service.reply_to_string r));
  (match Service.handle service (Service.Deregister { client = "alpha" }) with
  | Service.Client_reply { client = "alpha"; reply = Server.Rejected msg } ->
      Alcotest.(check bool) "rate-limit rejection is parseable" true
        (Option.is_some (Admission.retry_after_of_text msg))
  | r -> Alcotest.fail ("deregister: " ^ Service.reply_to_string r));
  Alcotest.(check int) "session survived the rejection" 1
    (Service.sessions service);
  (* Wait out the refill and retry. *)
  for _ = 1 to 4 do ignore (Service.handle_batch service []) done;
  match Service.handle service (Service.Deregister { client = "alpha" }) with
  | Service.Deregistered { client = "alpha" } -> ()
  | r -> Alcotest.fail ("retry deregister: " ^ Service.reply_to_string r)

(* ------------------------------------------------------------------ *)
(* Recovery of journaled rejections (kill at every record boundary)    *)

(* Reference run under rate limiting: every client's bucket starts
   with one token and refills one token every two ticks, so roughly
   every other round each client's (journaled) report is rejected —
   the shard journals interleave accepted records with shed ones.
   Clients never deregister, so recovery's compaction prunes nothing
   and the snapshot must reproduce the journal prefix verbatim. *)
let rejection_admission =
  { Admission.unlimited with Admission.rate = 1; burst = 1; refill_every = 2 }

let rejection_reference ~shards () =
  with_journal ~shards (fun path ->
      let service =
        Service.create ~options ~admission:rejection_admission ~shards ()
      in
      Service.attach_journals ~compact_every:1_000_000 service ~journal:path ();
      let dones, rejections = drive_batched_with_retries service fleet in
      Service.detach_journals service;
      let bytes =
        Array.init shards (fun s ->
            Option.value ~default:""
              (Persist.read_file (Service.shard_journal ~journal:path ~shard:s)))
      in
      (dones, rejections, bytes))

let test_kill_at_boundary_replays_rejections () =
  let shards = 2 in
  let dones_ref, rejections, bytes = rejection_reference ~shards () in
  Alcotest.(check bool) "reference run really rejected work" true
    (rejections > 0);
  Array.iteri
    (fun victim shard_bytes ->
      let scan = Frame.scan shard_bytes in
      Alcotest.(check bool) "reference shard journal is clean" false
        scan.Frame.torn;
      let shed_records =
        List.filter
          (fun r ->
            match Service.Event.decode r with
            | Some (_, Service.Event.Shed _) -> true
            | _ -> false)
          (Frame.scan shard_bytes).Frame.records
      in
      Alcotest.(check bool)
        (Printf.sprintf "shard %d journal mixes in shed records" victim)
        true
        (List.length shed_records > 0);
      List.iter
        (fun cut ->
          with_journal ~shards (fun path ->
              Array.iteri
                (fun s full ->
                  let content =
                    if s = victim then String.sub full 0 cut else full
                  in
                  let oc =
                    open_out_bin (Service.shard_journal ~journal:path ~shard:s)
                  in
                  output_string oc content;
                  close_out oc)
                bytes;
              let r =
                Service.recover ~options ~admission:Admission.unlimited ~shards
                  ~journal:path ()
              in
              Alcotest.(check int)
                (Printf.sprintf "shard %d cut %d: clean prefix, nothing dropped"
                   victim cut)
                0 r.Service.dropped;
              (* Byte-for-byte replay of the prefix — rejections
                 included: every journal record in the surviving
                 prefix (shed, recv, and their replies) reappears
                 verbatim in the recovered shard's snapshot. *)
              let prefix_records =
                (Frame.scan (String.sub shard_bytes 0 cut)).Frame.records
              in
              let snap_records =
                (Harmony_persist.Journal.read
                   (Service.shard_journal ~journal:path ~shard:victim
                    ^ ".snapshot"))
                  .Frame.records
              in
              List.iter
                (fun record ->
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "shard %d cut %d: record %S replayed byte-for-byte"
                       victim cut record)
                    true
                    (List.mem record snap_records))
                prefix_records;
              (* And the interrupted clients still converge to the
                 reference dones (admission is generous post-recovery;
                 the retry discipline needs no special casing). *)
              check_all_resume
                ~msg:(Printf.sprintf "shard %d killed at boundary %d" victim cut)
                r.Service.service dones_ref;
              Service.detach_journals r.Service.service))
        (0 :: scan.Frame.boundaries))
    bytes

(* ------------------------------------------------------------------ *)
(* Trace correlation, flight dumps, and the SLO monitor                *)

module Slo = Harmony_service.Slo
module Flight = Harmony_telemetry.Flight
module Export = Harmony_telemetry.Export

(* Drive the standard fleet conversation through [handle_batch] with
   event-recording shard telemetry and return each shard's exported
   trace text. *)
let drive_with_trace ~domains =
  let shards = 2 in
  let service =
    Service.create ~options ~telemetry:(fun _ -> Telemetry.create ()) ~shards ()
  in
  let state = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace state c `Start) fleet;
  let run pool =
    let rec round steps =
      if steps > 200 then Alcotest.fail "traced run did not drain";
      let live =
        List.filter
          (fun c ->
            match Hashtbl.find_opt state c with
            | Some `Gone -> false
            | _ -> true)
          fleet
      in
      if live <> [] then begin
        let batch =
          List.map
            (fun c ->
              match Hashtbl.find_opt state c with
              | Some `Start -> register_msg c
              | Some (`Assign a) -> report_msg c a
              | Some `Done -> Service.Deregister { client = c }
              | _ -> Alcotest.fail "inactive client scheduled")
            live
        in
        let replies = Service.handle_batch ?pool service batch in
        List.iteri
          (fun k r ->
            let c = List.nth live k in
            match r with
            | Service.Client_reply { reply = Server.Assign a; _ } ->
                Hashtbl.replace state c (`Assign a)
            | Service.Client_reply { reply = Server.Done _; _ } ->
                Hashtbl.replace state c `Done
            | Service.Deregistered _ -> Hashtbl.replace state c `Gone
            | r -> Alcotest.fail ("traced run: " ^ Service.reply_to_string r))
          replies;
        round (steps + 1)
      end
    in
    round 0
  in
  (match domains with
  | 1 -> run None
  | n -> Pool.with_pool ~domains:n (fun pool -> run (Some pool)));
  List.init shards (fun s -> Export.jsonl (Service.shard_telemetry service s))

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) affix || go (i + 1))
  in
  n = 0 || go 0

(* The whole point of deriving trace ids from (client, seq) in the
   sequential admission loop: the emitted trace bytes — span events,
   correlation args, histogram exemplars — cannot depend on how many
   domains dispatched the batches. *)
let test_trace_bytes_identical_across_domains () =
  let sequential = drive_with_trace ~domains:1 in
  let parallel = drive_with_trace ~domains:4 in
  Alcotest.(check (list string))
    "per-shard trace bytes identical at 1 vs 4 domains" sequential parallel;
  List.iter
    (fun shard_text ->
      Alcotest.(check bool) "trace ids present" true
        (contains ~affix:{|"trace_id"|} shard_text);
      Alcotest.(check bool) "handle exemplars present" true
        (contains ~affix:{|"exemplars"|} shard_text))
    sequential

let test_dump_flight_returns_rings () =
  let service =
    Service.create ~options
      ~telemetry:(fun _ ->
        Telemetry.create ~record_events:false
          ~flight:(Flight.create ~capacity:64)
          ())
      ~shards:2 ()
  in
  List.iter
    (fun c ->
      match Service.handle service (register_msg c) with
      | Service.Client_reply { reply = Server.Assign _; _ } -> ()
      | r -> Alcotest.fail ("register: " ^ Service.reply_to_string r))
    fleet;
  match Service.handle service Service.Dump_flight with
  | Service.Flight_dump text -> (
      (* The dump is analyzer-ready: shard-segmented, spans intact. *)
      match Trace_core.of_string text with
      | Error e -> Alcotest.fail ("flight dump unparsable: " ^ e)
      | Ok t ->
          Alcotest.(check int) "nothing dropped" 0 t.Trace_core.dropped;
          Alcotest.(check (list string))
            "one segment per shard" [ "shard0"; "shard1" ]
            (List.map (fun s -> s.Trace_core.seg_name) t.Trace_core.segments);
          Alcotest.(check bool) "handle spans recorded" true
            (Trace_core.handles t <> []))
  | r -> Alcotest.fail ("dump-flight: " ^ Service.reply_to_string r)

let test_slo_monitor_state_machine () =
  let m = Slo.create Slo.default_burn in
  let total = ref 0 and viol = ref 0 in
  let feed_n n ~per_feed_viol =
    for _ = 1 to n do
      total := !total + 100;
      viol := !viol + per_feed_viol;
      ignore (Slo.feed m ~total:!total ~violations:!viol)
    done
  in
  (* Clean traffic: quiet. *)
  feed_n 16 ~per_feed_viol:0;
  Alcotest.(check string) "clean traffic is healthy" "ok"
    (Slo.state_to_string (Slo.state m));
  Alcotest.(check int) "no pages yet" 0 (Slo.pages m);
  (* Sustained 10x burn (10% violating vs a 1% budget): the fast
     window arms immediately, the slow window confirms, and the
     monitor pages exactly once for the episode. *)
  feed_n 64 ~per_feed_viol:10;
  Alcotest.(check string) "sustained burn pages" "page"
    (Slo.state_to_string (Slo.state m));
  Alcotest.(check int) "one page for one episode" 1 (Slo.pages m);
  (* Hysteresis: 3x burn is below half the page threshold, so the
     monitor steps down — but only to warn (3x is still above half the
     warn threshold), where it holds without flapping. *)
  feed_n 64 ~per_feed_viol:3;
  Alcotest.(check string) "moderate burn settles at warn" "warn"
    (Slo.state_to_string (Slo.state m));
  Alcotest.(check int) "no second page" 1 (Slo.pages m);
  (* Full recovery drains both windows back to healthy. *)
  feed_n 128 ~per_feed_viol:0;
  Alcotest.(check string) "recovery de-escalates fully" "ok"
    (Slo.state_to_string (Slo.state m));
  (* Cumulative inputs mean a snapshot replay (same totals) is a
     no-op delta, not a phantom burst. *)
  let before = Slo.state m in
  ignore (Slo.feed m ~total:!total ~violations:!viol);
  Alcotest.(check string) "replayed snapshot is a zero delta"
    (Slo.state_to_string before)
    (Slo.state_to_string (Slo.state m))

let test_budgets_of_json () =
  (match
     Slo.budgets_of_json
       {|{"histogram":"server.handle_ms","quantile":0.99,"max_ticks":20,
          "queue_delay_histogram":"service.admission.queue_delay",
          "max_p99_queue_delay_ticks":40,"max_excess_rejection_rate":0.15}|}
   with
  | Error e -> Alcotest.fail ("budgets: " ^ e)
  | Ok b ->
      Alcotest.(check string) "histogram" "server.handle_ms" b.Slo.handle_hist;
      Alcotest.(check (float 1e-9)) "max ticks" 20.0 b.Slo.handle_max;
      (* No "burn" object: the monitor defaults apply. *)
      Alcotest.(check (float 1e-9))
        "default page burn" Slo.default_burn.Slo.page_burn b.Slo.burn.Slo.page_burn;
      let spec = Slo.spec_of_budgets b in
      Alcotest.(check (float 1e-9)) "threshold from budget" 20.0
        spec.Slo.handle_threshold);
  (match
     Slo.budgets_of_json
       {|{"histogram":"h","quantile":0.99,"max_ticks":20,
          "queue_delay_histogram":"q","max_p99_queue_delay_ticks":40,
          "max_excess_rejection_rate":0.15,
          "burn":{"warn_burn":8.0,"page_burn":2.0}}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "page below warn must be rejected, not clamped");
  match Slo.budgets_of_json "{not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

let test_violations_in_counts_bucket_occupancy () =
  let t = Telemetry.create () in
  let bounds = [| 1.0; 5.0; 10.0; 20.0 |] in
  List.iter
    (fun v -> Telemetry.observe t ~bounds "h" v)
    [ 0.5; 4.0; 9.0; 15.0; 100.0 ];
  match Telemetry.histogram_value t "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some snap ->
      Alcotest.(check int) "exact at a bucket bound" 2
        (Slo.violations_in snap ~threshold:10.0);
      Alcotest.(check int) "conservative inside a bucket" 3
        (Slo.violations_in snap ~threshold:6.0)

let suite =
  [
    Alcotest.test_case "routing deterministic" `Quick test_routing_deterministic;
    Alcotest.test_case "batch identical across domains" `Quick
      test_batch_identical_across_domains;
    Alcotest.test_case "batch identical to sequential" `Quick
      test_batch_identical_to_sequential;
    Alcotest.test_case "client replies identical across shards" `Quick
      test_client_replies_identical_across_shards;
    Alcotest.test_case "duplicate register rejected" `Quick
      test_duplicate_register_rejected;
    Alcotest.test_case "unknown client total" `Quick test_unknown_client_is_total;
    Alcotest.test_case "parse message" `Quick test_parse_message;
    Alcotest.test_case "event codec" `Quick test_event_codec;
    Alcotest.test_case "metrics merge shards" `Quick
      test_service_metrics_merges_shards;
    Alcotest.test_case "kill one shard at every boundary" `Slow
      test_kill_one_shard_at_every_boundary;
    Alcotest.test_case "kill one shard mid-record" `Quick
      test_kill_one_shard_mid_record;
    Alcotest.test_case "live crash one shard" `Quick test_live_crash_one_shard;
    Alcotest.test_case "corrupt one shard salvages rest" `Quick
      test_corrupt_one_shard_salvages_the_rest;
    Alcotest.test_case "recover intact service" `Quick test_recover_intact_service;
    Alcotest.test_case "metrics probe answers pre-batch snapshot" `Quick
      test_metrics_probe_pre_batch_snapshot;
    Alcotest.test_case "admission rejects and retries converge" `Quick
      test_admission_rejects_and_retries;
    Alcotest.test_case "deadline shed before dispatch" `Quick
      test_deadline_shed_before_dispatch;
    Alcotest.test_case "degraded sheds by priority" `Quick
      test_degraded_sheds_by_priority;
    Alcotest.test_case "cancelled batch is total" `Quick
      test_cancelled_batch_is_total;
    Alcotest.test_case "critical rejection retryable" `Quick
      test_critical_rejection_is_retryable;
    Alcotest.test_case "kill at boundary replays rejections" `Slow
      test_kill_at_boundary_replays_rejections;
    to_alcotest prop_serializable;
    Alcotest.test_case "trace bytes identical across domains" `Quick
      test_trace_bytes_identical_across_domains;
    Alcotest.test_case "dump-flight returns analyzer-ready rings" `Quick
      test_dump_flight_returns_rings;
    Alcotest.test_case "slo monitor state machine" `Quick
      test_slo_monitor_state_machine;
    Alcotest.test_case "slo budgets parse" `Quick test_budgets_of_json;
    Alcotest.test_case "violations_in counts bucket occupancy" `Quick
      test_violations_in_counts_bucket_occupancy;
  ]
