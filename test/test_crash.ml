(* Crash-injection harness for the write-ahead journal (deterministic).

   The central property: kill the server at EVERY record boundary of a
   reference run's journal, recover, resume the same deterministic
   client, and the final [done] reply and the experience-database entry
   derived from the journal are byte-identical to the uninterrupted
   run's.  On top of that: live crashes through a fault-injecting sink
   (the process "dies" mid-write(2), torn bytes and all), crashes into
   the compaction windows, and corrupt-input tests proving recovery
   never raises. *)

open Harmony
module Frame = Harmony_persist.Frame
module Persist = Harmony_persist.Persist
module Journal = Harmony_persist.Journal
module Gen = QCheck2.Gen

let seed = [| 0x5eed; 2004 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make seed) t

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

(* Deterministic client: performance is a pure function of the
   assignment (peak at B=3, C=4), so any two runs that see the same
   assignments report the same measurements. *)
let respond assignment =
  let v name = float_of_int (List.assoc name assignment) in
  let db = v "B" -. 3.0 and dc = v "C" -. 4.0 in
  100.0 -. (db *. db) -. (dc *. dc)

(* A small budget keeps every boundary's resumed run cheap; the journal
   still spans a register and a dozen report/reply pairs. *)
let options = { Simplex.default_options with Simplex.max_evaluations = 12 }

let register server =
  Server.handle server
    (Server.Register { spec = paper_spec; direction = Server.Maximize })

let drive_to_done server first =
  let rec go reply steps =
    if steps > 200 then Alcotest.fail "run did not reach done"
    else
      match reply with
      | Server.Assign assignment ->
          go (Server.handle server (Server.Report (respond assignment))) (steps + 1)
      | Server.Done _ -> reply
      | Server.Rejected msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  go first 0

(* Resume after a recovery: ask the server where it stands.  A fresh
   (nothing-durable) server rejects the query and the client starts
   over, exactly like a real client reconnecting. *)
let resume server =
  match Server.handle server Server.Query with
  | Server.Rejected _ -> register server
  | Server.Assign _ as reply -> reply
  | Server.Done _ as reply -> reply
  | Server.Stats _ -> Alcotest.fail "unexpected stats reply"

let with_journal f =
  let path = Filename.temp_file "harmony_crash" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      Persist.remove_if_exists path;
      Persist.remove_if_exists (path ^ ".tmp");
      Persist.remove_if_exists (path ^ ".snapshot");
      Persist.remove_if_exists (path ^ ".snapshot.tmp"))
    (fun () -> f path)

(* The experience-database entry a run's journal produces, as the exact
   bytes History would persist. *)
let db_bytes evaluations =
  let db = History.create () in
  ignore
    (History.add db ~label:"crash-test" ~characteristics:[| 1.0 |]
       ~evaluations:
         (List.map
            (fun (assignment, perf) ->
              ( Array.of_list
                  (List.map (fun (_, v) -> float_of_int v) assignment),
                perf ))
            evaluations)
       ());
  with_journal (fun path ->
      History.save db path;
      Option.value ~default:"" (Persist.read_file path))

(* Uninterrupted reference run, journaled without compaction so every
   record boundary is present in one file. *)
let reference () =
  with_journal (fun path ->
      let server = Server.create ~options () in
      Server.attach_journal ~compact_every:1_000_000 server ~journal:path ();
      let final = drive_to_done server (register server) in
      Server.detach_journal server;
      let bytes = Option.value ~default:"" (Persist.read_file path) in
      (Server.reply_to_string final, bytes, Server.journal_evaluations path))

let check_run_matches ~msg ~done_ref ~evals_ref recovery path =
  let final = drive_to_done recovery.Server.server (resume recovery.Server.server) in
  Alcotest.(check string) (msg ^ ": done reply byte-identical") done_ref
    (Server.reply_to_string final);
  Server.detach_journal recovery.Server.server;
  let evals = Server.journal_evaluations path in
  Alcotest.(check string) (msg ^ ": experience entry byte-identical")
    (db_bytes evals_ref) (db_bytes evals)

(* ------------------------------------------------------------------ *)
(* Kill at every record boundary                                       *)

let test_kill_at_every_boundary () =
  let done_ref, bytes, evals_ref = reference () in
  let scan = Frame.scan bytes in
  Alcotest.(check bool) "reference journal is clean" false scan.Frame.torn;
  Alcotest.(check bool) "enough boundaries to mean something" true
    (List.length scan.Frame.boundaries > 20);
  List.iter
    (fun cut ->
      with_journal (fun path ->
          let oc = open_out_bin path in
          output_string oc (String.sub bytes 0 cut);
          close_out oc;
          let r = Server.recover ~options ~journal:path () in
          Alcotest.(check int)
            (Printf.sprintf "cut %d: clean prefix, nothing dropped" cut)
            0 r.Server.dropped;
          check_run_matches
            ~msg:(Printf.sprintf "kill at boundary %d" cut)
            ~done_ref ~evals_ref r path))
    (0 :: scan.Frame.boundaries)

(* Killing mid-record (a torn write, not a clean boundary) must cost
   exactly the record being written. *)
let test_kill_mid_record () =
  let done_ref, bytes, evals_ref = reference () in
  let scan = Frame.scan bytes in
  let torn_cuts =
    (* A few bytes past each boundary: inside the next record's header
       or payload. *)
    List.filter_map
      (fun b -> if b + 3 <= String.length bytes then Some (b + 3) else None)
      (0 :: scan.Frame.boundaries)
  in
  List.iter
    (fun cut ->
      with_journal (fun path ->
          let oc = open_out_bin path in
          output_string oc (String.sub bytes 0 cut);
          close_out oc;
          let r = Server.recover ~options ~journal:path () in
          check_run_matches
            ~msg:(Printf.sprintf "kill mid-record at byte %d" cut)
            ~done_ref ~evals_ref r path))
    torn_cuts

(* ------------------------------------------------------------------ *)
(* Live crashes through the fault-injecting sink                       *)

let test_live_crash_and_recover () =
  let done_ref, bytes, evals_ref = reference () in
  let total = String.length bytes in
  (* Crash the writer at a spread of byte budgets, compaction enabled
     (compact_every:4) so some crashes land inside the snapshot/reset
     windows too. *)
  let limits = List.init 12 (fun i -> 1 + (i * total / 12)) in
  List.iter
    (fun limit ->
      with_journal (fun path ->
          let server = Server.create ~options () in
          Server.attach_journal ~compact_every:4
            ~wrap:(Persist.fault_sink ~limit_bytes:limit)
            server ~journal:path ();
          let crashed =
            match drive_to_done server (register server) with
            | exception Persist.Crashed -> true
            | Server.Assign _ | Server.Done _ | Server.Rejected _
            | Server.Stats _ ->
                false
          in
          if crashed then begin
            let r = Server.recover ~options ~compact_every:4 ~journal:path () in
            check_run_matches
              ~msg:(Printf.sprintf "live crash at %d bytes" limit)
              ~done_ref ~evals_ref r path
          end))
    limits

(* ------------------------------------------------------------------ *)
(* Compaction windows                                                  *)

(* Crash after the snapshot landed but before (or while) the journal
   was reset: the journal still holds records the snapshot already
   covers.  Sequence numbers make them recognizably stale — recovery
   must skip them, not double-apply the reports. *)
let test_stale_journal_behind_snapshot () =
  let done_ref, _, evals_ref = reference () in
  with_journal (fun path ->
      let server = Server.create ~options () in
      Server.attach_journal ~compact_every:4 server ~journal:path ();
      let _ = drive_to_done server (register server) in
      Server.detach_journal server;
      Alcotest.(check bool) "compaction produced a snapshot" true
        (Sys.file_exists (path ^ ".snapshot"));
      (* Re-create the crash window: put already-compacted records back
         in front of the journal's current contents. *)
      let journal_now = Option.value ~default:"" (Persist.read_file path) in
      let stale =
        String.concat ""
          [
            Frame.encode (Server.Event.encode ~seq:1 (Server.Event.Recv Server.Query));
            Frame.encode (Server.Event.encode ~seq:2 (Server.Event.Recv (Server.Report 1.0)));
          ]
      in
      let oc = open_out_bin path in
      output_string oc (stale ^ journal_now);
      close_out oc;
      let r = Server.recover ~options ~journal:path () in
      Alcotest.(check bool) "stale records were dropped" true (r.Server.dropped >= 2);
      check_run_matches ~msg:"stale journal behind snapshot" ~done_ref
        ~evals_ref r path)

(* A corrupt snapshot degrades to journal-only replay; if that leaves
   nothing usable, the client simply starts a fresh session — recovery
   itself never raises. *)
let test_corrupt_snapshot_degrades () =
  let done_ref, _, _ = reference () in
  with_journal (fun path ->
      let server = Server.create ~options () in
      Server.attach_journal ~compact_every:4 server ~journal:path ();
      let _ = drive_to_done server (register server) in
      Server.detach_journal server;
      Persist.write_atomic ~path:(path ^ ".snapshot") "\x00garbage snapshot\xff";
      let r = Server.recover ~options ~journal:path () in
      let final = drive_to_done r.Server.server (resume r.Server.server) in
      Alcotest.(check string) "fresh run still reaches the same done" done_ref
        (Server.reply_to_string final);
      Server.detach_journal r.Server.server)

(* ------------------------------------------------------------------ *)
(* Corrupt input never raises                                          *)

let test_recover_corrupt_inputs_never_raise () =
  let garbage =
    [
      "";
      "\x00";
      String.make 64 '\xff';
      "not a journal at all\n";
      Frame.encode "1 recv query" ^ "torn";
      Frame.encode "junk payload";
      Frame.encode "999999 recv report 1";
    ]
  in
  List.iter
    (fun bytes ->
      with_journal (fun path ->
          let oc = open_out_bin path in
          output_string oc bytes;
          close_out oc;
          (* Some of these also double as a corrupt snapshot. *)
          Persist.write_atomic ~path:(path ^ ".snapshot") bytes;
          let r = Server.recover ~options ~journal:path () in
          let final = drive_to_done r.Server.server (resume r.Server.server) in
          (match final with
          | Server.Done _ -> ()
          | Server.Assign _ | Server.Rejected _ | Server.Stats _ ->
              Alcotest.fail "resumed run did not finish");
          Server.detach_journal r.Server.server))
    garbage

let test_journal_evaluations_corrupt_is_total () =
  with_journal (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 33 '\xde');
      close_out oc;
      Alcotest.(check int) "garbage journal: no evaluations" 0
        (List.length (Server.journal_evaluations path)));
  Alcotest.(check int) "missing journal: no evaluations" 0
    (List.length (Server.journal_evaluations "/nonexistent/harmony/journal"))

(* ------------------------------------------------------------------ *)
(* Event codec properties                                              *)

let gen_message : Server.message Gen.t =
  Gen.(
    oneof
      [
        return Server.Query;
        return Server.Report_failed;
        map
          (fun i -> Server.Report (float_of_int i /. 16.0))
          (int_range (-100_000) 100_000);
        map
          (fun (spec, minimize) ->
            Server.Register
              {
                spec;
                direction = (if minimize then Server.Minimize else Server.Maximize);
              })
          (pair (string_size ~gen:printable (int_bound 40)) bool);
      ])

(* [parse_message] trims its input, so a register spec with stray outer
   whitespace normalizes on the first decode; after that one pass the
   codec must be an exact involution.  Non-register messages round-trip
   exactly from the start. *)
let prop_event_roundtrip =
  QCheck2.Test.make ~name:"Event.encode/decode roundtrip" ~count:300
    Gen.(pair (int_range 1 1_000_000) gen_message)
    (fun (seq, message) ->
      let reencode m =
        Server.Event.decode (Server.Event.encode ~seq (Server.Event.Recv m))
      in
      match reencode message with
      | Some (seq1, Server.Event.Recv m1) -> (
          let exact_when_not_register =
            match message with
            | Server.Register _ -> true
            | Server.Query | Server.Report _ | Server.Report_failed
            | Server.Metrics ->
                String.equal
                  (Server.message_to_string m1)
                  (Server.message_to_string message)
          in
          seq1 = seq
          && exact_when_not_register
          &&
          match reencode m1 with
          | Some (seq2, Server.Event.Recv m2) ->
              seq2 = seq
              && String.equal
                   (Server.message_to_string m2)
                   (Server.message_to_string m1)
          | Some (_, (Server.Event.Reply _ | Server.Event.Shed _)) | None ->
              false)
      | Some (_, (Server.Event.Reply _ | Server.Event.Shed _)) | None -> false)

let prop_event_decode_total =
  QCheck2.Test.make ~name:"Event.decode is total on arbitrary bytes" ~count:500
    Gen.(string_size ~gen:char (int_bound 80))
    (fun s ->
      match Server.Event.decode s with
      | Some (seq, Server.Event.Recv _)
      | Some (seq, Server.Event.Reply _)
      | Some (seq, Server.Event.Shed _) ->
          seq >= 1
      | None -> true)

(* Reports must survive the render/parse cycle bit-for-bit — replay
   determinism hangs on it. *)
let prop_report_float_roundtrip =
  QCheck2.Test.make ~name:"report floats round-trip exactly" ~count:300
    Gen.(float_bound_inclusive 1e9)
    (fun f ->
      match Server.parse_message (Server.message_to_string (Server.Report f)) with
      | Ok (Server.Report f') ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | Ok (Server.Register _ | Server.Query | Server.Report_failed
           | Server.Metrics)
      | Error _ ->
          false)

(* ------------------------------------------------------------------ *)
(* Journaled admission rejections (shed records)                       *)

let test_shed_event_codec () =
  let ev = Server.Event.Shed Server.Report_failed in
  let encoded = Server.Event.encode ~seq:7 ev in
  Alcotest.(check string) "shed encoding" "7 shed report failed" encoded;
  (match Server.Event.decode encoded with
  | Some (7, Server.Event.Shed Server.Report_failed) -> ()
  | _ -> Alcotest.fail "shed record did not round-trip");
  Alcotest.(check bool) "garbage shed payload rejected" true
    (Option.is_none (Server.Event.decode "3 shed ???"))

(* A mid-run shed must be durable, replay its recorded reply
   byte-for-byte (it is kept literally — the message was never
   applied), contribute nothing to the evaluation trace, and leave the
   session's deterministic resume untouched. *)
let test_journal_shed_recovery () =
  let shed_reply = "error overloaded: retry-after=2 degraded" in
  with_journal (fun path ->
      let server = Server.create ~options () in
      Server.attach_journal ~compact_every:1_000_000 server ~journal:path ();
      let reply = register server in
      (* A few real reports, then a shed one, then more real ones. *)
      let reply =
        match reply with
        | Server.Assign a -> Server.handle server (Server.Report (respond a))
        | r -> r
      in
      Server.journal_shed server (Server.Report 999.0) ~reply:shed_reply;
      (match reply with
      | Server.Assign a ->
          ignore (Server.handle server (Server.Report (respond a)))
      | _ -> ());
      Server.detach_journal server;
      let evals_before = Server.journal_evaluations path in
      Alcotest.(check bool) "shed report is not an evaluation" true
        (not (List.exists (fun (_, p) -> p = 999.0) evals_before));
      let r = Server.recover ~options ~journal:path () in
      Alcotest.(check int) "nothing dropped" 0 r.Server.dropped;
      Server.detach_journal r.Server.server;
      (* The post-recovery snapshot must carry the shed + literal
         reply records byte-for-byte. *)
      let snap = Journal.read (path ^ ".snapshot") in
      let has record = List.mem record snap.Frame.records in
      Alcotest.(check bool) "shed record survives recovery" true
        (has "3 shed report 999");
      Alcotest.(check bool) "literal reply survives recovery" true
        (has ("3 reply " ^ shed_reply));
      (* And the trace is still shed-free after replay. *)
      let evals_after = Server.journal_evaluations path in
      Alcotest.(check int) "evaluations unchanged by shed"
        (List.length evals_before) (List.length evals_after))

let test_journal_shed_rejects_unjournaled () =
  with_journal (fun path ->
      let server = Server.create ~options () in
      Server.attach_journal server ~journal:path ();
      (match
         Server.journal_shed server Server.Query ~reply:"error shed"
       with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "journal_shed accepted a Query");
      Server.detach_journal server)

let suite =
  [
    Alcotest.test_case "kill at every record boundary" `Quick
      test_kill_at_every_boundary;
    Alcotest.test_case "kill mid-record" `Quick test_kill_mid_record;
    Alcotest.test_case "live crash via fault sink" `Quick
      test_live_crash_and_recover;
    Alcotest.test_case "stale journal behind snapshot" `Quick
      test_stale_journal_behind_snapshot;
    Alcotest.test_case "corrupt snapshot degrades" `Quick
      test_corrupt_snapshot_degrades;
    Alcotest.test_case "corrupt inputs never raise" `Quick
      test_recover_corrupt_inputs_never_raise;
    Alcotest.test_case "journal_evaluations total" `Quick
      test_journal_evaluations_corrupt_is_total;
    Alcotest.test_case "shed event codec" `Quick test_shed_event_codec;
    Alcotest.test_case "journaled shed recovery" `Quick
      test_journal_shed_recovery;
    Alcotest.test_case "journal_shed rejects unjournaled" `Quick
      test_journal_shed_rejects_unjournaled;
    to_alcotest prop_event_roundtrip;
    to_alcotest prop_event_decode_total;
    to_alcotest prop_report_float_roundtrip;
  ]
