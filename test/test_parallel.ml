module Pool = Harmony_parallel.Pool
module Registry = Harmony_experiments.Registry
module Report = Harmony_experiments.Report

exception Boom of int

let test_create_invalid () =
  Alcotest.check_raises "domains < 1" (Invalid_argument "Pool.create: domains < 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

let test_size_one_matches_list_map () =
  Pool.with_pool ~domains:1 (fun pool ->
      let xs = List.init 50 Fun.id in
      Alcotest.(check (list int))
        "same as List.map" (List.map succ xs) (Pool.map pool succ xs))

let test_ordering_matches_input () =
  (* Uneven task costs shuffle the completion order; results must
     still come back in input order. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 64 in
      let f i =
        let spin = (n - i) * 500 in
        let acc = ref 0 in
        for k = 1 to spin do acc := !acc + k done;
        ignore !acc;
        i * i
      in
      let got = Pool.map_array pool f (Array.init n Fun.id) in
      Alcotest.(check (array int)) "input order" (Array.init n (fun i -> i * i)) got)

let test_exception_keeps_others () =
  Pool.with_pool ~domains:4 (fun pool ->
      let f i = if i = 3 then raise (Boom i) else i * 10 in
      let results = Pool.try_map_array pool f (Array.init 8 Fun.id) in
      Alcotest.(check int) "all slots filled" 8 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "survivor" (i * 10) v
          | Error (Boom 3) -> Alcotest.(check int) "failure slot" 3 i
          | Error e -> raise e)
        results)

let test_map_reraises_first_by_index () =
  Pool.with_pool ~domains:4 (fun pool ->
      let f i = if i >= 5 then raise (Boom i) else i in
      match Pool.map pool f (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "first failing index" 5 i)

let test_nested_map () =
  (* A task may fan out on the same pool (the registry does this when
     an experiment runs a pooled sensitivity analysis). *)
  Pool.with_pool ~domains:3 (fun pool ->
      let inner i = Pool.map pool (fun j -> i + j) [ 1; 2; 3 ] in
      let got = Pool.map pool inner [ 10; 20; 30 ] in
      Alcotest.(check (list (list int)))
        "nested results"
        [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ] ]
        got)

let test_empty_input () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array pool succ [||]))

let test_shutdown_idempotent_and_degrades () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown the submitting domain runs everything itself. *)
  Alcotest.(check (list int)) "still completes" [ 2; 3 ] (Pool.map pool succ [ 1; 2 ])

let test_registry_determinism () =
  (* The acceptance bar: `experiment all --jobs 1` and `--jobs 4`
     emit byte-identical tables. *)
  let sequential = Registry.tables () in
  let parallel =
    Pool.with_pool ~domains:4 (fun pool -> Registry.tables ~pool ())
  in
  Alcotest.(check int) "same count" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (id_s, table_s) (id_p, table_p) ->
      Alcotest.(check string) "paper order" id_s id_p;
      Alcotest.(check string)
        ("table " ^ id_s ^ " byte-identical")
        (Report.to_string table_s) (Report.to_string table_p))
    sequential parallel

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)

let count_cancelled results =
  Array.fold_left
    (fun n -> function Error Pool.Cancelled -> n + 1 | Error _ | Ok _ -> n)
    0 results

let test_cancel_before_submit () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let cancel = Pool.Cancel.create () in
          Pool.Cancel.cancel cancel;
          let results =
            Pool.try_map_array ~cancel pool succ (Array.init 20 Fun.id)
          in
          Alcotest.(check int)
            (Printf.sprintf "all slots shed at %d domains" domains)
            20 (count_cancelled results)))
    [ 1; 4 ]

let test_cancel_none_is_inert () =
  Pool.with_pool ~domains:2 (fun pool ->
      (* Cancelling the shared [none] token must not affect anyone. *)
      Pool.Cancel.cancel Pool.Cancel.none;
      Alcotest.(check bool) "none never reads cancelled" false
        (Pool.Cancel.cancelled Pool.Cancel.none);
      let results =
        Pool.try_map_array ~cancel:Pool.Cancel.none pool succ
          (Array.init 10 Fun.id)
      in
      Alcotest.(check int) "nothing shed" 0 (count_cancelled results))

let test_cancel_mid_run_sequential () =
  (* At one domain the pool runs tasks in input order in the caller, so
     a task that fires the token makes every later slot shed
     deterministically. *)
  Pool.with_pool ~domains:1 (fun pool ->
      let cancel = Pool.Cancel.create () in
      let f i =
        if i = 2 then Pool.Cancel.cancel cancel;
        i * 10
      in
      let results = Pool.try_map_array ~cancel pool f (Array.init 6 Fun.id) in
      Array.iteri
        (fun i r ->
          if i <= 2 then
            Alcotest.(check bool)
              (Printf.sprintf "slot %d ran" i)
              true
              (match r with Ok v -> v = i * 10 | Error _ -> false)
          else
            Alcotest.(check bool)
              (Printf.sprintf "slot %d shed" i)
              true
              (match r with Error Pool.Cancelled -> true | _ -> false))
        results)

let test_cancel_raises_through_map () =
  Pool.with_pool ~domains:2 (fun pool ->
      let cancel = Pool.Cancel.create () in
      Pool.Cancel.cancel cancel;
      Alcotest.check_raises "map_array re-raises Cancelled" Pool.Cancelled
        (fun () ->
          ignore (Pool.map_array ~cancel pool succ (Array.init 5 Fun.id))))

let suite =
  [
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "size 1 = List.map" `Quick test_size_one_matches_list_map;
    Alcotest.test_case "ordering matches input" `Quick test_ordering_matches_input;
    Alcotest.test_case "exception keeps others" `Quick test_exception_keeps_others;
    Alcotest.test_case "map re-raises first" `Quick test_map_reraises_first_by_index;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_and_degrades;
    Alcotest.test_case "cancel before submit" `Quick test_cancel_before_submit;
    Alcotest.test_case "cancel none is inert" `Quick test_cancel_none_is_inert;
    Alcotest.test_case "cancel mid-run sequential" `Quick
      test_cancel_mid_run_sequential;
    Alcotest.test_case "cancel raises through map" `Quick
      test_cancel_raises_through_map;
    Alcotest.test_case "registry determinism jobs 1 = jobs 4" `Slow
      test_registry_determinism;
  ]
