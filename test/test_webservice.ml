open Harmony_webservice
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

(* ------------------------------------------------------------------ *)
(* Wsconfig                                                            *)

let test_space_shape () =
  Alcotest.(check int) "ten parameters" 10 (Space.dims Wsconfig.space);
  Alcotest.(check int) "names" 10 (Array.length Wsconfig.param_names);
  Array.iteri
    (fun i name ->
      Alcotest.(check string) "order matches" name
        (Space.param Wsconfig.space i).Harmony_param.Param.name)
    Wsconfig.param_names

let test_config_roundtrip () =
  let c = Wsconfig.to_config Wsconfig.default in
  Alcotest.(check bool) "valid" true (Space.is_valid Wsconfig.space c);
  let back = Wsconfig.of_config c in
  Alcotest.(check bool) "roundtrip" true (back = Wsconfig.default)

let test_of_config_snaps () =
  let c = Wsconfig.to_config Wsconfig.default in
  c.(1) <- c.(1) +. 0.4;
  let cfg = Wsconfig.of_config c in
  Alcotest.(check int) "snapped to grid" Wsconfig.default.Wsconfig.ajp_max_processors
    cfg.Wsconfig.ajp_max_processors

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)

let fx mix = Effects.derive Wsconfig.default ~mix

let test_cache_hit_only_cacheable () =
  let fx = fx Tpcw.shopping in
  Alcotest.(check (float 1e-12)) "buy confirm never cached" 0.0
    (Effects.cache_hit_probability fx Tpcw.Buy_confirm);
  Alcotest.(check bool) "home cacheable" true
    (Effects.cache_hit_probability fx Tpcw.Home > 0.0)

let test_cache_grows_with_memory () =
  let small = Effects.derive { Wsconfig.default with Wsconfig.proxy_cache_mem_mb = 8 } ~mix:Tpcw.shopping in
  let large = Effects.derive { Wsconfig.default with Wsconfig.proxy_cache_mem_mb = 400 } ~mix:Tpcw.shopping in
  Alcotest.(check bool) "more memory, more hits" true
    (Effects.mean_cache_hit large > Effects.mean_cache_hit small)

let test_min_object_narrows_window () =
  let narrow = Effects.derive { Wsconfig.default with Wsconfig.proxy_min_object_kb = 60 } ~mix:Tpcw.shopping in
  let wide = Effects.derive Wsconfig.default ~mix:Tpcw.shopping in
  Alcotest.(check bool) "raising min object loses hits" true
    (Effects.mean_cache_hit narrow < Effects.mean_cache_hit wide)

let test_small_buffer_costs_app_time () =
  let tiny = Effects.derive { Wsconfig.default with Wsconfig.http_buffer_kb = 1 } ~mix:Tpcw.shopping in
  let big = Effects.derive { Wsconfig.default with Wsconfig.http_buffer_kb = 64 } ~mix:Tpcw.shopping in
  Alcotest.(check bool) "packetization overhead" true
    (Effects.app_service_ms tiny Tpcw.Home > Effects.app_service_ms big Tpcw.Home)

let test_net_buffer_costs_db_time () =
  let tiny = Effects.derive { Wsconfig.default with Wsconfig.mysql_net_buffer_kb = 1 } ~mix:Tpcw.ordering in
  let big = Effects.derive { Wsconfig.default with Wsconfig.mysql_net_buffer_kb = 64 } ~mix:Tpcw.ordering in
  Alcotest.(check bool) "result transfer overhead" true
    (Effects.db_service_ms tiny Tpcw.Best_sellers > Effects.db_service_ms big Tpcw.Best_sellers)

let test_delayed_queue_discounts_writes () =
  let small = Effects.derive { Wsconfig.default with Wsconfig.mysql_delayed_queue = 100 } ~mix:Tpcw.ordering in
  let large = Effects.derive { Wsconfig.default with Wsconfig.mysql_delayed_queue = 8000 } ~mix:Tpcw.ordering in
  Alcotest.(check bool) "longer queue, cheaper writes" true
    (Effects.db_service_ms large Tpcw.Buy_confirm < Effects.db_service_ms small Tpcw.Buy_confirm)

let test_search_request_skips_db () =
  let fx = fx Tpcw.shopping in
  Alcotest.(check (float 1e-12)) "no db work" 0.0
    (Effects.db_service_ms fx Tpcw.Search_request)

let test_thrashing_inflates_app () =
  let sane = Effects.derive Wsconfig.default ~mix:Tpcw.shopping in
  let hog =
    Effects.derive
      { Wsconfig.default with Wsconfig.ajp_max_processors = 128; http_buffer_kb = 128 }
      ~mix:Tpcw.shopping
  in
  Alcotest.(check bool) "over-provisioning thrashes" true
    (Effects.app_service_ms hog Tpcw.Home > 2.0 *. Effects.app_service_ms sane Tpcw.Home)

let test_pool_ceilings () =
  let fx =
    Effects.derive
      { Wsconfig.default with Wsconfig.ajp_max_processors = 128; mysql_max_connections = 128 }
      ~mix:Tpcw.shopping
  in
  Alcotest.(check bool) "app CPU ceiling" true (Effects.app_servers fx <= 16);
  Alcotest.(check bool) "db parallelism ceiling" true (Effects.db_servers fx <= 16);
  let small = Effects.derive { Wsconfig.default with Wsconfig.ajp_max_processors = 4 } ~mix:Tpcw.shopping in
  Alcotest.(check int) "few processes bind" 4 (Effects.app_servers small)

let test_queue_limits_follow_accept_counts () =
  let fx =
    Effects.derive
      { Wsconfig.default with Wsconfig.ajp_accept_count = 24; http_accept_count = 48 }
      ~mix:Tpcw.shopping
  in
  Alcotest.(check int) "app queue" 24 (Effects.app_queue_limit fx);
  Alcotest.(check int) "proxy queue" 48 (Effects.proxy_queue_limit fx)

let test_mean_demands_positive () =
  List.iter
    (fun mix ->
      let fx = Effects.derive Wsconfig.default ~mix in
      Alcotest.(check bool) "proxy" true (Effects.mean_proxy_ms fx > 0.0);
      Alcotest.(check bool) "app" true (Effects.mean_app_ms fx > 0.0);
      Alcotest.(check bool) "db" true (Effects.mean_db_ms fx > 0.0);
      let h = Effects.mean_cache_hit fx in
      Alcotest.(check bool) "hit in [0,1)" true (h >= 0.0 && h < 1.0))
    [ Tpcw.browsing; Tpcw.shopping; Tpcw.ordering ]

(* ------------------------------------------------------------------ *)
(* Model                                                               *)

let test_model_wips_plausible () =
  List.iter
    (fun mix ->
      let r = Model.evaluate Wsconfig.default ~mix in
      Alcotest.(check bool)
        (mix.Tpcw.label ^ " WIPS plausible")
        true
        (r.Model.wips > 20.0 && r.Model.wips < 130.0))
    [ Tpcw.browsing; Tpcw.shopping; Tpcw.ordering ]

let test_model_ordering_slowest () =
  let w mix = Model.wips Wsconfig.default ~mix in
  Alcotest.(check bool) "browsing fastest" true (w Tpcw.browsing > w Tpcw.ordering)

let test_model_deterministic () =
  Alcotest.(check (float 1e-12))
    "repeatable"
    (Model.wips Wsconfig.default ~mix:Tpcw.shopping)
    (Model.wips Wsconfig.default ~mix:Tpcw.shopping)

let test_model_starved_pool_hurts () =
  let starved = { Wsconfig.default with Wsconfig.ajp_max_processors = 2 } in
  Alcotest.(check bool) "two processes crawl" true
    (Model.wips starved ~mix:Tpcw.shopping
    < 0.5 *. Model.wips Wsconfig.default ~mix:Tpcw.shopping)

let test_model_thrashing_hurts () =
  let hog =
    { Wsconfig.default with
      Wsconfig.ajp_max_processors = 128; http_buffer_kb = 128;
      mysql_max_connections = 128; mysql_net_buffer_kb = 128 }
  in
  Alcotest.(check bool) "extremes are poor" true
    (Model.wips hog ~mix:Tpcw.shopping < Model.wips Wsconfig.default ~mix:Tpcw.shopping)

let test_model_more_clients_saturates () =
  let few = Model.wips ~options:{ Model.clients = 20; think_ms = 1000.0 } Wsconfig.default ~mix:Tpcw.shopping in
  let many = Model.wips ~options:{ Model.clients = 120; think_ms = 1000.0 } Wsconfig.default ~mix:Tpcw.shopping in
  Alcotest.(check bool) "throughput grows with load" true (many > few);
  Alcotest.(check bool) "bounded by think-time ceiling" true (few <= 20.0 +. 1e-6)

let test_model_utilization_bounds () =
  let r = Model.evaluate Wsconfig.default ~mix:Tpcw.ordering in
  let a, b, c = r.Model.utilization in
  List.iter
    (fun u -> Alcotest.(check bool) "utilization in [0,1]" true (u >= 0.0 && u <= 1.0))
    [ a; b; c ];
  Alcotest.(check bool) "bottleneck named" true
    (List.mem r.Model.bottleneck [ "proxy"; "app"; "db" ])

let test_model_invalid_clients () =
  Alcotest.check_raises "clients" (Invalid_argument "Model.evaluate: clients < 1")
    (fun () ->
      ignore
        (Model.evaluate ~options:{ Model.clients = 0; think_ms = 1.0 } Wsconfig.default
           ~mix:Tpcw.shopping))

let test_model_objective () =
  let obj = Model.objective ~mix:Tpcw.shopping () in
  Alcotest.(check (float 1e-9))
    "objective evaluates the model"
    (Model.wips Wsconfig.default ~mix:Tpcw.shopping)
    (obj.Harmony_objective.Objective.eval (Wsconfig.to_config Wsconfig.default))

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)

let quick_options =
  { Simulation.default_options with
    Simulation.warmup_ms = 5_000.0; horizon_ms = 30_000.0 }

let test_sim_deterministic () =
  let a = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.shopping in
  let b = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.shopping in
  Alcotest.(check (float 1e-9)) "same seed same WIPS" a.Simulation.wips b.Simulation.wips

let test_sim_seed_changes_result () =
  let a = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.shopping in
  let b =
    Simulation.run ~options:{ quick_options with Simulation.seed = 2 } Wsconfig.default
      ~mix:Tpcw.shopping
  in
  Alcotest.(check bool) "different seed differs" true
    (a.Simulation.wips <> b.Simulation.wips)

let test_sim_agrees_with_model () =
  List.iter
    (fun mix ->
      let m = Model.wips Wsconfig.default ~mix in
      let s = (Simulation.run ~options:quick_options Wsconfig.default ~mix).Simulation.wips in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sim %.1f within 20%% of model %.1f" mix.Tpcw.label s m)
        true
        (Float.abs (s -. m) /. m < 0.20))
    [ Tpcw.browsing; Tpcw.shopping; Tpcw.ordering ]

let test_sim_category_split () =
  let r = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.ordering in
  Alcotest.(check (float 1e-9))
    "wipsb + wipso = wips" r.Simulation.wips
    (r.Simulation.wipsb +. r.Simulation.wipso);
  (* Ordering mix: roughly half the interactions are order-side. *)
  let frac = r.Simulation.wipso /. r.Simulation.wips in
  Alcotest.(check bool) "order fraction ~0.5" true (Float.abs (frac -. 0.5) < 0.07)

let test_sim_small_accept_queue_rejects () =
  let tight =
    { Wsconfig.default with Wsconfig.ajp_accept_count = 8; ajp_max_processors = 6 }
  in
  let r =
    Simulation.run
      ~options:{ quick_options with Simulation.clients = 200 }
      tight ~mix:Tpcw.shopping
  in
  Alcotest.(check bool) "overload rejects" true (r.Simulation.rejections > 0)

let test_sim_cache_hits_counted () =
  let r = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.browsing in
  Alcotest.(check bool) "some hits" true (r.Simulation.cache_hits > 0);
  Alcotest.(check bool) "response time positive" true (r.Simulation.mean_response_ms > 0.0)

let test_sim_percentiles () =
  let r = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.shopping in
  Alcotest.(check bool) "p50 positive" true (r.Simulation.p50_response_ms > 0.0);
  Alcotest.(check bool) "p50 <= p95" true
    (r.Simulation.p50_response_ms <= r.Simulation.p95_response_ms);
  (* The mean sits between the median and the tail for these
     right-skewed distributions. *)
  Alcotest.(check bool) "mean below p95" true
    (r.Simulation.mean_response_ms < r.Simulation.p95_response_ms)

let test_sim_utilization_matches_model () =
  let sim_r = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.ordering in
  let model_r = Model.evaluate Wsconfig.default ~mix:Tpcw.ordering in
  let (sp, sa, sd) = sim_r.Simulation.utilization in
  let (_mp, ma, md) = model_r.Model.utilization in
  List.iter
    (fun u -> Alcotest.(check bool) "in [0,1]" true (u >= 0.0 && u <= 1.0))
    [ sp; sa; sd ];
  (* The app and db utilizations of the two evaluators agree within
     0.15 absolute; the proxy is near-idle in both. *)
  Alcotest.(check bool) "app agrees" true (Float.abs (sa -. ma) < 0.15);
  Alcotest.(check bool) "db agrees" true (Float.abs (sd -. md) < 0.15);
  Alcotest.(check bool) "db busiest in sim too" true (sd >= sa && sd >= sp)

let test_sim_session_persistence () =
  (* Bursty sessions must preserve the WIPS ballpark (stationary mix is
     unchanged) while still being a different trace. *)
  let bursty =
    Simulation.run
      ~options:{ quick_options with Simulation.session_persistence = 0.7 }
      Wsconfig.default ~mix:Tpcw.shopping
  in
  let iid = Simulation.run ~options:quick_options Wsconfig.default ~mix:Tpcw.shopping in
  Alcotest.(check bool) "different trace" true
    (bursty.Simulation.wips <> iid.Simulation.wips);
  Alcotest.(check bool) "same WIPS ballpark" true
    (Float.abs (bursty.Simulation.wips -. iid.Simulation.wips) /. iid.Simulation.wips
    < 0.10);
  (* Category split stays near the mix's browse fraction. *)
  let frac = bursty.Simulation.wipsb /. bursty.Simulation.wips in
  Alcotest.(check bool) "browse fraction preserved" true
    (Float.abs (frac -. Tpcw.browse_fraction Tpcw.shopping) < 0.05)

let test_sim_invalid () =
  Alcotest.check_raises "horizon" (Invalid_argument "Simulation.run: horizon <= 0")
    (fun () ->
      ignore
        (Simulation.run
           ~options:{ quick_options with Simulation.horizon_ms = 0.0 }
           Wsconfig.default ~mix:Tpcw.shopping))

(* ------------------------------------------------------------------ *)
(* Properties over random configurations                               *)

let config_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let rng = Rng.create seed in
    return (Wsconfig.of_config (Space.random rng Wsconfig.space)))

let prop_model_wips_bounded =
  QCheck2.Test.make ~name:"model WIPS within physical bounds" ~count:200 config_gen
    (fun config ->
      List.for_all
        (fun mix ->
          let r = Model.evaluate config ~mix in
          (* Positive, and below the zero-wait ceiling N/Z. *)
          r.Model.wips > 0.0 && r.Model.wips <= 120.0 +. 1e-6)
        [ Tpcw.browsing; Tpcw.shopping; Tpcw.ordering ])

let prop_model_utilization_bounded =
  QCheck2.Test.make ~name:"model utilizations in [0,1]" ~count:200 config_gen
    (fun config ->
      let r = Model.evaluate config ~mix:Tpcw.shopping in
      let a, b, c = r.Model.utilization in
      List.for_all (fun u -> u >= 0.0 && u <= 1.0) [ a; b; c ]
      && r.Model.reject_fraction >= 0.0
      && r.Model.reject_fraction <= 0.9)

let prop_effects_sane =
  QCheck2.Test.make ~name:"effects: probabilities and times sane" ~count:200
    config_gen (fun config ->
      let fx = Effects.derive config ~mix:Tpcw.ordering in
      Array.for_all
        (fun i ->
          let h = Effects.cache_hit_probability fx i in
          h >= 0.0 && h < 1.0
          && Effects.app_service_ms fx i > 0.0
          && Effects.db_service_ms fx i >= 0.0
          && Effects.proxy_hit_ms fx i > 0.0)
        Tpcw.all
      && Effects.app_servers fx >= 1
      && Effects.db_servers fx >= 1)

let prop_cache_hit_monotone_in_memory =
  QCheck2.Test.make ~name:"cache hit monotone in cache memory" ~count:100
    config_gen (fun config ->
      let at mem =
        Effects.mean_cache_hit
          (Effects.derive { config with Wsconfig.proxy_cache_mem_mb = mem }
             ~mix:Tpcw.shopping)
      in
      at 8 <= at 64 +. 1e-9 && at 64 <= at 256 +. 1e-9 && at 256 <= at 512 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* AMVA solver hot path                                                *)

let fbits = Int64.bits_of_float

let check_fbits msg expected got =
  Alcotest.(check int64) msg (fbits expected) (fbits got)

let amva_scenarios =
  [
    ("3-tier default", 120, 1000.0, [| 2.0; 5.0; 3.0 |], [| 2; 8; 4 |]);
    ("saturated", 300, 700.0, [| 1.5; 9.0; 6.5 |], [| 2; 6; 4 |]);
    ("single server", 40, 500.0, [| 4.0; 4.0; 4.0 |], [| 1; 1; 1 |]);
    ("light load", 8, 2000.0, [| 0.5; 1.25; 0.75 |], [| 4; 16; 8 |]);
  ]

let test_amva_early_exit_identity () =
  (* The early exit fires only at the exact bitwise fixed point, so
     its answer must equal the fixed 200-iteration solve bit for
     bit on every scenario. *)
  List.iter
    (fun (label, clients, think_ms, demands_ms, servers) ->
      let fixed =
        Model.Amva.solve ~early_exit:false ~clients ~think_ms ~demands_ms
          ~servers ()
      in
      let early =
        Model.Amva.solve ~clients ~think_ms ~demands_ms ~servers ()
      in
      check_fbits label fixed early)
    amva_scenarios

let test_amva_warm_matches_cold () =
  (* A one-parameter sweep re-solved warm from the previous solution
     must land on the same fixed point as a cold solve — bit for
     bit — because the early exit only accepts an exact fixed point. *)
  let warm_scratch = Model.Amva.scratch () in
  for step = 0 to 20 do
    let demands_ms = [| 2.0; 5.0 +. (0.25 *. float_of_int step); 3.0 |] in
    let servers = [| 2; 8; 4 |] in
    let cold =
      Model.Amva.solve ~clients:120 ~think_ms:1000.0 ~demands_ms ~servers ()
    in
    let warm =
      Model.Amva.solve ~scratch:warm_scratch ~warm:true ~clients:120
        ~think_ms:1000.0 ~demands_ms ~servers ()
    in
    check_fbits (Printf.sprintf "step %d" step) cold warm
  done

let test_amva_queue_lengths () =
  let s = Model.Amva.scratch () in
  let _x =
    Model.Amva.solve ~scratch:s ~clients:120 ~think_ms:1000.0
      ~demands_ms:[| 2.0; 5.0; 3.0 |] ~servers:[| 2; 8; 4 |] ()
  in
  let q = Model.Amva.queue_lengths s in
  Alcotest.(check int) "three stations" 3 (Array.length q);
  Array.iter
    (fun qi -> Alcotest.(check bool) "non-negative" true (qi >= 0.0))
    q;
  (* Queue lengths + thinkers account for every client. *)
  let total = Array.fold_left ( +. ) 0.0 q in
  Alcotest.(check bool) "at most the population" true (total <= 120.0)

let test_amva_invalid () =
  Alcotest.check_raises "no stations"
    (Invalid_argument "Amva.solve: no stations") (fun () ->
      ignore
        (Model.Amva.solve ~clients:10 ~think_ms:100.0 ~demands_ms:[||]
           ~servers:[||] ()));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Amva.solve: length mismatch") (fun () ->
      ignore
        (Model.Amva.solve ~clients:10 ~think_ms:100.0 ~demands_ms:[| 1.0 |]
           ~servers:[| 1; 2 |] ()))

(* ------------------------------------------------------------------ *)
(* Continuity goldens and arena reuse                                  *)

let test_model_golden () =
  (* Bitwise outputs captured before the allocation-free rewrite of
     the solver; any drift here means the hot path changed the math. *)
  let r = Model.evaluate Wsconfig.default ~mix:Tpcw.shopping in
  check_fbits "wips" 99.838290894453706 r.Model.wips;
  check_fbits "reject fraction" 3.6581497272453554e-11 r.Model.reject_fraction;
  check_fbits "cache hit" 0.3618970647688724 r.Model.cache_hit;
  let r300 =
    Model.evaluate
      ~options:{ Model.clients = 300; think_ms = 700.0 }
      Wsconfig.default ~mix:Tpcw.browsing
  in
  check_fbits "300 clients browsing" 172.16486955556275 r300.Model.wips

let golden_sim_options =
  { Simulation.default_options with
    Simulation.warmup_ms = 1_000.0; horizon_ms = 5_000.0; seed = 7 }

let test_sim_golden () =
  (* Same continuity contract for the simulator: buffers moved into
     the arena and the heap was flattened, but not one event may
     reorder. *)
  let r = Simulation.run ~options:golden_sim_options Wsconfig.default ~mix:Tpcw.ordering in
  check_fbits "wips" 86.599999999999994 r.Simulation.wips;
  Alcotest.(check int) "completions" 433 r.Simulation.completions;
  check_fbits "p50" 461.56186417364279 r.Simulation.p50_response_ms;
  check_fbits "p95" 1080.2172626104048 r.Simulation.p95_response_ms

let test_sim_arena_reuse () =
  (* One caller-owned arena across repeated runs (including a
     different workload in between) changes nothing. *)
  let fresh =
    Simulation.run ~options:golden_sim_options Wsconfig.default ~mix:Tpcw.ordering
  in
  let arena = Simulation.Arena.create ~capacity:8 () in
  let first =
    Simulation.run ~options:golden_sim_options ~arena Wsconfig.default
      ~mix:Tpcw.ordering
  in
  ignore
    (Simulation.run ~options:golden_sim_options ~arena Wsconfig.default
       ~mix:Tpcw.shopping
      : Simulation.result)
  ;
  let again =
    Simulation.run ~options:golden_sim_options ~arena Wsconfig.default
      ~mix:Tpcw.ordering
  in
  List.iter
    (fun (label, r) ->
      check_fbits (label ^ " wips") fresh.Simulation.wips r.Simulation.wips;
      check_fbits (label ^ " p95") fresh.Simulation.p95_response_ms
        r.Simulation.p95_response_ms;
      Alcotest.(check int)
        (label ^ " completions")
        fresh.Simulation.completions r.Simulation.completions)
    [ ("first borrow", first); ("reused arena", again) ]

let suite =
  [
    Alcotest.test_case "space shape" `Quick test_space_shape;
    Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
    Alcotest.test_case "of_config snaps" `Quick test_of_config_snaps;
    Alcotest.test_case "cache hit only cacheable" `Quick test_cache_hit_only_cacheable;
    Alcotest.test_case "cache grows with memory" `Quick test_cache_grows_with_memory;
    Alcotest.test_case "min object narrows window" `Quick test_min_object_narrows_window;
    Alcotest.test_case "small buffer costs app time" `Quick test_small_buffer_costs_app_time;
    Alcotest.test_case "net buffer costs db time" `Quick test_net_buffer_costs_db_time;
    Alcotest.test_case "delayed queue discounts writes" `Quick test_delayed_queue_discounts_writes;
    Alcotest.test_case "search request skips db" `Quick test_search_request_skips_db;
    Alcotest.test_case "thrashing inflates app" `Quick test_thrashing_inflates_app;
    Alcotest.test_case "pool ceilings" `Quick test_pool_ceilings;
    Alcotest.test_case "queue limits follow accept counts" `Quick test_queue_limits_follow_accept_counts;
    Alcotest.test_case "mean demands positive" `Quick test_mean_demands_positive;
    Alcotest.test_case "model wips plausible" `Quick test_model_wips_plausible;
    Alcotest.test_case "model ordering slowest" `Quick test_model_ordering_slowest;
    Alcotest.test_case "model deterministic" `Quick test_model_deterministic;
    Alcotest.test_case "model starved pool" `Quick test_model_starved_pool_hurts;
    Alcotest.test_case "model thrashing" `Quick test_model_thrashing_hurts;
    Alcotest.test_case "model client scaling" `Quick test_model_more_clients_saturates;
    Alcotest.test_case "model utilization bounds" `Quick test_model_utilization_bounds;
    Alcotest.test_case "model invalid clients" `Quick test_model_invalid_clients;
    Alcotest.test_case "model objective" `Quick test_model_objective;
    Alcotest.test_case "sim deterministic" `Slow test_sim_deterministic;
    Alcotest.test_case "sim seed changes result" `Slow test_sim_seed_changes_result;
    Alcotest.test_case "sim agrees with model" `Slow test_sim_agrees_with_model;
    Alcotest.test_case "sim category split" `Slow test_sim_category_split;
    Alcotest.test_case "sim accept queue rejects" `Slow test_sim_small_accept_queue_rejects;
    Alcotest.test_case "sim cache hits counted" `Slow test_sim_cache_hits_counted;
    Alcotest.test_case "sim percentiles" `Slow test_sim_percentiles;
    Alcotest.test_case "sim session persistence" `Slow test_sim_session_persistence;
    Alcotest.test_case "sim utilization matches model" `Slow test_sim_utilization_matches_model;
    Alcotest.test_case "sim invalid" `Quick test_sim_invalid;
    Alcotest.test_case "amva early exit identity" `Quick
      test_amva_early_exit_identity;
    Alcotest.test_case "amva warm matches cold" `Quick test_amva_warm_matches_cold;
    Alcotest.test_case "amva queue lengths" `Quick test_amva_queue_lengths;
    Alcotest.test_case "amva invalid" `Quick test_amva_invalid;
    Alcotest.test_case "model golden" `Quick test_model_golden;
    Alcotest.test_case "sim golden" `Slow test_sim_golden;
    Alcotest.test_case "sim arena reuse" `Slow test_sim_arena_reuse;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_model_wips_bounded; prop_model_utilization_bounded;
        prop_effects_sane; prop_cache_hit_monotone_in_memory;
      ]
