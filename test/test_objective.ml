open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

let space =
  Space.create [ Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:5 () ]

let higher = Objective.create ~space ~direction:Objective.Higher_is_better (fun c -> c.(0))
let lower = Objective.create ~space ~direction:Objective.Lower_is_better (fun c -> c.(0))

let test_better () =
  Alcotest.(check bool) "higher" true (Objective.better higher 2.0 1.0);
  Alcotest.(check bool) "higher strict" false (Objective.better higher 1.0 1.0);
  Alcotest.(check bool) "lower" true (Objective.better lower 1.0 2.0)

let test_best_worst () =
  let vals = [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "best high" 3.0 (Objective.best_of higher vals);
  Alcotest.(check (float 1e-12)) "worst high" 1.0 (Objective.worst_of higher vals);
  Alcotest.(check (float 1e-12)) "best low" 1.0 (Objective.best_of lower vals);
  Alcotest.(check (float 1e-12)) "worst low" 3.0 (Objective.worst_of lower vals)

let test_best_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Objective.best_of: empty array")
    (fun () -> ignore (Objective.best_of higher [||]))

let test_eval_default () =
  Alcotest.(check (float 1e-12)) "default" 5.0 (Objective.eval_default higher)

let test_with_noise_bounds () =
  let noisy = Objective.with_noise (Rng.create 3) ~level:0.25 higher in
  for _ = 1 to 200 do
    let v = noisy.Objective.eval [| 8.0 |] in
    Alcotest.(check bool) "within 25%" true (v >= 6.0 && v < 10.0)
  done

let test_with_noise_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Objective.with_noise: negative level")
    (fun () -> ignore (Objective.with_noise (Rng.create 1) ~level:(-0.1) higher))

let test_with_snap () =
  let snapped = Objective.with_snap higher in
  Alcotest.(check (float 1e-12)) "snapped eval" 7.0 (snapped.Objective.eval [| 7.4 |])

let test_with_cache () =
  let count = ref 0 in
  let counted =
    Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
        incr count;
        c.(0))
  in
  let cached = Objective.with_cache counted in
  Alcotest.(check (float 1e-12)) "first" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-12)) "repeat" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-12)) "other" 5.0 (cached.Objective.eval [| 5.0 |]);
  Alcotest.(check int) "two real measurements" 2 !count

let test_with_cache_freezes_noise () =
  let noisy = Objective.with_noise (Harmony_numerics.Rng.create 1) ~level:0.25 higher in
  let cached = Objective.with_cache noisy in
  Alcotest.(check (float 1e-12)) "repeatable under noise"
    (cached.Objective.eval [| 8.0 |])
    (cached.Objective.eval [| 8.0 |])

let counted_objective () =
  let count = ref 0 in
  let obj =
    Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
        incr count;
        c.(0))
  in
  (count, obj)

let check_stats ?(faults = 0) ?(retries = 0) label obj ~hits ~misses =
  match Objective.stats obj with
  | None -> Alcotest.fail (label ^ ": expected stats on a cached objective")
  | Some s ->
      Alcotest.(check int) (label ^ " hits") hits s.Objective.hits;
      Alcotest.(check int) (label ^ " misses") misses s.Objective.misses;
      Alcotest.(check int) (label ^ " evals") (hits + misses) s.Objective.evals;
      Alcotest.(check int) (label ^ " faults") faults s.Objective.faults;
      Alcotest.(check int) (label ^ " retries") retries s.Objective.retries

let test_cached_counters () =
  let count, counted = counted_objective () in
  let cached = Objective.cached counted in
  check_stats "fresh" cached ~hits:0 ~misses:0;
  Alcotest.(check (float 1e-12)) "first" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-12)) "repeat" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-12)) "other" 5.0 (cached.Objective.eval [| 5.0 |]);
  Alcotest.(check (float 1e-12)) "repeat other" 5.0 (cached.Objective.eval [| 5.0 |]);
  Alcotest.(check int) "two real measurements" 2 !count;
  check_stats "after four evals" cached ~hits:2 ~misses:2

let test_cached_rejects_noisy () =
  let noisy = Objective.with_noise (Rng.create 1) ~level:0.25 higher in
  Alcotest.(check bool) "marked noisy" true (Objective.noisy noisy);
  Alcotest.(check bool) "raises" true
    (match Objective.cached noisy with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cached_freeze_noise_explicit () =
  let noisy = Objective.with_noise (Rng.create 1) ~level:0.25 higher in
  let cached = Objective.cached ~freeze_noise:true noisy in
  Alcotest.(check (float 1e-12)) "frozen draw repeats"
    (cached.Objective.eval [| 8.0 |])
    (cached.Objective.eval [| 8.0 |]);
  check_stats "one miss one hit" cached ~hits:1 ~misses:1

let test_noise_after_cache_stays_live () =
  (* The enforced ordering for live noise: memoize the deterministic
     base, perturb on top.  Draws differ but the base is measured
     once. *)
  let count, counted = counted_objective () in
  let cached = Objective.cached counted in
  let noisy = Objective.with_noise (Rng.create 7) ~level:0.25 cached in
  let a = noisy.Objective.eval [| 8.0 |] in
  let b = noisy.Objective.eval [| 8.0 |] in
  Alcotest.(check bool) "noise still live" true (a <> b);
  Alcotest.(check int) "base measured once" 1 !count;
  check_stats "cache hit under live noise" noisy ~hits:1 ~misses:1

let test_cached_under_snap () =
  (* Snap-then-cache: off-grid proposals that land on the same grid
     point share one memo entry.  (Cache-then-snap would key on the
     raw proposal and re-measure each variant.) *)
  let count, counted = counted_objective () in
  let snapped = Objective.with_snap (Objective.cached counted) in
  Alcotest.(check (float 1e-12)) "snapped eval" 7.0 (snapped.Objective.eval [| 7.4 |]);
  Alcotest.(check (float 1e-12)) "same grid point" 7.0 (snapped.Objective.eval [| 6.8 |]);
  Alcotest.(check int) "one real measurement" 1 !count;
  check_stats "off-grid variants share the entry" snapped ~hits:1 ~misses:1

let test_fault_profile_invalid () =
  Alcotest.(check bool) "rate > 1 rejected" true
    (match Objective.fault_profile 1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative rate rejected" true
    (match Objective.fault_profile (-0.1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_with_faults_marks_noisy () =
  let faulty = Objective.with_faults ~seed:1 higher in
  Alcotest.(check bool) "noisy" true (Objective.noisy faulty);
  (* The memo layer refuses to freeze a possibly-corrupt draw. *)
  Alcotest.(check bool) "cached refuses" true
    (match Objective.cached faulty with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_with_faults_pure_passthrough () =
  (* All rates zero: the wrapper is the identity on values. *)
  let faulty = Objective.with_faults ~rates:Objective.no_faults ~seed:1 higher in
  Alcotest.(check (float 1e-12)) "value unchanged" 4.0
    (faulty.Objective.eval [| 4.0 |])

(* The satellite fix: each physical re-measurement counts as a miss,
   and the faults/retries counters surface through the memo layer. *)
let test_stats_faults_and_retries () =
  let count, counted = counted_objective () in
  let tries : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let flaky =
    {
      counted with
      Objective.eval =
        (fun c ->
          let key = Space.config_key c in
          let n = Option.value (Hashtbl.find_opt tries key) ~default:0 in
          Hashtbl.replace tries key (n + 1);
          if n = 0 then
            raise (Objective.Measurement_failed Objective.Transient);
          counted.Objective.eval c);
    }
  in
  let robust, _ = Measure.robust flaky in
  let cached = Objective.cached ~freeze_noise:true robust in
  Alcotest.(check (float 1e-12)) "first" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check (float 1e-12)) "repeat" 3.0 (cached.Objective.eval [| 3.0 |]);
  Alcotest.(check int) "base measured once" 1 !count;
  (* One memo hit; the single memo miss physically cost two attempts
     (one faulted, one retried). *)
  check_stats "retry accounting" cached ~hits:1 ~misses:2 ~faults:1 ~retries:1

let test_negate () =
  let neg = Objective.negate higher in
  Alcotest.(check bool) "direction flipped" true
    (neg.Objective.direction = Objective.Lower_is_better);
  Alcotest.(check (float 1e-12)) "value negated" (-4.0) (neg.Objective.eval [| 4.0 |]);
  (* Double negation restores preferences. *)
  let nn = Objective.negate neg in
  Alcotest.(check bool) "same winner" true
    (Objective.better nn (nn.Objective.eval [| 9.0 |]) (nn.Objective.eval [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Batch evaluation                                                    *)

module Pool = Harmony_parallel.Pool

let bits = Array.map Int64.bits_of_float

let check_bits msg expected got =
  Alcotest.(check (array int64)) msg (bits expected) (bits got)

(* The stack a tuner actually batches: outlier-injecting faults
   (deterministic per (seed, config, attempt)) under a freeze-noise
   memo, snapped and negated.  Built fresh per run so the memo tables
   of the sequential and batched runs never share state. *)
let stacked () =
  let count = ref 0 in
  let base =
    Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
        incr count;
        (c.(0) *. 3.0) +. 1.0)
  in
  let rates =
    { Objective.no_faults with Objective.outlier = 0.3; outlier_magnitude = 4.0 }
  in
  let faulty = Objective.with_faults ~rates ~seed:9 base in
  let obj =
    Objective.negate
      (Objective.with_snap (Objective.cached ~freeze_noise:true faulty))
  in
  (obj, count)

let batch_configs =
  [|
    [| 1.0 |]; [| 4.0 |]; [| 1.0 |]; [| 7.0 |];
    [| 4.0 |]; [| 2.0 |]; [| 1.0 |]; [| 9.0 |];
  |]

let test_eval_batch_identity () =
  let seq_obj, seq_count = stacked () in
  let expected = Array.map seq_obj.Objective.eval batch_configs in
  List.iter
    (fun domains ->
      let obj, count = stacked () in
      let got =
        Pool.with_pool ~domains (fun pool ->
            Objective.eval_batch ~pool obj batch_configs)
      in
      check_bits
        (Printf.sprintf "identical at %d domains" domains)
        expected got;
      Alcotest.(check int) "same physical evaluations" !seq_count !count)
    [ 1; 4 ];
  let obj, _ = stacked () in
  check_bits "identical without a pool" expected
    (Objective.eval_batch obj batch_configs);
  Alcotest.(check int) "empty batch" 0
    (Array.length (Objective.eval_batch seq_obj [||]))

let test_stats_under_batching () =
  (* 8 evaluations over 5 distinct configurations: the in-batch
     duplicates must count as memo hits exactly as the sequential
     fold counts them. *)
  let seq_obj, _ = stacked () in
  ignore (Array.map seq_obj.Objective.eval batch_configs : float array);
  check_stats "sequential fold" seq_obj ~hits:3 ~misses:5;
  let obj, _ = stacked () in
  ignore
    (Pool.with_pool ~domains:4 (fun pool ->
         Objective.eval_batch ~pool obj batch_configs)
      : float array);
  check_stats "one batch" obj ~hits:3 ~misses:5;
  (* A second identical batch answers entirely from the memo. *)
  ignore (Objective.eval_batch obj batch_configs : float array);
  check_stats "repeat batch" obj ~hits:11 ~misses:5

let test_group_by_key () =
  let groups = Objective.group_by_key batch_configs in
  Alcotest.(check int) "distinct groups" 5 (Array.length groups);
  (* First-occurrence order of the groups, input order within each. *)
  Alcotest.(check (list (list int)))
    "grouped indices"
    [ [ 0; 2; 6 ]; [ 1; 4 ]; [ 3 ]; [ 5 ]; [ 7 ] ]
    (Array.to_list groups)

let test_batch_noise_stays_sequential () =
  (* A shared-stream noisy objective must evaluate in input order even
     through eval_batch (the draws come off one RNG): batching it with
     a pool must not change a single byte. *)
  let run domains =
    let noisy = Objective.with_noise (Rng.create 11) ~level:0.2 higher in
    match domains with
    | None -> Array.map noisy.Objective.eval batch_configs
    | Some d ->
        Pool.with_pool ~domains:d (fun pool ->
            Objective.eval_batch ~pool noisy batch_configs)
  in
  let expected = run None in
  check_bits "1 domain" expected (run (Some 1));
  check_bits "4 domains" expected (run (Some 4))

let suite =
  [
    Alcotest.test_case "better" `Quick test_better;
    Alcotest.test_case "best worst" `Quick test_best_worst;
    Alcotest.test_case "best empty" `Quick test_best_empty;
    Alcotest.test_case "eval default" `Quick test_eval_default;
    Alcotest.test_case "noise bounds" `Quick test_with_noise_bounds;
    Alcotest.test_case "noise invalid" `Quick test_with_noise_invalid;
    Alcotest.test_case "with snap" `Quick test_with_snap;
    Alcotest.test_case "with cache" `Quick test_with_cache;
    Alcotest.test_case "cache freezes noise" `Quick test_with_cache_freezes_noise;
    Alcotest.test_case "cached counters" `Quick test_cached_counters;
    Alcotest.test_case "cached rejects noisy" `Quick test_cached_rejects_noisy;
    Alcotest.test_case "freeze noise explicit" `Quick test_cached_freeze_noise_explicit;
    Alcotest.test_case "noise after cache live" `Quick test_noise_after_cache_stays_live;
    Alcotest.test_case "cached under snap" `Quick test_cached_under_snap;
    Alcotest.test_case "fault profile invalid" `Quick test_fault_profile_invalid;
    Alcotest.test_case "with_faults marks noisy" `Quick test_with_faults_marks_noisy;
    Alcotest.test_case "with_faults passthrough" `Quick test_with_faults_pure_passthrough;
    Alcotest.test_case "stats faults and retries" `Quick test_stats_faults_and_retries;
    Alcotest.test_case "negate" `Quick test_negate;
    Alcotest.test_case "eval_batch identity" `Quick test_eval_batch_identity;
    Alcotest.test_case "stats under batching" `Quick test_stats_under_batching;
    Alcotest.test_case "group_by_key" `Quick test_group_by_key;
    Alcotest.test_case "batched noise stays sequential" `Quick
      test_batch_noise_stays_sequential;
  ]
