open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let peak = Testbed.interior_peak ~dims:3 ()

let test_tune_finds_peak () =
  let o = Tuner.tune peak in
  Alcotest.(check bool) "near 100" true (o.Tuner.best_performance > 99.0);
  Alcotest.(check bool) "trace non-empty" true (o.Tuner.trace <> []);
  Alcotest.(check int) "trace length = evaluations" o.Tuner.evaluations
    (List.length o.Tuner.trace)

let test_best_is_best_of_trace () =
  let o = Tuner.tune peak in
  let best_measured =
    List.fold_left
      (fun acc e -> Float.max acc e.Recorder.performance)
      neg_infinity o.Tuner.trace
  in
  Alcotest.(check (float 1e-9)) "reports the best measurement" best_measured
    o.Tuner.best_performance

let test_best_config_matches_performance () =
  let o = Tuner.tune peak in
  Alcotest.(check (float 1e-9))
    "config re-evaluates to the reported value" o.Tuner.best_performance
    (peak.Objective.eval o.Tuner.best_config)

let test_original_options_use_extremes () =
  Alcotest.(check bool) "extremes" true
    (Tuner.original_options.Tuner.init = Simplex.Init.Extremes);
  Alcotest.(check bool) "spread by default" true
    (Tuner.default_options.Tuner.init = Simplex.Init.Spread)

let test_improved_init_starts_better () =
  (* The whole point of Section 4.1: the first measurements of the
     spread init are far better than the extreme corners. *)
  let first_k o k =
    List.filteri (fun i _ -> i < k) o.Tuner.trace
    |> List.map (fun e -> e.Recorder.performance)
  in
  let orig = Tuner.tune ~options:Tuner.original_options peak in
  let impr = Tuner.tune peak in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Alcotest.(check bool) "spread init starts higher" true
    (mean (first_k impr 4) > mean (first_k orig 4))

let test_trace_csv () =
  let o = Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 20 } peak in
  let csv = Tuner.trace_csv peak.Objective.space o in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
      Alcotest.(check string) "header" "iteration,p0,p1,p2,performance" header;
      Alcotest.(check int) "one row per measurement" (List.length o.Tuner.trace)
        (List.length rows);
      List.iter
        (fun row ->
          Alcotest.(check int) "five fields" 5
            (List.length (String.split_on_char ',' row)))
        rows
  | [] -> Alcotest.fail "empty csv");
  (* First measurement round-trips. *)
  match (lines, o.Tuner.trace) with
  | _ :: first_row :: _, first_entry :: _ ->
      let fields = String.split_on_char ',' first_row in
      Alcotest.(check (float 0.01)) "performance field"
        first_entry.Recorder.performance
        (float_of_string (List.nth fields 4))
  | _ -> Alcotest.fail "missing rows"

let test_tune_pool_identity () =
  (* The tuner's outcome and its telemetry trace must be byte-for-byte
     the same whether evaluation batches run sequentially or fan out
     across a pool — the batch engine's core contract. *)
  let run pool_domains =
    let telemetry = Harmony_telemetry.Telemetry.create () in
    let obj = Objective.cached ~telemetry (Testbed.interior_peak ~dims:3 ()) in
    let o =
      match pool_domains with
      | None -> Tuner.tune ~telemetry obj
      | Some d ->
          Harmony_parallel.Pool.with_pool ~domains:d (fun pool ->
              Tuner.tune ~telemetry ~pool obj)
    in
    (Tuner.trace_csv obj.Objective.space o, Harmony_telemetry.Export.jsonl telemetry)
  in
  let csv, trace = run None in
  let csv1, trace1 = run (Some 1) in
  let csv4, trace4 = run (Some 4) in
  Alcotest.(check string) "trace csv at 1 domain" csv csv1;
  Alcotest.(check string) "telemetry at 1 domain" trace trace1;
  Alcotest.(check string) "trace csv at 4 domains" csv csv4;
  Alcotest.(check string) "telemetry at 4 domains" trace trace4

(* --------------------------------------------------------------- *)
(* Metrics                                                          *)

let space1 = Space.create [ Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:0 () ]
let obj_up = Objective.create ~space:space1 ~direction:Objective.Higher_is_better (fun c -> c.(0))

let outcome_of_performances perfs =
  let trace =
    List.mapi
      (fun i p -> { Recorder.index = i; config = [| 0.0 |]; performance = p })
      perfs
  in
  let best = List.fold_left Float.max neg_infinity perfs in
  {
    Tuner.best_config = [| 0.0 |];
    best_performance = best;
    trace;
    evaluations = List.length perfs;
    converged = true;
    measurement = None;
  }

let test_metrics_convergence () =
  let o = outcome_of_performances [ 10.0; 50.0; 96.0; 80.0; 100.0 ] in
  let m = Tuner.Metrics.of_outcome obj_up o in
  (* Best-so-far: 10, 50, 96, 96, 100; within 5% of 100 from index 2. *)
  Alcotest.(check int) "convergence at 3rd measurement" 3
    m.Tuner.Metrics.convergence_iteration;
  Alcotest.(check (float 1e-9)) "performance" 100.0 m.Tuner.Metrics.performance

let test_metrics_with_reference () =
  let o = outcome_of_performances [ 10.0; 50.0; 96.0; 80.0; 100.0 ] in
  let m = Tuner.Metrics.of_outcome ~reference:50.0 obj_up o in
  Alcotest.(check int) "reaches 95% of 50 at 2nd" 2 m.Tuner.Metrics.convergence_iteration

let test_metrics_worst_in_window () =
  let o = outcome_of_performances [ 30.0; 5.0; 96.0; 1.0; 100.0 ] in
  let m = Tuner.Metrics.of_outcome obj_up o in
  (* Window is the pre-convergence prefix [30; 5; 96]: worst is 5, not
     the later 1. *)
  Alcotest.(check (float 1e-9)) "worst in oscillation stage" 5.0
    m.Tuner.Metrics.worst_performance

let test_metrics_bad_iterations () =
  let o = outcome_of_performances [ 10.0; 90.0; 70.0; 100.0 ] in
  let m = Tuner.Metrics.of_outcome obj_up o in
  (* Threshold 0.8 * 100: 10 and 70 are bad. *)
  Alcotest.(check int) "bad count" 2 m.Tuner.Metrics.bad_iterations

let test_metrics_settling () =
  let o = outcome_of_performances [ 10.0; 90.0; 85.0; 90.2; 89.0 ] in
  let m = Tuner.Metrics.of_outcome obj_up o in
  (* Last >0.5% improvement of the incumbent is 10 -> 90 at index 1;
     90 -> 90.2 is only 0.2%. *)
  Alcotest.(check int) "settles at 2" 2 m.Tuner.Metrics.settling_iteration

let test_metrics_initial_window_stats () =
  let o = outcome_of_performances [ 10.0; 30.0; 100.0 ] in
  let m = Tuner.Metrics.of_outcome obj_up o in
  Alcotest.(check int) "converges at 3" 3 m.Tuner.Metrics.convergence_iteration;
  Alcotest.(check (float 1e-9)) "window mean" (140.0 /. 3.0) m.Tuner.Metrics.initial_mean;
  Alcotest.(check bool) "window stddev positive" true (m.Tuner.Metrics.initial_stddev > 0.0)

let test_metrics_lower_is_better () =
  let obj_down =
    Objective.create ~space:space1 ~direction:Objective.Lower_is_better (fun c -> c.(0))
  in
  let trace = [ 100.0; 20.0; 10.0 ] in
  let o =
    { (outcome_of_performances trace) with Tuner.best_performance = 10.0 }
  in
  let m = Tuner.Metrics.of_outcome obj_down o in
  Alcotest.(check (float 1e-9)) "worst is the largest" 100.0
    m.Tuner.Metrics.worst_performance;
  (* 100 > 10/0.8 = 12.5 and 20 > 12.5: both bad. *)
  Alcotest.(check int) "bad iterations" 2 m.Tuner.Metrics.bad_iterations

let test_metrics_empty_trace () =
  let o =
    { Tuner.best_config = [| 0.0 |]; best_performance = 5.0; trace = [];
      evaluations = 0; converged = false; measurement = None }
  in
  let m = Tuner.Metrics.of_outcome obj_up o in
  Alcotest.(check int) "zero convergence" 0 m.Tuner.Metrics.convergence_iteration;
  Alcotest.(check int) "zero bad" 0 m.Tuner.Metrics.bad_iterations

let suite =
  [
    Alcotest.test_case "tune finds peak" `Quick test_tune_finds_peak;
    Alcotest.test_case "best is best of trace" `Quick test_best_is_best_of_trace;
    Alcotest.test_case "best config consistent" `Quick test_best_config_matches_performance;
    Alcotest.test_case "option presets" `Quick test_original_options_use_extremes;
    Alcotest.test_case "improved init starts better" `Quick test_improved_init_starts_better;
    Alcotest.test_case "trace csv" `Quick test_trace_csv;
    Alcotest.test_case "pool identity" `Quick test_tune_pool_identity;
    Alcotest.test_case "metrics convergence" `Quick test_metrics_convergence;
    Alcotest.test_case "metrics reference" `Quick test_metrics_with_reference;
    Alcotest.test_case "metrics worst in window" `Quick test_metrics_worst_in_window;
    Alcotest.test_case "metrics bad iterations" `Quick test_metrics_bad_iterations;
    Alcotest.test_case "metrics settling" `Quick test_metrics_settling;
    Alcotest.test_case "metrics initial window" `Quick test_metrics_initial_window_stats;
    Alcotest.test_case "metrics lower is better" `Quick test_metrics_lower_is_better;
    Alcotest.test_case "metrics empty trace" `Quick test_metrics_empty_trace;
  ]
