open Harmony
module Rsl = Harmony_param.Rsl

let paper_spec =
  "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}"

(* Response surface over the restricted (B, C) space: peak at B=3, C=4. *)
let respond assignment =
  let v name = float_of_int (List.assoc name assignment) in
  let db = v "B" -. 3.0 and dc = v "C" -. 4.0 in
  100.0 -. (db *. db) -. (dc *. dc)

let register server =
  Server.handle server (Server.Register { spec = paper_spec; direction = Server.Maximize })

let test_register_assigns () =
  let server = Server.create () in
  match register server with
  | Server.Assign assignment ->
      Alcotest.(check (list string)) "both bundles" [ "B"; "C" ]
        (List.map fst assignment)
  | _ -> Alcotest.fail "expected an assignment"

let test_register_bad_spec () =
  let server = Server.create () in
  match Server.handle server (Server.Register { spec = "{ nope }"; direction = Server.Maximize }) with
  | Server.Rejected _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_register_untunable_spec () =
  (* Parses fine, but the space is a single point: the search kernel
     cannot build a non-degenerate initial simplex.  The degeneracy
     only surfaces once the initial vertices are measured; the server
     must then abort the session with a rejection, never raise.  Found
     by the fuzz suite. *)
  let server = Server.create () in
  let rec drive reply steps =
    if steps > 10 then Alcotest.fail "degenerate session never aborted"
    else
      match reply with
      | Server.Assign _ ->
          drive (Server.handle server (Server.Report 1.0)) (steps + 1)
      | Server.Rejected _ -> ()
      | Server.Done _ -> Alcotest.fail "degenerate spec reported success"
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  drive
    (Server.handle server
       (Server.Register
          { spec = "{ harmonyBundle B { int {3 3 1} }}";
            direction = Server.Maximize }))
    0;
  (* The aborted session is gone: the next query needs a re-register. *)
  match Server.handle server Server.Query with
  | Server.Rejected _ -> ()
  | _ -> Alcotest.fail "aborted session still live"

let test_query_before_register () =
  let server = Server.create () in
  match Server.handle server Server.Query with
  | Server.Rejected _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_report_without_assignment () =
  let server = Server.create () in
  let _ = register server in
  (* Consume the outstanding assignment... *)
  let _ = Server.handle server (Server.Report 1.0) in
  (* ...then a bare Query re-issues; after Done, report must fail.
     Simpler: a fresh server that never got an assignment. *)
  let fresh = Server.create () in
  match Server.handle fresh (Server.Report 1.0) with
  | Server.Rejected _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_query_idempotent () =
  let server = Server.create () in
  let a1 = register server in
  let a2 = Server.handle server Server.Query in
  Alcotest.(check bool) "same assignment until reported" true (a1 = a2)

let test_assignments_feasible () =
  let server = Server.create ~options:{ Simplex.default_options with Simplex.max_evaluations = 60 } () in
  let spec = Rsl.parse paper_spec in
  let rec loop reply steps =
    if steps > 200 then Alcotest.fail "server never finished";
    match reply with
    | Server.Assign assignment ->
        let values = Array.of_list (List.map snd assignment) in
        Alcotest.(check bool) "feasible under restriction" true
          (Rsl.is_feasible spec values);
        loop (Server.handle server (Server.Report (respond assignment))) (steps + 1)
    | Server.Done { best; performance } ->
        Alcotest.(check bool) "found a good point" true (performance > 90.0);
        let values = Array.of_list (List.map snd best) in
        Alcotest.(check bool) "best feasible" true (Rsl.is_feasible spec values)
    | Server.Rejected msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
    | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  loop (register server) 0

let test_reregister_resets () =
  let server = Server.create () in
  let _ = register server in
  let _ = Server.handle server (Server.Report 42.0) in
  (* Re-registering starts a fresh session. *)
  match register server with
  | Server.Assign _ -> (
      match Server.spec server with
      | Some spec -> Alcotest.(check (list string)) "spec live" [ "B"; "C" ] (Rsl.names spec)
      | None -> Alcotest.fail "spec missing")
  | _ -> Alcotest.fail "expected an assignment"

(* With [reject_reregister] a duplicate register is a total error
   reply while a session is mid-tuning (bad fixture), but registering
   after the session finished or aborted still works (good fixture) —
   the behaviour the sharded service relies on per client. *)
let test_reject_reregister_mid_session () =
  let server = Server.create ~reject_reregister:true () in
  let first =
    match register server with
    | Server.Assign a -> a
    | _ -> Alcotest.fail "expected an assignment"
  in
  (* Bad: a second register while the first session is mid-tuning. *)
  (match register server with
  | Server.Rejected msg ->
      Alcotest.(check bool) "error names the conflict" true
        (String.starts_with ~prefix:"already registered" msg)
  | _ -> Alcotest.fail "duplicate register was not rejected");
  (* The live session is untouched: the same assignment is still
     outstanding and tuning completes normally. *)
  (match Server.handle server Server.Query with
  | Server.Assign a -> Alcotest.(check bool) "assignment survived" true (a = first)
  | _ -> Alcotest.fail "outstanding assignment lost");
  let rec drive reply steps =
    if steps > 200 then Alcotest.fail "session never finished"
    else
      match reply with
      | Server.Assign a ->
          drive (Server.handle server (Server.Report (respond a))) (steps + 1)
      | Server.Done _ -> ()
      | Server.Rejected msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  drive (Server.handle server Server.Query) 0;
  (* Good: the session is finished, so registering again starts a
     fresh one. *)
  match register server with
  | Server.Assign _ -> ()
  | _ -> Alcotest.fail "re-register after done was refused"

let test_reject_reregister_after_abort () =
  (* An aborted session (degenerate spec) must not wedge the client
     forever: re-register is the documented way out. *)
  let server = Server.create ~reject_reregister:true () in
  let rec drive reply steps =
    if steps > 10 then Alcotest.fail "degenerate session never aborted"
    else
      match reply with
      | Server.Assign _ ->
          drive (Server.handle server (Server.Report 1.0)) (steps + 1)
      | Server.Rejected _ -> ()
      | Server.Done _ -> Alcotest.fail "degenerate spec reported success"
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  drive
    (Server.handle server
       (Server.Register
          { spec = "{ harmonyBundle B { int {3 3 1} }}";
            direction = Server.Maximize }))
    0;
  match register server with
  | Server.Assign _ -> ()
  | _ -> Alcotest.fail "re-register after abort was refused"

(* Fault tolerance: the [report failed] path *)

let test_report_failed_reassigns () =
  let server = Server.create () in
  let first = register server in
  (match first with
  | Server.Assign a ->
      (* Two consecutive failures: the same configuration is re-assigned
         for the client to retry. *)
      Alcotest.(check bool) "first retry same config" true
        (Server.handle server Server.Report_failed = Server.Assign a);
      Alcotest.(check bool) "second retry same config" true
        (Server.handle server Server.Report_failed = Server.Assign a);
      (* Third failure exhausts max_report_failures = 3: the config is
         penalized and the search moves on. *)
      (match Server.handle server Server.Report_failed with
      | Server.Assign _ | Server.Done _ -> ()
      | Server.Rejected msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply")
  | _ -> Alcotest.fail "expected an assignment");
  Alcotest.(check (pair int int)) "fault counters" (3, 1)
    (Server.fault_counters server)

let test_report_failed_without_registration () =
  let server = Server.create () in
  match Server.handle server Server.Report_failed with
  | Server.Rejected _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_successful_report_resets_failures () =
  let server = Server.create () in
  let _ = register server in
  (* One failure, then a success: the failure streak resets, so the
     next assignment gets its full retry allowance again. *)
  let _ = Server.handle server Server.Report_failed in
  (match Server.handle server (Server.Report 50.0) with
  | Server.Assign a ->
      Alcotest.(check bool) "fresh allowance: retry 1" true
        (Server.handle server Server.Report_failed = Server.Assign a);
      Alcotest.(check bool) "fresh allowance: retry 2" true
        (Server.handle server Server.Report_failed = Server.Assign a)
  | _ -> Alcotest.fail "expected an assignment");
  Alcotest.(check (pair int int)) "no penalty yet" (3, 0)
    (Server.fault_counters server)

let test_done_degrades_to_best_measured () =
  (* Only the very first assignment ever gets measured; everything
     after fails permanently.  The final Done must report the one
     configuration a client actually measured, not a penalized one. *)
  let server =
    Server.create
      ~options:{ Simplex.default_options with Simplex.max_evaluations = 15 }
      ~max_report_failures:1 ()
  in
  let measured = ref None in
  let rec loop reply steps =
    if steps > 200 then Alcotest.fail "server never finished"
    else
      match reply with
      | Server.Assign assignment ->
          let next =
            match !measured with
            | None ->
                measured := Some assignment;
                Server.Report 55.0
            | Some _ -> Server.Report_failed
          in
          loop (Server.handle server next) (steps + 1)
      | Server.Done { best; performance } ->
          Alcotest.(check (float 1e-9)) "best actually-measured value" 55.0
            performance;
          Alcotest.(check bool) "the measured configuration" true
            (Some best = !measured)
      | Server.Rejected msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  loop (register server) 0;
  let failed, penalized = Server.fault_counters server in
  Alcotest.(check bool) "failures recorded" true (failed > 0 && penalized > 0)

let test_max_report_failures_invalid () =
  Alcotest.(check bool) "zero rejected" true
    (match Server.create ~max_report_failures:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Codec *)

let test_parse_query () =
  Alcotest.(check bool) "query" true (Server.parse_message "query" = Ok Server.Query)

let test_parse_report () =
  Alcotest.(check bool) "report" true
    (Server.parse_message "report 42.5" = Ok (Server.Report 42.5));
  (match Server.parse_message "report abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad float accepted")

let test_parse_report_failed () =
  Alcotest.(check bool) "report failed" true
    (Server.parse_message "report failed" = Ok Server.Report_failed);
  (* "failed" is not a float: the token must not fall through to the
     numeric report parser. *)
  match Server.parse_message "report failed 3.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_parse_register () =
  match Server.parse_message ("register max\n" ^ paper_spec) with
  | Ok (Server.Register { direction = Server.Maximize; spec }) ->
      Alcotest.(check bool) "spec text carried" true
        (String.length spec > 0 && Rsl.names (Rsl.parse spec) = [ "B"; "C" ])
  | _ -> Alcotest.fail "expected register"

let test_parse_unknown () =
  match Server.parse_message "frobnicate" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command accepted"

let test_reply_rendering () =
  Alcotest.(check string) "assign" "assign B=3 C=4"
    (Server.reply_to_string (Server.Assign [ ("B", 3); ("C", 4) ]));
  Alcotest.(check string) "done" "done B=3 C=4 perf=97"
    (Server.reply_to_string
       (Server.Done { best = [ ("B", 3); ("C", 4) ]; performance = 97.0 }));
  Alcotest.(check string) "error" "error nope"
    (Server.reply_to_string (Server.Rejected "nope"))

let test_text_round_trip_session () =
  (* Drive the server purely through the text protocol. *)
  let server = Server.create ~options:{ Simplex.default_options with Simplex.max_evaluations = 40 } () in
  let send text =
    match Server.parse_message text with
    | Ok m -> Server.reply_to_string (Server.handle server m)
    | Error e -> "parse-error " ^ e
  in
  let first = send ("register max\n" ^ paper_spec) in
  Alcotest.(check bool) "assignment line" true
    (String.length first > 7 && String.sub first 0 7 = "assign ");
  let reply = ref (send "report 10.0") in
  let steps = ref 0 in
  while String.length !reply > 7 && String.sub !reply 0 7 = "assign " && !steps < 100 do
    incr steps;
    reply := send "report 10.0"
  done;
  Alcotest.(check bool) "session ends with done" true
    (String.length !reply >= 4 && String.sub !reply 0 4 = "done")

let test_minimize_session () =
  (* A minimizing registration: the server should end near the cost
     minimum (B=3, C=4 gives cost 0 on this surface). *)
  let cost assignment =
    let v name = float_of_int (List.assoc name assignment) in
    ((v "B" -. 3.0) ** 2.0) +. ((v "C" -. 4.0) ** 2.0)
  in
  let server = Server.create ~options:{ Simplex.default_options with Simplex.max_evaluations = 80 } () in
  let rec loop reply steps =
    if steps > 300 then Alcotest.fail "no convergence"
    else
      match reply with
      | Server.Assign assignment ->
          loop (Server.handle server (Server.Report (cost assignment))) (steps + 1)
      | Server.Done { performance; _ } -> performance
      | Server.Rejected msg -> Alcotest.fail msg
      | Server.Stats _ -> Alcotest.fail "unexpected stats reply"
  in
  let best =
    loop
      (Server.handle server
         (Server.Register { spec = paper_spec; direction = Server.Minimize }))
      0
  in
  Alcotest.(check bool) "found the cost minimum region" true (best <= 2.0)

let suite =
  [
    Alcotest.test_case "register assigns" `Quick test_register_assigns;
    Alcotest.test_case "register bad spec" `Quick test_register_bad_spec;
    Alcotest.test_case "register untunable spec" `Quick test_register_untunable_spec;
    Alcotest.test_case "query before register" `Quick test_query_before_register;
    Alcotest.test_case "report without assignment" `Quick test_report_without_assignment;
    Alcotest.test_case "query idempotent" `Quick test_query_idempotent;
    Alcotest.test_case "assignments feasible" `Quick test_assignments_feasible;
    Alcotest.test_case "reregister resets" `Quick test_reregister_resets;
    Alcotest.test_case "reject reregister mid-session" `Quick
      test_reject_reregister_mid_session;
    Alcotest.test_case "reject reregister after abort" `Quick
      test_reject_reregister_after_abort;
    Alcotest.test_case "report failed reassigns" `Quick test_report_failed_reassigns;
    Alcotest.test_case "report failed unregistered" `Quick
      test_report_failed_without_registration;
    Alcotest.test_case "success resets failures" `Quick
      test_successful_report_resets_failures;
    Alcotest.test_case "done degrades to measured" `Quick
      test_done_degrades_to_best_measured;
    Alcotest.test_case "max_report_failures invalid" `Quick
      test_max_report_failures_invalid;
    Alcotest.test_case "parse query" `Quick test_parse_query;
    Alcotest.test_case "parse report" `Quick test_parse_report;
    Alcotest.test_case "parse register" `Quick test_parse_register;
    Alcotest.test_case "parse unknown" `Quick test_parse_unknown;
    Alcotest.test_case "reply rendering" `Quick test_reply_rendering;
    Alcotest.test_case "text round trip" `Quick test_text_round_trip_session;
    Alcotest.test_case "minimize session" `Quick test_minimize_session;
  ]
