module Heap = Harmony_des.Heap
module Sim = Harmony_des.Sim
module Resource = Harmony_des.Resource
module Rng = Harmony_numerics.Rng

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 1;
  Heap.push h 1.0 2;
  Heap.push h 1.0 3;
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> -1 in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ]
    [ first; second; third ]

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.push h 2.0 20;
  Heap.push h 1.0 10;
  (match Heap.peek h with
  | Some (k, v) ->
      Alcotest.(check (float 1e-12)) "key" 1.0 k;
      Alcotest.(check int) "value" 10 v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not pop" 2 (Heap.size h);
  Alcotest.(check (float 1e-12)) "min_key" 1.0 (Heap.min_key h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 0;
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_pop_payload () =
  let h = Heap.create () in
  Heap.push h 3.0 30;
  Heap.push h 1.0 10;
  Heap.push h 2.0 20;
  Alcotest.(check int) "first" 10 (Heap.pop_payload h);
  Alcotest.(check int) "second" 20 (Heap.pop_payload h);
  Alcotest.(check int) "third" 30 (Heap.pop_payload h);
  Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_payload: empty heap")
    (fun () -> ignore (Heap.pop_payload h))

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains keys in order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-1e3) 1e3))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

(* Differential reference for the flat heap: a sorted association
   list ordered by (key, insertion sequence) — the semantics of the
   previous boxed-entry heap.  Interleaved pushes and pops must
   dequeue identical (key, payload) sequences. *)
module Ref_heap = struct
  type t = { mutable entries : (float * int * int) list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let push t key value =
    let rec insert = function
      | [] -> [ (key, t.next_seq, value) ]
      | (k, s, v) :: rest when k < key || (Float.equal k key && s < t.next_seq)
        ->
          (k, s, v) :: insert rest
      | rest -> (key, t.next_seq, value) :: rest
    in
    t.entries <- insert t.entries;
    t.next_seq <- t.next_seq + 1

  let pop t =
    match t.entries with
    | [] -> None
    | (k, _, v) :: rest ->
        t.entries <- rest;
        Some (k, v)
end

let prop_heap_matches_reference =
  (* Operation stream: [Some key] pushes (payload = op index), [None]
     pops from both and compares. *)
  QCheck2.Test.make ~name:"flat heap dequeues like the reference" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 200) (option (float_range 0.0 10.0)))
    (fun ops ->
      let h = Heap.create () in
      let r = Ref_heap.create () in
      let ok = ref true in
      List.iteri
        (fun i op ->
          match op with
          | Some key ->
              Heap.push h key i;
              Ref_heap.push r key i
          | None ->
              let a = Heap.pop h in
              let b = Ref_heap.pop r in
              if a <> b then ok := false)
        ops;
      (* Drain the rest. *)
      let rec drain () =
        match (Heap.pop h, Ref_heap.pop r) with
        | None, None -> ()
        | a, b ->
            if a <> b then ok := false
            else drain ()
      in
      drain ();
      !ok)

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)

let test_sim_fires_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun _ -> log := "b" :: !log);
  Sim.schedule sim ~delay:1.0 (fun _ -> log := "a" :: !log);
  Sim.schedule sim ~delay:3.0 (fun _ -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "clock at last event" 3.0 (Sim.now sim)

let test_sim_handlers_can_schedule () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick s =
    incr count;
    if !count < 5 then Sim.schedule s ~delay:1.0 tick
  in
  Sim.schedule sim ~delay:1.0 tick;
  Sim.run sim;
  Alcotest.(check int) "chain of events" 5 !count;
  Alcotest.(check (float 1e-12)) "clock" 5.0 (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr fired)
  done;
  Sim.run ~until:4.5 sim;
  Alcotest.(check int) "only early events" 4 !fired;
  Alcotest.(check (float 1e-12)) "clock parked at horizon" 4.5 (Sim.now sim);
  Alcotest.(check int) "rest still queued" 6 (Sim.pending sim)

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Sim.schedule sim ~delay:(-1.0) (fun _ -> ()))

let test_sim_schedule_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5.0 (fun _ -> ());
  Sim.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time in the past")
    (fun () -> Sim.schedule_at sim ~time:1.0 (fun _ -> ()))

let test_sim_step () =
  let sim = Sim.create () in
  Alcotest.(check bool) "empty step" false (Sim.step sim);
  Sim.schedule sim ~delay:1.0 (fun _ -> ());
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "drained" false (Sim.step sim)

(* ------------------------------------------------------------------ *)
(* Resource                                                            *)

let test_resource_serves_within_capacity () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:2 () in
  let done_count = ref 0 in
  for _ = 1 to 2 do
    Resource.submit sim r ~service_time:1.0
      ~on_complete:(fun _ -> incr done_count)
      ~on_reject:(fun _ -> Alcotest.fail "unexpected rejection")
  done;
  Alcotest.(check int) "both in service" 2 (Resource.busy r);
  Sim.run sim;
  Alcotest.(check int) "both completed" 2 !done_count;
  Alcotest.(check int) "counter" 2 (Resource.completed r)

let test_resource_queues_fifo () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:1 () in
  let order = ref [] in
  let submit name service_time =
    Resource.submit sim r ~service_time
      ~on_complete:(fun _ -> order := name :: !order)
      ~on_reject:(fun _ -> ())
  in
  submit "first" 5.0;
  submit "second" 1.0;
  submit "third" 1.0;
  Alcotest.(check int) "two waiting" 2 (Resource.queued r);
  Sim.run sim;
  Alcotest.(check (list string)) "FIFO" [ "first"; "second"; "third" ] (List.rev !order)

let test_resource_rejects_when_full () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:1 ~queue_limit:1 () in
  let rejected = ref 0 in
  for _ = 1 to 3 do
    Resource.submit sim r ~service_time:1.0
      ~on_complete:(fun _ -> ())
      ~on_reject:(fun _ -> incr rejected)
  done;
  (* 1 in service, 1 queued, 1 rejected. *)
  Alcotest.(check int) "one rejection" 1 !rejected;
  Alcotest.(check int) "rejected counter" 1 (Resource.rejected r);
  Sim.run sim;
  Alcotest.(check int) "two served" 2 (Resource.completed r)

let test_resource_zero_queue () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:1 ~queue_limit:0 () in
  let rejected = ref 0 in
  Resource.submit sim r ~service_time:1.0 ~on_complete:(fun _ -> ()) ~on_reject:(fun _ -> ());
  Resource.submit sim r ~service_time:1.0 ~on_complete:(fun _ -> ()) ~on_reject:(fun _ -> incr rejected);
  Alcotest.(check int) "no waiting room" 1 !rejected

let test_resource_utilization () =
  let sim = Sim.create () in
  let r = Resource.create ~capacity:1 () in
  Resource.submit sim r ~service_time:4.0 ~on_complete:(fun _ -> ()) ~on_reject:(fun _ -> ());
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "busy integral" 4.0 (Resource.utilization_time r)

let test_resource_invalid () =
  Alcotest.check_raises "capacity" (Invalid_argument "Resource.create: capacity < 1")
    (fun () -> ignore (Resource.create ~capacity:0 ()));
  Alcotest.check_raises "queue" (Invalid_argument "Resource.create: negative queue_limit")
    (fun () -> ignore (Resource.create ~capacity:1 ~queue_limit:(-1) ()))

(* Little's-law style check: an M/M/1 queue's simulated throughput
   matches the offered rate when utilization < 1. *)
let test_mm1_throughput () =
  let sim = Sim.create () in
  let rng = Rng.create 4 in
  let r = Resource.create ~capacity:1 () in
  let completed = ref 0 in
  let horizon = 50_000.0 in
  let rec arrive s =
    Resource.submit s r
      ~service_time:(Rng.exponential rng 0.5)
      ~on_complete:(fun _ -> incr completed)
      ~on_reject:(fun _ -> ());
    if Sim.now s < horizon then Sim.schedule s ~delay:(Rng.exponential rng 1.0) arrive
  in
  Sim.schedule sim ~delay:0.0 arrive;
  Sim.run sim;
  let rate = float_of_int !completed /. Sim.now sim in
  Alcotest.(check bool) "throughput ~= arrival rate" true (Float.abs (rate -. 1.0) < 0.05)

(* Property: events always fire in nondecreasing time order, whatever
   the scheduling pattern. *)
let prop_sim_monotonic_time =
  QCheck2.Test.make ~name:"events fire in time order" ~count:100
    QCheck2.Gen.(list_size (int_range 1 50) (float_range 0.0 100.0))
    (fun delays ->
      let sim = Sim.create () in
      let times = ref [] in
      List.iter
        (fun d -> Sim.schedule sim ~delay:d (fun s -> times := Sim.now s :: !times))
        delays;
      Sim.run sim;
      let fired = List.rev !times in
      List.for_all2 ( <= ) (List.filteri (fun i _ -> i < List.length fired - 1) fired)
        (List.tl fired))

(* Property: resource accounting conserves requests. *)
let prop_resource_conserves =
  QCheck2.Test.make ~name:"resource conserves requests" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_range 1 60) (float_range 0.1 5.0)))
    (fun (capacity, services) ->
      let sim = Sim.create () in
      let r = Resource.create ~capacity ~queue_limit:2 () in
      let rejected = ref 0 and completed = ref 0 in
      List.iter
        (fun service_time ->
          Resource.submit sim r ~service_time
            ~on_complete:(fun _ -> incr completed)
            ~on_reject:(fun _ -> incr rejected))
        services;
      Sim.run sim;
      !completed + !rejected = List.length services
      && !completed = Resource.completed r
      && !rejected = Resource.rejected r)

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    Alcotest.test_case "sim fires in order" `Quick test_sim_fires_in_order;
    Alcotest.test_case "sim handlers schedule" `Quick test_sim_handlers_can_schedule;
    Alcotest.test_case "sim until" `Quick test_sim_until;
    Alcotest.test_case "sim negative delay" `Quick test_sim_negative_delay;
    Alcotest.test_case "sim schedule past" `Quick test_sim_schedule_past;
    Alcotest.test_case "sim step" `Quick test_sim_step;
    Alcotest.test_case "resource capacity" `Quick test_resource_serves_within_capacity;
    Alcotest.test_case "resource fifo" `Quick test_resource_queues_fifo;
    Alcotest.test_case "resource rejects" `Quick test_resource_rejects_when_full;
    Alcotest.test_case "resource zero queue" `Quick test_resource_zero_queue;
    Alcotest.test_case "resource utilization" `Quick test_resource_utilization;
    Alcotest.test_case "resource invalid" `Quick test_resource_invalid;
    Alcotest.test_case "mm1 throughput" `Slow test_mm1_throughput;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_heap_sorts; prop_sim_monotonic_time; prop_resource_conserves ]
