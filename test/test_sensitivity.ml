open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space
module Rng = Harmony_numerics.Rng

(* A transparent objective: performance = 10*x + y, z ignored. *)
let space =
  Space.create
    [
      Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"y" ~lo:0 ~hi:10 ~default:5 ();
      Param.int_range ~name:"z" ~lo:0 ~hi:10 ~default:5 ();
    ]

let linear =
  Objective.create ~space ~direction:Objective.Higher_is_better (fun c ->
      (10.0 *. c.(0)) +. c.(1))

let test_scores_linear () =
  let r = Sensitivity.analyze linear in
  let s i = r.Sensitivity.scores.(i).Sensitivity.sensitivity in
  (* Sweep of x: P from 50+5 to 150+5... wait, x in [0,10]: P ranges
     over 100 with v' spanning 1 -> sensitivity 100. *)
  Alcotest.(check (float 1e-9)) "x" 100.0 (s 0);
  Alcotest.(check (float 1e-9)) "y" 10.0 (s 1);
  Alcotest.(check (float 1e-9)) "z flat" 0.0 (s 2)

let test_best_worst_values () =
  let r = Sensitivity.analyze linear in
  let sx = r.Sensitivity.scores.(0) in
  Alcotest.(check (float 1e-9)) "best at max" 10.0 sx.Sensitivity.best_value;
  Alcotest.(check (float 1e-9)) "worst at min" 0.0 sx.Sensitivity.worst_value

let test_ranked_and_top_n () =
  let r = Sensitivity.analyze linear in
  let ranked = Sensitivity.ranked r in
  Alcotest.(check string) "x first" "x" ranked.(0).Sensitivity.name;
  Alcotest.(check string) "z last" "z" ranked.(2).Sensitivity.name;
  Alcotest.(check (list int)) "top 1" [ 0 ] (Sensitivity.top_n r 1);
  Alcotest.(check (list int)) "top 2 ascending" [ 0; 1 ] (Sensitivity.top_n r 2);
  Alcotest.(check (list int)) "clamped" [ 0; 1; 2 ] (Sensitivity.top_n r 99)

let test_evaluation_count () =
  let count = ref 0 in
  let counted = { linear with Objective.eval = (fun c -> incr count; linear.Objective.eval c) } in
  let r = Sensitivity.analyze counted in
  (* 3 parameters, 11 grid values each. *)
  Alcotest.(check int) "33 evals" 33 !count;
  Alcotest.(check int) "report agrees" 33 (Sensitivity.evaluations r)

let test_max_points_subsamples () =
  let count = ref 0 in
  let counted = { linear with Objective.eval = (fun c -> incr count; linear.Objective.eval c) } in
  let r = Sensitivity.analyze ~max_points:5 counted in
  Alcotest.(check int) "15 evals" 15 !count;
  (* Endpoints always included, so the linear sensitivities are exact. *)
  Alcotest.(check (float 1e-9)) "x unchanged" 100.0
    r.Sensitivity.scores.(0).Sensitivity.sensitivity

let test_repeats_average_noise () =
  let rng = Rng.create 5 in
  let noisy = Objective.with_noise rng ~level:0.25 linear in
  let r1 = Sensitivity.analyze noisy in
  let r3 = Sensitivity.analyze ~repeats:5 noisy in
  (* The flat parameter z picks up spurious sensitivity from noise;
     averaging repeats damps it. *)
  let z r = r.Sensitivity.scores.(2).Sensitivity.sensitivity in
  Alcotest.(check bool) "repeats reduce the noise floor" true (z r3 < z r1);
  Alcotest.(check int) "evaluations counted with repeats" (3 * 11 * 5)
    (Sensitivity.evaluations r3)

let test_normalization_comparable () =
  (* Same physical effect across different ranges gives the same
     sensitivity: wide parameters get no excessive weight. *)
  let wide_space =
    Space.create
      [
        Param.int_range ~name:"a" ~lo:0 ~hi:10 ~default:0 ();
        Param.int_range ~name:"b" ~lo:0 ~hi:1000 ~step:100 ~default:0 ();
      ]
  in
  let obj =
    Objective.create ~space:wide_space ~direction:Objective.Higher_is_better
      (fun c -> c.(0) +. (c.(1) /. 100.0))
  in
  let r = Sensitivity.analyze obj in
  Alcotest.(check (float 1e-9))
    "normalized equal"
    r.Sensitivity.scores.(0).Sensitivity.sensitivity
    r.Sensitivity.scores.(1).Sensitivity.sensitivity

let test_invalid_args () =
  Alcotest.check_raises "max_points" (Invalid_argument "Sensitivity.analyze: max_points < 2")
    (fun () -> ignore (Sensitivity.analyze ~max_points:1 linear));
  Alcotest.check_raises "repeats" (Invalid_argument "Sensitivity.analyze: repeats < 1")
    (fun () -> ignore (Sensitivity.analyze ~repeats:0 linear))

let test_subsample () =
  Alcotest.(check (array int)) "all when count >= n" [| 0; 1; 2 |]
    (Sensitivity.subsample 3 5);
  Alcotest.(check (array int)) "endpoints included" [| 0; 5; 10 |]
    (Sensitivity.subsample 11 3);
  (* The former division-by-zero cases. *)
  Alcotest.(check (array int)) "count = 1" [| 0 |] (Sensitivity.subsample 11 1);
  Alcotest.(check (array int)) "count = 0" [| 0 |] (Sensitivity.subsample 11 0);
  Alcotest.(check (array int)) "n = 0" [||] (Sensitivity.subsample 0 4)

let test_pool_matches_sequential () =
  let sequential = Sensitivity.analyze linear in
  let parallel =
    Harmony_parallel.Pool.with_pool ~domains:4 (fun pool ->
        Sensitivity.analyze ~pool linear)
  in
  Array.iteri
    (fun i s ->
      let p = parallel.Sensitivity.scores.(i) in
      Alcotest.(check string) "name" s.Sensitivity.name p.Sensitivity.name;
      Alcotest.(check (float 0.0)) "sensitivity identical"
        s.Sensitivity.sensitivity p.Sensitivity.sensitivity;
      Alcotest.(check (float 0.0)) "best identical"
        s.Sensitivity.best_value p.Sensitivity.best_value)
    sequential.Sensitivity.scores

let test_pool_noisy_stays_sequential () =
  (* A noisy objective draws from one shared stream: analyze must
     ignore the pool and reproduce the sequential draw order. *)
  let noisy () = Objective.with_noise (Rng.create 11) ~level:0.25 linear in
  let sequential = Sensitivity.analyze (noisy ()) in
  let parallel =
    Harmony_parallel.Pool.with_pool ~domains:4 (fun pool ->
        Sensitivity.analyze ~pool (noisy ()))
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check (float 0.0)) "same draws"
        s.Sensitivity.sensitivity
        parallel.Sensitivity.scores.(i).Sensitivity.sensitivity)
    sequential.Sensitivity.scores

let test_datagen_irrelevant_zero () =
  (* End-to-end: the paper's Section 5.2 check — the tool gives the
     generated irrelevant parameters exactly zero sensitivity. *)
  let g = Harmony_datagen.Generator.synthetic_webservice () in
  let obj =
    Harmony_datagen.Generator.objective g
      ~workload:Harmony_datagen.Generator.shopping_mix
  in
  let r = Sensitivity.analyze obj in
  List.iter
    (fun i ->
      Alcotest.(check (float 1e-9))
        "irrelevant scores zero" 0.0
        r.Sensitivity.scores.(i).Sensitivity.sensitivity)
    (Harmony_datagen.Generator.irrelevant g);
  (* And every generated-relevant parameter scores above zero. *)
  Array.iteri
    (fun i s ->
      if not (List.mem i (Harmony_datagen.Generator.irrelevant g)) then
        Alcotest.(check bool) "relevant above zero" true
          (s.Sensitivity.sensitivity > 0.0))
    r.Sensitivity.scores

let suite =
  [
    Alcotest.test_case "linear scores" `Quick test_scores_linear;
    Alcotest.test_case "best worst values" `Quick test_best_worst_values;
    Alcotest.test_case "ranked and top_n" `Quick test_ranked_and_top_n;
    Alcotest.test_case "evaluation count" `Quick test_evaluation_count;
    Alcotest.test_case "max_points subsamples" `Quick test_max_points_subsamples;
    Alcotest.test_case "repeats average noise" `Quick test_repeats_average_noise;
    Alcotest.test_case "normalization comparable" `Quick test_normalization_comparable;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "subsample" `Quick test_subsample;
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool noisy stays sequential" `Quick test_pool_noisy_stays_sequential;
    Alcotest.test_case "datagen irrelevant zero" `Quick test_datagen_irrelevant_zero;
  ]
