let () =
  Alcotest.run "harmony"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("matrix", Test_matrix.suite);
      ("lstsq", Test_lstsq.suite);
      ("param", Test_param.suite);
      ("space", Test_space.suite);
      ("rsl", Test_rsl.suite);
      ("enum", Test_enum.suite);
      ("objective", Test_objective.suite);
      ("parallel", Test_parallel.suite);
      ("recorder", Test_recorder.suite);
      ("testbed", Test_testbed.suite);
      ("rules", Test_rules.suite);
      ("generator", Test_generator.suite);
      ("des", Test_des.suite);
      ("tpcw", Test_tpcw.suite);
      ("webservice", Test_webservice.suite);
      ("ml", Test_ml.suite);
      ("simplex", Test_simplex.suite);
      ("tuner", Test_tuner.suite);
      ("measure", Test_measure.suite);
      ("properties", Test_properties.suite);
      ("sensitivity", Test_sensitivity.suite);
      ("subspace", Test_subspace.suite);
      ("estimator", Test_estimator.suite);
      ("history", Test_history.suite);
      ("analyzer", Test_analyzer.suite);
      ("baselines", Test_baselines.suite);
      ("session", Test_session.suite);
      ("controller", Test_controller.suite);
      ("server", Test_server.suite);
      ("factorial", Test_factorial.suite);
      ("cachesim", Test_cachesim.suite);
      ("experiments", Test_experiments.suite);
    ]
