(* The durability layer: CRC framing, sinks, atomic writes, journal.

   The framing codec's contract is totality — Frame.scan must decode
   the longest valid prefix of *arbitrary* bytes without raising — so
   alongside the unit tests the codec is fuzzed with QCheck (fixed
   seed: deterministic like everything else in this suite). *)

module Frame = Harmony_persist.Frame
module Persist = Harmony_persist.Persist
module Journal = Harmony_persist.Journal
module Gen = QCheck2.Gen

let seed = [| 0x5eed; 2004 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make seed) t

let with_temp_file f =
  let path = Filename.temp_file "harmony_persist" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      Persist.remove_if_exists path;
      Persist.remove_if_exists (path ^ ".tmp"))
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let test_crc32_vectors () =
  (* The standard check value for the IEEE 802.3 polynomial. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Frame.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Frame.crc32 "");
  Alcotest.(check bool) "sensitive to a flip" true
    (Frame.crc32 "123456789" <> Frame.crc32 "123456788")

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let encode_all payloads = String.concat "" (List.map Frame.encode payloads)

let test_roundtrip () =
  let payloads = [ ""; "a"; "hello world"; String.make 1000 '\x00'; "\xff\xfe" ] in
  let s = encode_all payloads in
  let scan = Frame.scan s in
  Alcotest.(check (list string)) "records" payloads scan.Frame.records;
  Alcotest.(check bool) "not torn" false scan.Frame.torn;
  Alcotest.(check int) "all bytes valid" (String.length s) scan.Frame.valid_bytes;
  Alcotest.(check int) "one boundary per record" (List.length payloads)
    (List.length scan.Frame.boundaries)

let test_scan_empty () =
  let scan = Frame.scan "" in
  Alcotest.(check (list string)) "no records" [] scan.Frame.records;
  Alcotest.(check bool) "clean" false scan.Frame.torn

let test_truncation_drops_only_tail () =
  let payloads = [ "first"; "second"; "third" ] in
  let s = encode_all payloads in
  (* Cut mid-way through the last record: the first two survive. *)
  let cut = String.length s - 2 in
  let scan = Frame.scan (String.sub s 0 cut) in
  Alcotest.(check (list string)) "prefix" [ "first"; "second" ] scan.Frame.records;
  Alcotest.(check bool) "torn" true scan.Frame.torn;
  Alcotest.(check int) "valid prefix length"
    (String.length (encode_all [ "first"; "second" ]))
    scan.Frame.valid_bytes

let test_corruption_stops_scan () =
  let payloads = [ "first"; "second"; "third" ] in
  let s = encode_all payloads in
  (* Flip a payload byte inside "second": CRC catches it; "third" is
     unreachable because scanning cannot trust anything after the
     corruption point. *)
  let pos = String.length (Frame.encode "first") + 8 + 2 in
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  let scan = Frame.scan (Bytes.to_string b) in
  Alcotest.(check (list string)) "stops before corruption" [ "first" ]
    scan.Frame.records;
  Alcotest.(check bool) "torn" true scan.Frame.torn

let test_garbage_header_is_bounded () =
  (* A length field far beyond max_payload must be treated as
     corruption, not as an allocation request. *)
  let b = Bytes.make 16 '\xff' in
  let scan = Frame.scan (Bytes.to_string b) in
  Alcotest.(check (list string)) "nothing decoded" [] scan.Frame.records;
  Alcotest.(check bool) "torn" true scan.Frame.torn

let test_encode_rejects_oversize () =
  match Frame.encode (String.make (Frame.max_payload + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_encoded_size () =
  Alcotest.(check int) "matches encode" (String.length (Frame.encode "abc"))
    (Frame.encoded_size "abc")

(* Totality: scanning arbitrary bytes never raises, reports a
   consistent prefix, and never claims more bytes than it was given. *)
let prop_scan_total =
  QCheck2.Test.make ~name:"Frame.scan is total and consistent" ~count:500
    Gen.(string_size ~gen:char (int_bound 200))
    (fun s ->
      let scan = Frame.scan s in
      scan.Frame.valid_bytes >= 0
      && scan.Frame.valid_bytes <= String.length s
      && List.length scan.Frame.records = List.length scan.Frame.boundaries
      && (match List.rev scan.Frame.boundaries with
         | [] -> scan.Frame.valid_bytes = 0
         | last :: _ -> last = scan.Frame.valid_bytes)
      && (scan.Frame.torn || scan.Frame.valid_bytes = String.length s))

(* Encoded streams scan back exactly; any truncation yields a record
   prefix. *)
let prop_roundtrip_and_truncate =
  let gen =
    Gen.(
      let* payloads = list_size (int_bound 6) (string_size ~gen:char (int_bound 40)) in
      let total = List.fold_left (fun a p -> a + Frame.encoded_size p) 0 payloads in
      let* cut = int_bound total in
      return (payloads, cut))
  in
  QCheck2.Test.make ~name:"Frame roundtrip + truncation prefix" ~count:500 gen
    (fun (payloads, cut) ->
      let s = encode_all payloads in
      let full = Frame.scan s in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
        | _ :: _, [] -> false
      in
      full.Frame.records = payloads
      && (not full.Frame.torn)
      && is_prefix (Frame.scan (String.sub s 0 cut)).Frame.records payloads)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let test_buffer_sink () =
  let buf = Buffer.create 16 in
  let sink = Persist.buffer_sink buf in
  sink.Persist.write "abc";
  sink.Persist.write "def";
  sink.Persist.sync ();
  Alcotest.(check string) "accumulates" "abcdef" (Buffer.contents buf);
  sink.Persist.reset ();
  Alcotest.(check string) "reset clears" "" (Buffer.contents buf)

let test_file_sink_appends_and_trims () =
  with_temp_file (fun path ->
      let sink = Persist.file_sink path in
      sink.Persist.write "hello ";
      sink.Persist.write "world";
      sink.Persist.sync ();
      sink.Persist.close ();
      sink.Persist.close ();
      Alcotest.(check (option string)) "written" (Some "hello world")
        (Persist.read_file path);
      let sink = Persist.file_sink ~trim_to:5 path in
      sink.Persist.write "!";
      sink.Persist.close ();
      Alcotest.(check (option string)) "trimmed then appended" (Some "hello!")
        (Persist.read_file path);
      let sink = Persist.file_sink path in
      sink.Persist.reset ();
      sink.Persist.close ();
      Alcotest.(check (option string)) "reset truncates" (Some "")
        (Persist.read_file path))

let test_fault_sink_tears_and_crashes () =
  let buf = Buffer.create 16 in
  let sink = Persist.fault_sink ~limit_bytes:5 (Persist.buffer_sink buf) in
  sink.Persist.write "abc";
  (match sink.Persist.write "def" with
  | exception Persist.Crashed -> ()
  | () -> Alcotest.fail "expected Crashed");
  (* The overflowing write landed its fitting prefix — a torn tail. *)
  Alcotest.(check string) "torn bytes delivered" "abcde" (Buffer.contents buf);
  match sink.Persist.write "x" with
  | exception Persist.Crashed -> ()
  | () -> Alcotest.fail "still crashed"

let test_fault_sink_budget_spans_reset () =
  let buf = Buffer.create 16 in
  let sink = Persist.fault_sink ~limit_bytes:4 (Persist.buffer_sink buf) in
  sink.Persist.write "abc";
  sink.Persist.reset ();
  match sink.Persist.write "de" with
  | exception Persist.Crashed ->
      Alcotest.(check string) "one byte left after reset" "d" (Buffer.contents buf)
  | () -> Alcotest.fail "budget must span reset"

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                       *)

let test_write_atomic () =
  with_temp_file (fun path ->
      Persist.write_atomic ~path "first";
      Alcotest.(check (option string)) "created" (Some "first")
        (Persist.read_file path);
      Persist.write_atomic ~path "second version";
      Alcotest.(check (option string)) "replaced" (Some "second version")
        (Persist.read_file path);
      Alcotest.(check bool) "no tmp residue" false
        (Sys.file_exists (path ^ ".tmp")))

let test_read_file_missing () =
  Alcotest.(check (option string)) "missing file" None
    (Persist.read_file "/nonexistent/harmony/persist")

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let test_journal_append_reopen () =
  with_temp_file (fun path ->
      Sys.remove path;
      let scan, j = Journal.open_file path in
      Alcotest.(check (list string)) "fresh" [] scan.Frame.records;
      Journal.append j "one";
      Journal.append j "two";
      Alcotest.(check int) "records counted" 2 (Journal.records j);
      Journal.close j;
      let scan, j = Journal.open_file path in
      Alcotest.(check (list string)) "reopen sees both" [ "one"; "two" ]
        scan.Frame.records;
      Journal.append j "three";
      Journal.close j;
      Alcotest.(check (list string)) "append after reopen"
        [ "one"; "two"; "three" ]
        (Journal.read path).Frame.records)

let test_journal_truncates_torn_tail () =
  with_temp_file (fun path ->
      Sys.remove path;
      let _, j = Journal.open_file path in
      Journal.append j "good";
      Journal.close j;
      (* Simulate a crash mid-append: garbage half-record at the end. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x99\x00\x00\x00torn";
      close_out oc;
      let scan, j = Journal.open_file path in
      Alcotest.(check (list string)) "valid prefix" [ "good" ] scan.Frame.records;
      Alcotest.(check bool) "tail reported torn" true scan.Frame.torn;
      Journal.append j "next";
      Journal.close j;
      let scan = Journal.read path in
      (* The torn bytes were truncated away before the new append. *)
      Alcotest.(check (list string)) "no torn bytes in front of appends"
        [ "good"; "next" ] scan.Frame.records;
      Alcotest.(check bool) "clean now" false scan.Frame.torn)

let test_journal_reset () =
  with_temp_file (fun path ->
      Sys.remove path;
      let _, j = Journal.open_file path in
      Journal.append j "a";
      Journal.reset j;
      Alcotest.(check int) "count cleared" 0 (Journal.records j);
      Journal.append j "b";
      Journal.close j;
      Alcotest.(check (list string)) "only post-reset records" [ "b" ]
        (Journal.read path).Frame.records)

let test_journal_read_missing () =
  let scan = Journal.read "/nonexistent/harmony/journal" in
  Alcotest.(check (list string)) "empty" [] scan.Frame.records;
  Alcotest.(check bool) "not torn" false scan.Frame.torn

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "frame roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "scan empty" `Quick test_scan_empty;
    Alcotest.test_case "truncation drops only tail" `Quick
      test_truncation_drops_only_tail;
    Alcotest.test_case "corruption stops scan" `Quick test_corruption_stops_scan;
    Alcotest.test_case "garbage header bounded" `Quick
      test_garbage_header_is_bounded;
    Alcotest.test_case "encode rejects oversize" `Quick
      test_encode_rejects_oversize;
    Alcotest.test_case "encoded_size" `Quick test_encoded_size;
    to_alcotest prop_scan_total;
    to_alcotest prop_roundtrip_and_truncate;
    Alcotest.test_case "buffer sink" `Quick test_buffer_sink;
    Alcotest.test_case "file sink append/trim/reset" `Quick
      test_file_sink_appends_and_trims;
    Alcotest.test_case "fault sink tears and crashes" `Quick
      test_fault_sink_tears_and_crashes;
    Alcotest.test_case "fault budget spans reset" `Quick
      test_fault_sink_budget_spans_reset;
    Alcotest.test_case "write_atomic" `Quick test_write_atomic;
    Alcotest.test_case "read_file missing" `Quick test_read_file_missing;
    Alcotest.test_case "journal append/reopen" `Quick test_journal_append_reopen;
    Alcotest.test_case "journal truncates torn tail" `Quick
      test_journal_truncates_torn_tail;
    Alcotest.test_case "journal reset" `Quick test_journal_reset;
    Alcotest.test_case "journal read missing" `Quick test_journal_read_missing;
  ]
