(* Unit tests for the admission layer: token-bucket arithmetic,
   inflight budgets, deadlines, hysteretic degraded mode, priority
   exemptions, and the rejection reply-text grammar. *)

module Admission = Harmony_service.Admission
module Telemetry = Harmony_telemetry.Telemetry

let base = Admission.unlimited

let is_admit = function Admission.Admit -> true | Admission.Reject _ -> false

let reason = function
  | Admission.Admit -> None
  | Admission.Reject { reason; _ } -> Some reason

let retry_after = function
  | Admission.Admit -> None
  | Admission.Reject { retry_after; _ } -> Some retry_after

let check ?enqueued_at ?deadline ?(shard = 0) ?(client = "c1")
    ?(priority = Admission.Normal) t =
  Admission.check t ~shard ~client ~priority ?enqueued_at ?deadline ()

let test_unlimited_admits () =
  let t = Admission.create ~shards:2 base in
  Admission.tick t;
  for _ = 1 to 100 do
    Alcotest.(check bool) "unlimited admits" true (is_admit (check t))
  done;
  Alcotest.(check bool) "never degraded" false (Admission.any_degraded t);
  Alcotest.(check int) "clock ticked once" 1 (Admission.now t)

let test_token_bucket () =
  let t =
    Admission.create ~shards:1
      { base with rate = 1; burst = 2; refill_every = 2 }
  in
  Admission.tick t;
  (* Fresh bucket starts full at [burst]. *)
  Alcotest.(check bool) "burst 1" true (is_admit (check t));
  Alcotest.(check bool) "burst 2" true (is_admit (check t));
  let v = check t in
  Alcotest.(check bool) "third rejected" false (is_admit v);
  Alcotest.(check (option int))
    "reason is rate-limited"
    (Some 1)
    (match reason v with Some Admission.Rate_limited -> Some 1 | _ -> None);
  (* Bucket was brought current at tick 1; next refill lands at tick 3,
     two ticks away. *)
  Alcotest.(check (option int)) "retry-after to next refill" (Some 2)
    (retry_after v);
  (* Another client's bucket is independent. *)
  Alcotest.(check bool) "other client unaffected" true
    (is_admit (check ~client:"c2" t));
  (* Advance to the refill boundary: exactly [rate] new tokens. *)
  Admission.tick t;
  Admission.tick t;
  Alcotest.(check bool) "refilled token" true (is_admit (check t));
  Alcotest.(check bool) "only rate tokens per period" false
    (is_admit (check t));
  (* A long idle caps at [burst], not rate * periods. *)
  for _ = 1 to 20 do Admission.tick t done;
  Alcotest.(check bool) "capped 1" true (is_admit (check t));
  Alcotest.(check bool) "capped 2" true (is_admit (check t));
  Alcotest.(check bool) "capped at burst" false (is_admit (check t))

let test_inflight_budget () =
  let t = Admission.create ~shards:2 { base with max_inflight = 2 } in
  Admission.tick t;
  Alcotest.(check bool) "slot 1" true (is_admit (check t));
  Alcotest.(check bool) "slot 2" true (is_admit (check ~client:"c2" t));
  let v = check ~client:"c3" t in
  Alcotest.(check bool) "over budget rejected" false (is_admit v);
  Alcotest.(check bool) "reason over-capacity" true
    (match reason v with Some Admission.Over_capacity -> true | _ -> false);
  Alcotest.(check (option int)) "retry next tick" (Some 1) (retry_after v);
  (* Other shards have their own budget. *)
  Alcotest.(check bool) "other shard free" true (is_admit (check ~shard:1 t));
  (* Critical messages are exempt from the cap. *)
  Alcotest.(check bool) "critical exempt" true
    (is_admit (check ~client:"c4" ~priority:Admission.Critical t));
  (* Completion releases slots for the next round. *)
  Admission.complete t ~shard:0;
  Admission.complete t ~shard:0;
  Admission.tick t;
  Alcotest.(check bool) "released slot admits" true
    (is_admit (check ~client:"c5" t))

let test_deadline () =
  let t = Admission.create ~shards:1 base in
  Admission.tick t;
  Admission.tick t;
  (* now = 2 *)
  Alcotest.(check bool) "future deadline admits" true
    (is_admit (check ~deadline:3 t));
  Alcotest.(check bool) "deadline at now admits" true
    (is_admit (check ~deadline:2 t));
  let v = check ~deadline:1 t in
  Alcotest.(check bool) "past deadline rejected" false (is_admit v);
  Alcotest.(check bool) "reason deadline-expired" true
    (match reason v with Some Admission.Deadline_expired -> true | _ -> false);
  Alcotest.(check (option int)) "expired work retries with fresh work"
    (Some 0) (retry_after v);
  (* Expiry outranks even Critical priority: the work is dead. *)
  Alcotest.(check bool) "critical expires too" false
    (is_admit (check ~deadline:0 ~priority:Admission.Critical t))

let degrade_config =
  { base with degrade_window = 4; degrade_high = 3; degrade_low = 0;
    max_inflight = 1 }

(* Trip the high watermark: in one window, shed >= degrade_high times
   (by exhausting the single inflight slot). *)
let trip t =
  Admission.tick t;
  Alcotest.(check bool) "fills the slot" true (is_admit (check t));
  for i = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "over-capacity shed %d" i)
      false
      (is_admit (check ~client:(Printf.sprintf "x%d" i) t))
  done;
  Admission.complete t ~shard:0

let test_degraded_hysteresis () =
  let t = Admission.create ~shards:1 degrade_config in
  trip t;
  Alcotest.(check bool) "not degraded until rollover" false
    (Admission.degraded t ~shard:0);
  (* Roll the window: ticks 2..4 close the [0,4) window. *)
  for _ = 1 to 3 do Admission.tick t done;
  Alcotest.(check bool) "degraded after rollover" true
    (Admission.degraded t ~shard:0);
  Alcotest.(check bool) "any_degraded sees it" true (Admission.any_degraded t);
  (* While degraded, Low priority is shed outright with the degraded
     flag in the verdict; Normal and Critical still pass. *)
  let v = check ~priority:Admission.Low t in
  Alcotest.(check bool) "low shed when degraded" false (is_admit v);
  (match v with
  | Admission.Reject { reason = Admission.Degraded_shed; degraded; _ } ->
      Alcotest.(check bool) "verdict carries degraded flag" true degraded
  | _ -> Alcotest.fail "expected a degraded shed");
  Alcotest.(check bool) "normal passes degraded shard" true
    (is_admit (check ~client:"n1" t));
  Admission.complete t ~shard:0;
  Alcotest.(check bool) "critical passes degraded shard" true
    (is_admit (check ~client:"n2" ~priority:Admission.Critical t));
  (* Only genuine pressure holds the mode: an over-capacity rejection
     in the next window (the critical admit above still holds the one
     slot) stays above degrade_low = 0, so that rollover keeps
     degraded.  The degraded sheds themselves never count — otherwise
     the shed clients' retries would latch the mode forever. *)
  Alcotest.(check bool) "pressure while degraded still rejects" false
    (is_admit (check ~client:"p1" t));
  for _ = 1 to 4 do Admission.tick t done;
  Alcotest.(check bool) "fresh pressure keeps state" true
    (Admission.degraded t ~shard:0);
  Admission.complete t ~shard:0;
  (* A window with nothing but degraded sheds counts as quiet: the
     rollover clears the mode. *)
  Alcotest.(check bool) "low still shed while recovering" false
    (is_admit (check ~client:"p2" ~priority:Admission.Low t));
  for _ = 1 to 4 do Admission.tick t done;
  Alcotest.(check bool) "quiet window recovers" false
    (Admission.degraded t ~shard:0)

let test_service_probe_sheds_when_degraded () =
  let t = Admission.create ~shards:1 degrade_config in
  Alcotest.(check bool) "probe admits when healthy" true
    (is_admit (Admission.check_service t));
  trip t;
  for _ = 1 to 3 do Admission.tick t done;
  let v = Admission.check_service t in
  Alcotest.(check bool) "probe shed when degraded" false (is_admit v)

let test_reject_text_grammar () =
  let text =
    Admission.reject_text ~reason:Admission.Degraded_shed ~retry_after:3
      ~degraded:true
  in
  Alcotest.(check string) "rendering" "shed: retry-after=3 degraded" text;
  Alcotest.(check (option int)) "parses back" (Some 3)
    (Admission.retry_after_of_text text);
  Alcotest.(check bool) "recognized" true (Admission.is_rejection_text text);
  Alcotest.(check string) "overload rendering" "overloaded: retry-after=1"
    (Admission.reject_text ~reason:Admission.Over_capacity ~retry_after:1
       ~degraded:false);
  (* Embedded in a full client-addressed reply line. *)
  Alcotest.(check (option int)) "parses inside a reply line" (Some 7)
    (Admission.retry_after_of_text "c9 error rate-limited: retry-after=7");
  (* Total on arbitrary text; ordinary replies are not rejections. *)
  Alcotest.(check (option int)) "plain reply is not a rejection" None
    (Admission.retry_after_of_text "c9 assign B=3 C=4");
  Alcotest.(check (option int)) "negative is malformed" None
    (Admission.retry_after_of_text "retry-after=-2");
  Alcotest.(check (option int)) "garbage is malformed" None
    (Admission.retry_after_of_text "retry-after=zz");
  Alcotest.(check bool) "empty not a rejection" false
    (Admission.is_rejection_text "")

let test_verdict_text () =
  Alcotest.(check (option string)) "admit has no text" None
    (Admission.verdict_text Admission.Admit);
  Alcotest.(check (option string)) "reject renders"
    (Some "deadline-expired: retry-after=0")
    (Admission.verdict_text
       (Admission.Reject
          { reason = Admission.Deadline_expired; retry_after = 0;
            degraded = false }))

let test_telemetry_counters () =
  let tel = Telemetry.create ~record_events:false () in
  let t =
    Admission.create
      ~telemetry:(fun _ -> tel)
      ~shards:1
      { base with max_inflight = 1 }
  in
  Admission.tick t;
  ignore (check ~enqueued_at:0 t);
  ignore (check ~client:"c2" t);
  ignore (check ~client:"c3" ~deadline:0 t);
  Alcotest.(check int) "admitted" 1
    (Telemetry.counter_value tel Admission.c_admitted);
  Alcotest.(check int) "rejected aggregate" 2
    (Telemetry.counter_value tel Admission.c_rejected);
  Alcotest.(check int) "over-capacity split" 1
    (Telemetry.counter_value tel Admission.c_over_capacity);
  Alcotest.(check int) "deadline split" 1
    (Telemetry.counter_value tel Admission.c_deadline_expired);
  (* The admitted message's queue delay (1 - 0) landed in the
     histogram. *)
  let h = List.assoc Admission.h_queue_delay (Telemetry.histograms tel) in
  Alcotest.(check (float 1e-9)) "one delay observed" 1. h.Telemetry.sum

let test_config_validation () =
  let invalid config =
    match Admission.create ~shards:1 config with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative inflight" true
    (invalid { base with max_inflight = -1 });
  Alcotest.(check bool) "rate without burst" true
    (invalid { base with rate = 1 });
  Alcotest.(check bool) "rate without refill" true
    (invalid { base with rate = 1; burst = 1; refill_every = 0 });
  Alcotest.(check bool) "low above high" true
    (invalid { base with degrade_window = 4; degrade_high = 2;
               degrade_low = 3 });
  Alcotest.(check bool) "zero shards" true
    (match Admission.create ~shards:0 base with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "defaults are valid" true
    (match Admission.create ~shards:4 Admission.default_config with
    | _ -> true)

let suite =
  [
    Alcotest.test_case "unlimited admits everything" `Quick
      test_unlimited_admits;
    Alcotest.test_case "token bucket refill math" `Quick test_token_bucket;
    Alcotest.test_case "inflight budget and release" `Quick
      test_inflight_budget;
    Alcotest.test_case "logical deadlines" `Quick test_deadline;
    Alcotest.test_case "degraded hysteresis" `Quick test_degraded_hysteresis;
    Alcotest.test_case "service probe sheds when degraded" `Quick
      test_service_probe_sheds_when_degraded;
    Alcotest.test_case "reject text grammar" `Quick test_reject_text_grammar;
    Alcotest.test_case "verdict text" `Quick test_verdict_text;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
