open Harmony
open Harmony_objective
module Param = Harmony_param.Param
module Space = Harmony_param.Space

let space = Space.create [ Param.int_range ~name:"x" ~lo:0 ~hi:10 ~default:0 () ]
let obj = Objective.create ~space ~direction:Objective.Higher_is_better (fun c -> c.(0))

let sample_db () =
  let db = History.create () in
  let _ =
    History.add db ~label:"shopping" ~characteristics:[| 0.8; 0.2 |]
      ~evaluations:[ ([| 1.0 |], 10.0); ([| 2.0 |], 20.0) ]
      ()
  in
  let _ =
    History.add db ~label:"ordering" ~characteristics:[| 0.4; 0.6 |]
      ~evaluations:[ ([| 3.0 |], 30.0) ]
      ()
  in
  db

let test_add_assigns_ids () =
  let db = sample_db () in
  let ids = List.map (fun e -> e.History.id) (History.entries db) in
  Alcotest.(check (list int)) "sequential ids" [ 0; 1 ] ids;
  Alcotest.(check int) "size" 2 (History.size db)

let test_entries_order () =
  let db = sample_db () in
  let labels = List.map (fun e -> e.History.label) (History.entries db) in
  Alcotest.(check (list string)) "insertion order" [ "shopping"; "ordering" ] labels

let test_add_copies_inputs () =
  let db = History.create () in
  let chars = [| 1.0 |] in
  let config = [| 5.0 |] in
  let _ = History.add db ~characteristics:chars ~evaluations:[ (config, 1.0) ] () in
  chars.(0) <- 99.0;
  config.(0) <- 99.0;
  let e = List.hd (History.entries db) in
  Alcotest.(check (float 1e-12)) "chars copied" 1.0 e.History.characteristics.(0);
  Alcotest.(check (float 1e-12)) "config copied" 5.0
    (fst (List.hd e.History.evaluations)).(0)

let test_find_closest () =
  let db = sample_db () in
  (match History.find_closest db [| 0.75; 0.25 |] with
  | Some e -> Alcotest.(check string) "closest is shopping" "shopping" e.History.label
  | None -> Alcotest.fail "expected a match");
  match History.find_closest db [| 0.3; 0.7 |] with
  | Some e -> Alcotest.(check string) "closest is ordering" "ordering" e.History.label
  | None -> Alcotest.fail "expected a match"

let test_find_closest_empty_and_arity () =
  let db = History.create () in
  Alcotest.(check bool) "empty db" true (History.find_closest db [| 1.0 |] = None);
  let db = sample_db () in
  Alcotest.(check bool) "arity mismatch filtered" true
    (History.find_closest db [| 1.0; 2.0; 3.0 |] = None)

let test_best_evaluations () =
  let db = History.create () in
  let e =
    History.add db ~characteristics:[| 0.0 |]
      ~evaluations:
        [ ([| 1.0 |], 10.0); ([| 2.0 |], 30.0); ([| 3.0 |], 20.0); ([| 2.0 |], 5.0) ]
      ()
  in
  let best = History.best_evaluations obj e ~n:2 in
  Alcotest.(check int) "two entries" 2 (List.length best);
  (match best with
  | (c1, p1) :: (c2, p2) :: _ ->
      (* Distinct configurations, best first; config 2.0's best
         measurement (30) survives, not its worse repeat (5). *)
      Alcotest.(check (float 1e-12)) "top perf" 30.0 p1;
      Alcotest.(check (float 1e-12)) "top config" 2.0 c1.(0);
      Alcotest.(check (float 1e-12)) "second perf" 20.0 p2;
      Alcotest.(check (float 1e-12)) "second config" 3.0 c2.(0)
  | _ -> Alcotest.fail "bad shape");
  Alcotest.(check int) "n larger than data" 3
    (List.length (History.best_evaluations obj e ~n:10))

let test_merged_evaluations () =
  let db = sample_db () in
  Alcotest.(check int) "all evals" 3 (List.length (History.merged_evaluations db))

let test_save_load_roundtrip () =
  let db = sample_db () in
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      History.save db path;
      let loaded = History.load path in
      Alcotest.(check int) "size" (History.size db) (History.size loaded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "label" a.History.label b.History.label;
          Alcotest.(check (array (float 1e-12)))
            "characteristics" a.History.characteristics b.History.characteristics;
          List.iter2
            (fun (c1, p1) (c2, p2) ->
              Alcotest.(check (array (float 1e-12))) "config" c1 c2;
              Alcotest.(check (float 1e-12)) "perf" p1 p2)
            a.History.evaluations b.History.evaluations)
        (History.entries db) (History.entries loaded))

let test_save_load_label_with_spaces () =
  let db = History.create () in
  let _ =
    History.add db ~label:"shopping mix v2" ~characteristics:[| 1.0 |]
      ~evaluations:[ ([| 1.0 |], 1.0) ] ()
  in
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      History.save db path;
      let loaded = History.load path in
      Alcotest.(check string) "spaces survive" "shopping mix v2"
        (List.hd (History.entries loaded)).History.label)

let test_load_malformed () =
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "entry 0 ok\nchars 1.0\nbogus line here\nend\n";
      close_out oc;
      match History.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure on malformed input")

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_load_salvage_truncated () =
  let full =
    "entry 0 shopping\nchars 1\neval 10 1\nend\n\
     entry 1 ordering\nchars 2\neval 20 2\nend\n"
  in
  (* Cut mid-way through the second entry's eval line, leaving the
     malformed fragment "ev": the first entry survives, the
     half-written one is dropped and counted. *)
  let rec find i =
    if String.sub full i 7 = "eval 20" then i else find (i + 1)
  in
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path (String.sub full 0 (find 0 + 2));
      let salvaged, dropped = History.load_salvage path in
      Alcotest.(check int) "first entry survives" 1 (History.size salvaged);
      Alcotest.(check string) "and is intact" "shopping"
        (List.hd (History.entries salvaged)).History.label;
      Alcotest.(check int) "drop reported" 1 dropped;
      (* The strict loader still refuses. *)
      match History.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "strict load accepted a truncated file")

let test_load_salvage_garbage () =
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "\x00\xff total garbage\nnot a db\n";
      let salvaged, dropped = History.load_salvage path in
      Alcotest.(check int) "nothing salvaged" 0 (History.size salvaged);
      Alcotest.(check int) "both lines dropped" 2 dropped)

let test_load_salvage_mid_entry_poisons_entry () =
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path
        "entry 0 ok\nchars 1\neval 10 1\nend\nentry 1 bad\nchars 2\nbogus\nend\n";
      let salvaged, dropped = History.load_salvage path in
      Alcotest.(check int) "clean entry kept" 1 (History.size salvaged);
      Alcotest.(check string) "the right one" "ok"
        (List.hd (History.entries salvaged)).History.label;
      (* The in-progress entry goes down with its malformed line. *)
      Alcotest.(check int) "poisoned tail counted" 2 dropped)

let test_load_salvage_missing_file () =
  let salvaged, dropped = History.load_salvage "/nonexistent/harmony/history" in
  Alcotest.(check int) "empty" 0 (History.size salvaged);
  Alcotest.(check int) "nothing dropped" 0 dropped

let test_load_or_create_salvages_with_warning () =
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "entry 0 ok\nchars 1\neval 10 1\nend\ngarbage tail\n";
      let warned = ref (-1) in
      let db = History.load_or_create ~warn:(fun n -> warned := n) path in
      Alcotest.(check int) "salvaged prefix" 1 (History.size db);
      Alcotest.(check int) "warning delivered" 1 !warned;
      (* A clean file stays silent. *)
      History.save db path;
      let silent = ref true in
      let _ = History.load_or_create ~warn:(fun _ -> silent := false) path in
      Alcotest.(check bool) "no warning on clean input" true !silent)

let test_save_is_atomic_leaves_no_tmp () =
  let db = sample_db () in
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      History.save db path;
      Alcotest.(check bool) "no tmp residue" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check int) "readable" 2 (History.size (History.load path)))

let test_compress_noop_when_small () =
  let db = sample_db () in
  let out = History.compress (Harmony_numerics.Rng.create 1) db ~max_entries:5 in
  Alcotest.(check int) "unchanged size" 2 (History.size out);
  Alcotest.(check int) "input untouched" 2 (History.size db)

let test_compress_merges_clusters () =
  let db = History.create () in
  (* Two tight clusters of characteristics; 3 entries each. *)
  let add_near label base jitter =
    ignore
      (History.add db ~label
         ~characteristics:[| base +. jitter; 1.0 -. base |]
         ~evaluations:[ ([| base |], base *. 10.0) ]
         ())
  in
  List.iter (fun j -> add_near "low" 0.1 j) [ 0.0; 0.01; 0.02 ];
  List.iter (fun j -> add_near "high" 0.9 j) [ 0.0; 0.01; 0.02 ];
  let out = History.compress (Harmony_numerics.Rng.create 2) db ~max_entries:2 in
  Alcotest.(check int) "two representatives" 2 (History.size out);
  (* Each representative absorbed its cluster's evaluation logs. *)
  List.iter
    (fun e ->
      Alcotest.(check int)
        ("merged evals for " ^ e.History.label)
        3
        (List.length e.History.evaluations))
    (History.entries out);
  (* Lookups still resolve to the right cluster. *)
  (match History.find_closest out [| 0.12; 0.9 |] with
  | Some e -> Alcotest.(check string) "low cluster" "low" e.History.label
  | None -> Alcotest.fail "no match");
  match History.find_closest out [| 0.88; 0.1 |] with
  | Some e -> Alcotest.(check string) "high cluster" "high" e.History.label
  | None -> Alcotest.fail "no match"

let test_compress_invalid () =
  let db = sample_db () in
  Alcotest.check_raises "max_entries"
    (Invalid_argument "History.compress: max_entries < 1") (fun () ->
      ignore (History.compress (Harmony_numerics.Rng.create 1) db ~max_entries:0));
  let mixed = History.create () in
  ignore (History.add mixed ~characteristics:[| 1.0 |] ~evaluations:[] ());
  ignore (History.add mixed ~characteristics:[| 1.0; 2.0 |] ~evaluations:[] ());
  ignore (History.add mixed ~characteristics:[| 3.0 |] ~evaluations:[] ());
  Alcotest.check_raises "mixed arity"
    (Invalid_argument "History.compress: mixed characteristics arity") (fun () ->
      ignore (History.compress (Harmony_numerics.Rng.create 1) mixed ~max_entries:2))

let test_load_or_create () =
  let missing = Filename.temp_file "harmony_history" ".db" in
  Sys.remove missing;
  let fresh = History.load_or_create missing in
  Alcotest.(check int) "fresh when missing" 0 (History.size fresh);
  let db = sample_db () in
  let path = Filename.temp_file "harmony_history" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      History.save db path;
      Alcotest.(check int) "loads when present" 2
        (History.size (History.load_or_create path)))

let test_add_outcome () =
  let db = History.create () in
  let outcome = Tuner.tune ~options:{ Tuner.default_options with Tuner.max_evaluations = 30 } obj in
  let e = History.add_outcome db ~label:"run" ~characteristics:[| 0.5 |] outcome in
  Alcotest.(check int) "evaluations recorded" (List.length outcome.Tuner.trace)
    (List.length e.History.evaluations)

let suite =
  [
    Alcotest.test_case "add assigns ids" `Quick test_add_assigns_ids;
    Alcotest.test_case "entries order" `Quick test_entries_order;
    Alcotest.test_case "add copies inputs" `Quick test_add_copies_inputs;
    Alcotest.test_case "find closest" `Quick test_find_closest;
    Alcotest.test_case "find closest empty/arity" `Quick test_find_closest_empty_and_arity;
    Alcotest.test_case "best evaluations" `Quick test_best_evaluations;
    Alcotest.test_case "merged evaluations" `Quick test_merged_evaluations;
    Alcotest.test_case "save load roundtrip" `Quick test_save_load_roundtrip;
    Alcotest.test_case "label with spaces" `Quick test_save_load_label_with_spaces;
    Alcotest.test_case "load malformed" `Quick test_load_malformed;
    Alcotest.test_case "salvage truncated" `Quick test_load_salvage_truncated;
    Alcotest.test_case "salvage garbage" `Quick test_load_salvage_garbage;
    Alcotest.test_case "salvage poisoned entry" `Quick
      test_load_salvage_mid_entry_poisons_entry;
    Alcotest.test_case "salvage missing file" `Quick
      test_load_salvage_missing_file;
    Alcotest.test_case "load_or_create warns" `Quick
      test_load_or_create_salvages_with_warning;
    Alcotest.test_case "save atomic" `Quick test_save_is_atomic_leaves_no_tmp;
    Alcotest.test_case "compress noop" `Quick test_compress_noop_when_small;
    Alcotest.test_case "compress merges clusters" `Quick test_compress_merges_clusters;
    Alcotest.test_case "compress invalid" `Quick test_compress_invalid;
    Alcotest.test_case "load_or_create" `Quick test_load_or_create;
    Alcotest.test_case "add outcome" `Quick test_add_outcome;
  ]
