(* Integration tests: every experiment runs, emits a well-formed table,
   and reproduces the paper's qualitative claims. *)
open Harmony_experiments

let test_report_make_validates () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.make: ragged row in x")
    (fun () ->
      ignore (Report.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ] [ [ "1" ] ]))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_report_rendering () =
  let t =
    Report.make ~id:"demo" ~title:"Demo" ~columns:[ "name"; "value" ]
      ~notes:[ "a note" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  let s = Report.to_string t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [ "demo"; "Demo"; "alpha"; "22"; "note: a note" ]

let test_registry_complete () =
  Alcotest.(check (list string))
    "all paper artifacts present"
    [ "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "table1"; "table2";
      "fig10"; "restriction"; "headline" ]
    Registry.ids

let test_registry_find () =
  Alcotest.(check bool) "known id" true (Registry.find "fig5" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "fig99" = None)

let check_table (t : Report.table) =
  Alcotest.(check bool) (t.Report.id ^ " has rows") true (t.Report.rows <> []);
  List.iter
    (fun row ->
      Alcotest.(check int)
        (t.Report.id ^ " row width")
        (List.length t.Report.columns) (List.length row))
    t.Report.rows;
  Alcotest.(check bool)
    (t.Report.id ^ " renders")
    true
    (String.length (Report.to_string t) > 0)

let test_fig4_distributions () =
  let r = Fig4.run ~samples:2000 () in
  let sum a = Array.fold_left ( +. ) 0.0 a in
  Alcotest.(check (float 1e-6)) "web fractions sum to 1" 1.0 (sum r.Fig4.webservice_fraction);
  Alcotest.(check (float 1e-6)) "synthetic fractions sum to 1" 1.0 (sum r.Fig4.synthetic_fraction);
  Alcotest.(check int) "ten buckets" 10 (Array.length r.Fig4.buckets)

let test_fig5_identifies_irrelevant () =
  let r = Fig5.run () in
  (* At 0% perturbation, H and M score exactly zero and everything
     else is positive. *)
  let noiseless = r.Fig5.sensitivities.(0) in
  Array.iteri
    (fun p name ->
      if List.mem name r.Fig5.irrelevant then
        Alcotest.(check (float 1e-9)) (name ^ " zero") 0.0 noiseless.(p)
      else
        Alcotest.(check bool) (name ^ " positive") true (noiseless.(p) > 0.0))
    r.Fig5.names

let test_fig6_tradeoff () =
  let r = Fig6.run ~ns:[ 1; 5; 15 ] ~perturbations:[ 0.0 ] () in
  let cell n = List.find (fun c -> c.Fig6.n = n) r.Fig6.cells in
  (* Fewer parameters tune faster... *)
  Alcotest.(check bool) "n=1 faster than n=15" true
    ((cell 1).Fig6.tuning_time < (cell 15).Fig6.tuning_time);
  (* ...at modest performance cost (the paper quotes <8%). *)
  let loss = 1.0 -. ((cell 5).Fig6.performance /. (cell 15).Fig6.performance) in
  Alcotest.(check bool) "n=5 within 15% of full tuning" true (loss < 0.15)

let test_fig7_distance_trend () =
  let r = Fig7.run ~distances:[ 0.0; 0.5 ] () in
  match r.Fig7.points with
  | [ near; far ] ->
      Alcotest.(check bool) "near experience converges faster" true
        (near.Fig7.tuning_time <= far.Fig7.tuning_time);
      Alcotest.(check bool) "both beat cold start" true
        (far.Fig7.tuning_time <= r.Fig7.cold_time)
  | _ -> Alcotest.fail "expected two points"

let test_fig8_workload_contrast () =
  let r = Fig8.run () in
  let idx name =
    let rec find i = if r.Fig8.names.(i) = name then i else find (i + 1) in
    find 0
  in
  (* The paper's two headline contrasts. *)
  Alcotest.(check bool) "MySQL net buffer matters more under ordering" true
    (r.Fig8.ordering.(idx "MYSQLNetBuffer") > r.Fig8.shopping.(idx "MYSQLNetBuffer"));
  Alcotest.(check bool) "proxy cache matters more under shopping" true
    (r.Fig8.shopping.(idx "PROXYCacheMem") > r.Fig8.ordering.(idx "PROXYCacheMem"));
  (* Accept counts are relatively unimportant for both. *)
  let max_s = Array.fold_left Float.max 0.0 r.Fig8.shopping in
  Alcotest.(check bool) "HTTP accept count minor" true
    (r.Fig8.shopping.(idx "HTTPAcceptCount") < 0.05 *. max_s)

let test_fig9_savings () =
  let r = Fig9.run ~ns:[ 3; 10 ] () in
  let cell workload n =
    List.find (fun c -> c.Fig9.workload = workload && c.Fig9.n = n) r.Fig9.cells
  in
  List.iter
    (fun w ->
      let small = cell w 3 and full = cell w 10 in
      Alcotest.(check bool) (w ^ ": top-3 tunes faster") true
        (small.Fig9.tuning_time < full.Fig9.tuning_time);
      Alcotest.(check bool) (w ^ ": within 10% WIPS") true
        (small.Fig9.wips > 0.9 *. full.Fig9.wips))
    [ "shopping"; "ordering" ]

let test_table1_improvement () =
  let r = Table1.run () in
  List.iter
    (fun (workload, reduction) ->
      Alcotest.(check bool)
        (workload ^ ": improved init converges faster")
        true (reduction > 0.0))
    r.Table1.convergence_reduction;
  (* Tuned performance stays comparable (within 15%). *)
  List.iter
    (fun w ->
      let find v = List.find (fun row -> row.Table1.workload = w && row.Table1.variant = v) r.Table1.rows in
      let o = find "original" and i = find "improved" in
      Alcotest.(check bool) (w ^ ": similar WIPS") true
        (i.Table1.performance > 0.85 *. o.Table1.performance))
    [ "shopping"; "ordering" ]

let test_table2_history_helps () =
  let r = Table2.run () in
  List.iter
    (fun w ->
      let find h =
        List.find (fun row -> row.Table2.workload = w && row.Table2.with_history = h) r.Table2.rows
      in
      let cold = find false and warm = find true in
      Alcotest.(check bool) (w ^ ": fewer bad iterations with history") true
        (warm.Table2.bad_iterations < cold.Table2.bad_iterations);
      Alcotest.(check bool) (w ^ ": smoother with history") true
        (warm.Table2.initial_stddev <= cold.Table2.initial_stddev);
      Alcotest.(check bool) (w ^ ": no slower convergence") true
        (warm.Table2.convergence_time <= cold.Table2.convergence_time))
    [ "shopping"; "ordering" ]

let test_fig10_reductions () =
  let r = Fig10.run () in
  (* A = 10 processes: 36 of 100 configurations survive. *)
  (match r.Fig10.scenarios with
  | connectors :: partition :: _ ->
      Alcotest.(check int) "connectors restricted" 36 connectors.Fig10.restricted;
      Alcotest.(check int) "connectors unrestricted" 100 connectors.Fig10.unrestricted;
      (* 20 rows in 4 blocks: C(19,3) = 969 compositions. *)
      Alcotest.(check int) "partition restricted" 969 partition.Fig10.restricted
  | _ -> Alcotest.fail "expected two scenarios");
  List.iter
    (fun s -> Alcotest.(check bool) "reduction positive" true (s.Fig10.reduction > 0.0))
    r.Fig10.scenarios

let test_restriction_speedup () =
  let r = Restriction.run () in
  match r.Restriction.rows with
  | [ restricted; unrestricted ] ->
      Alcotest.(check bool) "restricted space is smaller" true
        (restricted.Restriction.feasible_space < unrestricted.Restriction.feasible_space);
      Alcotest.(check bool) "restricted wastes nothing" true
        (restricted.Restriction.wasted_infeasible = 0);
      Alcotest.(check bool) "unrestricted wastes evaluations" true
        (unrestricted.Restriction.wasted_infeasible > 0);
      (* Both find near-optimal allocations; restricted within 10% of
         the exhaustive optimum. *)
      Alcotest.(check bool) "restricted near optimum" true
        (restricted.Restriction.best_time <= 1.10 *. r.Restriction.optimum)
  | _ -> Alcotest.fail "expected two variants"

let test_headline_band () =
  let r = Headline.run () in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Headline.workload ^ ": unstable stage reduced")
        true (row.Headline.reduction > 0.0);
      Alcotest.(check bool)
        (row.Headline.workload ^ ": fewer bad iterations")
        true
        (row.Headline.improved_bad < row.Headline.original_bad))
    r.Headline.rows

let test_all_tables_render () =
  List.iter
    (fun (_, _, f) -> check_table (f None))
    Registry.all

let suite =
  [
    Alcotest.test_case "report validates" `Quick test_report_make_validates;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "fig4 distributions" `Quick test_fig4_distributions;
    Alcotest.test_case "fig5 identifies irrelevant" `Quick test_fig5_identifies_irrelevant;
    Alcotest.test_case "fig6 tradeoff" `Quick test_fig6_tradeoff;
    Alcotest.test_case "fig7 distance trend" `Quick test_fig7_distance_trend;
    Alcotest.test_case "fig8 workload contrast" `Quick test_fig8_workload_contrast;
    Alcotest.test_case "fig9 savings" `Slow test_fig9_savings;
    Alcotest.test_case "table1 improvement" `Quick test_table1_improvement;
    Alcotest.test_case "table2 history helps" `Quick test_table2_history_helps;
    Alcotest.test_case "fig10 reductions" `Quick test_fig10_reductions;
    Alcotest.test_case "restriction speedup" `Quick test_restriction_speedup;
    Alcotest.test_case "headline band" `Quick test_headline_band;
    Alcotest.test_case "all tables render" `Slow test_all_tables_render;
  ]
