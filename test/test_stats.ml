module Stats = Harmony_numerics.Stats

let feq = Alcotest.(check (float 1e-9))

let test_mean () = feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])
let test_mean_single () = feq "single" 7.0 (Stats.mean [| 7.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  feq "variance" (32.0 /. 7.0) (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_variance_short () =
  feq "one element" 0.0 (Stats.variance [| 3.0 |]);
  feq "empty" 0.0 (Stats.variance [||])

let test_stddev () =
  feq "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_min_max () =
  feq "min" (-2.0) (Stats.min [| 3.0; -2.0; 5.0 |]);
  feq "max" 5.0 (Stats.max [| 3.0; -2.0; 5.0 |])

let test_median_odd () = feq "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])
let test_median_even () = feq "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile_endpoints () =
  let a = [| 10.0; 20.0; 30.0 |] in
  feq "p0" 10.0 (Stats.percentile a 0.0);
  feq "p100" 30.0 (Stats.percentile a 100.0);
  feq "p50" 20.0 (Stats.percentile a 50.0)

let test_percentile_interpolates () =
  feq "p25" 1.5 (Stats.percentile [| 1.0; 2.0; 3.0 |] 25.0)

let test_percentile_invalid () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 101.0))

let test_percentile_sorted () =
  (* On presorted input the no-copy variant and the copying one must
     agree bitwise. *)
  let a = [| 1.0; 2.0; 3.0; 10.0; 30.0 |] in
  List.iter
    (fun p ->
      Alcotest.(check int64)
        (Printf.sprintf "p%g" p)
        (Int64.bits_of_float (Stats.percentile a p))
        (Int64.bits_of_float (Stats.percentile_sorted a p)))
    [ 0.0; 25.0; 50.0; 75.0; 95.0; 100.0 ]

let test_sort_floatarray () =
  let values = [| 3.0; -1.0; 7.5; 0.0; 7.5; 2.25; -8.0 |] in
  let fa = Float.Array.of_list (Array.to_list values) in
  Stats.sort_floatarray fa;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Array.iteri
    (fun i v -> feq (Printf.sprintf "slot %d" i) v (Float.Array.get fa i))
    sorted;
  (* A [len] prefix sorts in place and leaves the tail alone. *)
  let fa = Float.Array.of_list [ 5.0; 1.0; 3.0; 99.0 ] in
  Stats.sort_floatarray ~len:3 fa;
  feq "prefix 0" 1.0 (Float.Array.get fa 0);
  feq "prefix 1" 3.0 (Float.Array.get fa 1);
  feq "prefix 2" 5.0 (Float.Array.get fa 2);
  feq "tail untouched" 99.0 (Float.Array.get fa 3)

let test_percentile_sorted_floatarray () =
  let a = [| 1.0; 2.0; 3.0; 10.0; 30.0 |] in
  let fa = Float.Array.of_list (Array.to_list a) in
  List.iter
    (fun p ->
      Alcotest.(check int64)
        (Printf.sprintf "p%g" p)
        (Int64.bits_of_float (Stats.percentile a p))
        (Int64.bits_of_float (Stats.percentile_sorted_floatarray fa p)))
    [ 0.0; 25.0; 50.0; 95.0; 100.0 ];
  (* The prefix variant ignores values beyond [len]. *)
  let fa = Float.Array.of_list [ 1.0; 2.0; 3.0; 1000.0 ] in
  feq "prefix p100" 3.0 (Stats.percentile_sorted_floatarray ~len:3 fa 100.0)

let prop_sort_floatarray_matches_array_sort =
  QCheck2.Test.make ~name:"sort_floatarray matches Array.sort" ~count:300
    QCheck2.Gen.(list_size (int_range 0 60) (float_range (-1e6) 1e6))
    (fun values ->
      let reference = Array.of_list values in
      Array.sort compare reference;
      let fa = Float.Array.of_list values in
      Stats.sort_floatarray fa;
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if not (Float.equal v (Float.Array.get fa i)) then ok := false)
        reference;
      !ok)

let test_normalize () =
  Alcotest.(check (array (float 1e-9)))
    "normalize" [| 0.0; 0.5; 1.0 |]
    (Stats.normalize [| 2.0; 4.0; 6.0 |])

let test_normalize_constant () =
  Alcotest.(check (array (float 1e-9)))
    "constant" [| 0.0; 0.0 |]
    (Stats.normalize [| 3.0; 3.0 |])

let test_rescale () =
  Alcotest.(check (array (float 1e-9)))
    "rescale" [| 1.0; 25.5; 50.0 |]
    (Stats.rescale ~lo:1.0 ~hi:50.0 [| 0.0; 0.5; 1.0 |])

let test_histogram_counts () =
  let h = Stats.histogram ~buckets:5 ~lo:0.0 ~hi:10.0 [| 0.5; 1.5; 2.5; 9.9; 10.0 |] in
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 0; 2 |] h

let test_histogram_clamps () =
  let h = Stats.histogram ~buckets:2 ~lo:0.0 ~hi:1.0 [| -5.0; 5.0 |] in
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] h

let test_histogram_fractions () =
  let h = Stats.histogram_fractions ~buckets:2 ~lo:0.0 ~hi:1.0 [| 0.1; 0.2; 0.9; 0.8 |] in
  Alcotest.(check (array (float 1e-9))) "fractions" [| 0.5; 0.5 |] h

let test_histogram_invalid () =
  Alcotest.check_raises "no buckets" (Invalid_argument "Stats.histogram: buckets <= 0")
    (fun () -> ignore (Stats.histogram ~buckets:0 ~lo:0.0 ~hi:1.0 [||]))

let test_pearson_perfect () =
  feq "positive" 1.0 (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 2.0; 4.0; 6.0 |]);
  feq "negative" (-1.0) (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |])

let test_pearson_constant () =
  feq "constant side" 0.0 (Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_distances () =
  feq "euclidean" 5.0 (Stats.euclidean_distance [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  feq "chebyshev" 4.0 (Stats.chebyshev_distance [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_distance_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Stats.euclidean_distance: length mismatch") (fun () ->
      ignore (Stats.euclidean_distance [| 1.0 |] [| 1.0; 2.0 |]))

(* Property tests *)

let float_array = QCheck2.Gen.(array_size (int_range 1 40) (float_range (-1e6) 1e6))

let prop_mean_bounded =
  QCheck2.Test.make ~name:"mean between min and max" ~count:200 float_array
    (fun a ->
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-6 && m <= Stats.max a +. 1e-6)

let prop_normalize_range =
  QCheck2.Test.make ~name:"normalize lands in [0,1]" ~count:200 float_array
    (fun a ->
      Array.for_all (fun v -> v >= -1e-9 && v <= 1.0 +. 1e-9) (Stats.normalize a))

let prop_histogram_total =
  QCheck2.Test.make ~name:"histogram preserves count" ~count:200 float_array
    (fun a ->
      let h = Stats.histogram ~buckets:7 ~lo:(-1e6) ~hi:1e6 a in
      Array.fold_left ( + ) 0 h = Array.length a)

let prop_variance_nonneg =
  QCheck2.Test.make ~name:"variance nonnegative" ~count:200 float_array
    (fun a -> Stats.variance a >= 0.0)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean single" `Quick test_mean_single;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "variance short" `Quick test_variance_short;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "percentile endpoints" `Quick test_percentile_endpoints;
    Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
    Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid;
    Alcotest.test_case "percentile sorted" `Quick test_percentile_sorted;
    Alcotest.test_case "sort floatarray" `Quick test_sort_floatarray;
    Alcotest.test_case "percentile sorted floatarray" `Quick
      test_percentile_sorted_floatarray;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "normalize constant" `Quick test_normalize_constant;
    Alcotest.test_case "rescale" `Quick test_rescale;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
    Alcotest.test_case "histogram fractions" `Quick test_histogram_fractions;
    Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
    Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
    Alcotest.test_case "pearson constant" `Quick test_pearson_constant;
    Alcotest.test_case "distances" `Quick test_distances;
    Alcotest.test_case "distance mismatch" `Quick test_distance_mismatch;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_mean_bounded; prop_normalize_range; prop_histogram_total;
        prop_variance_nonneg; prop_sort_floatarray_matches_array_sort;
      ]
