(* harmony_sem: per-rule bad/good fixture pairs for S1–S4 on
   in-process typechecked sources, waiver + baseline behavior, SARIF
   shape, and a QCheck property pitting the S2 cycle detector against
   a reference Kahn topological sort on random lock graphs.

   Fixtures go through Sem_typecheck (the compiler typechecks the
   string, warnings disabled), so the rules see exactly the typedtree
   shapes the cmt path produces. *)

module Tjson = Harmony_telemetry.Tjson

let unit_of ?(modname = "Fixture") ~path src =
  match Sem_typecheck.unit_of_source ~modname ~path src with
  | Ok u -> u
  | Error msg ->
      Alcotest.fail (Printf.sprintf "fixture %s does not typecheck: %s" path msg)

let analyze ?(modname = "Fixture") ?rules ?allowlist ~path src =
  let u = unit_of ~modname ~path src in
  Sem_driver.analyze ?rules ?allowlist
    ~source_of:(fun p -> if p = path then Some src else None)
    [ u ]

let kept ?modname ?rules ?allowlist ~path src =
  (analyze ?modname ?rules ?allowlist ~path src).Sem_driver.kept

let rules_of diags = List.map (fun d -> d.Lint_diag.rule) diags

let check_rules msg expected ?modname ?rules ~path src =
  Alcotest.(check (list string))
    msg expected
    (rules_of (kept ?modname ?rules ~path src))

(* A pool lookalike: the rules match submission sites by path tail
   (Pool.map_array, Pool.run), so a local module with the same shape
   exercises S1 without building a real domain pool. *)
let pool_stub =
  {|module Pool = struct
  let map_array _pool f a = Array.map f a
  let run _pool f = f ()
end
|}

(* ------------------------------------------------------------------ *)
(* S1 — race detector *)

let s1_flags_captured_ref () =
  check_rules "ref mutated in task" [ "S1" ] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let hits = ref 0 in
  let _ = Pool.map_array pool (fun x -> incr hits; x + 1) xs in
  !hits|})

let s1_flags_captured_hashtbl () =
  check_rules "Hashtbl write in task" [ "S1" ] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let seen = Hashtbl.create 8 in
  Pool.map_array pool (fun x -> Hashtbl.replace seen x true; x) xs|})

let s1_flags_mutable_field () =
  (* Both the unguarded read [a.total] and the write are races. *)
  check_rules "mutable-field write in task" [ "S1"; "S1" ] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|type acc = { mutable total : int }
let f pool xs =
  let a = { total = 0 } in
  let _ = Pool.map_array pool (fun x -> a.total <- a.total + x; x) xs in
  a.total|})

let s1_allows_mutex_protect () =
  check_rules "Mutex.protect guards the access" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let hits = ref 0 in
  let m = Mutex.create () in
  let _ =
    Pool.map_array pool
      (fun x -> Mutex.protect m (fun () -> incr hits); x + 1)
      xs
  in
  !hits|})

let s1_allows_lock_unlock_span () =
  check_rules "imperative lock/unlock guards too" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let hits = ref 0 in
  let m = Mutex.create () in
  let _ =
    Pool.map_array pool
      (fun x -> Mutex.lock m; incr hits; Mutex.unlock m; x)
      xs
  in
  !hits|})

let s1_allows_disjoint_slots () =
  check_rules "per-task array slot is sanctioned" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool n =
  let out = Array.make n 0 in
  let ixs = Array.init n (fun i -> i) in
  let _ = Pool.map_array pool (fun i -> out.(i) <- i * i; i) ixs in
  out|})

let s1_flags_constant_slot () =
  check_rules "fixed array slot is shared" [ "S1" ] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let out = Array.make 1 0 in
  let _ = Pool.map_array pool (fun x -> out.(0) <- x; x) xs in
  out.(0)|})

let s1_allows_atomic_and_dls () =
  check_rules "Atomic and Domain.DLS are sanctioned" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let key = Domain.DLS.new_key (fun () -> 0)
let f pool xs =
  let c = Atomic.make 0 in
  let _ =
    Pool.map_array pool
      (fun x ->
        Atomic.incr c;
        Domain.DLS.set key (Domain.DLS.get key + x);
        x)
      xs
  in
  Atomic.get c|})

let s1_allows_state_passed_as_parameter () =
  (* Per-shard disjointness is the caller's contract: state arriving
     as a task parameter is not capture. *)
  check_rules "parameter state is the shard pattern" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool (shards : (int, int) Hashtbl.t array) =
  Pool.map_array pool (fun h -> Hashtbl.replace h 0 0; Hashtbl.length h) shards|})

let s1_follows_named_task_and_queue_push () =
  (* The pool's own shape: a named, partially applied task thunk
     pushed onto a queue. *)
  check_rules "unguarded named thunk" [ "S1" ] ~path:"lib/x/a.ml"
    {|let schedule q n =
  let pending = ref n in
  let task _i () = decr pending in
  for i = 0 to n - 1 do
    Queue.push (task i) q
  done;
  !pending|};
  check_rules "guarded named thunk" [] ~path:"lib/x/a.ml"
    {|let schedule q n =
  let m = Mutex.create () in
  let pending = ref n in
  let task _i () = Mutex.protect m (fun () -> decr pending) in
  for i = 0 to n - 1 do
    Queue.push (task i) q
  done;
  Mutex.protect m (fun () -> !pending)|}

let s1_follows_helper_calls () =
  (* A helper defined outside the task launders the shared ref... *)
  check_rules "shared state behind a helper call" [ "S1" ] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  let count = ref 0 in
  let bump () = incr count in
  let _ = Pool.map_array pool (fun x -> bump (); x) xs in
  !count|});
  (* ...but a helper capturing per-call state inside the task is
     task-local (the Measure.measure_one shape). *)
  check_rules "helper over task-local state is fine" [] ~path:"lib/x/a.ml"
    (pool_stub
   ^ {|let f pool xs =
  Pool.map_array pool
    (fun x ->
      let count = ref 0 in
      let bump () = incr count in
      bump ();
      bump ();
      x + !count)
    xs|})

(* ------------------------------------------------------------------ *)
(* S2 — lock order *)

let s2_flags_direct_cycle () =
  let ds =
    kept ~path:"lib/x/a.ml"
      {|let a = Mutex.create ()
let b = Mutex.create ()
let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))
let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> ()))|}
  in
  Alcotest.(check (list string)) "one cycle diag" [ "S2" ] (rules_of ds)

let s2_allows_consistent_order () =
  check_rules "same order everywhere" [] ~path:"lib/x/a.ml"
    {|let a = Mutex.create ()
let b = Mutex.create ()
let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))
let g () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> ()))|}

let s2_flags_self_deadlock () =
  let ds =
    kept ~path:"lib/x/a.ml"
      {|let a = Mutex.create ()
let f () = Mutex.protect a (fun () -> Mutex.protect a (fun () -> ()))|}
  in
  (* The self-edge also closes a length-1 cycle, so both diags fire. *)
  Alcotest.(check bool) "only S2 diags" true
    (ds <> [] && List.for_all (fun d -> d.Lint_diag.rule = "S2") ds);
  Alcotest.(check bool) "self-deadlock named" true
    (List.exists
       (fun d ->
         String.starts_with ~prefix:"re-acquisition" d.Lint_diag.message)
       ds)

let s2_cycle_through_call_summaries () =
  (* No lexically nested opposite-order protects anywhere: the cycle
     only exists through the per-function may-acquire summaries. *)
  let ds =
    kept ~path:"lib/x/a.ml"
      {|let m1 = Mutex.create ()
let m2 = Mutex.create ()
let inner1 () = Mutex.protect m1 (fun () -> ())
let inner2 () = Mutex.protect m2 (fun () -> ())
let f () = Mutex.protect m1 (fun () -> inner2 ())
let g () = Mutex.protect m2 (fun () -> inner1 ())|}
  in
  Alcotest.(check (list string)) "summary-driven cycle" [ "S2" ] (rules_of ds)

let s2_telemetry_lock_must_be_leaf () =
  (* Acquiring anything while holding the telemetry state lock
     violates the documented caller-lock -> telemetry-lock order, even
     without a full cycle. *)
  let ds =
    kept ~modname:"Telemetry" ~path:"lib/telemetry/x.ml"
      {|type state = { lock : Mutex.t; mutable n : int }
let other = Mutex.create ()
let bad s =
  Mutex.protect s.lock (fun () ->
      Mutex.protect other (fun () -> s.n <- s.n + 1))|}
  in
  Alcotest.(check (list string)) "leaf violation" [ "S2" ] (rules_of ds);
  check_rules "caller lock then telemetry lock is the allowed direction" []
    ~modname:"Measure" ~path:"lib/objective/x.ml"
    {|type state = { lock : Mutex.t; mutable n : int }
let tick s = Mutex.protect s.lock (fun () -> s.n <- s.n + 1)
let caller = Mutex.create ()
let f s = Mutex.protect caller (fun () -> tick s)|}

let s2_flight_lock_must_be_leaf () =
  (* The flight recorder's ring lock is a forced leaf exactly like the
     telemetry lock: handles record into the ring while already
     holding their own state, so anything acquired under the ring lock
     would invert that order. *)
  let ds =
    kept ~modname:"Flight" ~path:"lib/telemetry/x.ml"
      {|type ring = { lock : Mutex.t; mutable head : int }
let other = Mutex.create ()
let bad r =
  Mutex.protect r.lock (fun () ->
      Mutex.protect other (fun () -> r.head <- r.head + 1))|}
  in
  Alcotest.(check (list string)) "leaf violation" [ "S2" ] (rules_of ds);
  check_rules "caller lock then a ring lock is the allowed direction" []
    ~modname:"Server" ~path:"lib/core/x.ml"
    {|type ring = { lock : Mutex.t; mutable head : int }
let record r = Mutex.protect r.lock (fun () -> r.head <- r.head + 1)
let state = Mutex.create ()
let f r = Mutex.protect state (fun () -> record r)|}

(* Reference cycle detector: Kahn's algorithm — a digraph has a cycle
   iff topological sort cannot remove every node. *)
let ref_has_cycle pairs =
  let pairs = List.sort_uniq compare pairs in
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
  in
  let indeg = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace indeg v 0) nodes;
  List.iter
    (fun (_, b) -> Hashtbl.replace indeg b (Hashtbl.find indeg b + 1))
    pairs;
  let q = Queue.create () in
  List.iter (fun v -> if Hashtbl.find indeg v = 0 then Queue.add v q) nodes;
  let removed = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr removed;
    List.iter
      (fun (a, b) ->
        if a = v then begin
          let d = Hashtbl.find indeg b - 1 in
          Hashtbl.replace indeg b d;
          if d = 0 then Queue.add b q
        end)
      pairs
  done;
  !removed < List.length nodes

let cycle_edges_exist cycle pairs =
  match cycle with
  | [] -> false
  | first :: _ ->
      let rec link = function
        | [] -> []
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: link rest
      in
      List.for_all (fun e -> List.mem e pairs) (link cycle)

let qcheck_cycle_detector_agrees =
  QCheck.Test.make ~count:500
    ~name:"S2 cycle detector agrees with reference Kahn sort"
    QCheck.(list_of_size Gen.(0 -- 16) (pair (int_bound 7) (int_bound 7)))
    (fun raw ->
      let pairs =
        List.map
          (fun (a, b) -> (Printf.sprintf "n%d" a, Printf.sprintf "n%d" b))
          raw
      in
      match Sem_lockgraph.cycle_of_edges pairs with
      | Some cycle -> ref_has_cycle pairs && cycle_edges_exist cycle pairs
      | None -> not (ref_has_cycle pairs))

(* ------------------------------------------------------------------ *)
(* S3 — type-aware float ordering *)

let s3_flags_alias () =
  check_rules "compare at a float alias" [ "S3" ] ~path:"lib/x/a.ml"
    "type ms = float\nlet f (a : ms) b = compare a b";
  check_rules "alias of alias resolves via fixpoint" [ "S3" ]
    ~path:"lib/x/a.ml" "type a = float\ntype b = a\nlet f (x : b) y = min x y"

let s3_flags_let_laundering () =
  check_rules "float laundered through let" [ "S3" ] ~path:"lib/x/a.ml"
    "let f x y =\n  let a = x +. 1.0 in\n  let b = y in\n  a = b"

let s3_flags_helper_arg_laundering () =
  (* The comparator travels as a function argument: the syntactic N1
     never sees a float near it, the instantiated type does. *)
  check_rules "comparator passed at float type" [ "S3" ] ~path:"lib/x/a.ml"
    "let pick cmp (x : float) y = if cmp x y < 0 then x else y\n\
     let f a b = pick compare a b";
  check_rules "Array.sort compare over floats" [ "S3" ] ~path:"lib/x/a.ml"
    "let f (a : float array) = Array.sort compare a"

let s3_allows_typed_comparisons () =
  check_rules "Float.compare is the fix" [] ~path:"lib/x/a.ml"
    "let f (a : float array) = Array.sort Float.compare a";
  check_rules "int compare untouched" [] ~path:"lib/x/a.ml"
    "let f (a : int) b = compare a b";
  check_rules "string equality untouched" [] ~path:"lib/x/a.ml"
    {|let f a = a = "label"|};
  check_rules "Float.min at an alias is fine" [] ~path:"lib/x/a.ml"
    "type ms = float\nlet f (a : ms) b = Float.min a b"

(* ------------------------------------------------------------------ *)
(* S4 — handler totality *)

let s4_flags_partial_match () =
  check_rules "partial match in server.ml" [ "S4" ] ~path:"lib/core/server.ml"
    "let f (o : int option) = match o with Some x -> x";
  check_rules "partial function in service.ml" [ "S4" ]
    ~path:"lib/service/service.ml"
    "let f = function Some (x : int) -> x";
  check_rules "partial match in admission.ml" [ "S4" ]
    ~path:"lib/service/admission.ml"
    "let f (o : int option) = match o with Some x -> x"

let s4_flags_aborts () =
  check_rules "raise in service.ml" [ "S4" ] ~path:"lib/service/service.ml"
    "let f () = raise Not_found";
  check_rules "failwith in session.ml" [ "S4" ] ~path:"lib/core/session.ml"
    {|let f () = failwith "boom"|};
  check_rules "assert false in server.ml" [ "S4" ] ~path:"lib/core/server.ml"
    "let f () : int = assert false";
  check_rules "raise in admission.ml" [ "S4" ]
    ~path:"lib/service/admission.ml"
    {|let f () = raise (Failure "overload")|};
  check_rules "exit in server.ml" [ "S4" ] ~path:"lib/core/server.ml"
    "let f () = exit 1"

let s4_carve_outs () =
  check_rules "invalid_arg stays legal" [] ~path:"lib/service/service.ml"
    {|let f shards = if shards < 1 then invalid_arg "shards" else shards|};
  check_rules "re-raising a caught exception stays legal" []
    ~path:"lib/service/service.ml"
    "let f g = try g () with e -> raise e";
  check_rules "config validation in admission.ml stays legal" []
    ~path:"lib/service/admission.ml"
    {|let f rate = if rate < 0 then invalid_arg "rate" else rate|};
  check_rules "exhaustive match is fine" [] ~path:"lib/core/server.ml"
    "let f (o : int option) = match o with Some x -> x | None -> 0";
  check_rules "ordinary assert is fine" [] ~path:"lib/core/server.ml"
    "let f x = assert (x > 0); x"

let s4_scoped_to_handler_modules () =
  check_rules "partiality elsewhere is not S4's business" []
    ~path:"lib/parallel/pool.ml"
    "let f (o : int option) = match o with Some x -> x"

(* ------------------------------------------------------------------ *)
(* Waivers and allowlist (same machinery as harmony_lint) *)

let waiver_same_line () =
  let src = "type ms = float\nlet f (a : ms) b = compare a b (* lint: allow S3 *)" in
  let r = analyze ~path:"lib/x/a.ml" src in
  Alcotest.(check (list string)) "kept empty" [] (rules_of r.Sem_driver.kept);
  Alcotest.(check (list string))
    "waiver recorded" [ "S3" ]
    (rules_of r.Sem_driver.suppressed)

let waiver_previous_line () =
  check_rules "comment-only previous line waives" [] ~path:"lib/x/a.ml"
    "type ms = float\n(* lint: allow S3 — exact sentinel equality *)\nlet f (a : ms) b = compare a b"

let waiver_does_not_bleed () =
  (* Unified semantics: a same-line waiver covers only its own line,
     not the next one. *)
  check_rules "same-line waiver stops at its line" [ "S3" ] ~path:"lib/x/a.ml"
    "type ms = float\nlet f (a : ms) b = compare a b (* lint: allow S3 *)\nlet g (a : ms) b = compare a b"

let waiver_stacks_on_code_line () =
  check_rules "stacked comment-only waivers all apply" [] ~path:"lib/x/a.ml"
    "type ms = float\n\
     (* lint: allow S3 — alias compare is intentional here *)\n\
     (* lint: allow S4 — fixture *)\n\
     let f (a : ms) b = compare a b"

let allowlist_waives_sem_rules () =
  let allowlist =
    match Lint_allow.allowlist_of_string "lib/x/a.ml S3" with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (list string))
    "allowlisted file passes" []
    (rules_of
       (kept ~allowlist ~path:"lib/x/a.ml"
          "type ms = float\nlet f (a : ms) b = compare a b"))

(* ------------------------------------------------------------------ *)
(* Baseline *)

let baseline_round_trip () =
  let mk file rule = { Lint_diag.rule; severity = Lint_diag.Error; file; line = 1; col = 0; message = "m" } in
  let diags = [ mk "lib/a.ml" "S1"; mk "lib/a.ml" "S1"; mk "lib/b.ml" "S3" ] in
  let entries = Sem_baseline.of_diags diags in
  let rendered = Sem_baseline.render entries in
  Alcotest.(check string)
    "render sorted" "lib/a.ml S1 2\nlib/b.ml S3 1\n" rendered;
  match Sem_baseline.of_string rendered with
  | Ok parsed ->
      Alcotest.(check int) "round-trips" (List.length entries) (List.length parsed);
      Alcotest.(check (list (triple string string int)))
        "entries equal"
        (List.map (fun e -> (e.Sem_baseline.path, e.rule, e.count)) entries)
        (List.map (fun e -> (e.Sem_baseline.path, e.rule, e.count)) parsed)
  | Error msg -> Alcotest.fail msg

let baseline_gates_regressions_only () =
  let mk file rule count = { Sem_baseline.path = file; rule; count } in
  let baseline = [ mk "lib/a.ml" "S1" 2 ] in
  Alcotest.(check int) "within baseline: no regression" 0
    (List.length
       (Sem_baseline.regressions ~baseline [ mk "lib/a.ml" "S1" 2 ]));
  Alcotest.(check int) "fewer findings: no regression" 0
    (List.length
       (Sem_baseline.regressions ~baseline [ mk "lib/a.ml" "S1" 1 ]));
  (match Sem_baseline.regressions ~baseline [ mk "lib/a.ml" "S1" 3 ] with
  | [ ("lib/a.ml", "S1", 2, 3) ] -> ()
  | _ -> Alcotest.fail "growth past the baseline must regress");
  match Sem_baseline.regressions ~baseline [ mk "lib/c.ml" "S2" 1 ] with
  | [ ("lib/c.ml", "S2", 0, 1) ] -> ()
  | _ -> Alcotest.fail "new (path, rule) pairs must regress"

let baseline_rejects_garbage () =
  match Sem_baseline.of_string "lib/a.ml S1 many" with
  | Ok _ -> Alcotest.fail "malformed baseline accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* SARIF shape *)

let member path json =
  List.fold_left
    (fun acc key ->
      Option.bind acc (fun j ->
          match int_of_string_opt key with
          | Some i -> (
              match j with
              | Tjson.List l -> List.nth_opt l i
              | _ -> None)
          | None -> Tjson.member key j))
    (Some json) path

let sarif_report_is_valid_and_complete () =
  let result =
    analyze ~path:"lib/x/a.ml" "type ms = float\nlet f (a : ms) b = compare a b"
  in
  let sarif = Format.asprintf "%a" (fun ppf r -> Sem_driver.render_sarif ppf r) result in
  match Tjson.parse sarif with
  | Error msg -> Alcotest.fail ("SARIF is not valid JSON: " ^ msg)
  | Ok json ->
      let str path' =
        match Option.bind (member path' json) Tjson.to_str with
        | Some s -> s
        | None -> Alcotest.fail ("missing " ^ String.concat "." path')
      in
      let num path' =
        match Option.bind (member path' json) Tjson.to_float with
        | Some f -> int_of_float f
        | None -> Alcotest.fail ("missing " ^ String.concat "." path')
      in
      Alcotest.(check string) "version" "2.1.0" (str [ "version" ]);
      Alcotest.(check string)
        "tool name" "harmony_sem"
        (str [ "runs"; "0"; "tool"; "driver"; "name" ]);
      Alcotest.(check string)
        "rule catalogue present" "S1"
        (str [ "runs"; "0"; "tool"; "driver"; "rules"; "0"; "id" ]);
      Alcotest.(check string)
        "ruleId" "S3"
        (str [ "runs"; "0"; "results"; "0"; "ruleId" ]);
      Alcotest.(check string)
        "level" "error"
        (str [ "runs"; "0"; "results"; "0"; "level" ]);
      Alcotest.(check string)
        "uri" "lib/x/a.ml"
        (str
           [ "runs"; "0"; "results"; "0"; "locations"; "0";
             "physicalLocation"; "artifactLocation"; "uri" ]);
      Alcotest.(check int)
        "line is 2" 2
        (num
           [ "runs"; "0"; "results"; "0"; "locations"; "0";
             "physicalLocation"; "region"; "startLine" ]);
      (* SARIF columns are 1-based; Lint_diag stores 0-based. *)
      Alcotest.(check bool)
        "column shifted to 1-based" true
        (num
           [ "runs"; "0"; "results"; "0"; "locations"; "0";
             "physicalLocation"; "region"; "startColumn" ]
        >= 1)

let sarif_shared_with_lint () =
  (* Satellite: harmony_lint emits the same SARIF via the shared
     emitter. *)
  let result =
    Lint_driver.lint_source ~path:"lib/core/x.ml" "let f xs = List.hd xs"
  in
  let rules =
    List.map
      (fun r ->
        { Lint_sarif.id = r.Lint_rules.id; summary = r.Lint_rules.summary;
          doc = r.Lint_rules.doc })
      Lint_rules.all
  in
  let sarif =
    Lint_sarif.to_string ~tool_name:"harmony_lint" ~rules
      result.Lint_driver.kept
  in
  match Tjson.parse sarif with
  | Error msg -> Alcotest.fail ("lint SARIF is not valid JSON: " ^ msg)
  | Ok json -> (
      match
        Option.bind
          (member [ "runs"; "0"; "results"; "0"; "ruleId" ] json)
          Tjson.to_str
      with
      | Some "T1" -> ()
      | other ->
          Alcotest.fail
            ("expected a T1 result, got "
            ^ Option.value ~default:"nothing" other))

(* ------------------------------------------------------------------ *)
(* Rule registry *)

let rule_registry_well_formed () =
  Alcotest.(check (list string))
    "ids unique and stable"
    [ "S1"; "S2"; "S3"; "S4" ]
    (List.map (fun r -> r.Sem_rules.id) Sem_rules.all)

let suite =
  [
    ("s1 flags captured ref", `Quick, s1_flags_captured_ref);
    ("s1 flags captured hashtbl", `Quick, s1_flags_captured_hashtbl);
    ("s1 flags mutable field", `Quick, s1_flags_mutable_field);
    ("s1 allows mutex protect", `Quick, s1_allows_mutex_protect);
    ("s1 allows lock/unlock span", `Quick, s1_allows_lock_unlock_span);
    ("s1 allows disjoint slots", `Quick, s1_allows_disjoint_slots);
    ("s1 flags constant slot", `Quick, s1_flags_constant_slot);
    ("s1 allows atomic and dls", `Quick, s1_allows_atomic_and_dls);
    ("s1 allows parameter state", `Quick, s1_allows_state_passed_as_parameter);
    ("s1 follows named task via queue", `Quick, s1_follows_named_task_and_queue_push);
    ("s1 follows helper calls", `Quick, s1_follows_helper_calls);
    ("s2 flags direct cycle", `Quick, s2_flags_direct_cycle);
    ("s2 allows consistent order", `Quick, s2_allows_consistent_order);
    ("s2 flags self deadlock", `Quick, s2_flags_self_deadlock);
    ("s2 cycle through call summaries", `Quick, s2_cycle_through_call_summaries);
    ("s2 telemetry lock must be leaf", `Quick, s2_telemetry_lock_must_be_leaf);
    ("s2 flight lock must be leaf", `Quick, s2_flight_lock_must_be_leaf);
    QCheck_alcotest.to_alcotest qcheck_cycle_detector_agrees;
    ("s3 flags alias", `Quick, s3_flags_alias);
    ("s3 flags let laundering", `Quick, s3_flags_let_laundering);
    ("s3 flags helper-arg laundering", `Quick, s3_flags_helper_arg_laundering);
    ("s3 allows typed comparisons", `Quick, s3_allows_typed_comparisons);
    ("s4 flags partial match", `Quick, s4_flags_partial_match);
    ("s4 flags aborts", `Quick, s4_flags_aborts);
    ("s4 carve-outs", `Quick, s4_carve_outs);
    ("s4 scoped to handler modules", `Quick, s4_scoped_to_handler_modules);
    ("waiver same line", `Quick, waiver_same_line);
    ("waiver previous line", `Quick, waiver_previous_line);
    ("waiver does not bleed to next line", `Quick, waiver_does_not_bleed);
    ("waiver stacks on code line", `Quick, waiver_stacks_on_code_line);
    ("allowlist waives sem rules", `Quick, allowlist_waives_sem_rules);
    ("baseline round trip", `Quick, baseline_round_trip);
    ("baseline gates regressions only", `Quick, baseline_gates_regressions_only);
    ("baseline rejects garbage", `Quick, baseline_rejects_garbage);
    ("sarif report shape", `Quick, sarif_report_is_valid_and_complete);
    ("sarif shared with lint", `Quick, sarif_shared_with_lint);
    ("rule registry well-formed", `Quick, rule_registry_well_formed);
  ]
